// ParamImage: the packed Q1.15.16 memory image of a module's stored
// parameters — the fault space of the paper's experiments ("the weights and
// biases of different layers, as well as parameters of activation
// functions").
//
// The image snapshots the module's parameters (and optionally its buffers,
// e.g. BatchNorm running statistics) at construction. restore() writes the
// decoded clean image back into the module; a fault injector flips bits in a
// scratch copy and writes that back instead.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nn/module.h"

namespace fitact::quant {

class ParamImage {
 public:
  /// Selects which named parameters join the fault space; nullptr = all.
  using NameFilter = std::function<bool(const std::string&)>;

  /// Snapshot the current parameter values of `m` into fixed point.
  /// include_buffers adds named buffers (BN running stats) to the image.
  /// `filter` restricts the image to matching parameter names (used by the
  /// Fig. 1 reproduction, which injects faults into specific layers only).
  explicit ParamImage(nn::Module& m, bool include_buffers = false,
                      NameFilter filter = nullptr);

  /// Total number of 32-bit words in the image.
  [[nodiscard]] std::size_t word_count() const noexcept {
    return clean_.size();
  }

  /// Total number of bits in the fault space.
  [[nodiscard]] std::uint64_t bit_count() const noexcept {
    return static_cast<std::uint64_t>(clean_.size()) * 32u;
  }

  /// Bytes of parameter storage (the Table I "memory" accounting).
  [[nodiscard]] std::size_t byte_count() const noexcept {
    return clean_.size() * sizeof(std::int32_t);
  }

  /// The clean snapshot (read-only).
  [[nodiscard]] const std::vector<std::int32_t>& clean_words() const noexcept {
    return clean_;
  }

  /// Write the *clean* image back into the module (also applies the
  /// quantisation round-trip, which models fixed-point parameter storage).
  void restore();

  /// Write an arbitrary word vector (same length) into the module; used by
  /// the injector after flipping bits.
  void write_back(const std::vector<std::int32_t>& words);

  /// Re-snapshot from the module (e.g. after post-training updated bounds).
  void refresh();

 private:
  struct Segment {
    std::string name;
    Tensor target;      // shares storage with the module's tensor
    std::size_t offset; // word offset into the image
  };

  nn::Module* module_;
  bool include_buffers_;
  NameFilter filter_;
  std::vector<Segment> segments_;
  std::vector<std::int32_t> clean_;
};

}  // namespace fitact::quant
