#include "quant/param_image.h"

#include <stdexcept>

#include "quant/fixed_point.h"

namespace fitact::quant {

ParamImage::ParamImage(nn::Module& m, bool include_buffers, NameFilter filter)
    : module_(&m), include_buffers_(include_buffers), filter_(std::move(filter)) {
  refresh();
}

void ParamImage::refresh() {
  segments_.clear();
  std::size_t words = 0;
  for (auto& p : module_->named_parameters()) {
    if (filter_ && !filter_(p.name)) continue;
    segments_.push_back({p.name, p.var.value(), words});
    words += static_cast<std::size_t>(p.var.numel());
  }
  if (include_buffers_) {
    for (auto& b : module_->named_buffers()) {
      if (filter_ && !filter_(b.name)) continue;
      segments_.push_back({b.name, b.tensor, words});
      words += static_cast<std::size_t>(b.tensor.numel());
    }
  }
  clean_.assign(words, 0);
  for (const auto& seg : segments_) {
    encode_span(seg.target.span(),
                std::span<std::int32_t>(clean_.data() + seg.offset,
                                        static_cast<std::size_t>(
                                            seg.target.numel())));
  }
}

void ParamImage::restore() { write_back(clean_); }

void ParamImage::write_back(const std::vector<std::int32_t>& words) {
  if (words.size() != clean_.size()) {
    throw std::invalid_argument("ParamImage::write_back: size mismatch");
  }
  for (auto& seg : segments_) {
    decode_span(std::span<const std::int32_t>(
                    words.data() + seg.offset,
                    static_cast<std::size_t>(seg.target.numel())),
                seg.target.span());
  }
}

}  // namespace fitact::quant
