#include "quant/fixed_point.h"

#include <cmath>
#include <stdexcept>

namespace fitact::quant {

std::int32_t encode(float x) noexcept {
  if (std::isnan(x)) return 0;
  const float scaled = x * kScale;
  if (scaled >= 2147483647.0f) return 2147483647;
  if (scaled <= -2147483648.0f) return -2147483648;
  return static_cast<std::int32_t>(std::lrintf(scaled));
}

void encode_span(std::span<const float> src, std::span<std::int32_t> dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("encode_span: size mismatch");
  }
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = encode(src[i]);
}

void decode_span(std::span<const std::int32_t> src, std::span<float> dst) {
  if (src.size() != dst.size()) {
    throw std::invalid_argument("decode_span: size mismatch");
  }
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = decode(src[i]);
}

}  // namespace fitact::quant
