// Q1.15.16 fixed-point codec: 1 sign bit, 15 integer bits, 16 fractional
// bits, two's complement — the parameter storage format of the paper's
// experimental setup ("32-bit fixed-point representation ... rather than
// floating-point").
//
// Parameters are *stored* in this format (and faults flip bits of the stored
// words); compute happens in float after decoding. A bit flip in a high
// integer bit turns a small weight into a value of magnitude up to 2^15,
// which is exactly the fault-propagation mechanism bounded activations
// suppress.
#pragma once

#include <cstdint>
#include <span>

namespace fitact::quant {

inline constexpr int kFractionalBits = 16;
inline constexpr float kScale = 65536.0f;  // 2^16
inline constexpr float kMaxRepresentable =
    2147483647.0f / kScale;  // ~32767.99998
inline constexpr float kMinRepresentable = -2147483648.0f / kScale;  // -32768
/// Quantisation step (resolution): 2^-16.
inline constexpr float kEpsilon = 1.0f / kScale;

/// Encode a float to the nearest representable Q1.15.16 value, saturating at
/// the representable range. NaN encodes to 0.
[[nodiscard]] std::int32_t encode(float x) noexcept;

/// Decode a Q1.15.16 word to float (exact; every word is representable).
[[nodiscard]] constexpr float decode(std::int32_t q) noexcept {
  return static_cast<float>(q) / kScale;
}

/// Round-trip through the fixed-point representation.
[[nodiscard]] inline float quantize(float x) noexcept {
  return decode(encode(x));
}

/// Flip bit `bit` (0 = LSB of the fraction, 31 = sign) of a stored word.
[[nodiscard]] constexpr std::int32_t flip_bit(std::int32_t q,
                                              int bit) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(q) ^
                                   (1u << bit));
}

/// Vector encode/decode.
void encode_span(std::span<const float> src, std::span<std::int32_t> dst);
void decode_span(std::span<const std::int32_t> src, std::span<float> dst);

}  // namespace fitact::quant
