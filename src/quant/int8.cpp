#include "quant/int8.h"

#include <algorithm>
#include <cmath>

namespace fitact::quant {

void Int8Weights::set_act_scale(float s) {
  act_scale = s;
  inv_act_scale = s > 0.0f ? 1.0f / s : 0.0f;
  combined.assign(scales.size(), 0.0f);
  for (std::size_t r = 0; r < scales.size(); ++r) {
    combined[r] = scales[r] * act_scale;
  }
}

void Int8Weights::restore() {
  std::copy(clean_q.begin(), clean_q.end(), q.begin());
}

Int8Weights quantize_weights_i8(const float* w, std::int64_t rows,
                                std::int64_t cols) {
  Int8Weights out;
  out.rows = rows;
  out.cols = cols;
  out.cols_padded = q8_padded(cols);
  out.q.assign(static_cast<std::size_t>(rows * out.cols_padded), 0);
  out.scales.assign(static_cast<std::size_t>(rows), 0.0f);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    float amax = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      amax = std::max(amax, std::fabs(row[c]));
    }
    if (!(amax > 0.0f)) continue;  // zero (or non-finite-free empty) row
    const float scale = amax / 127.0f;
    const float inv = 127.0f / amax;
    out.scales[static_cast<std::size_t>(r)] = scale;
    std::int8_t* qrow = out.q.data() + r * out.cols_padded;
    for (std::int64_t c = 0; c < cols; ++c) {
      float v = row[c] * inv;
      v = std::min(127.0f, std::max(-127.0f, v));
      qrow[c] = static_cast<std::int8_t>(std::lrintf(v));
    }
  }
  out.clean_q = out.q;
  return out;
}

}  // namespace fitact::quant
