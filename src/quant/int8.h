// Symmetric int8 block quantization for the planned serving path.
//
// Weights are quantized per output channel (one scale per conv output
// channel / linear output feature): q = round(w / scale) clamped to
// [-127, 127], scale = amax(row) / 127. Rows are padded to kQ8Block columns
// with zero bytes — zero products are exact, so padding never changes an
// accumulator — which lets the int8 GEMM microkernels
// (tensor/kernels) run whole 32-wide blocks without edge handling in the
// hot loop. The block layout follows the ggml q8 family: contiguous
// fixed-width rows of int8 payload with float scales kept out-of-band.
//
// Activations quantize symmetrically too, with a *static* scale derived
// from the FitAct clamp bound of the producing activation site: a bounded
// activation's output lives in [0, max(bound)], so act_scale =
// max(bound) / 127 covers the whole range with no runtime calibration —
// the resilience machinery and the quantized fast path share one source of
// truth. nn::InferencePlan derives the scales at compile time
// (precision = Precision::int8) and owns the per-op Int8Weights blocks.
//
// Fault model: the live `q` bytes are the deployed weight storage of an
// int8 op — the int8 analogue of the Q1.15.16 ParamImage fault space —
// and `clean_q` is the pristine image a scrub restores
// (InferencePlan::restore_int8_weights, wired into the server's
// scrub-and-recover path). Scales and the derived combined factors are
// compile-time metadata, not fault space.
#pragma once

#include <cstdint>
#include <vector>

namespace fitact::quant {

/// Quantized rows are padded to this many columns (the int8 GEMM kernels'
/// block width; see kernels.h gemm_i8_dot).
inline constexpr std::int64_t kQ8Block = 32;

[[nodiscard]] inline constexpr std::int64_t q8_padded(std::int64_t n) noexcept {
  return (n + kQ8Block - 1) / kQ8Block * kQ8Block;
}

/// One conv/linear weight matrix in block-quantized form: `rows` output
/// channels by `cols` reduction elements, stored as int8 rows of
/// `cols_padded` bytes (zero tail). See the file comment for the scheme.
struct Int8Weights {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t cols_padded = 0;
  std::vector<std::int8_t> q;        ///< live bytes [rows, cols_padded]
  std::vector<std::int8_t> clean_q;  ///< pristine image for scrubs
  std::vector<float> scales;         ///< per-row weight scale
  /// Per-row dequantization factor scales[r] * act_scale: one multiply
  /// turns an int32 accumulator back into the fp32 pre-activation value.
  std::vector<float> combined;
  float act_scale = 0.0f;      ///< input activation scale (range / 127)
  float inv_act_scale = 0.0f;  ///< 1 / act_scale (0 when act_scale is 0)

  /// Bind the input activation scale and precompute the combined per-row
  /// dequantization factors.
  void set_act_scale(float s);

  /// Scrub: copy the clean image back over the live bytes (no realloc).
  void restore();
};

/// Quantize a row-major [rows, cols] fp32 weight matrix (conv weights are
/// [out_c, in_c*kh*kw] after flattening, linear weights [out_f, in_f]).
/// A zero row gets scale 0 and all-zero bytes.
[[nodiscard]] Int8Weights quantize_weights_i8(const float* w,
                                              std::int64_t rows,
                                              std::int64_t cols);

}  // namespace fitact::quant
