// Model registry: construction by name, as used by the bench harnesses and
// examples ("alexnet", "vgg16", "resnet50", plus "tinycnn" for tests).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "models/model_config.h"
#include "nn/module.h"

namespace fitact::models {

/// Construct a model by name. Throws std::invalid_argument for unknown names.
[[nodiscard]] std::shared_ptr<nn::Module> make_model(const std::string& name,
                                                     const ModelConfig& config);

/// Names accepted by make_model.
[[nodiscard]] std::vector<std::string> model_names();

/// Small two-conv CNN used by the test suite and the quickstart example.
[[nodiscard]] std::shared_ptr<nn::Module> make_tinycnn(
    const ModelConfig& config);

}  // namespace fitact::models
