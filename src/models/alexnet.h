// AlexNet, CIFAR variant: five 3x3 convolutions (the 11x11/5x5 ImageNet stem
// does not fit 32x32 inputs) with the original channel progression
// 64-192-384-256-256, three max-pools, and a three-layer classifier.
// No normalisation layers, matching the original architecture.
#pragma once

#include <memory>

#include "models/model_config.h"
#include "nn/layers.h"

namespace fitact::models {

[[nodiscard]] std::shared_ptr<nn::Module> make_alexnet(
    const ModelConfig& config);

}  // namespace fitact::models
