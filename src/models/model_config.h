// Shared configuration for the model zoo (paper Section VI-A1: AlexNet,
// VGG16, ResNet50 on CIFAR-10/CIFAR-100).
#pragma once

#include <cstdint>

#include "core/activation.h"

namespace fitact::models {

struct ModelConfig {
  std::int64_t num_classes = 10;
  /// Channel-width multiplier. 1.0 reproduces the paper-scale architecture;
  /// the bench harnesses default to smaller widths so the full suite runs
  /// on a small CPU container (see DESIGN.md).
  float width_mult = 1.0f;
  /// Configuration applied to every activation site.
  core::ActivationConfig activation;
  /// Insert BatchNorm after VGG16 convolutions. The original configuration D
  /// has no normalisation (and the paper's wide per-layer activation ranges
  /// depend on that); ResNet50 always uses BatchNorm regardless.
  bool vgg_batchnorm = false;
  /// Insert the original AlexNet's 0.5 dropout before the first two
  /// classifier layers. Off by default: the scaled training budgets are too
  /// small for heavy regularisation (enable for full-scale runs).
  bool alexnet_dropout = false;
  /// Weight-initialisation seed.
  std::uint64_t seed = 42;
  /// Allocate parameters without the random init (nn::InitMode::deferred).
  /// For replicas whose state is immediately overwritten by nn::copy_state —
  /// e.g. campaign worker lanes — the Kaiming draws in make_model are pure
  /// waste. A skip-init model must not be evaluated before copy_state /
  /// load_state fills it (debug builds assert).
  bool skip_init = false;
};

/// Scaled channel count: round(c * width_mult), floored at 4.
[[nodiscard]] std::int64_t scaled(std::int64_t channels, float width_mult);

}  // namespace fitact::models
