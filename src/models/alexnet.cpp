#include "models/alexnet.h"

#include "util/rng.h"

namespace fitact::models {

std::shared_ptr<nn::Module> make_alexnet(const ModelConfig& config) {
  ut::Rng rng(config.seed);
  const nn::InitMode init =
      config.skip_init ? nn::InitMode::deferred : nn::InitMode::random;
  const auto w = [&](std::int64_t c) { return scaled(c, config.width_mult); };
  const auto act = [&] {
    return std::make_shared<core::BoundedActivation>(config.activation);
  };

  auto net = std::make_shared<nn::Sequential>();
  // Feature extractor: 32 -> 16 -> 8 -> 4.
  net->add(std::make_shared<nn::Conv2d>(3, w(64), 3, 1, 1, true, rng, init));
  net->add(act());
  net->add(std::make_shared<nn::MaxPool2d>(2));
  net->add(std::make_shared<nn::Conv2d>(w(64), w(192), 3, 1, 1, true, rng,
                                        init));
  net->add(act());
  net->add(std::make_shared<nn::MaxPool2d>(2));
  net->add(std::make_shared<nn::Conv2d>(w(192), w(384), 3, 1, 1, true, rng,
                                        init));
  net->add(act());
  net->add(std::make_shared<nn::Conv2d>(w(384), w(256), 3, 1, 1, true, rng,
                                        init));
  net->add(act());
  net->add(std::make_shared<nn::Conv2d>(w(256), w(256), 3, 1, 1, true, rng,
                                        init));
  net->add(act());
  net->add(std::make_shared<nn::MaxPool2d>(2));
  // Classifier, optionally with the original dropout regularisation.
  net->add(std::make_shared<nn::Flatten>());
  if (config.alexnet_dropout) {
    net->add(std::make_shared<nn::Dropout>(0.5f, config.seed ^ 0xD0));
  }
  net->add(std::make_shared<nn::Linear>(w(256) * 4 * 4, w(1024), true, rng,
                                        init));
  net->add(act());
  if (config.alexnet_dropout) {
    net->add(std::make_shared<nn::Dropout>(0.5f, config.seed ^ 0xD1));
  }
  net->add(std::make_shared<nn::Linear>(w(1024), w(512), true, rng, init));
  net->add(act());
  net->add(std::make_shared<nn::Linear>(w(512), config.num_classes, true, rng,
                                        init));
  return net;
}

}  // namespace fitact::models
