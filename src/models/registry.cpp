#include "models/registry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "models/alexnet.h"
#include "models/resnet.h"
#include "models/vgg.h"
#include "util/rng.h"

namespace fitact::models {

std::int64_t scaled(std::int64_t channels, float width_mult) {
  const auto s = static_cast<std::int64_t>(
      std::lround(static_cast<double>(channels) * width_mult));
  return std::max<std::int64_t>(4, s);
}

std::shared_ptr<nn::Module> make_tinycnn(const ModelConfig& config) {
  ut::Rng rng(config.seed);
  const nn::InitMode init =
      config.skip_init ? nn::InitMode::deferred : nn::InitMode::random;
  const auto w = [&](std::int64_t c) { return scaled(c, config.width_mult); };
  const auto act = [&] {
    return std::make_shared<core::BoundedActivation>(config.activation);
  };
  auto net = std::make_shared<nn::Sequential>();
  net->add(std::make_shared<nn::Conv2d>(3, w(16), 3, 1, 1, true, rng, init));
  net->add(act());
  net->add(std::make_shared<nn::MaxPool2d>(2));  // 32 -> 16
  net->add(std::make_shared<nn::Conv2d>(w(16), w(32), 3, 1, 1, true, rng,
                                        init));
  net->add(act());
  net->add(std::make_shared<nn::MaxPool2d>(4));  // 16 -> 4
  net->add(std::make_shared<nn::Flatten>());
  net->add(std::make_shared<nn::Linear>(w(32) * 4 * 4, w(64), true, rng,
                                        init));
  net->add(act());
  net->add(std::make_shared<nn::Linear>(w(64), config.num_classes, true, rng,
                                        init));
  return net;
}

std::shared_ptr<nn::Module> make_model(const std::string& name,
                                       const ModelConfig& config) {
  if (name == "alexnet") return make_alexnet(config);
  if (name == "vgg16") return make_vgg16(config);
  if (name == "resnet50") return make_resnet50(config);
  if (name == "tinycnn") return make_tinycnn(config);
  throw std::invalid_argument("make_model: unknown model '" + name + "'");
}

std::vector<std::string> model_names() {
  return {"alexnet", "vgg16", "resnet50", "tinycnn"};
}

}  // namespace fitact::models
