// VGG16, CIFAR variant (configuration D): thirteen 3x3 convolutions in five
// blocks (64x2, 128x2, 256x3, 512x3, 512x3), each followed by an activation
// site (BatchNorm optional, off by default as in the original architecture),
// max-pool after each block (32 -> 1), then a two-layer FC classifier.
#pragma once

#include <memory>

#include "models/model_config.h"
#include "nn/layers.h"

namespace fitact::models {

[[nodiscard]] std::shared_ptr<nn::Module> make_vgg16(
    const ModelConfig& config);

}  // namespace fitact::models
