// ResNet-50, CIFAR variant: 3x3 stem (no initial max-pool at 32x32),
// bottleneck stages [3, 4, 6, 3] with channel plan 256/512/1024/2048 and
// stride-2 stage entries, global average pooling, linear classifier.
#pragma once

#include <memory>

#include "models/model_config.h"
#include "nn/layers.h"

namespace fitact::models {

[[nodiscard]] std::shared_ptr<nn::Module> make_resnet50(
    const ModelConfig& config);

}  // namespace fitact::models
