#include "models/resnet.h"

#include "autograd/ops.h"
#include "nn/plan.h"
#include "util/rng.h"

namespace fitact::models {
namespace {

/// Bottleneck residual block: 1x1 reduce -> 3x3 (stride) -> 1x1 expand, with
/// BatchNorm after each convolution, activation sites after the first two
/// and after the residual addition, and a projection shortcut when the
/// geometry changes.
class Bottleneck final : public nn::Module {
 public:
  Bottleneck(std::int64_t in_c, std::int64_t mid_c, std::int64_t out_c,
             std::int64_t stride, const core::ActivationConfig& act_cfg,
             ut::Rng& rng, nn::InitMode init) {
    conv1_ = register_module(
        "conv1",
        std::make_shared<nn::Conv2d>(in_c, mid_c, 1, 1, 0, false, rng, init));
    bn1_ = register_module("bn1", std::make_shared<nn::BatchNorm2d>(mid_c));
    act1_ = register_module("act1",
                            std::make_shared<core::BoundedActivation>(act_cfg));
    conv2_ = register_module(
        "conv2", std::make_shared<nn::Conv2d>(mid_c, mid_c, 3, stride, 1,
                                              false, rng, init));
    bn2_ = register_module("bn2", std::make_shared<nn::BatchNorm2d>(mid_c));
    act2_ = register_module("act2",
                            std::make_shared<core::BoundedActivation>(act_cfg));
    conv3_ = register_module(
        "conv3",
        std::make_shared<nn::Conv2d>(mid_c, out_c, 1, 1, 0, false, rng, init));
    bn3_ = register_module("bn3", std::make_shared<nn::BatchNorm2d>(out_c));
    if (stride != 1 || in_c != out_c) {
      proj_conv_ = register_module(
          "proj_conv", std::make_shared<nn::Conv2d>(in_c, out_c, 1, stride, 0,
                                                    false, rng, init));
      proj_bn_ = register_module("proj_bn",
                                 std::make_shared<nn::BatchNorm2d>(out_c));
    }
    act_out_ = register_module(
        "act_out", std::make_shared<core::BoundedActivation>(act_cfg));
  }

  Variable forward(const Variable& x) override {
    Variable h = act1_->forward(bn1_->forward(conv1_->forward(x)));
    h = act2_->forward(bn2_->forward(conv2_->forward(h)));
    h = bn3_->forward(conv3_->forward(h));
    Variable shortcut = x;
    if (proj_conv_) {
      shortcut = proj_bn_->forward(proj_conv_->forward(x));
    }
    return act_out_->forward(ag::add(h, shortcut));
  }

  nn::PlanValueId record(nn::PlanBuilder& builder,
                         nn::PlanValueId input) override {
    // Mirrors forward() op for op, including the residual add.
    nn::PlanValueId h = builder.record_child("conv1", *conv1_, input);
    h = builder.record_child("bn1", *bn1_, h);
    h = builder.record_child("act1", *act1_, h);
    h = builder.record_child("conv2", *conv2_, h);
    h = builder.record_child("bn2", *bn2_, h);
    h = builder.record_child("act2", *act2_, h);
    h = builder.record_child("conv3", *conv3_, h);
    h = builder.record_child("bn3", *bn3_, h);
    nn::PlanValueId shortcut = input;
    if (proj_conv_) {
      shortcut = builder.record_child("proj_conv", *proj_conv_, input);
      shortcut = builder.record_child("proj_bn", *proj_bn_, shortcut);
    }
    return builder.record_child("act_out", *act_out_,
                                builder.add(h, shortcut));
  }

 private:
  std::shared_ptr<nn::Conv2d> conv1_, conv2_, conv3_, proj_conv_;
  std::shared_ptr<nn::BatchNorm2d> bn1_, bn2_, bn3_, proj_bn_;
  std::shared_ptr<core::BoundedActivation> act1_, act2_, act_out_;
};

}  // namespace

std::shared_ptr<nn::Module> make_resnet50(const ModelConfig& config) {
  ut::Rng rng(config.seed);
  const nn::InitMode init =
      config.skip_init ? nn::InitMode::deferred : nn::InitMode::random;
  const auto w = [&](std::int64_t c) { return scaled(c, config.width_mult); };

  auto net = std::make_shared<nn::Sequential>();
  // Stem.
  net->add(std::make_shared<nn::Conv2d>(3, w(64), 3, 1, 1, false, rng, init));
  net->add(std::make_shared<nn::BatchNorm2d>(w(64)));
  net->add(std::make_shared<core::BoundedActivation>(config.activation));

  struct Stage {
    std::int64_t blocks;
    std::int64_t mid;
    std::int64_t out;
    std::int64_t stride;
  };
  const Stage stages[] = {
      {3, w(64), w(256), 1},
      {4, w(128), w(512), 2},
      {6, w(256), w(1024), 2},
      {3, w(512), w(2048), 2},
  };
  std::int64_t in_c = w(64);
  for (const auto& st : stages) {
    for (std::int64_t b = 0; b < st.blocks; ++b) {
      const std::int64_t stride = (b == 0) ? st.stride : 1;
      net->add(std::make_shared<Bottleneck>(in_c, st.mid, st.out, stride,
                                            config.activation, rng, init));
      in_c = st.out;
    }
  }
  net->add(std::make_shared<nn::GlobalAvgPool>());
  net->add(std::make_shared<nn::Linear>(in_c, config.num_classes, true, rng,
                                        init));
  return net;
}

}  // namespace fitact::models
