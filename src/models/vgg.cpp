#include "models/vgg.h"

#include <array>

#include "util/rng.h"

namespace fitact::models {

std::shared_ptr<nn::Module> make_vgg16(const ModelConfig& config) {
  ut::Rng rng(config.seed);
  const nn::InitMode init =
      config.skip_init ? nn::InitMode::deferred : nn::InitMode::random;
  const auto w = [&](std::int64_t c) { return scaled(c, config.width_mult); };
  const auto act = [&] {
    return std::make_shared<core::BoundedActivation>(config.activation);
  };

  // Configuration D; -1 marks a max-pool.
  constexpr std::array<std::int64_t, 18> kPlan = {
      64, 64, -1, 128, 128, -1, 256, 256, 256, -1,
      512, 512, 512, -1, 512, 512, 512, -1};

  auto net = std::make_shared<nn::Sequential>();
  std::int64_t in_c = 3;
  for (const auto entry : kPlan) {
    if (entry < 0) {
      net->add(std::make_shared<nn::MaxPool2d>(2));
      continue;
    }
    const std::int64_t out_c = w(entry);
    net->add(std::make_shared<nn::Conv2d>(in_c, out_c, 3, 1, 1,
                                          /*bias=*/!config.vgg_batchnorm,
                                          rng, init));
    if (config.vgg_batchnorm) {
      net->add(std::make_shared<nn::BatchNorm2d>(out_c));
    }
    net->add(act());
    in_c = out_c;
  }
  net->add(std::make_shared<nn::Flatten>());  // [B, w(512)] after 5 pools
  net->add(std::make_shared<nn::Linear>(w(512), w(512), true, rng, init));
  net->add(act());
  net->add(std::make_shared<nn::Linear>(w(512), config.num_classes, true, rng,
                                        init));
  return net;
}

}  // namespace fitact::models
