// Wall-clock timing helpers for the benchmark harnesses and the Table I /
// training-overhead reproductions.
#pragma once

#include <chrono>

namespace fitact::ut {

class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  /// Elapsed time since construction or last reset, in milliseconds.
  [[nodiscard]] double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  [[nodiscard]] double elapsed_s() const noexcept {
    return elapsed_ms() / 1000.0;
  }

  void reset() noexcept { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fitact::ut
