#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace fitact::ut {
namespace {
// Set while a pool worker executes a task — and while the calling thread
// executes its own chunk of a parallel_for. Nested parallel_for calls from
// either run inline instead of re-entering a pool: with a small pool,
// workers waiting on sub-tasks that only other (equally blocked) workers
// could run would stall the process, and a calling-thread chunk fanning
// nested kernels over the global pool would oversubscribe the cores its
// sibling chunks are already using.
thread_local bool tl_in_worker = false;

// RAII: mark the current thread as executing pool work.
struct InWorkerScope {
  InWorkerScope() noexcept { tl_in_worker = true; }
  ~InWorkerScope() { tl_in_worker = false; }
  InWorkerScope(const InWorkerScope&) = delete;
  InWorkerScope& operator=(const InWorkerScope&) = delete;
};

// Join-point shared by the fan-out entry points: chunks decrement pending
// under m and the calling thread blocks until it reaches zero. Guarded
// members are initialised in the constructor (which the thread-safety
// analysis exempts) before the struct is shared with any worker.
struct Sync {
  explicit Sync(std::size_t p) : pending(p) {}
  Mutex m;
  CondVar done;
  std::size_t pending FITACT_GUARDED_BY(m);

  void finish_one() FITACT_EXCLUDES(m) {
    {
      const LockGuard lock(m);
      --pending;
    }
    done.notify_one();
  }
  void wait_all() FITACT_EXCLUDES(m) {
    const LockGuard lock(m);
    while (pending != 0) done.wait(m);
  }
};
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      const LockGuard lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const InWorkerScope scope;
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const LockGuard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (tl_in_worker) {
    fn(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t num_chunks = std::min(n, workers_.size() + 1);
  if (num_chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;

  auto sync = std::make_shared<Sync>(num_chunks - 1);
  for (std::size_t c = 1; c < num_chunks; ++c) {
    const std::size_t b = begin + c * chunk;
    const std::size_t e = std::min(end, b + chunk);
    if (b >= e) {
      sync->finish_one();
      continue;
    }
    enqueue([fn, b, e, sync] {
      fn(b, e);
      sync->finish_one();
    });
  }
  // The calling thread executes the first chunk itself, flagged as pool
  // work so nested kernel parallel_for calls run inline like they do on
  // the worker-thread chunks.
  {
    const InWorkerScope scope;
    fn(begin, std::min(end, begin + chunk));
  }
  sync->wait_all();
}

void ThreadPool::parallel_for_slotted(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  // Slot ids are acquired when a chunk starts and released when it ends, so
  // an id is always < the number of concurrently running chunks, which the
  // execution model bounds by size() + 1 regardless of chunking policy.
  // Exceptions are captured here rather than propagated out of the chunk
  // callback: a throw on a pool worker would escape worker_loop and
  // std::terminate, and a throw on the calling thread would return from
  // parallel_for while enqueued chunks still reference this frame.
  struct State {
    Mutex m;
    std::vector<std::size_t> free FITACT_GUARDED_BY(m);
    std::size_t next FITACT_GUARDED_BY(m) = 0;
    std::exception_ptr error FITACT_GUARDED_BY(m);

    std::size_t acquire() FITACT_EXCLUDES(m) {
      const LockGuard lock(m);
      if (!free.empty()) {
        const std::size_t s = free.back();
        free.pop_back();
        return s;
      }
      return next++;
    }
    void release(std::size_t s) FITACT_EXCLUDES(m) {
      const LockGuard lock(m);
      free.push_back(s);
    }
    void record_error() FITACT_EXCLUDES(m) {
      const LockGuard lock(m);
      if (!error) error = std::current_exception();
    }
    std::exception_ptr take_error() FITACT_EXCLUDES(m) {
      const LockGuard lock(m);
      return error;
    }
  };
  auto state = std::make_shared<State>();
  parallel_for(begin, end, [&fn, state](std::size_t b, std::size_t e) {
    const std::size_t slot = state->acquire();
    try {
      fn(slot, b, e);
    } catch (...) {
      state->record_error();
    }
    state->release(slot);
  });
  // parallel_for has joined every chunk, but take the lock anyway: it costs
  // nothing uncontended and keeps the guarded-by contract unconditional.
  if (const std::exception_ptr error = state->take_error()) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for_each(std::size_t begin, std::size_t end,
                                   std::size_t grain,
                                   const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (tl_in_worker) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  if (grain == 0) grain = 1;
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  const auto worker = [next, end, grain, &fn] {
    for (;;) {
      const std::size_t b = next->fetch_add(grain);
      if (b >= end) return;
      const std::size_t e = std::min(end, b + grain);
      for (std::size_t i = b; i < e; ++i) fn(i);
    }
  };

  const std::size_t helpers =
      std::min(workers_.size(), (end - begin + grain - 1) / grain);
  auto sync = std::make_shared<Sync>(helpers);
  for (std::size_t c = 0; c < helpers; ++c) {
    enqueue([worker, sync] {
      worker();
      sync->finish_one();
    });
  }
  {
    const InWorkerScope scope;
    worker();
  }
  sync->wait_all();
}

InlineKernelScope::InlineKernelScope() noexcept : previous_(tl_in_worker) {
  tl_in_worker = true;
}

InlineKernelScope::~InlineKernelScope() { tl_in_worker = previous_; }

namespace {
// Atomic for TSan hygiene: a misuse that calls set_global_threads while
// another thread races global_pool() is still a logic error (the setting
// may be ignored), but must not read as a data race.
std::atomic<std::size_t>& global_threads_setting() {
  static std::atomic<std::size_t> n{0};  // 0 = auto
  return n;
}
}  // namespace

std::size_t default_thread_count() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 2 : static_cast<std::size_t>(hc);
}

std::size_t set_global_threads(std::size_t n) {
  global_threads_setting().store(n, std::memory_order_relaxed);
  return n == 0 ? default_thread_count() : n;
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    const std::size_t n =
        global_threads_setting().load(std::memory_order_relaxed);
    return n > 0 ? n : default_thread_count();
  }());
  return pool;
}

bool kernels_inline() noexcept { return tl_in_worker; }

}  // namespace fitact::ut
