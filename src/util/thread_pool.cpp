#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace fitact::ut {
namespace {
// Set while a pool worker executes a task. Nested parallel_for calls from
// inside a worker run inline instead of re-entering the pool: with a small
// pool, workers waiting on sub-tasks that only other (equally blocked)
// workers could run would stall the process.
thread_local bool tl_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    tl_in_worker = true;
    task();
    tl_in_worker = false;
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (tl_in_worker) {
    fn(begin, end);
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t num_chunks = std::min(n, workers_.size() + 1);
  if (num_chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;

  struct Sync {
    std::mutex m;
    std::condition_variable done;
    std::size_t pending = 0;
  };
  auto sync = std::make_shared<Sync>();
  sync->pending = num_chunks - 1;

  for (std::size_t c = 1; c < num_chunks; ++c) {
    const std::size_t b = begin + c * chunk;
    const std::size_t e = std::min(end, b + chunk);
    if (b >= e) {
      const std::lock_guard<std::mutex> lock(sync->m);
      --sync->pending;
      continue;
    }
    enqueue([fn, b, e, sync] {
      fn(b, e);
      {
        const std::lock_guard<std::mutex> lock(sync->m);
        --sync->pending;
      }
      sync->done.notify_one();
    });
  }
  // The calling thread executes the first chunk itself.
  fn(begin, std::min(end, begin + chunk));

  std::unique_lock<std::mutex> lock(sync->m);
  sync->done.wait(lock, [&] { return sync->pending == 0; });
}

void ThreadPool::parallel_for_each(std::size_t begin, std::size_t end,
                                   std::size_t grain,
                                   const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (tl_in_worker) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  if (grain == 0) grain = 1;
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  const auto worker = [next, end, grain, &fn] {
    for (;;) {
      const std::size_t b = next->fetch_add(grain);
      if (b >= end) return;
      const std::size_t e = std::min(end, b + grain);
      for (std::size_t i = b; i < e; ++i) fn(i);
    }
  };

  struct Sync {
    std::mutex m;
    std::condition_variable done;
    std::size_t pending = 0;
  };
  auto sync = std::make_shared<Sync>();
  const std::size_t helpers =
      std::min(workers_.size(), (end - begin + grain - 1) / grain);
  sync->pending = helpers;
  for (std::size_t c = 0; c < helpers; ++c) {
    enqueue([worker, sync] {
      worker();
      {
        const std::lock_guard<std::mutex> lock(sync->m);
        --sync->pending;
      }
      sync->done.notify_one();
    });
  }
  worker();
  std::unique_lock<std::mutex> lock(sync->m);
  sync->done.wait(lock, [&] { return sync->pending == 0; });
}

namespace {
std::size_t& global_threads_setting() {
  static std::size_t n = 0;  // 0 = auto
  return n;
}
}  // namespace

std::size_t set_global_threads(std::size_t n) {
  global_threads_setting() = n;
  return n == 0 ? std::max(1u, std::thread::hardware_concurrency()) : n;
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    const std::size_t n = global_threads_setting();
    if (n > 0) return n;
    const unsigned hc = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hc == 0 ? 2 : hc);
  }());
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  global_pool().parallel_for(begin, end, fn);
}

}  // namespace fitact::ut
