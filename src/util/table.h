// Aligned plain-text table printer. The bench harnesses use it to print the
// rows/series of each reproduced paper table and figure to stdout.
#pragma once

#include <string>
#include <vector>

namespace fitact::ut {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void row(std::vector<std::string> cells);

  /// Render with column alignment; numbers right-aligned heuristically.
  [[nodiscard]] std::string str() const;

  /// Render and write to stdout.
  void print() const;

  /// Format helpers.
  [[nodiscard]] static std::string fixed(double v, int decimals);
  [[nodiscard]] static std::string percent(double fraction01,
                                           int decimals = 2);
  [[nodiscard]] static std::string sci(double v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fitact::ut
