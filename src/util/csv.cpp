#include "util/csv.h"

#include <sstream>
#include <stdexcept>

namespace fitact::ut {

std::string csv_escape(std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);  // common case: quotes only, no " doubling
  out += '"';
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), width_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) {
    throw std::invalid_argument("CsvWriter: row width " +
                                std::to_string(cells.size()) +
                                " != header width " + std::to_string(width_));
  }
  write_row(cells);
}

void CsvWriter::row_values(std::initializer_list<double> values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(num(v));
  row(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::num(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace fitact::ut
