// Minimal fixed-size thread pool with a blocking parallel_for.
//
// The pool is used by the GEMM kernel, the conv2d im2col driver, and the
// fault-injection campaign runner. A process-wide pool (global_pool) avoids
// repeated thread creation; its size defaults to the hardware concurrency
// and can be capped via set_global_threads before first use.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fitact::ut {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Run fn(begin..end) partitioned into roughly equal contiguous chunks,
  /// one per worker (plus the calling thread). Blocks until all chunks
  /// complete. fn receives a half-open index range [chunk_begin, chunk_end).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Run fn once per index in [begin, end), dynamically load-balanced in
  /// blocks of `grain`. Use for heterogeneous per-item costs (fault trials).
  void parallel_for_each(std::size_t begin, std::size_t end, std::size_t grain,
                         const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool, created on first use.
ThreadPool& global_pool();

/// Cap the global pool size; must be called before the first global_pool()
/// use to take effect. Returns the size that will be used.
std::size_t set_global_threads(std::size_t n);

/// Convenience wrappers over global_pool().
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace fitact::ut
