// Minimal fixed-size thread pool with a blocking parallel_for.
//
// The process-wide pool (global_pool) serves the GEMM kernel and the conv2d
// im2col driver; it avoids repeated thread creation, defaults to the
// hardware concurrency, and can be capped via set_global_threads before
// first use. The fault-injection campaign engine (fault::run_campaign)
// instead constructs its own ThreadPool sized to CampaignConfig::threads,
// one lane per model replica; nested kernel parallel_for calls from inside
// those lanes run inline (see tl_in_worker in thread_pool.cpp).
//
// Locking discipline (machine-checked under clang -Wthread-safety, see
// util/thread_annotations.h): the task queue and the stop flag are guarded
// by mutex_; workers_ is immutable once the constructor returns and needs
// no lock.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace fitact::ut {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Run fn(begin..end) partitioned into roughly equal contiguous chunks,
  /// one per worker (plus the calling thread). Blocks until all chunks
  /// complete. fn receives a half-open index range [chunk_begin, chunk_end).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Run fn once per index in [begin, end), dynamically load-balanced in
  /// blocks of `grain`. Use for heterogeneous per-item costs (fault trials).
  void parallel_for_each(std::size_t begin, std::size_t end, std::size_t grain,
                         const std::function<void(std::size_t)>& fn);

  /// parallel_for variant that also hands fn an execution-slot id. The
  /// pool guarantees the id is < size() + 1 and unique among concurrently
  /// running chunks (slots are recycled as chunks finish), independent of
  /// how the range is chunked. Callers that need per-execution state — one
  /// model replica per fault-campaign lane — index it by slot instead of
  /// re-deriving the pool's chunking policy. If fn throws, every chunk is
  /// still driven to completion and the first exception is rethrown on the
  /// calling thread afterwards (exceptions never unwind a pool worker).
  void parallel_for_slotted(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t slot, std::size_t, std::size_t)>&
          fn);

 private:
  void worker_loop();
  void enqueue(std::function<void()> task) FITACT_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  ///< immutable after construction
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ FITACT_GUARDED_BY(mutex_);
  bool stop_ FITACT_GUARDED_BY(mutex_) = false;
};

/// RAII: run every nested parallel_for / parallel_for_each on the current
/// thread, inline and allocation-free, for the lifetime of the scope — the
/// same mechanism pool workers use so nested kernels never re-enter a pool.
/// Serving lanes executing a recorded nn::InferencePlan wrap each batch in
/// one of these: the lane threads already saturate the hardware threads, so
/// fanning kernel work over the global pool would only oversubscribe cores
/// and heap-allocate task state on the hot path.
class InlineKernelScope {
 public:
  InlineKernelScope() noexcept;
  ~InlineKernelScope();
  InlineKernelScope(const InlineKernelScope&) = delete;
  InlineKernelScope& operator=(const InlineKernelScope&) = delete;

 private:
  bool previous_;
};

/// Default worker count for "use every hardware thread" requests: the
/// hardware concurrency, or 2 when the runtime cannot report it.
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Process-wide pool, created on first use.
ThreadPool& global_pool();

/// Cap the global pool size; must be called before the first global_pool()
/// use to take effect. Returns the size that will be used.
std::size_t set_global_threads(std::size_t n);

/// True while the current thread must run kernels inline — it is a pool
/// worker or inside an InlineKernelScope.
[[nodiscard]] bool kernels_inline() noexcept;

/// Convenience wrapper over global_pool(). A template (not a
/// std::function parameter) so the inline path calls fn directly: type
/// erasure heap-allocates for capturing lambdas, which would put one
/// allocation per kernel launch on the zero-allocation planned-serving
/// hot path (nn/plan.h).
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, const Fn& fn) {
  if (begin >= end) return;
  if (kernels_inline()) {
    fn(begin, end);
    return;
  }
  global_pool().parallel_for(begin, end, fn);
}

}  // namespace fitact::ut
