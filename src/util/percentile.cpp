#include "util/percentile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace fitact::ut {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    throw std::invalid_argument("percentile: empty sample vector");
  }
  if (!(p > 0.0) || p > 1.0) {
    throw std::invalid_argument("percentile: p must be in (0, 1], got " +
                                std::to_string(p));
  }
  const auto n = sorted.size();
  // 1-based ceil nearest-rank, capped at n. The epsilon absorbs binary
  // representation noise in p * n: 0.95 * 20 evaluates to 19.000000000000002
  // (0.95 is not representable), and without it ceil would skip the exact
  // rank-19 boundary and report the p100 instead. 1e-9 is far above the
  // noise (~1e-15 relative) and far below the 1/n rank spacing for any
  // realistic sample count.
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(n) - 1e-9));
  return sorted[std::min(n, std::max<std::size_t>(rank, 1)) - 1];
}

}  // namespace fitact::ut
