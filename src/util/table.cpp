#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fitact::ut {
namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool digit = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' &&
               c != '%') {
      return false;
    }
  }
  return digit;
}
}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : header_[c];
      const std::size_t pad = width[c] - cell.size();
      os << "  ";
      if (looks_numeric(cell) && c > 0) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 2;
  for (const auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print() const {
  const std::string s = str();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

std::string TextTable::fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TextTable::percent(double fraction01, int decimals) {
  return fixed(fraction01 * 100.0, decimals) + "%";
}

std::string TextTable::sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0e", v);
  return buf;
}

}  // namespace fitact::ut
