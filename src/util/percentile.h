// Ceil nearest-rank percentile — the one definition every latency report in
// the tree uses, so no bench can quietly regress to the floor-index form
// (0.95 * (n-1) truncated), which indexes below the requested rank for most
// sample counts: at n=10 it picks index 8, a p90 masquerading as a p95.
#pragma once

#include <vector>

namespace fitact::ut {

/// The ceil nearest-rank percentile of an ascending-sorted sample vector:
/// the smallest sample >= fraction `p` of the distribution, i.e. element
/// rank ceil(p * n) (1-based, capped at n). p = 1.0 is the maximum; small p
/// clamps to rank 1, so n = 1 returns the single sample for every p.
/// Throws std::invalid_argument for an empty vector or p outside (0, 1].
/// The caller owns sorting — reports take several percentiles of one sorted
/// vector, so sorting inside would hide an O(n log n) per call.
[[nodiscard]] double percentile(const std::vector<double>& sorted, double p);

}  // namespace fitact::ut
