#include "util/cli.h"

#include <cstdlib>
#include <string_view>

namespace fitact::ut {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.size() > 2 && arg.substr(0, 2) == "--") {
      const auto eq = arg.find('=');
      if (eq != std::string_view::npos) {
        options_[std::string(arg.substr(2, eq - 2))] =
            std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) !=
                                     "--") {
        options_[std::string(arg.substr(2))] = argv[i + 1];
        ++i;
      } else {
        options_[std::string(arg.substr(2))] = "true";
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool Cli::has(const std::string& name) const noexcept {
  return options_.contains(name);
}

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t parsed = std::strtoll(it->second.c_str(), &end, 10);
  // A value strtoll cannot fully consume (typo, stray suffix) keeps the
  // fallback instead of silently becoming 0 / a truncated prefix — 0 is a
  // meaningful setting for several flags (--window-us, --inject-every).
  if (end == it->second.c_str() || *end != '\0') return fallback;
  return parsed;
}

std::size_t Cli::get_count(const std::string& name,
                           std::int64_t fallback) const {
  std::int64_t v = fallback;
  const auto it = options_.find(name);
  if (it != options_.end()) {
    char* end = nullptr;
    const std::int64_t parsed = std::strtoll(it->second.c_str(), &end, 10);
    // Non-numeric input (strtoll would yield 0 = the "auto/maximum"
    // setting for --threads) falls back like a negative value does.
    if (end != it->second.c_str() && *end == '\0') v = parsed;
  }
  if (v < 0) v = fallback < 0 ? 0 : fallback;
  return static_cast<std::size_t>(v);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  // Same fail-safe-to-fallback contract as get_int/get_count.
  if (end == it->second.c_str() || *end != '\0') return fallback;
  return parsed;
}

bool Cli::get_flag(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return false;
  return it->second == "true" || it->second == "1";
}

}  // namespace fitact::ut
