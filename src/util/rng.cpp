#include "util/rng.h"

#include <cmath>
#include <unordered_set>

namespace fitact::ut {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_float() noexcept {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

float Rng::uniform(float lo, float hi) noexcept {
  return lo + (hi - lo) * next_float();
}

float Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  float u1 = next_float();
  if (u1 <= 0.0f) u1 = 0x1.0p-24f;
  const float u2 = next_float();
  const float r = std::sqrt(-2.0f * std::log(u1));
  const float theta = 6.28318530717958647692f * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

float Rng::normal(float mean, float stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return next_double() < p; }

std::uint64_t Rng::binomial(std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double mean = static_cast<double>(n) * p;
  if (mean < 64.0) {
    // Inversion by sequential search over the CDF; O(mean) expected.
    const double q = 1.0 - p;
    double pmf = std::pow(q, static_cast<double>(n));
    if (pmf <= 0.0) {
      // Underflow guard for very large n with small mean: Poisson limit.
      double l = std::exp(-mean);
      std::uint64_t k = 0;
      double prod = next_double();
      while (prod > l && k < n) {
        prod *= next_double();
        ++k;
      }
      return k;
    }
    double cdf = pmf;
    const double u = next_double();
    std::uint64_t k = 0;
    while (u > cdf && k < n) {
      pmf *= (static_cast<double>(n - k) / static_cast<double>(k + 1)) * (p / q);
      cdf += pmf;
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction; clamped to [0, n].
  const double sd = std::sqrt(mean * (1.0 - p));
  const double x = std::round(mean + sd * static_cast<double>(normal()));
  if (x < 0.0) return 0;
  if (x > static_cast<double>(n)) return n;
  return static_cast<std::uint64_t>(x);
}

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t n, std::uint64_t k) {
  if (k > n) k = n;
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t or j.
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = next_below(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

void Rng::shuffle(std::vector<std::size_t>& v) noexcept {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(next_below(i));
    std::swap(v[i - 1], v[j]);
  }
}

Rng Rng::split() noexcept { return Rng(next_u64() ^ 0xA3EC647659359ACDull); }

}  // namespace fitact::ut
