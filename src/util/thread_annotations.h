// Machine-checkable locking contracts.
//
// Two layers:
//
//  1. FITACT_* macros wrapping Clang's thread-safety-analysis attributes
//     (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under clang
//     with -Wthread-safety (the FITACT_THREAD_SAFETY CMake knob promotes it
//     to an error), a read of a FITACT_GUARDED_BY member without its mutex
//     held, a call to a FITACT_REQUIRES function off the lock, or an
//     unbalanced acquire/release is a compile error. Under gcc (which has
//     no equivalent analysis) every macro expands to nothing.
//
//  2. ut::Mutex / ut::LockGuard / ut::CondVar — thin, CAPABILITY-annotated
//     wrappers over the standard primitives. All concurrent code in src/
//     uses these instead of naked std::mutex so the analysis can see every
//     lock site; scripts/lint.sh enforces the ban on raw std::mutex
//     members outside this header.
//
// CondVar is a std::condition_variable_any waiting on the Mutex itself
// (not a std::unique_lock), which keeps the capability visible to the
// analysis across the wait: CondVar::wait REQUIRES the mutex and the
// analysis treats it as held throughout, matching the caller-visible
// contract (wait reacquires before returning). Prefer explicit
//
//   while (!predicate) cv.wait(mutex);
//
// loops over predicate lambdas: a lambda is analyzed as a separate
// function that cannot see the caller's locks, so guarded reads inside
// one would (correctly) fail the analysis.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FITACT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FITACT_THREAD_ANNOTATION
#define FITACT_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define FITACT_CAPABILITY(x) FITACT_THREAD_ANNOTATION(capability(x))
#define FITACT_SCOPED_CAPABILITY FITACT_THREAD_ANNOTATION(scoped_lockable)
#define FITACT_GUARDED_BY(x) FITACT_THREAD_ANNOTATION(guarded_by(x))
#define FITACT_PT_GUARDED_BY(x) FITACT_THREAD_ANNOTATION(pt_guarded_by(x))
#define FITACT_REQUIRES(...) \
  FITACT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FITACT_ACQUIRE(...) \
  FITACT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FITACT_RELEASE(...) \
  FITACT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FITACT_TRY_ACQUIRE(...) \
  FITACT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define FITACT_EXCLUDES(...) \
  FITACT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define FITACT_ASSERT_CAPABILITY(x) \
  FITACT_THREAD_ANNOTATION(assert_capability(x))
#define FITACT_RETURN_CAPABILITY(x) FITACT_THREAD_ANNOTATION(lock_returned(x))
#define FITACT_NO_THREAD_SAFETY_ANALYSIS \
  FITACT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fitact::ut {

/// std::mutex with the `capability` attribute, so members can be declared
/// FITACT_GUARDED_BY(mutex_) and functions FITACT_REQUIRES(mutex_).
class FITACT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FITACT_ACQUIRE() { m_.lock(); }
  void unlock() FITACT_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() FITACT_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  std::mutex m_;
};

/// Scoped lock over ut::Mutex (std::lock_guard shape). SCOPED_CAPABILITY
/// tells the analysis the mutex is held from construction to destruction,
/// including on exception unwind.
class FITACT_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) FITACT_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() FITACT_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable that waits on ut::Mutex directly (BasicLockable), so
/// callers keep one capability across the wait. The analysis models wait()
/// as "mutex held throughout", which matches the contract the caller sees:
/// wait reacquires the mutex before returning.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& m) FITACT_REQUIRES(m) { cv_.wait(m); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& m, const std::chrono::time_point<Clock, Duration>& deadline)
      FITACT_REQUIRES(m) {
    return cv_.wait_until(m, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& m,
                          const std::chrono::duration<Rep, Period>& timeout)
      FITACT_REQUIRES(m) {
    return cv_.wait_for(m, timeout);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace fitact::ut
