#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace fitact::ut {
namespace {
// Relaxed atomic: the level is a monotonic-ish configuration value, not a
// synchronisation point — a logger racing a set_log_level call may apply
// either threshold to the in-flight line, and both outcomes are correct.
// The atomic only keeps the read/write itself from being a data race
// (plain storage here is the kind of "benign" race TSan rightly flags).
std::atomic<LogLevel> g_level{LogLevel::info};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::debug:
      return "debug";
    case LogLevel::info:
      return "info";
    case LogLevel::warn:
      return "warn";
    case LogLevel::error:
      return "error";
    case LogLevel::off:
      return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::string line = "[";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace fitact::ut
