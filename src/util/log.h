// Leveled stderr logging. Intentionally minimal: the library itself logs
// nothing above `info`, and benches use it for progress lines that should
// not pollute the stdout tables.
#pragma once

#include <sstream>
#include <string>

namespace fitact::ut {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global threshold; messages below it are dropped. Default: info.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line ("[level] message") to stderr if `level` passes the
/// threshold. Thread-safe without a mutex of its own: the line is built in
/// a local buffer and handed to stderr in a single fwrite (stdio locks the
/// stream per call, so concurrent lines interleave whole, never mid-line),
/// and the level threshold is a relaxed atomic (see log.cpp for why the
/// race with set_log_level is benign).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() {
    // Swallow a failed emit (e.g. bad_alloc building the line): losing one
    // log line beats std::terminate from a throwing implicitly-noexcept
    // destructor.
    try {
      log_line(level_, os_.str());
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LineBuilder log_debug() {
  return detail::LineBuilder(LogLevel::debug);
}
inline detail::LineBuilder log_info() {
  return detail::LineBuilder(LogLevel::info);
}
inline detail::LineBuilder log_warn() {
  return detail::LineBuilder(LogLevel::warn);
}
inline detail::LineBuilder log_error() {
  return detail::LineBuilder(LogLevel::error);
}

}  // namespace fitact::ut
