// Deterministic pseudo-random number generation for every stochastic
// component in the library (weight init, data synthesis, fault sampling).
//
// A single engine type (xoshiro256**) is used everywhere so that experiment
// results are reproducible bit-for-bit from a seed, independent of the
// standard library implementation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace fitact::ut {

/// xoshiro256** engine (Blackman & Vigna). Fast, 256-bit state, passes
/// BigCrush; seeded through SplitMix64 so that any 64-bit seed (including 0)
/// produces a well-mixed state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ull; }
  std::uint64_t operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform float in [0, 1).
  float next_float() noexcept;

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  float normal() noexcept;

  /// Normal with given mean / standard deviation.
  float normal(float mean, float stddev) noexcept;

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) noexcept;

  /// Binomial(n, p) sample. Exact inversion for small n*p, normal
  /// approximation with continuity correction for large n*p. Suitable for
  /// fault-count sampling where n is the total bit count (possibly billions)
  /// and p is a small bit-error rate.
  std::uint64_t binomial(std::uint64_t n, double p) noexcept;

  /// k distinct values drawn uniformly from [0, n), k <= n. Uses Floyd's
  /// algorithm; O(k) expected time and memory.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t n, std::uint64_t k);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v) noexcept;

  /// Derive an independent child stream (for per-trial / per-thread use).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  float cached_normal_ = 0.0f;
  bool has_cached_normal_ = false;
};

}  // namespace fitact::ut
