// Small command-line option parser for the bench harnesses and examples.
// Supports "--name value", "--name=value" and boolean "--flag" forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fitact::ut {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const noexcept;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  /// Numeric getters parse fail-safe: a value that is not fully numeric
  /// ("--classes foo", "--width 1.5x") returns `fallback` as if the option
  /// were absent, never a silent 0 or truncated prefix.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  /// get_int for count-valued options (--threads, --trials) that are later
  /// converted to unsigned types: a negative value (typo, script
  /// arithmetic gone wrong) falls back to `fallback` as if the option were
  /// absent, instead of wrapping to a huge count or silently selecting an
  /// extreme setting. `fallback` must be >= 0.
  [[nodiscard]] std::size_t get_count(const std::string& name,
                                      std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  /// True when "--flag" or "--flag=true|1" was passed.
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Non-option positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace fitact::ut
