// Tiny CSV writer used by the benchmark harnesses to persist the series
// behind each reproduced figure/table, so results can be re-plotted.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace fitact::ut {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be created.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; the cell count must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats arithmetic values with full precision.
  void row_values(std::initializer_list<double> values);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Render a double without trailing-zero noise ("1.5", "3e-06", "84.81").
  [[nodiscard]] static std::string num(double v);

 private:
  void write_row(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t width_;
};

/// Escape a cell per RFC 4180 (quotes around cells containing , " or \n).
[[nodiscard]] std::string csv_escape(std::string_view cell);

}  // namespace fitact::ut
