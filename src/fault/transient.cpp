#include "fault/transient.h"

#include <memory>

#include "quant/fixed_point.h"
#include "util/rng.h"

namespace fitact::fault {

ActivationCorruptor make_bitflip_corruptor(double bit_error_rate,
                                           std::uint64_t seed) {
  auto rng = std::make_shared<ut::Rng>(seed);
  return [rng, bit_error_rate](Tensor& x) {
    const std::uint64_t bits =
        static_cast<std::uint64_t>(x.numel()) * 32u;
    const std::uint64_t k = rng->binomial(bits, bit_error_rate);
    for (const auto pos : rng->sample_distinct(bits, k)) {
      const auto idx = static_cast<std::int64_t>(pos / 32);
      const int bit = static_cast<int>(pos % 32);
      x[idx] = quant::decode(quant::flip_bit(quant::encode(x[idx]), bit));
    }
  };
}

}  // namespace fitact::fault
