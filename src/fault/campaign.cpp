#include "fault/campaign.h"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.h"

namespace fitact::fault {

void aggregate(CampaignResult& result) {
  if (result.accuracies.empty()) {
    result.mean_accuracy = 0.0;
    result.min_accuracy = 0.0;
    result.max_accuracy = 0.0;
    return;
  }
  double sum = 0.0;
  double lo = result.accuracies.front();
  double hi = lo;
  for (const double a : result.accuracies) {
    sum += a;
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  result.mean_accuracy = sum / static_cast<double>(result.accuracies.size());
  result.min_accuracy = lo;
  result.max_accuracy = hi;
}

namespace {

/// Lane count for a run: resolve the 0 = auto setting, clamp to the trial
/// count, and (for parallel runs) shrink to the number of contiguous chunks
/// parallel_for will actually produce. This is a pure efficiency heuristic
/// (don't build replicas no chunk will use); correctness relies only on
/// parallel_for_slotted's slot < size() + 1 contract.
std::size_t lane_count_for(const CampaignConfig& config, std::size_t trials) {
  std::size_t lanes =
      config.threads == 0 ? ut::default_thread_count() : config.threads;
  lanes = std::min(lanes, trials);
  if (lanes > 1) {
    const std::size_t chunk = (trials + lanes - 1) / lanes;
    lanes = (trials + chunk - 1) / chunk;
  }
  return std::max<std::size_t>(lanes, 1);
}

/// The trial loop shared by the one-shot entry points and CampaignSession:
/// fan `trials` out over the first `lanes` entries of `workers`. Every
/// worker must already be built (and synced); trial t always consumes
/// stream t and writes slot t, so the result is bit-identical for any lane
/// count. Lock-free by construction: `streams` and both result vectors are
/// fully sized before the fan-out, every trial touches disjoint elements,
/// and parallel_for_slotted's join is the only synchronisation needed (see
/// the contract note in campaign.h).
CampaignResult run_trials(std::vector<CampaignWorker>& workers,
                          std::size_t lanes, const CampaignConfig& config,
                          std::size_t trials) {
  CampaignResult result;
  result.accuracies.assign(trials, 0.0);
  result.flip_counts.assign(trials, 0);
  if (trials == 0) return result;

  // Pre-split every trial's stream from the root in serial order: trial t
  // always sees the same stream no matter which lane runs it.
  ut::Rng root(config.seed);
  std::vector<ut::Rng> streams;
  streams.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) streams.push_back(root.split());

  FaultModel model = config.fault_model;
  model.bit_error_rate = config.bit_error_rate;

  const auto run_range = [&](CampaignWorker& w, std::size_t begin,
                             std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const InjectionRecord rec = w.injector->inject(model, streams[t]);
      try {
        result.accuracies[t] = w.evaluate();
      } catch (...) {
        // Keep the restore contract even when evaluate throws: the lane's
        // model (for lane 0, the caller's model) must not stay corrupted.
        w.injector->restore();
        throw;
      }
      w.injector->restore();
      result.flip_counts[t] = rec.fault_events;
    }
  };

  if (lanes <= 1) {
    run_range(workers.at(0), 0, trials);
  } else {
    // The calling thread runs one chunk itself; each concurrently running
    // chunk checks out a distinct slot (< lanes), and a slot's worker is
    // reused when the chunking produces more chunks than lanes. A lane
    // that throws surfaces here: parallel_for_slotted finishes the other
    // chunks and rethrows the first exception on this thread.
    ut::ThreadPool pool(lanes - 1);
    pool.parallel_for_slotted(
        0, trials,
        [&](std::size_t slot, std::size_t begin, std::size_t end) {
          if (slot >= lanes || slot >= workers.size()) {
            throw std::logic_error(
                "run_campaign: slot id exceeds the lane count");
          }
          run_range(workers[slot], begin, end);
        });
  }
  aggregate(result);
  return result;
}

}  // namespace

CampaignResult run_campaign(const WorkerFactory& make_worker,
                            const CampaignConfig& config) {
  const std::size_t trials =
      config.trials > 0 ? static_cast<std::size_t>(config.trials) : 0;
  if (trials == 0) {
    CampaignResult empty;
    aggregate(empty);
    return empty;
  }
  const std::size_t lanes = lane_count_for(config, trials);
  // Every lane is built before the first trial runs: replica lanes
  // typically clone the lane-0 model, which the campaign is about to
  // corrupt, so construction must not overlap the trials.
  std::vector<CampaignWorker> workers;
  workers.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) workers.push_back(make_worker(i));
  return run_trials(workers, lanes, config, trials);
}

CampaignResult run_campaign(Injector& injector,
                            const std::function<double()>& evaluate,
                            const CampaignConfig& config) {
  CampaignConfig serial = config;
  serial.threads = 1;
  return run_campaign(
      [&](std::size_t) {
        CampaignWorker w;
        w.injector = &injector;
        w.evaluate = evaluate;
        return w;
      },
      serial);
}

CampaignSession::CampaignSession(WorkerFactory make_worker)
    : make_worker_(std::move(make_worker)) {
  if (!make_worker_) {
    throw std::invalid_argument("CampaignSession: null worker factory");
  }
}

CampaignResult CampaignSession::run(const CampaignConfig& config) {
  const std::size_t trials =
      config.trials > 0 ? static_cast<std::size_t>(config.trials) : 0;
  if (trials == 0) {
    CampaignResult empty;
    aggregate(empty);
    return empty;
  }
  const std::size_t lanes = lane_count_for(config, trials);

  if (stale_) {
    // The source model changed: re-sync every cached lane (not only the
    // ones this run uses — a lane skipped now must not carry stale bounds
    // into a later, wider run). Lanes without a sync hook cannot be
    // refreshed in place and are rebuilt from the factory.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].sync) {
        workers_[i].sync(/*source_changed=*/true);
      } else {
        workers_[i] = make_worker_(i);
      }
    }
    stale_ = false;
  } else if (!first_run_) {
    // Reuse: re-snapshot each lane's clean image, mirroring the snapshot a
    // freshly built worker would take of the restored (quantisation
    // round-tripped) parameters. Keeps session results byte-identical to
    // fresh-replica runs.
    for (std::size_t i = 0; i < std::min(workers_.size(), lanes); ++i) {
      if (workers_[i].sync) workers_[i].sync(/*source_changed=*/false);
    }
  }

  // Grow the lane set if this run needs more lanes than any earlier one.
  // New lanes clone the source as it stands now, exactly like a fresh run.
  workers_.reserve(lanes);
  for (std::size_t i = workers_.size(); i < lanes; ++i) {
    workers_.push_back(make_worker_(i));
  }

  first_run_ = false;
  return run_trials(workers_, lanes, config, trials);
}

}  // namespace fitact::fault
