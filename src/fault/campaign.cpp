#include "fault/campaign.h"

#include <algorithm>

namespace fitact::fault {

CampaignResult run_campaign(Injector& injector,
                            const std::function<double()>& evaluate,
                            const CampaignConfig& config) {
  CampaignResult result;
  result.accuracies.reserve(static_cast<std::size_t>(config.trials));
  result.flip_counts.reserve(static_cast<std::size_t>(config.trials));
  ut::Rng rng(config.seed);
  FaultModel model = config.fault_model;
  model.bit_error_rate = config.bit_error_rate;
  for (std::int64_t t = 0; t < config.trials; ++t) {
    ut::Rng trial_rng = rng.split();
    const InjectionRecord rec = injector.inject(model, trial_rng);
    const double acc = evaluate();
    injector.restore();
    result.accuracies.push_back(acc);
    result.flip_counts.push_back(rec.fault_events);
  }
  if (!result.accuracies.empty()) {
    double sum = 0.0;
    double lo = result.accuracies.front();
    double hi = lo;
    for (const double a : result.accuracies) {
      sum += a;
      lo = std::min(lo, a);
      hi = std::max(hi, a);
    }
    result.mean_accuracy = sum / static_cast<double>(result.accuracies.size());
    result.min_accuracy = lo;
    result.max_accuracy = hi;
  }
  return result;
}

}  // namespace fitact::fault
