// Memory-fault injector (paper Section VI-A2).
//
// Fault model: random bit flips distributed uniformly over the bits of the
// stored model parameters — "the weights and biases of different layers, as
// well as parameters of activation functions, are considered as the fault
// space". Parameters are stored in Q1.15.16 fixed point (src/quant); each
// trial draws K ~ Binomial(total_bits, bit_error_rate) distinct bit
// positions, flips them in a scratch copy of the parameter image, and writes
// the decoded result into the live model. restore() returns the model to the
// clean image.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_model.h"
#include "quant/param_image.h"
#include "util/rng.h"

namespace fitact::fault {

struct InjectionRecord {
  std::uint64_t fault_events = 0;  ///< sampled anchor positions this trial
};

class Injector {
 public:
  /// The image defines the fault space; the injector keeps a scratch word
  /// buffer so repeated trials allocate nothing.
  explicit Injector(quant::ParamImage& image);

  /// Apply a binomial number of fault events under the given model and
  /// write the faulty parameters into the model. The event count is
  /// Binomial(eligible_bits, bit_error_rate) over the model's bit range.
  InjectionRecord inject(const FaultModel& model, ut::Rng& rng);

  /// The paper's model: uniform bit flips over the whole image.
  InjectionRecord inject(double bit_error_rate, ut::Rng& rng);

  /// Flip exactly `count` distinct, uniformly chosen bits (whole range).
  InjectionRecord inject_exact(std::uint64_t count, ut::Rng& rng);

  /// Flip exactly `count` distinct uniformly chosen *words* at one fixed
  /// bit position (the bit-criticality sweep used by bench/bit_sensitivity).
  InjectionRecord inject_exact_at_bit(std::uint64_t count, int bit,
                                      ut::Rng& rng);

  /// Write the clean image back into the model.
  void restore();

  [[nodiscard]] std::uint64_t bit_count() const noexcept {
    return image_->bit_count();
  }
  [[nodiscard]] std::uint64_t word_count() const noexcept {
    return image_->word_count();
  }

 private:
  void begin_trial();
  void commit_trial();
  void apply_event(std::uint64_t word, int bit, const FaultModel& model);

  quant::ParamImage* image_;
  std::vector<std::int32_t> scratch_;
};

}  // namespace fitact::fault
