// Fault models beyond the paper's uniform transient bit flips.
//
// The paper's evaluation uses random bit *flips* over the whole parameter
// image (FaultType::bit_flip with the full bit range). The additional
// models cover the fault classes its related-work section cites:
//   - stuck-at faults (permanent memory cell defects, cf. Zahid et al.),
//   - burst faults (multi-bit upsets clustered inside one word),
//   - bit-range targeting (e.g. restrict to high integer bits to study
//     criticality, or to the fraction bits to model attenuated noise).
#pragma once

#include <cstdint>
#include <string>

namespace fitact::fault {

enum class FaultType {
  bit_flip,       ///< toggle the bit (transient upset; the paper's model)
  stuck_at_one,   ///< force the bit to 1 (permanent defect)
  stuck_at_zero,  ///< force the bit to 0 (permanent defect)
  word_burst,     ///< flip `burst_length` adjacent bits within one word
};

[[nodiscard]] std::string to_string(FaultType t);

struct FaultModel {
  FaultType type = FaultType::bit_flip;
  /// Probability that any given bit of the fault space is the anchor of a
  /// fault event.
  double bit_error_rate = 1e-6;
  /// Adjacent bits flipped per event (word_burst only); clamped at the
  /// word boundary.
  int burst_length = 4;
  /// Inclusive bit-position range eligible for faults (0 = fraction LSB,
  /// 31 = sign bit). Defaults to the whole word.
  int bit_lo = 0;
  int bit_hi = 31;

  [[nodiscard]] int range_width() const noexcept {
    return bit_hi - bit_lo + 1;
  }
};

}  // namespace fitact::fault
