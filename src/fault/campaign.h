// Fault-injection campaign: repeated inject -> evaluate -> restore trials at
// a fixed bit error rate, producing the accuracy distribution behind the
// paper's Fig. 5 (box plots) and Fig. 6 (means).
//
// The engine fans trials out over a thread pool. Per-trial RNG streams are
// pre-split from the campaign seed in serial order, each trial writes its
// results into a fixed slot, and every worker lane operates on its own
// model replica, so a campaign's CampaignResult is bit-identical for any
// `threads` setting (including the serial threads = 1 path).
//
// Concurrency contract: the engine holds no locks of its own. Cross-thread
// isolation comes from structure — trial t writes only result slot t and
// reads only stream t (both sized before the fan-out, so no reallocation
// races), and each concurrently running chunk owns a distinct worker lane
// via ut::ThreadPool::parallel_for_slotted, whose join publishes every
// slot's writes to the calling thread. The locking that backs this lives in
// the pool and is annotated there (util/thread_annotations.h); the TSan CI
// lane checks the disjointness claim dynamically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/injector.h"

namespace fitact::fault {

struct CampaignConfig {
  double bit_error_rate = 1e-6;
  std::int64_t trials = 16;
  std::uint64_t seed = 1234;
  /// Worker lanes for the parallel engine: 1 runs serially on the calling
  /// thread, 0 uses one lane per hardware thread. Only the factory overload
  /// of run_campaign can use more than one lane (each lane needs its own
  /// model replica); results are bit-identical for every value.
  ///
  /// Utilization note: inside a lane, nested kernel parallelism (GEMM /
  /// conv parallel_for) runs inline, while at threads = 1 evaluate() fans
  /// kernels over the global pool. An intermediate setting (e.g. 2 lanes
  /// on an 8-core host) therefore caps total concurrency at the lane
  /// count and can be *slower* than serial; use 0 (or >= the core count)
  /// to saturate the machine.
  std::size_t threads = 1;
  /// Fault class and bit-range; bit_error_rate above overrides the model's
  /// own rate field. Defaults to the paper's uniform transient bit flips.
  FaultModel fault_model;
};

struct CampaignResult {
  std::vector<double> accuracies;       ///< one entry per trial
  std::vector<std::uint64_t> flip_counts;
  double mean_accuracy = 0.0;
  double min_accuracy = 0.0;
  double max_accuracy = 0.0;
};

/// Recompute mean/min/max from `accuracies` (zeros when empty).
void aggregate(CampaignResult& result);

/// Everything one worker lane needs: an injector over the lane's own
/// parameter image and an `evaluate` bound to the same replica. `evaluate`
/// measures model accuracy on the (faulty) replica and must not mutate its
/// parameters; the engine restores the clean image after every trial.
/// `keepalive` owns whatever the lane's pointers reference (replica model,
/// image, injector) for the duration of the campaign.
struct CampaignWorker {
  std::shared_ptr<void> keepalive;
  Injector* injector = nullptr;
  std::function<double()> evaluate;
  /// Optional hook for CampaignSession reuse: bring the lane back in sync
  /// with its source before a run. Called with `source_changed` = true when
  /// the session was invalidated (the source model was re-protected or its
  /// parameters changed) — the lane must re-copy protection + state from
  /// the source and re-snapshot its clean image. Called with false on every
  /// later reuse — the lane only re-snapshots its clean image from its own
  /// model, which mirrors the image a freshly built worker would capture
  /// (the lane's model holds the restored, quantisation-round-tripped
  /// parameters after the previous run). Must leave `injector` valid.
  /// Workers without the hook are rebuilt from the factory instead of
  /// re-synced when the session is invalidated.
  std::function<void(bool source_changed)> sync;
};

/// Builds the worker for one lane (0-based). Lane 0 may wrap the original
/// model; every other lane must return an independent replica so trials can
/// run concurrently. The engine builds every lane on the calling thread
/// before any trial runs (replicas typically clone the lane-0 model, which
/// the trials then corrupt).
using WorkerFactory = std::function<CampaignWorker(std::size_t lane)>;

/// Runs the campaign over `config.threads` lanes built by `make_worker`.
/// Each lane's model is restored to its clean image after every trial and
/// at the end.
CampaignResult run_campaign(const WorkerFactory& make_worker,
                            const CampaignConfig& config);

/// Single-model convenience entry point. The engine cannot replicate the
/// model behind `injector`, so this overload always runs serially on the
/// calling thread regardless of `config.threads`.
CampaignResult run_campaign(Injector& injector,
                            const std::function<double()>& evaluate,
                            const CampaignConfig& config);

/// Persistent campaign engine for sweeps: owns the worker lanes (replica
/// models, parameter images, injectors) across every run() of a rate grid
/// instead of rebuilding them per rate, which removes replica construction
/// from the per-rate cost. Results are bit-identical to calling
/// run_campaign with the same factory and config at every thread count:
/// the trial-stream and slot contracts are unchanged, and before each reuse
/// a lane re-snapshots its clean image exactly as a fresh worker would.
///
/// Call invalidate() whenever the source model the factory replicates from
/// changes (re-protection, post-training): the next run() re-syncs every
/// cached lane through its CampaignWorker::sync hook (lanes without the
/// hook are rebuilt from the factory). Not thread-safe; drive one session
/// from one thread.
class CampaignSession {
 public:
  explicit CampaignSession(WorkerFactory make_worker);

  /// Run one campaign over the cached lanes, growing the lane set if this
  /// config needs more than any earlier run.
  CampaignResult run(const CampaignConfig& config);

  /// Mark the cached lanes stale; the next run() re-syncs them from the
  /// source before injecting.
  void invalidate() noexcept { stale_ = true; }

  /// Lanes currently cached (0 before the first run).
  [[nodiscard]] std::size_t lane_count() const noexcept {
    return workers_.size();
  }

 private:
  WorkerFactory make_worker_;
  std::vector<CampaignWorker> workers_;
  bool first_run_ = true;
  bool stale_ = false;
};

}  // namespace fitact::fault
