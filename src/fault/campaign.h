// Fault-injection campaign: repeated inject -> evaluate -> restore trials at
// a fixed bit error rate, producing the accuracy distribution behind the
// paper's Fig. 5 (box plots) and Fig. 6 (means).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/injector.h"

namespace fitact::fault {

struct CampaignConfig {
  double bit_error_rate = 1e-6;
  std::int64_t trials = 16;
  std::uint64_t seed = 1234;
  /// Fault class and bit-range; bit_error_rate above overrides the model's
  /// own rate field. Defaults to the paper's uniform transient bit flips.
  FaultModel fault_model;
};

struct CampaignResult {
  std::vector<double> accuracies;       ///< one entry per trial
  std::vector<std::uint64_t> flip_counts;
  double mean_accuracy = 0.0;
  double min_accuracy = 0.0;
  double max_accuracy = 0.0;
};

/// Runs the campaign. `evaluate` measures model accuracy on the (faulty)
/// model and must not mutate parameters. The model is restored to the clean
/// image after every trial and at the end.
CampaignResult run_campaign(Injector& injector,
                            const std::function<double()>& evaluate,
                            const CampaignConfig& config);

}  // namespace fitact::fault
