#include "fault/injector.h"

#include <algorithm>
#include <stdexcept>

#include "quant/fixed_point.h"

namespace fitact::fault {

std::string to_string(FaultType t) {
  switch (t) {
    case FaultType::bit_flip:
      return "bit_flip";
    case FaultType::stuck_at_one:
      return "stuck_at_one";
    case FaultType::stuck_at_zero:
      return "stuck_at_zero";
    case FaultType::word_burst:
      return "word_burst";
  }
  return "?";
}

Injector::Injector(quant::ParamImage& image) : image_(&image) {}

void Injector::begin_trial() { scratch_ = image_->clean_words(); }

void Injector::commit_trial() { image_->write_back(scratch_); }

void Injector::apply_event(std::uint64_t word, int bit,
                           const FaultModel& model) {
  auto& w = scratch_[static_cast<std::size_t>(word)];
  const auto u = static_cast<std::uint32_t>(w);
  switch (model.type) {
    case FaultType::bit_flip:
      w = quant::flip_bit(w, bit);
      break;
    case FaultType::stuck_at_one:
      w = static_cast<std::int32_t>(u | (1u << bit));
      break;
    case FaultType::stuck_at_zero:
      w = static_cast<std::int32_t>(u & ~(1u << bit));
      break;
    case FaultType::word_burst: {
      const int end = std::min(32, bit + std::max(1, model.burst_length));
      std::uint32_t mask = 0;
      for (int b = bit; b < end; ++b) mask |= (1u << b);
      w = static_cast<std::int32_t>(u ^ mask);
      break;
    }
  }
}

InjectionRecord Injector::inject(const FaultModel& model, ut::Rng& rng) {
  if (model.bit_lo < 0 || model.bit_hi > 31 || model.bit_lo > model.bit_hi) {
    throw std::invalid_argument("Injector: invalid fault-model bit range");
  }
  const std::uint64_t eligible =
      image_->word_count() * static_cast<std::uint64_t>(model.range_width());
  const std::uint64_t k = rng.binomial(eligible, model.bit_error_rate);
  begin_trial();
  // Positions are indices into the (word, bit-in-range) grid; distinct so
  // two events never cancel at the same anchor.
  for (const auto pos : rng.sample_distinct(eligible, k)) {
    const std::uint64_t word =
        pos / static_cast<std::uint64_t>(model.range_width());
    const int bit =
        model.bit_lo +
        static_cast<int>(pos % static_cast<std::uint64_t>(model.range_width()));
    apply_event(word, bit, model);
  }
  commit_trial();
  return InjectionRecord{k};
}

InjectionRecord Injector::inject(double bit_error_rate, ut::Rng& rng) {
  FaultModel model;
  model.type = FaultType::bit_flip;
  model.bit_error_rate = bit_error_rate;
  return inject(model, rng);
}

InjectionRecord Injector::inject_exact(std::uint64_t count, ut::Rng& rng) {
  begin_trial();
  FaultModel flip;  // defaults: bit_flip over the whole word
  for (const auto pos : rng.sample_distinct(image_->bit_count(), count)) {
    apply_event(pos / 32, static_cast<int>(pos % 32), flip);
  }
  commit_trial();
  return InjectionRecord{count};
}

InjectionRecord Injector::inject_exact_at_bit(std::uint64_t count, int bit,
                                              ut::Rng& rng) {
  if (bit < 0 || bit > 31) {
    throw std::invalid_argument("Injector: bit position out of range");
  }
  begin_trial();
  FaultModel flip;
  for (const auto word : rng.sample_distinct(image_->word_count(), count)) {
    apply_event(word, bit, flip);
  }
  commit_trial();
  return InjectionRecord{count};
}

void Injector::restore() { image_->restore(); }

}  // namespace fitact::fault
