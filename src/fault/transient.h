// Transient activation faults: soft errors that corrupt *computed
// activation values* in flight rather than stored parameters. This is the
// fault class Ranger (Chen et al., DSN 2021) was designed for; the FitAct
// paper evaluates parameter-memory faults only, so this module is an
// extension used by the ablation benches to compare the schemes on
// Ranger's home turf as well.
//
// The corruptor treats each activation as a Q1.15.16 word and flips each
// bit with the configured probability, mirroring the parameter fault model
// so results are comparable.
#pragma once

#include <cstdint>
#include <functional>

#include "tensor/tensor.h"

namespace fitact::fault {

/// A callable that corrupts an activation tensor in place.
using ActivationCorruptor = std::function<void(Tensor&)>;

/// Build a corruptor that flips each bit of each activation's fixed-point
/// representation with probability `bit_error_rate`. Deterministic per
/// (seed, call index): each invocation advances an internal stream, so a
/// forward pass through L hooked sites draws L independent fault patterns.
[[nodiscard]] ActivationCorruptor make_bitflip_corruptor(
    double bit_error_rate, std::uint64_t seed);

}  // namespace fitact::fault
