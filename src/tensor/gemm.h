// Single-precision general matrix multiply, the compute core of conv2d and
// fully connected layers.
//
// C[M,N] = alpha * op(A) * op(B) + beta * C
//
// Row-major layout throughout; op() is an optional transpose. The kernel is
// cache-blocked and parallelised over row panels via the global thread pool.
#pragma once

#include <cstdint>

namespace fitact {

struct GemmDims {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
};

/// Plain row-major SGEMM. lda/ldb/ldc are leading dimensions (row strides).
void sgemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc);

/// Reference (naive triple loop) implementation used in tests to validate
/// the blocked kernel.
void sgemm_reference(bool trans_a, bool trans_b, std::int64_t m,
                     std::int64_t n, std::int64_t k, float alpha,
                     const float* a, std::int64_t lda, const float* b,
                     std::int64_t ldb, float beta, float* c, std::int64_t ldc);

}  // namespace fitact
