#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "tensor/kernels/kernels.h"
#include "util/thread_pool.h"

namespace fitact {
namespace {

// Block sizes sized for ~32 KiB L1 / 512 KiB L2 per core.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;

inline float load(const float* p, std::int64_t ld, std::int64_t r,
                  std::int64_t c, bool trans) noexcept {
  return trans ? p[c * ld + r] : p[r * ld + c];
}

}  // namespace

void sgemm_reference(bool trans_a, bool trans_b, std::int64_t m,
                     std::int64_t n, std::int64_t k, float alpha,
                     const float* a, std::int64_t lda, const float* b,
                     std::int64_t ldb, float beta, float* c,
                     std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(load(a, lda, i, p, trans_a)) *
               static_cast<double>(load(b, ldb, p, j, trans_b));
      }
      float& out = c[i * ldc + j];
      out = alpha * static_cast<float>(acc) + (beta == 0.0f ? 0.0f : beta * out);
    }
  }
}

void sgemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc) {
  if (m <= 0 || n <= 0) return;

  // Scale / clear C once up front, then accumulate.
  if (beta == 0.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      std::fill_n(c + i * ldc, static_cast<std::size_t>(n), 0.0f);
    }
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      float* row = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  if (k <= 0 || alpha == 0.0f) return;

  // When B must be transposed, fall back to a simple blocked loop (this path
  // is only used for small matrices in backward passes).
  if (trans_b) {
    ut::parallel_for(0, static_cast<std::size_t>(m), [&](std::size_t ib,
                                                         std::size_t ie) {
      for (std::size_t i = ib; i < ie; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          double acc = 0.0;
          for (std::int64_t p = 0; p < k; ++p) {
            acc += static_cast<double>(
                       load(a, lda, static_cast<std::int64_t>(i), p, trans_a)) *
                   static_cast<double>(b[j * ldb + p]);
          }
          c[static_cast<std::int64_t>(i) * ldc + j] +=
              alpha * static_cast<float>(acc);
        }
      }
    });
    return;
  }

  // Main path: pack A row panels, stream B (row-major, no transpose).
  const std::int64_t row_blocks = (m + kBlockM - 1) / kBlockM;
  ut::parallel_for(0, static_cast<std::size_t>(row_blocks), [&](std::size_t bb,
                                                                std::size_t be) {
    // Constant-size pack buffer, reused across calls on each thread: GEMM
    // sits on the zero-allocation planned-serving path (nn/plan.h), so the
    // panel buffer must not be a fresh vector per call.
    thread_local std::vector<float> apack(
        static_cast<std::size_t>(kBlockM * kBlockK));
    for (std::size_t blk = bb; blk < be; ++blk) {
      const std::int64_t i0 = static_cast<std::int64_t>(blk) * kBlockM;
      const std::int64_t mb = std::min<std::int64_t>(kBlockM, m - i0);
      for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::int64_t kb = std::min<std::int64_t>(kBlockK, k - k0);
        // Pack op(A)[i0:i0+mb, k0:k0+kb] row-major into apack.
        for (std::int64_t i = 0; i < mb; ++i) {
          float* dst = apack.data() + i * kb;
          if (!trans_a) {
            const float* src = a + (i0 + i) * lda + k0;
            std::copy_n(src, static_cast<std::size_t>(kb), dst);
          } else {
            for (std::int64_t p = 0; p < kb; ++p) {
              dst[p] = a[(k0 + p) * lda + (i0 + i)];
            }
          }
        }
        for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
          const std::int64_t nb = std::min<std::int64_t>(kBlockN, n - j0);
          // Runtime-dispatched panel microkernel (AVX2/FMA or scalar; see
          // tensor/kernels/kernels.h for the cross-backend contract).
          kern::gemm_panel(mb, nb, kb, alpha, apack.data(),
                           b + k0 * ldb + j0, ldb, c + i0 * ldc + j0, ldc);
        }
      }
    }
  });
}

}  // namespace fitact
