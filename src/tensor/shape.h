// Dense tensor shape: an ordered list of dimension extents.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace fitact {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  [[nodiscard]] std::size_t rank() const noexcept { return dims_.size(); }
  [[nodiscard]] std::int64_t numel() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return dims_.empty(); }

  /// Extent of dimension i; negative i counts from the back (-1 = last).
  [[nodiscard]] std::int64_t dim(std::int64_t i) const;
  std::int64_t operator[](std::size_t i) const { return dims_[i]; }

  [[nodiscard]] const std::vector<std::int64_t>& dims() const noexcept {
    return dims_;
  }

  bool operator==(const Shape& other) const noexcept {
    return dims_ == other.dims_;
  }
  bool operator!=(const Shape& other) const noexcept {
    return !(*this == other);
  }

  /// "[2, 3, 32, 32]"
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace fitact
