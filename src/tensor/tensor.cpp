#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace fitact {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(shape_.numel()),
      data_(new float[static_cast<std::size_t>(std::max<std::int64_t>(
          numel_, 1))]) {}

Tensor::Tensor(Shape shape, std::shared_ptr<float[]> data)
    : shape_(std::move(shape)), numel_(shape_.numel()), data_(std::move(data)) {}

Tensor Tensor::zeros(Shape shape) {
  Tensor t(std::move(shape));
  t.fill(0.0f);
  return t;
}

Tensor Tensor::ones(Shape shape) {
  Tensor t(std::move(shape));
  t.fill(1.0f);
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, ut::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.span()) v = rng.normal(0.0f, stddev);
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, ut::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.span()) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::from_values(std::initializer_list<float> values) {
  Tensor t(Shape{static_cast<std::int64_t>(values.size())});
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::scalar(float value) {
  Tensor t(Shape{1});
  t[0] = value;
  return t;
}

Tensor Tensor::view(Shape shape, float* data) noexcept {
  // Aliasing constructor with an empty owner: no control block is
  // allocated and the view never participates in ownership.
  return Tensor(std::move(shape),
                std::shared_ptr<float[]>(std::shared_ptr<float[]>(), data));
}

namespace {
std::int64_t checked_flat_index(const Shape& shape,
                                std::initializer_list<std::int64_t> idx) {
  if (idx.size() != shape.rank()) {
    throw std::invalid_argument("Tensor::at rank mismatch");
  }
  std::int64_t flat = 0;
  std::size_t d = 0;
  for (const auto i : idx) {
    const std::int64_t extent = shape[d];
    if (i < 0 || i >= extent) throw std::out_of_range("Tensor::at index");
    flat = flat * extent + i;
    ++d;
  }
  return flat;
}
}  // namespace

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data_.get()[checked_flat_index(shape_, idx)];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data_.get()[checked_flat_index(shape_, idx)];
}

Tensor Tensor::clone() const {
  Tensor out(shape_);
  if (numel_ > 0) {
    std::memcpy(out.data(), data(),
                static_cast<std::size_t>(numel_) * sizeof(float));
  }
  return out;
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (new_shape.numel() != numel_) {
    throw std::invalid_argument("Tensor::reshape numel mismatch: " +
                                shape_.str() + " -> " + new_shape.str());
  }
  return Tensor(std::move(new_shape), data_);
}

float Tensor::item() const {
  if (numel_ != 1) {
    throw std::logic_error("Tensor::item on tensor with numel " +
                           std::to_string(numel_));
  }
  return data_.get()[0];
}

void Tensor::fill(float value) noexcept {
  std::fill_n(data_.get(), static_cast<std::size_t>(numel_), value);
}

void Tensor::copy_from(const Tensor& src) {
  if (src.numel_ != numel_) {
    throw std::invalid_argument("Tensor::copy_from numel mismatch");
  }
  if (numel_ > 0) {
    std::memcpy(data(), src.data(),
                static_cast<std::size_t>(numel_) * sizeof(float));
  }
}

std::string Tensor::str() const {
  std::ostringstream os;
  os << "Tensor" << shape_.str();
  if (numel_ > 0 && numel_ <= 8) {
    os << " {";
    for (std::int64_t i = 0; i < numel_; ++i) {
      if (i) os << ", ";
      os << data_.get()[i];
    }
    os << "}";
  }
  return os.str();
}

}  // namespace fitact
