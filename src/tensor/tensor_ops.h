// Non-differentiable tensor kernels: elementwise arithmetic, reductions,
// matmul wrapper, and the im2col/col2im transforms used by conv2d.
// Differentiable graph ops live in src/autograd/ops.h and call into these.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fitact {

// ---- elementwise (out-of-place) -------------------------------------------
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor scale(const Tensor& a, float s);

// ---- elementwise (in-place) ------------------------------------------------
void add_inplace(Tensor& a, const Tensor& b);
void axpy_inplace(Tensor& y, float alpha, const Tensor& x);  // y += alpha*x
void scale_inplace(Tensor& a, float s);
void clamp_min_inplace(Tensor& a, float lo);

// ---- reductions ------------------------------------------------------------
[[nodiscard]] float sum(const Tensor& a);
[[nodiscard]] float mean(const Tensor& a);
[[nodiscard]] float max_value(const Tensor& a);
[[nodiscard]] float min_value(const Tensor& a);
/// Index of the maximum element in a flat range [begin, begin+len).
[[nodiscard]] std::int64_t argmax_range(const Tensor& a, std::int64_t begin,
                                        std::int64_t len);
/// Row-wise argmax of a [rows, cols] tensor.
[[nodiscard]] std::vector<std::int64_t> argmax_rows(const Tensor& a);

// ---- linear algebra --------------------------------------------------------
/// C = A[M,K] * B[K,N], row-major.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

// ---- conv support ----------------------------------------------------------
struct Conv2dGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t padding = 0;

  [[nodiscard]] std::int64_t out_h() const noexcept {
    return (in_h + 2 * padding - kernel_h) / stride + 1;
  }
  [[nodiscard]] std::int64_t out_w() const noexcept {
    return (in_w + 2 * padding - kernel_w) / stride + 1;
  }
  /// Rows of the im2col matrix: C_in * kH * kW.
  [[nodiscard]] std::int64_t col_rows() const noexcept {
    return in_channels * kernel_h * kernel_w;
  }
  /// Columns of the im2col matrix: H_out * W_out.
  [[nodiscard]] std::int64_t col_cols() const noexcept {
    return out_h() * out_w();
  }
};

/// Expand one image [C,H,W] into the column matrix [C*kH*kW, Hout*Wout].
/// `image` points at C*H*W floats; `col` at col_rows()*col_cols() floats.
void im2col(const Conv2dGeometry& g, const float* image, float* col);

/// Scatter-accumulate a column matrix back into an image gradient buffer
/// (which must be zero-initialised by the caller).
void col2im(const Conv2dGeometry& g, const float* col, float* image);

}  // namespace fitact
