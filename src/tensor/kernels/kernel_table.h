// Internal to src/tensor/kernels/: the dispatch table one backend fills in,
// plus the declarations of each backend's implementations. Nothing outside
// this directory includes this header — callers go through kernels.h.
#pragma once

#include <cstdint>

namespace fitact::kern {

struct KernelTable {
  void (*gemm_panel)(std::int64_t mb, std::int64_t nb, std::int64_t kb,
                     float alpha, const float* ap, const float* b,
                     std::int64_t ldb, float* c, std::int64_t ldc) noexcept;
  void (*relu)(const float* x, float* o, std::int64_t n) noexcept;
  void (*add)(const float* a, const float* b, float* o,
              std::int64_t n) noexcept;
  void (*bias_add_row)(float* row, const float* bias, std::int64_t n) noexcept;
  void (*bias_add_const)(float* row, float value, std::int64_t n) noexcept;
  std::uint64_t (*clipped_relu)(const float* x, const float* bound,
                                std::int64_t bound_numel, std::int64_t feat,
                                std::int64_t hw, bool saturate, float* o,
                                std::int64_t n, bool count) noexcept;
  std::uint64_t (*count_over_bound)(const float* x, const float* bound,
                                    std::int64_t bound_numel,
                                    std::int64_t feat, std::int64_t hw,
                                    std::int64_t n) noexcept;
  // Fused GEMM epilogues (bias + bound-clamp + optional event count in one
  // pass over the output while it is still cache-hot): const/rowwise bias x
  // const/rowwise bound. See kernels.h for the exact per-element contract.
  std::uint64_t (*fused_bias_clip_cc)(float* o, float bias, float bound,
                                      bool saturate, std::int64_t n,
                                      bool count) noexcept;
  std::uint64_t (*fused_bias_clip_cr)(float* o, float bias, const float* bound,
                                      bool saturate, std::int64_t n,
                                      bool count) noexcept;
  std::uint64_t (*fused_bias_clip_rc)(float* o, const float* bias, float bound,
                                      bool saturate, std::int64_t n,
                                      bool count) noexcept;
  std::uint64_t (*fused_bias_clip_rr)(float* o, const float* bias,
                                      const float* bound, bool saturate,
                                      std::int64_t n, bool count) noexcept;
};

/// The portable reference backend (kernels_scalar.cpp). Always available;
/// also the semantics every vector backend must reproduce (bit-exactly for
/// the elementwise kernels, to forward-error bounds for gemm_panel).
[[nodiscard]] const KernelTable& scalar_table() noexcept;

// The AVX2/FMA backend (kernels_avx2.cpp). Declared unconditionally;
// defined only when the build carries the AVX2 translation unit
// (FITACT_HAVE_AVX2_KERNELS), and dereferenced by dispatch.cpp only after
// a cpuid check says the host executes AVX2+FMA.
#if defined(FITACT_HAVE_AVX2_KERNELS)
[[nodiscard]] const KernelTable& avx2_table() noexcept;
#endif

}  // namespace fitact::kern
