// Internal to src/tensor/kernels/: the dispatch table one backend fills in,
// plus the declarations of each backend's implementations. Nothing outside
// this directory includes this header — callers go through kernels.h.
#pragma once

#include <cstdint>

namespace fitact::kern {

struct KernelTable {
  void (*gemm_panel)(std::int64_t mb, std::int64_t nb, std::int64_t kb,
                     float alpha, const float* ap, const float* b,
                     std::int64_t ldb, float* c, std::int64_t ldc) noexcept;
  void (*relu)(const float* x, float* o, std::int64_t n) noexcept;
  void (*add)(const float* a, const float* b, float* o,
              std::int64_t n) noexcept;
  void (*bias_add_row)(float* row, const float* bias, std::int64_t n) noexcept;
  void (*bias_add_const)(float* row, float value, std::int64_t n) noexcept;
  std::uint64_t (*clipped_relu)(const float* x, const float* bound,
                                std::int64_t bound_numel, std::int64_t feat,
                                std::int64_t hw, bool saturate, float* o,
                                std::int64_t n, bool count) noexcept;
  std::uint64_t (*count_over_bound)(const float* x, const float* bound,
                                    std::int64_t bound_numel,
                                    std::int64_t feat, std::int64_t hw,
                                    std::int64_t n) noexcept;
  // Fused GEMM epilogues (bias + bound-clamp + optional event count in one
  // pass over the output while it is still cache-hot): const/rowwise bias x
  // const/rowwise bound. See kernels.h for the exact per-element contract.
  std::uint64_t (*fused_bias_clip_cc)(float* o, float bias, float bound,
                                      bool saturate, std::int64_t n,
                                      bool count) noexcept;
  std::uint64_t (*fused_bias_clip_cr)(float* o, float bias, const float* bound,
                                      bool saturate, std::int64_t n,
                                      bool count) noexcept;
  std::uint64_t (*fused_bias_clip_rc)(float* o, const float* bias, float bound,
                                      bool saturate, std::int64_t n,
                                      bool count) noexcept;
  std::uint64_t (*fused_bias_clip_rr)(float* o, const float* bias,
                                      const float* bound, bool saturate,
                                      std::int64_t n, bool count) noexcept;
  // Int8 quantized path (kernels_scalar_i8.cpp / kernels_avx2_i8.cpp). The
  // GEMM accumulates exactly in int32, so backends are bit-identical; the
  // dequantize epilogues avoid FMA so the whole int8 path stays bit-identical
  // across backends too. Contracts in kernels.h.
  void (*gemm_i8_dot)(std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::int8_t* a, std::int64_t lda,
                      const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                      std::int64_t ldc) noexcept;
  // Same contract as gemm_i8_dot plus the caller's guarantee that every byte
  // of one operand (a when a_unsigned, else b) is in [0,127] — FitAct's
  // clamp epilogue makes post-activation values nonnegative, so their
  // quantization always lands there. The guarantee unlocks u8xs8
  // instructions (maddubs / vpdpbusd) whose int16 pair sums cannot saturate
  // when |u| <= 127; results stay bit-identical to gemm_i8_dot on the same
  // bytes.
  void (*gemm_i8u8_dot)(std::int64_t m, std::int64_t n, std::int64_t k,
                        const std::int8_t* a, std::int64_t lda,
                        const std::int8_t* b, std::int64_t ldb,
                        std::int32_t* c, std::int64_t ldc,
                        bool a_unsigned) noexcept;
  void (*quantize_i8)(const float* x, float inv_scale, std::int8_t* q,
                      std::int64_t n) noexcept;
  void (*dequant_i32)(std::int32_t* acc, float scale, float bias,
                      std::int64_t n) noexcept;
  std::uint64_t (*fused_dequant_clip_cc)(std::int32_t* acc, float scale,
                                         float bias, float bound, bool saturate,
                                         std::int64_t n, bool count) noexcept;
  std::uint64_t (*fused_dequant_clip_cr)(std::int32_t* acc, float scale,
                                         float bias, const float* bound,
                                         bool saturate, std::int64_t n,
                                         bool count) noexcept;
  std::uint64_t (*fused_dequant_clip_rc)(std::int32_t* acc, const float* scale,
                                         const float* bias, float bound,
                                         bool saturate, std::int64_t n,
                                         bool count) noexcept;
  std::uint64_t (*fused_dequant_clip_rr)(std::int32_t* acc, const float* scale,
                                         const float* bias, const float* bound,
                                         bool saturate, std::int64_t n,
                                         bool count) noexcept;
};

// Int8 backend implementations live in their own translation units
// (kernels_scalar_i8.cpp, kernels_avx2_i8.cpp) and are referenced cross-TU
// by the table initialisers in kernels_scalar.cpp / kernels_avx2.cpp, so —
// unlike the fp32 kernels — they need external linkage and declarations here.
void scalar_gemm_i8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                        const std::int8_t* a, std::int64_t lda,
                        const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                        std::int64_t ldc) noexcept;
void scalar_gemm_i8u8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                          const std::int8_t* a, std::int64_t lda,
                          const std::int8_t* b, std::int64_t ldb,
                          std::int32_t* c, std::int64_t ldc,
                          bool a_unsigned) noexcept;
void scalar_quantize_i8(const float* x, float inv_scale, std::int8_t* q,
                        std::int64_t n) noexcept;
void scalar_dequant_i32(std::int32_t* acc, float scale, float bias,
                        std::int64_t n) noexcept;
std::uint64_t scalar_fused_dequant_clip_cc(std::int32_t* acc, float scale,
                                           float bias, float bound,
                                           bool saturate, std::int64_t n,
                                           bool count) noexcept;
std::uint64_t scalar_fused_dequant_clip_cr(std::int32_t* acc, float scale,
                                           float bias, const float* bound,
                                           bool saturate, std::int64_t n,
                                           bool count) noexcept;
std::uint64_t scalar_fused_dequant_clip_rc(std::int32_t* acc,
                                           const float* scale,
                                           const float* bias, float bound,
                                           bool saturate, std::int64_t n,
                                           bool count) noexcept;
std::uint64_t scalar_fused_dequant_clip_rr(std::int32_t* acc,
                                           const float* scale,
                                           const float* bias,
                                           const float* bound, bool saturate,
                                           std::int64_t n,
                                           bool count) noexcept;

#if defined(FITACT_HAVE_AVX2_KERNELS)
void avx2_gemm_i8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::int8_t* a, std::int64_t lda,
                      const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                      std::int64_t ldc) noexcept;
void avx2_gemm_i8u8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                        const std::int8_t* a, std::int64_t lda,
                        const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                        std::int64_t ldc, bool a_unsigned) noexcept;
void avx2_quantize_i8(const float* x, float inv_scale, std::int8_t* q,
                      std::int64_t n) noexcept;
void avx2_dequant_i32(std::int32_t* acc, float scale, float bias,
                      std::int64_t n) noexcept;
std::uint64_t avx2_fused_dequant_clip_cc(std::int32_t* acc, float scale,
                                         float bias, float bound, bool saturate,
                                         std::int64_t n, bool count) noexcept;
std::uint64_t avx2_fused_dequant_clip_cr(std::int32_t* acc, float scale,
                                         float bias, const float* bound,
                                         bool saturate, std::int64_t n,
                                         bool count) noexcept;
std::uint64_t avx2_fused_dequant_clip_rc(std::int32_t* acc, const float* scale,
                                         const float* bias, float bound,
                                         bool saturate, std::int64_t n,
                                         bool count) noexcept;
std::uint64_t avx2_fused_dequant_clip_rr(std::int32_t* acc, const float* scale,
                                         const float* bias, const float* bound,
                                         bool saturate, std::int64_t n,
                                         bool count) noexcept;
#endif

/// The portable reference backend (kernels_scalar.cpp). Always available;
/// also the semantics every vector backend must reproduce (bit-exactly for
/// the elementwise kernels, to forward-error bounds for gemm_panel).
[[nodiscard]] const KernelTable& scalar_table() noexcept;

// AVX-512 VNNI int8 GEMM (kernels_avx2_vnni_i8.cpp). Not a backend of its
// own: when the host also executes AVX-512 F/BW/VL/VNNI, dispatch.cpp serves
// the avx2 tier a table whose gemm_i8_dot points here instead. Bit-identical
// to the scalar GEMM like every int8 kernel (exact int32 accumulation).
#if defined(FITACT_HAVE_AVX512VNNI_KERNELS)
void avx2_vnni_gemm_i8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                           const std::int8_t* a, std::int64_t lda,
                           const std::int8_t* b, std::int64_t ldb,
                           std::int32_t* c, std::int64_t ldc) noexcept;
void avx2_vnni_gemm_i8u8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                             const std::int8_t* a, std::int64_t lda,
                             const std::int8_t* b, std::int64_t ldb,
                             std::int32_t* c, std::int64_t ldc,
                             bool a_unsigned) noexcept;
#endif

// The AVX2/FMA backend (kernels_avx2.cpp). Declared unconditionally;
// defined only when the build carries the AVX2 translation unit
// (FITACT_HAVE_AVX2_KERNELS), and dereferenced by dispatch.cpp only after
// a cpuid check says the host executes AVX2+FMA.
#if defined(FITACT_HAVE_AVX2_KERNELS)
[[nodiscard]] const KernelTable& avx2_table() noexcept;
#endif

}  // namespace fitact::kern
