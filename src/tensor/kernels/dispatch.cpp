// Backend resolution and the dispatched entry points (kernels.h).
//
// One atomic table pointer serves the whole process. It is resolved lazily
// on the first kernel call: cpuid picks the best backend the host executes,
// then the FITACT_KERNELS environment variable ("scalar" | "avx2" | "auto")
// may narrow it — a forced-scalar run on an AVX2 host is the A/B lever the
// fuzz tests, plan tests and benches use; forcing avx2 on a host without it
// falls back to scalar rather than faulting. force_backend() is the same
// lever programmatically (serve::ServerOptions::force_scalar_kernels and
// the benches' --kernels flag route through it).
#include "tensor/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "tensor/kernels/kernel_table.h"
#include "util/log.h"

namespace fitact::kern {
namespace {

bool cpu_has_avx2_fma() noexcept {
#if defined(FITACT_HAVE_AVX2_KERNELS) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_avx512_vnni() noexcept {
#if defined(FITACT_HAVE_AVX512VNNI_KERNELS) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("avx512vnni");
#else
  return false;
#endif
}

const KernelTable* table_for(Backend b) noexcept {
#if defined(FITACT_HAVE_AVX2_KERNELS)
  if (b == Backend::avx2) {
#if defined(FITACT_HAVE_AVX512VNNI_KERNELS)
    // The VNNI GEMM is an in-tier upgrade, not a backend: same public
    // Backend::avx2, same table except the one slot, bit-identical results.
    if (cpu_has_avx512_vnni()) {
      static const KernelTable vnni_table = [] {
        KernelTable t = avx2_table();
        t.gemm_i8_dot = avx2_vnni_gemm_i8_dot;
        t.gemm_i8u8_dot = avx2_vnni_gemm_i8u8_dot;
        return t;
      }();
      return &vnni_table;
    }
#endif
    return &avx2_table();
  }
#else
  (void)b;
#endif
  return &scalar_table();
}

Backend best_backend() noexcept {
  return cpu_has_avx2_fma() ? Backend::avx2 : Backend::scalar;
}

/// Environment-configured startup backend. Unknown values warn and mean
/// auto; requesting avx2 on an unsupported host warns and falls back.
Backend startup_backend() noexcept {
  Backend b = best_backend();
  const char* env = std::getenv("FITACT_KERNELS");
  if (env == nullptr || std::strcmp(env, "auto") == 0) return b;
  if (std::strcmp(env, "scalar") == 0) return Backend::scalar;
  if (std::strcmp(env, "avx2") == 0) {
    if (b != Backend::avx2) {
      ut::log_warn() << "FITACT_KERNELS=avx2 but this host/build has no AVX2 "
                        "kernels; using scalar";
    }
    return b;
  }
  ut::log_warn() << "FITACT_KERNELS: unknown value '" << env
                 << "' (expect scalar|avx2|auto); using auto";
  return b;
}

/// Active table. Memory order: the tables are immutable statics, so relaxed
/// loads are safe — a racing reader sees either the old or the new backend,
/// both fully constructed. (Backend switches mid-forward are excluded by
/// the force_backend contract, not by this pointer.)
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<Backend> g_backend{Backend::scalar};

const KernelTable& active_table() noexcept {
  const KernelTable* t = g_table.load(std::memory_order_relaxed);
  if (t != nullptr) return *t;
  // First use (possibly concurrent: both writers install identical values).
  const Backend b = startup_backend();
  g_backend.store(b, std::memory_order_relaxed);
  t = table_for(b);
  g_table.store(t, std::memory_order_relaxed);
  return *t;
}

}  // namespace

bool avx2_supported() noexcept { return cpu_has_avx2_fma(); }

std::size_t gemm_i8_variants(const GemmI8Variant** out) noexcept {
  static const GemmI8Variant variants[] = {
      {"scalar", scalar_gemm_i8_dot},
#if defined(FITACT_HAVE_AVX2_KERNELS)
      {"avx2", avx2_gemm_i8_dot},
#endif
#if defined(FITACT_HAVE_AVX512VNNI_KERNELS)
      {"avx2_vnni", avx2_vnni_gemm_i8_dot},
#endif
  };
  std::size_t n = 1;  // scalar always runs
  if (cpu_has_avx2_fma()) ++n;
  if (cpu_has_avx512_vnni()) ++n;
  // The array is ordered by capability, so the executable prefix is exactly
  // the first n entries (a VNNI host necessarily executes AVX2).
  *out = variants;
  return n;
}

std::size_t gemm_i8u8_variants(const GemmI8U8Variant** out) noexcept {
  static const GemmI8U8Variant variants[] = {
      {"scalar", scalar_gemm_i8u8_dot},
#if defined(FITACT_HAVE_AVX2_KERNELS)
      {"avx2", avx2_gemm_i8u8_dot},
#endif
#if defined(FITACT_HAVE_AVX512VNNI_KERNELS)
      {"avx2_vnni", avx2_vnni_gemm_i8u8_dot},
#endif
  };
  std::size_t n = 1;  // scalar always runs
  if (cpu_has_avx2_fma()) ++n;
  if (cpu_has_avx512_vnni()) ++n;
  // Same capability ordering as gemm_i8_variants: the executable prefix is
  // exactly the first n entries.
  *out = variants;
  return n;
}

const char* gemm_i8_variant() noexcept {
  const GemmI8Fn fn = active_table().gemm_i8_dot;
  const GemmI8Variant* variants = nullptr;
  const std::size_t n = gemm_i8_variants(&variants);
  for (std::size_t i = 0; i < n; ++i) {
    if (variants[i].fn == fn) return variants[i].name;
  }
  return "unknown";
}

Backend active_backend() noexcept {
  (void)active_table();  // resolve the env override on first call
  return g_backend.load(std::memory_order_relaxed);
}

const char* backend_name(Backend b) noexcept {
  return b == Backend::avx2 ? "avx2" : "scalar";
}

Backend force_backend(Backend b) noexcept {
  if (b == Backend::avx2 && !cpu_has_avx2_fma()) b = Backend::scalar;
  g_backend.store(b, std::memory_order_relaxed);
  g_table.store(table_for(b), std::memory_order_relaxed);
  return b;
}

// ---- dispatched entry points ----------------------------------------------

void gemm_panel(std::int64_t mb, std::int64_t nb, std::int64_t kb, float alpha,
                const float* ap, const float* b, std::int64_t ldb, float* c,
                std::int64_t ldc) noexcept {
  active_table().gemm_panel(mb, nb, kb, alpha, ap, b, ldb, c, ldc);
}

void relu(const float* x, float* o, std::int64_t n) noexcept {
  active_table().relu(x, o, n);
}

void add(const float* a, const float* b, float* o, std::int64_t n) noexcept {
  active_table().add(a, b, o, n);
}

void bias_add_row(float* row, const float* bias, std::int64_t n) noexcept {
  active_table().bias_add_row(row, bias, n);
}

void bias_add_const(float* row, float value, std::int64_t n) noexcept {
  active_table().bias_add_const(row, value, n);
}

std::uint64_t clipped_relu(const float* x, const float* bound,
                           std::int64_t bound_numel, std::int64_t feat,
                           std::int64_t hw, bool saturate, float* o,
                           std::int64_t n, bool count) noexcept {
  return active_table().clipped_relu(x, bound, bound_numel, feat, hw, saturate,
                                     o, n, count);
}

std::uint64_t count_over_bound(const float* x, const float* bound,
                               std::int64_t bound_numel, std::int64_t feat,
                               std::int64_t hw, std::int64_t n) noexcept {
  return active_table().count_over_bound(x, bound, bound_numel, feat, hw, n);
}

std::uint64_t fused_bias_clip_cc(float* o, float bias, float bound,
                                 bool saturate, std::int64_t n,
                                 bool count) noexcept {
  return active_table().fused_bias_clip_cc(o, bias, bound, saturate, n, count);
}

std::uint64_t fused_bias_clip_cr(float* o, float bias, const float* bound,
                                 bool saturate, std::int64_t n,
                                 bool count) noexcept {
  return active_table().fused_bias_clip_cr(o, bias, bound, saturate, n, count);
}

std::uint64_t fused_bias_clip_rc(float* o, const float* bias, float bound,
                                 bool saturate, std::int64_t n,
                                 bool count) noexcept {
  return active_table().fused_bias_clip_rc(o, bias, bound, saturate, n, count);
}

std::uint64_t fused_bias_clip_rr(float* o, const float* bias,
                                 const float* bound, bool saturate,
                                 std::int64_t n, bool count) noexcept {
  return active_table().fused_bias_clip_rr(o, bias, bound, saturate, n, count);
}

void gemm_i8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                 std::int64_t ldb, std::int32_t* c, std::int64_t ldc) noexcept {
  active_table().gemm_i8_dot(m, n, k, a, lda, b, ldb, c, ldc);
}

void gemm_i8u8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::int8_t* a, std::int64_t lda,
                   const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc, bool a_unsigned) noexcept {
  active_table().gemm_i8u8_dot(m, n, k, a, lda, b, ldb, c, ldc, a_unsigned);
}

void quantize_i8(const float* x, float inv_scale, std::int8_t* q,
                 std::int64_t n) noexcept {
  active_table().quantize_i8(x, inv_scale, q, n);
}

void dequant_i32(std::int32_t* acc, float scale, float bias,
                 std::int64_t n) noexcept {
  active_table().dequant_i32(acc, scale, bias, n);
}

std::uint64_t fused_dequant_clip_cc(std::int32_t* acc, float scale, float bias,
                                    float bound, bool saturate, std::int64_t n,
                                    bool count) noexcept {
  return active_table().fused_dequant_clip_cc(acc, scale, bias, bound, saturate,
                                              n, count);
}

std::uint64_t fused_dequant_clip_cr(std::int32_t* acc, float scale, float bias,
                                    const float* bound, bool saturate,
                                    std::int64_t n, bool count) noexcept {
  return active_table().fused_dequant_clip_cr(acc, scale, bias, bound, saturate,
                                              n, count);
}

std::uint64_t fused_dequant_clip_rc(std::int32_t* acc, const float* scale,
                                    const float* bias, float bound,
                                    bool saturate, std::int64_t n,
                                    bool count) noexcept {
  return active_table().fused_dequant_clip_rc(acc, scale, bias, bound, saturate,
                                              n, count);
}

std::uint64_t fused_dequant_clip_rr(std::int32_t* acc, const float* scale,
                                    const float* bias, const float* bound,
                                    bool saturate, std::int64_t n,
                                    bool count) noexcept {
  return active_table().fused_dequant_clip_rr(acc, scale, bias, bound, saturate,
                                              n, count);
}

}  // namespace fitact::kern
