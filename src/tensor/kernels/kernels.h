// Runtime-dispatched CPU microkernels for the serving hot path.
//
// Every compute inner loop that serving throughput depends on — the SGEMM
// panel kernel, ReLU / bound-clamp / bias-add elementwise passes, and the
// clamp-event counter behind the fault detector — funnels through the entry
// points declared here. A process-wide dispatch table binds each entry point
// to one backend:
//
//   scalar — portable C++ loops, the reference semantics (kernels_scalar.cpp)
//   avx2   — AVX2/FMA vector kernels (kernels_avx2.cpp, only compiled when
//            the toolchain can target AVX2; only *selected* when cpuid says
//            the host executes it)
//
// Dispatch is deliberately per-process, not per-thread or per-call site:
// campaign determinism across thread counts and the plan-vs-eager
// bit-identity contract both require every forward in a process to run the
// same arithmetic. The backend is resolved once, at first use, from the
// FITACT_KERNELS environment variable ("scalar" | "avx2" | "auto", default
// auto = best supported); tests and benches may override it at runtime with
// force_backend() to A/B both paths on any host — callers own restoring it
// (see BackendGuard).
//
// Semantics contract per backend:
//   * Elementwise kernels (relu / clip / add / bias) are bit-identical
//     across backends, including NaN/Inf handling and signed zeros — the
//     vector forms mirror the scalar branch structure exactly.
//   * gemm_panel accumulates in a backend-specific order (the AVX2 kernel
//     uses FMA), so backends agree only to the per-element forward-error
//     bound gemm_fuzz_test enforces — never rely on cross-backend
//     bit-equality of GEMM results.
//   * No kernel skips work based on operand values: a NaN or Inf anywhere
//     in the inputs reaches the output exactly as IEEE arithmetic dictates.
//     (Hardware faults produce exactly these values; swallowing them blinds
//     the fault detector. gemm_fuzz_test pins this.)
#pragma once

#include <cstdint>

namespace fitact::kern {

enum class Backend : int {
  scalar = 0,
  avx2 = 1,
};

/// True when this binary carries the AVX2 kernels *and* the executing host
/// supports AVX2+FMA.
[[nodiscard]] bool avx2_supported() noexcept;

/// The backend every kernel entry point currently dispatches to. Resolves
/// the FITACT_KERNELS environment override on first call.
[[nodiscard]] Backend active_backend() noexcept;

/// Short stable name ("scalar" / "avx2") for logs, benches and CSVs.
[[nodiscard]] const char* backend_name(Backend b) noexcept;

/// Process-wide override, effective immediately for all subsequent kernel
/// calls. Requesting avx2 on a host without it falls back to scalar (the
/// returned value is what actually got installed). Not synchronised with
/// in-flight forwards: switch backends only between forwards (tests and
/// startup configuration), never while another thread is inside a kernel.
Backend force_backend(Backend b) noexcept;

/// RAII for tests/benches that A/B backends: forces `b` now, restores the
/// previously active backend on destruction.
class BackendGuard {
 public:
  explicit BackendGuard(Backend b) noexcept
      : previous_(active_backend()) {
    (void)force_backend(b);
  }
  ~BackendGuard() { (void)force_backend(previous_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  Backend previous_;
};

// ---- dispatched kernel entry points ---------------------------------------

/// SGEMM inner panel: C[mb, nb] += alpha * Ap[mb, kb] * B[kb, nb], where Ap
/// is a packed row-major panel (contiguous kb-stride rows) and B/C point
/// into full row-major matrices with leading dimensions ldb/ldc. The caller
/// (tensor/gemm.cpp) owns blocking, packing, beta handling and threading.
void gemm_panel(std::int64_t mb, std::int64_t nb, std::int64_t kb, float alpha,
                const float* ap, const float* b, std::int64_t ldb, float* c,
                std::int64_t ldc) noexcept;

/// o[i] = x[i] > 0 ? x[i] : 0 (NaN -> 0, matching the scalar branch).
void relu(const float* x, float* o, std::int64_t n) noexcept;

/// o[i] = a[i] + b[i].
void add(const float* a, const float* b, float* o, std::int64_t n) noexcept;

/// row[j] += bias[j] for j in [0, n) — the per-row bias of a linear layer.
void bias_add_row(float* row, const float* bias, std::int64_t n) noexcept;

/// row[i] += value for i in [0, n) — the per-channel-plane bias of a conv.
void bias_add_const(float* row, float value, std::int64_t n) noexcept;

/// Bounded-ReLU forward with fused clamp-event counting, over n contiguous
/// elements laid out as complete per-sample feature rows (n % feat == 0).
/// Per element, with b = the element's broadcast bound:
///   x <= 0  -> 0
///   x <= b  -> x
///   else    -> saturate ? b : 0        (NaN lands here: both compares fail)
/// The bound index of flat feature fi is: fi (bound_numel == feat), fi / hw
/// (bound_numel == channels), 0 (bound_numel == 1) — FeatureBroadcast's map.
/// Returns the number of elements with x > b (the clamp-event statistic)
/// when `count` is set, 0 otherwise — the non-counting path skips the
/// tally entirely. Counting never changes the written output.
std::uint64_t clipped_relu(const float* x, const float* bound,
                           std::int64_t bound_numel, std::int64_t feat,
                           std::int64_t hw, bool saturate, float* o,
                           std::int64_t n, bool count) noexcept;

/// Clamp-event count alone (no output written): number of elements with
/// x[i] > bound[broadcast(i)], same broadcast rule as clipped_relu. The
/// standalone pass core::BoundedActivation::count_clamps runs on the eager
/// path before handing x to the activation op.
std::uint64_t count_over_bound(const float* x, const float* bound,
                               std::int64_t bound_numel, std::int64_t feat,
                               std::int64_t hw, std::int64_t n) noexcept;

// ---- fused GEMM epilogues --------------------------------------------------
//
// In-place bias-add + bound-clamp (+ optional clamp-event count) over a GEMM
// output span, used by the plan fusion pass so the pre-activation tensor
// never round-trips through the arena. Per element, with xi = o[i] + bias
// and b = the element's bound:
//   xi <= 0  -> 0
//   xi <= b  -> xi
//   else     -> saturate ? b : 0       (NaN lands here: both compares fail)
// The count (returned when `count` is set, else 0) tallies xi > b — the same
// statistic clipped_relu reports on the unfused path. The bias add and the
// clamp are the exact float operations the unfused bias_add_* + clipped_relu
// sequence performs, in the same order, so fusion stays bit-identical.
// Suffix encodes the (bias, bound) shapes: c = one constant for the whole
// span, r = one value per element.

/// Conv channel plane (scalar bias) under a layer- or channel-granular
/// bound (one bound value for the span).
std::uint64_t fused_bias_clip_cc(float* o, float bias, float bound,
                                 bool saturate, std::int64_t n,
                                 bool count) noexcept;

/// Conv channel plane (scalar bias) under per-neuron bounds (one bound per
/// element of the span).
std::uint64_t fused_bias_clip_cr(float* o, float bias, const float* bound,
                                 bool saturate, std::int64_t n,
                                 bool count) noexcept;

/// Linear output row (elementwise bias) under a layer-granular bound.
std::uint64_t fused_bias_clip_rc(float* o, const float* bias, float bound,
                                 bool saturate, std::int64_t n,
                                 bool count) noexcept;

/// Linear output row (elementwise bias) under per-neuron bounds.
std::uint64_t fused_bias_clip_rr(float* o, const float* bias,
                                 const float* bound, bool saturate,
                                 std::int64_t n, bool count) noexcept;

}  // namespace fitact::kern
