// Runtime-dispatched CPU microkernels for the serving hot path.
//
// Every compute inner loop that serving throughput depends on — the SGEMM
// panel kernel, ReLU / bound-clamp / bias-add elementwise passes, and the
// clamp-event counter behind the fault detector — funnels through the entry
// points declared here. A process-wide dispatch table binds each entry point
// to one backend:
//
//   scalar — portable C++ loops, the reference semantics (kernels_scalar.cpp)
//   avx2   — AVX2/FMA vector kernels (kernels_avx2.cpp, only compiled when
//            the toolchain can target AVX2; only *selected* when cpuid says
//            the host executes it)
//
// Dispatch is deliberately per-process, not per-thread or per-call site:
// campaign determinism across thread counts and the plan-vs-eager
// bit-identity contract both require every forward in a process to run the
// same arithmetic. The backend is resolved once, at first use, from the
// FITACT_KERNELS environment variable ("scalar" | "avx2" | "auto", default
// auto = best supported); tests and benches may override it at runtime with
// force_backend() to A/B both paths on any host — callers own restoring it
// (see BackendGuard).
//
// Semantics contract per backend:
//   * Elementwise kernels (relu / clip / add / bias) are bit-identical
//     across backends, including NaN/Inf handling and signed zeros — the
//     vector forms mirror the scalar branch structure exactly.
//   * gemm_panel accumulates in a backend-specific order (the AVX2 kernel
//     uses FMA), so backends agree only to the per-element forward-error
//     bound gemm_fuzz_test enforces — never rely on cross-backend
//     bit-equality of GEMM results.
//   * No kernel skips work based on operand values: a NaN or Inf anywhere
//     in the inputs reaches the output exactly as IEEE arithmetic dictates.
//     (Hardware faults produce exactly these values; swallowing them blinds
//     the fault detector. gemm_fuzz_test pins this.)
#pragma once

#include <cstdint>

namespace fitact::kern {

enum class Backend : int {
  scalar = 0,
  avx2 = 1,
};

/// True when this binary carries the AVX2 kernels *and* the executing host
/// supports AVX2+FMA.
[[nodiscard]] bool avx2_supported() noexcept;

/// The backend every kernel entry point currently dispatches to. Resolves
/// the FITACT_KERNELS environment override on first call.
[[nodiscard]] Backend active_backend() noexcept;

/// Short stable name ("scalar" / "avx2") for logs, benches and CSVs.
[[nodiscard]] const char* backend_name(Backend b) noexcept;

/// Process-wide override, effective immediately for all subsequent kernel
/// calls. Requesting avx2 on a host without it falls back to scalar (the
/// returned value is what actually got installed). Not synchronised with
/// in-flight forwards: switch backends only between forwards (tests and
/// startup configuration), never while another thread is inside a kernel.
Backend force_backend(Backend b) noexcept;

/// Signature of an int8 GEMM microkernel (the gemm_i8_dot contract below).
using GemmI8Fn = void (*)(std::int64_t m, std::int64_t n, std::int64_t k,
                          const std::int8_t* a, std::int64_t lda,
                          const std::int8_t* b, std::int64_t ldb,
                          std::int32_t* c, std::int64_t ldc) noexcept;

/// One int8 GEMM microkernel this binary carries and this host can execute.
struct GemmI8Variant {
  const char* name;  ///< "scalar" | "avx2" | "avx2_vnni"
  GemmI8Fn fn;
};

/// Executable int8 GEMM variants, scalar first. The dispatcher binds exactly
/// one per backend (the avx2 tier upgrades to avx2_vnni when the host has
/// AVX-512 VNNI), so the fuzz tests use this to run the bit-identity matrix
/// over every variant — including the ones dispatch currently bypasses.
[[nodiscard]] std::size_t gemm_i8_variants(const GemmI8Variant** out) noexcept;

/// Name of the variant the active table's gemm_i8_dot dispatches to.
[[nodiscard]] const char* gemm_i8_variant() noexcept;

/// Signature of a mixed-sign int8 GEMM microkernel (gemm_i8u8_dot below):
/// identical to GemmI8Fn plus the flag naming the operand whose bytes the
/// caller guarantees to be in [0,127].
using GemmI8U8Fn = void (*)(std::int64_t m, std::int64_t n, std::int64_t k,
                            const std::int8_t* a, std::int64_t lda,
                            const std::int8_t* b, std::int64_t ldb,
                            std::int32_t* c, std::int64_t ldc,
                            bool a_unsigned) noexcept;

/// One mixed-sign GEMM microkernel this binary carries and this host can
/// execute.
struct GemmI8U8Variant {
  const char* name;  ///< "scalar" | "avx2" | "avx2_vnni"
  GemmI8U8Fn fn;
};

/// Executable mixed-sign GEMM variants, scalar first — the u8xs8 companion
/// to gemm_i8_variants, used by the fuzz tests to pin every variant to the
/// scalar signed reference (same bytes, same bits).
[[nodiscard]] std::size_t gemm_i8u8_variants(
    const GemmI8U8Variant** out) noexcept;

/// RAII for tests/benches that A/B backends: forces `b` now, restores the
/// previously active backend on destruction.
class BackendGuard {
 public:
  explicit BackendGuard(Backend b) noexcept
      : previous_(active_backend()) {
    (void)force_backend(b);
  }
  ~BackendGuard() { (void)force_backend(previous_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  Backend previous_;
};

// ---- dispatched kernel entry points ---------------------------------------

/// SGEMM inner panel: C[mb, nb] += alpha * Ap[mb, kb] * B[kb, nb], where Ap
/// is a packed row-major panel (contiguous kb-stride rows) and B/C point
/// into full row-major matrices with leading dimensions ldb/ldc. The caller
/// (tensor/gemm.cpp) owns blocking, packing, beta handling and threading.
void gemm_panel(std::int64_t mb, std::int64_t nb, std::int64_t kb, float alpha,
                const float* ap, const float* b, std::int64_t ldb, float* c,
                std::int64_t ldc) noexcept;

/// o[i] = x[i] > 0 ? x[i] : 0 (NaN -> 0, matching the scalar branch).
void relu(const float* x, float* o, std::int64_t n) noexcept;

/// o[i] = a[i] + b[i].
void add(const float* a, const float* b, float* o, std::int64_t n) noexcept;

/// row[j] += bias[j] for j in [0, n) — the per-row bias of a linear layer.
void bias_add_row(float* row, const float* bias, std::int64_t n) noexcept;

/// row[i] += value for i in [0, n) — the per-channel-plane bias of a conv.
void bias_add_const(float* row, float value, std::int64_t n) noexcept;

/// Bounded-ReLU forward with fused clamp-event counting, over n contiguous
/// elements laid out as complete per-sample feature rows (n % feat == 0).
/// Per element, with b = the element's broadcast bound:
///   x <= 0  -> 0
///   x <= b  -> x
///   else    -> saturate ? b : 0        (NaN lands here: both compares fail)
/// The bound index of flat feature fi is: fi (bound_numel == feat), fi / hw
/// (bound_numel == channels), 0 (bound_numel == 1) — FeatureBroadcast's map.
/// Returns the number of elements with x > b (the clamp-event statistic)
/// when `count` is set, 0 otherwise — the non-counting path skips the
/// tally entirely. Counting never changes the written output.
std::uint64_t clipped_relu(const float* x, const float* bound,
                           std::int64_t bound_numel, std::int64_t feat,
                           std::int64_t hw, bool saturate, float* o,
                           std::int64_t n, bool count) noexcept;

/// Clamp-event count alone (no output written): number of elements with
/// x[i] > bound[broadcast(i)], same broadcast rule as clipped_relu. The
/// standalone pass core::BoundedActivation::count_clamps runs on the eager
/// path before handing x to the activation op.
std::uint64_t count_over_bound(const float* x, const float* bound,
                               std::int64_t bound_numel, std::int64_t feat,
                               std::int64_t hw, std::int64_t n) noexcept;

// ---- fused GEMM epilogues --------------------------------------------------
//
// In-place bias-add + bound-clamp (+ optional clamp-event count) over a GEMM
// output span, used by the plan fusion pass so the pre-activation tensor
// never round-trips through the arena. Per element, with xi = o[i] + bias
// and b = the element's bound:
//   xi <= 0  -> 0
//   xi <= b  -> xi
//   else     -> saturate ? b : 0       (NaN lands here: both compares fail)
// The count (returned when `count` is set, else 0) tallies xi > b — the same
// statistic clipped_relu reports on the unfused path. The bias add and the
// clamp are the exact float operations the unfused bias_add_* + clipped_relu
// sequence performs, in the same order, so fusion stays bit-identical.
// Suffix encodes the (bias, bound) shapes: c = one constant for the whole
// span, r = one value per element.

/// Conv channel plane (scalar bias) under a layer- or channel-granular
/// bound (one bound value for the span).
std::uint64_t fused_bias_clip_cc(float* o, float bias, float bound,
                                 bool saturate, std::int64_t n,
                                 bool count) noexcept;

/// Conv channel plane (scalar bias) under per-neuron bounds (one bound per
/// element of the span).
std::uint64_t fused_bias_clip_cr(float* o, float bias, const float* bound,
                                 bool saturate, std::int64_t n,
                                 bool count) noexcept;

/// Linear output row (elementwise bias) under a layer-granular bound.
std::uint64_t fused_bias_clip_rc(float* o, const float* bias, float bound,
                                 bool saturate, std::int64_t n,
                                 bool count) noexcept;

/// Linear output row (elementwise bias) under per-neuron bounds.
std::uint64_t fused_bias_clip_rr(float* o, const float* bias,
                                 const float* bound, bool saturate,
                                 std::int64_t n, bool count) noexcept;

// ---- int8 quantized path ---------------------------------------------------
//
// The quantized serving path (quant/int8.h + the fused int8 plan ops) runs
// quantize -> int8 GEMM -> dequantize epilogue. Its cross-backend contract is
// *stronger* than fp32 GEMM's error bound: the GEMM accumulates in exact
// int32 arithmetic (integer adds are order-independent), quantize_i8 mirrors
// the scalar rounding branch-for-branch, and the dequantize epilogues use a
// separate multiply and add (no FMA), so every int8 entry point — and
// therefore the whole int8 forward — is bit-identical across backends.
// int8_gemm_fuzz_test pins this. The no-value-based-skipping rule holds here
// too: a corrupted int8 weight byte (including -128, which quantization never
// emits but a bit flip can) flows through the exact integer arithmetic.

/// Int8 GEMM in dot-product ("row times row") layout:
///   c[i*ldc + j] = sum_k a[i*lda + k] * b[j*ldb + k]   (int32 accumulation)
/// Both operands are row-major along k — A holds quantized weight rows, B
/// holds quantized activation rows (im2row patches or batch rows). Callers
/// pad k to quant::kQ8Block with zero bytes so the vector kernel runs whole
/// 32-wide blocks; any k is accepted (scalar tail). Overflow: |a|,|b| <= 128
/// keeps every 32-element block sum within +/-2^19, safe for k beyond 10^8.
void gemm_i8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
                 std::int64_t ldb, std::int32_t* c, std::int64_t ldc) noexcept;

/// gemm_i8_dot with the caller's extra guarantee that every byte of one
/// operand (a when a_unsigned, else b) lies in [0,127]. FitAct's clamp
/// epilogue makes every post-activation tensor nonnegative, so its
/// quantization always satisfies this — which unlocks u8xs8 instructions
/// (maddubs on AVX2, vpdpbusd on AVX-512 VNNI) at double the MAC density of
/// the widen-to-int16 signed kernel. With the unsigned operand <= 127 their
/// intermediate pair sums cannot saturate, so the result is bit-identical
/// to gemm_i8_dot on the same bytes (a byte in [0,127] reads the same as u8
/// and as s8). Faulted bytes in the *signed* operand (including -128) are
/// handled exactly; the unsigned-side guarantee covers activations, which
/// fault injection never touches.
void gemm_i8u8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::int8_t* a, std::int64_t lda,
                   const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                   std::int64_t ldc, bool a_unsigned) noexcept;

/// Symmetric fp32 -> int8 quantization: q[i] = round-to-nearest-even of
/// x[i] * inv_scale, clamped to [-127, 127] (never -128, so a clean
/// activation can't alias the one value only faults produce); NaN -> 0.
void quantize_i8(const float* x, float inv_scale, std::int8_t* q,
                 std::int64_t n) noexcept;

/// Plain dequantize, in place over the accumulator span (reads int32, writes
/// fp32 to the same bytes): out[i] = float(acc[i]) * scale + bias. Used when
/// a BatchNorm sits between the int8 GEMM and the clamp.
void dequant_i32(std::int32_t* acc, float scale, float bias,
                 std::int64_t n) noexcept;

// Fused dequantize epilogues: the int8 analogue of fused_bias_clip_* above.
// In place over the GEMM accumulator span, per element with
//   xi = float(acc[i]) * scale + bias        (multiply then add, two IEEE
//                                             roundings — never fused)
// then the identical clamp cascade: xi <= 0 -> 0; xi <= b -> xi; else
// saturate ? b : 0 (NaN lands in else), count tallies xi > b. The clamp-event
// statistic feeds the same detector as the fp32 path. Suffixes as for
// fused_bias_clip_*: first letter = scale/bias shape (c = one constant pair
// for the span — conv channel plane; r = per-element rows — linear output
// row, where a null bias row means bias 0), second = bound shape.

/// Conv channel plane (constant scale+bias) under a single bound value.
std::uint64_t fused_dequant_clip_cc(std::int32_t* acc, float scale, float bias,
                                    float bound, bool saturate, std::int64_t n,
                                    bool count) noexcept;

/// Conv channel plane under per-neuron bounds (one bound per element).
std::uint64_t fused_dequant_clip_cr(std::int32_t* acc, float scale, float bias,
                                    const float* bound, bool saturate,
                                    std::int64_t n, bool count) noexcept;

/// Linear output row (per-element scale/bias rows; bias may be null = 0)
/// under a layer-granular bound.
std::uint64_t fused_dequant_clip_rc(std::int32_t* acc, const float* scale,
                                    const float* bias, float bound,
                                    bool saturate, std::int64_t n,
                                    bool count) noexcept;

/// Linear output row under per-neuron bounds.
std::uint64_t fused_dequant_clip_rr(std::int32_t* acc, const float* scale,
                                    const float* bias, const float* bound,
                                    bool saturate, std::int64_t n,
                                    bool count) noexcept;

}  // namespace fitact::kern
