// AVX2/FMA backend. This translation unit is the only place in the tree
// allowed to include <immintrin.h> (scripts/lint.sh enforces the boundary):
// it is compiled with -mavx2 -mfma while the rest of the library keeps the
// portable baseline ISA, and dispatch.cpp only installs this table after a
// runtime cpuid check — so the binary stays runnable on any x86-64 host.
//
// Semantics: the elementwise kernels reproduce the scalar backend
// bit-exactly (identical branch structure via ordered-quiet compares and
// blends, so NaN/Inf/-0.0 behave the same); gemm_panel accumulates with FMA
// in 16-column register tiles, which changes rounding relative to scalar —
// cross-backend GEMM agreement is to forward-error bounds only
// (gemm_fuzz_test's per-element tolerance).
#include "tensor/kernels/kernel_table.h"

#if defined(FITACT_HAVE_AVX2_KERNELS)

#include <immintrin.h>

namespace fitact::kern {
namespace {

// ---- GEMM panel ------------------------------------------------------------

/// Full 4-row x 16-column register tile: C tile is held in 8 ymm
/// accumulators across the whole kb loop, so C traffic is one load + one
/// store per element instead of one per k step.
inline void tile4x16(std::int64_t kb, float alpha, const float* ap,
                     std::int64_t ap_stride, const float* b, std::int64_t ldb,
                     float* c, std::int64_t ldc) noexcept {
  __m256 acc00 = _mm256_loadu_ps(c + 0 * ldc);
  __m256 acc01 = _mm256_loadu_ps(c + 0 * ldc + 8);
  __m256 acc10 = _mm256_loadu_ps(c + 1 * ldc);
  __m256 acc11 = _mm256_loadu_ps(c + 1 * ldc + 8);
  __m256 acc20 = _mm256_loadu_ps(c + 2 * ldc);
  __m256 acc21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  __m256 acc30 = _mm256_loadu_ps(c + 3 * ldc);
  __m256 acc31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  for (std::int64_t p = 0; p < kb; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b + p * ldb);
    const __m256 b1 = _mm256_loadu_ps(b + p * ldb + 8);
    const __m256 a0 = _mm256_set1_ps(alpha * ap[0 * ap_stride + p]);
    const __m256 a1 = _mm256_set1_ps(alpha * ap[1 * ap_stride + p]);
    const __m256 a2 = _mm256_set1_ps(alpha * ap[2 * ap_stride + p]);
    const __m256 a3 = _mm256_set1_ps(alpha * ap[3 * ap_stride + p]);
    acc00 = _mm256_fmadd_ps(a0, b0, acc00);
    acc01 = _mm256_fmadd_ps(a0, b1, acc01);
    acc10 = _mm256_fmadd_ps(a1, b0, acc10);
    acc11 = _mm256_fmadd_ps(a1, b1, acc11);
    acc20 = _mm256_fmadd_ps(a2, b0, acc20);
    acc21 = _mm256_fmadd_ps(a2, b1, acc21);
    acc30 = _mm256_fmadd_ps(a3, b0, acc30);
    acc31 = _mm256_fmadd_ps(a3, b1, acc31);
  }
  _mm256_storeu_ps(c + 0 * ldc, acc00);
  _mm256_storeu_ps(c + 0 * ldc + 8, acc01);
  _mm256_storeu_ps(c + 1 * ldc, acc10);
  _mm256_storeu_ps(c + 1 * ldc + 8, acc11);
  _mm256_storeu_ps(c + 2 * ldc, acc20);
  _mm256_storeu_ps(c + 2 * ldc + 8, acc21);
  _mm256_storeu_ps(c + 3 * ldc, acc30);
  _mm256_storeu_ps(c + 3 * ldc + 8, acc31);
}

/// Single-row edge tile: 8-wide vector loop with a scalar tail. Handles the
/// bottom rows (mb % 4) and, with nb < 16, the right edge columns.
inline void tile1xN(std::int64_t nb, std::int64_t kb, float alpha,
                    const float* arow, const float* b, std::int64_t ldb,
                    float* c) noexcept {
  for (std::int64_t p = 0; p < kb; ++p) {
    const float aval = alpha * arow[p];
    const __m256 av = _mm256_set1_ps(aval);
    const float* brow = b + p * ldb;
    std::int64_t j = 0;
    for (; j + 8 <= nb; j += 8) {
      _mm256_storeu_ps(
          c + j, _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + j),
                                 _mm256_loadu_ps(c + j)));
    }
    for (; j < nb; ++j) c[j] += aval * brow[j];
  }
}

void avx2_gemm_panel(std::int64_t mb, std::int64_t nb, std::int64_t kb,
                     float alpha, const float* ap, const float* b,
                     std::int64_t ldb, float* c, std::int64_t ldc) noexcept {
  const std::int64_t mb4 = mb & ~std::int64_t{3};
  const std::int64_t nb16 = nb & ~std::int64_t{15};
  for (std::int64_t i = 0; i < mb4; i += 4) {
    for (std::int64_t j = 0; j < nb16; j += 16) {
      tile4x16(kb, alpha, ap + i * kb, kb, b + j, ldb, c + i * ldc + j, ldc);
    }
    if (nb16 < nb) {
      for (std::int64_t r = 0; r < 4; ++r) {
        tile1xN(nb - nb16, kb, alpha, ap + (i + r) * kb, b + nb16, ldb,
                c + (i + r) * ldc + nb16);
      }
    }
  }
  for (std::int64_t i = mb4; i < mb; ++i) {
    tile1xN(nb, kb, alpha, ap + i * kb, b, ldb, c + i * ldc);
  }
}

// ---- elementwise -----------------------------------------------------------

void avx2_relu(const float* x, float* o, std::int64_t n) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  // maxps(x, 0) returns the second operand when x is NaN — the same 0 the
  // scalar branch (x > 0 ? x : 0) produces.
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) o[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void avx2_add(const float* a, const float* b, float* o,
              std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        o + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] + b[i];
}

void avx2_bias_add_row(float* row, const float* bias, std::int64_t n) noexcept {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(row + i, _mm256_add_ps(_mm256_loadu_ps(row + i),
                                            _mm256_loadu_ps(bias + i)));
  }
  for (; i < n; ++i) row[i] += bias[i];
}

void avx2_bias_add_const(float* row, float value, std::int64_t n) noexcept {
  const __m256 v = _mm256_set1_ps(value);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(row + i, _mm256_add_ps(_mm256_loadu_ps(row + i), v));
  }
  for (; i < n; ++i) row[i] += value;
}

// ---- bounded activations ---------------------------------------------------

/// Vector core of one clip step: mirrors the scalar branch cascade
///   x <= 0 -> 0;  x <= b -> x;  else -> over (0 or b)
/// with ordered-quiet compares, so NaN (both compares false) maps to `over`
/// exactly as in the scalar backend.
inline __m256 clip8(__m256 x, __m256 b, __m256 over, __m256 zero) noexcept {
  const __m256 le0 = _mm256_cmp_ps(x, zero, _CMP_LE_OQ);
  const __m256 leb = _mm256_cmp_ps(x, b, _CMP_LE_OQ);
  __m256 r = _mm256_blendv_ps(over, x, leb);  // x <= b ? x : over
  r = _mm256_blendv_ps(r, zero, le0);         // x <= 0 ? 0 : r
  return r;
}

/// events += popcount(x > b) for one vector — _CMP_GT_OQ is false for NaN,
/// matching the scalar `x > b` tally.
inline std::uint64_t count8(__m256 x, __m256 b) noexcept {
  return static_cast<std::uint64_t>(__builtin_popcount(static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_cmp_ps(x, b, _CMP_GT_OQ)))));
}

inline std::uint64_t clip_span_const(const float* x, float bound,
                                     bool saturate, float* o, std::int64_t n,
                                     bool count) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 bv = _mm256_set1_ps(bound);
  const __m256 over = saturate ? bv : zero;
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    if (count) events += count8(xv, bv);
    _mm256_storeu_ps(o + i, clip8(xv, bv, over, zero));
  }
  const float over_s = saturate ? bound : 0.0f;
  for (; i < n; ++i) {
    const float xi = x[i];
    if (count) events += xi > bound;
    o[i] = xi <= 0.0f ? 0.0f : (xi <= bound ? xi : over_s);
  }
  return events;
}

inline std::uint64_t clip_span_rowwise(const float* x, const float* bound,
                                       bool saturate, float* o,
                                       std::int64_t n, bool count) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 bv = _mm256_loadu_ps(bound + i);
    if (count) events += count8(xv, bv);
    _mm256_storeu_ps(o + i, clip8(xv, bv, saturate ? bv : zero, zero));
  }
  for (; i < n; ++i) {
    const float xi = x[i];
    const float bi = bound[i];
    if (count) events += xi > bi;
    o[i] = xi <= 0.0f ? 0.0f : (xi <= bi ? xi : (saturate ? bi : 0.0f));
  }
  return events;
}

std::uint64_t avx2_clipped_relu(const float* x, const float* bound,
                                std::int64_t bound_numel, std::int64_t feat,
                                std::int64_t hw, bool saturate, float* o,
                                std::int64_t n, bool count) noexcept {
  if (bound_numel == 1) {
    return clip_span_const(x, bound[0], saturate, o, n, count);
  }
  std::uint64_t events = 0;
  for (std::int64_t base = 0; base < n; base += feat) {
    const std::int64_t row = base + feat <= n ? feat : n - base;
    if (bound_numel == feat) {
      events += clip_span_rowwise(x + base, bound, saturate, o + base, row,
                                  count);
    } else {
      for (std::int64_t f = 0; f < row; f += hw) {
        const std::int64_t span = f + hw <= row ? hw : row - f;
        events += clip_span_const(x + base + f, bound[f / hw], saturate,
                                  o + base + f, span, count);
      }
    }
  }
  return events;
}

inline std::uint64_t count_span_const(const float* x, float bound,
                                      std::int64_t n) noexcept {
  const __m256 bv = _mm256_set1_ps(bound);
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) events += count8(_mm256_loadu_ps(x + i), bv);
  for (; i < n; ++i) events += x[i] > bound;
  return events;
}

inline std::uint64_t count_span_rowwise(const float* x, const float* bound,
                                        std::int64_t n) noexcept {
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    events += count8(_mm256_loadu_ps(x + i), _mm256_loadu_ps(bound + i));
  }
  for (; i < n; ++i) events += x[i] > bound[i];
  return events;
}

std::uint64_t avx2_count_over_bound(const float* x, const float* bound,
                                    std::int64_t bound_numel,
                                    std::int64_t feat, std::int64_t hw,
                                    std::int64_t n) noexcept {
  if (bound_numel == 1) return count_span_const(x, bound[0], n);
  std::uint64_t events = 0;
  for (std::int64_t base = 0; base < n; base += feat) {
    const std::int64_t row = base + feat <= n ? feat : n - base;
    if (bound_numel == feat) {
      events += count_span_rowwise(x + base, bound, row);
    } else {
      for (std::int64_t f = 0; f < row; f += hw) {
        const std::int64_t span = f + hw <= row ? hw : row - f;
        events += count_span_const(x + base + f, bound[f / hw], span);
      }
    }
  }
  return events;
}

// ---- fused GEMM epilogues --------------------------------------------------
// Each is addps (the same single IEEE add the unfused bias pass performs)
// followed by the count8/clip8 pair — so the fused output and event tally
// stay bit-identical to the unfused bias_add_* + clipped_relu sequence, on
// this backend and on scalar.

std::uint64_t avx2_fused_bias_clip_cc(float* o, float bias, float bound,
                                      bool saturate, std::int64_t n,
                                      bool count) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 biasv = _mm256_set1_ps(bias);
  const __m256 bv = _mm256_set1_ps(bound);
  const __m256 over = saturate ? bv : zero;
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_add_ps(_mm256_loadu_ps(o + i), biasv);
    if (count) events += count8(xv, bv);
    _mm256_storeu_ps(o + i, clip8(xv, bv, over, zero));
  }
  const float over_s = saturate ? bound : 0.0f;
  for (; i < n; ++i) {
    const float xi = o[i] + bias;
    if (count) events += xi > bound;
    o[i] = xi <= 0.0f ? 0.0f : (xi <= bound ? xi : over_s);
  }
  return events;
}

std::uint64_t avx2_fused_bias_clip_cr(float* o, float bias, const float* bound,
                                      bool saturate, std::int64_t n,
                                      bool count) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 biasv = _mm256_set1_ps(bias);
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_add_ps(_mm256_loadu_ps(o + i), biasv);
    const __m256 bv = _mm256_loadu_ps(bound + i);
    if (count) events += count8(xv, bv);
    _mm256_storeu_ps(o + i, clip8(xv, bv, saturate ? bv : zero, zero));
  }
  for (; i < n; ++i) {
    const float xi = o[i] + bias;
    const float bi = bound[i];
    if (count) events += xi > bi;
    o[i] = xi <= 0.0f ? 0.0f : (xi <= bi ? xi : (saturate ? bi : 0.0f));
  }
  return events;
}

std::uint64_t avx2_fused_bias_clip_rc(float* o, const float* bias, float bound,
                                      bool saturate, std::int64_t n,
                                      bool count) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 bv = _mm256_set1_ps(bound);
  const __m256 over = saturate ? bv : zero;
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv =
        _mm256_add_ps(_mm256_loadu_ps(o + i), _mm256_loadu_ps(bias + i));
    if (count) events += count8(xv, bv);
    _mm256_storeu_ps(o + i, clip8(xv, bv, over, zero));
  }
  const float over_s = saturate ? bound : 0.0f;
  for (; i < n; ++i) {
    const float xi = o[i] + bias[i];
    if (count) events += xi > bound;
    o[i] = xi <= 0.0f ? 0.0f : (xi <= bound ? xi : over_s);
  }
  return events;
}

std::uint64_t avx2_fused_bias_clip_rr(float* o, const float* bias,
                                      const float* bound, bool saturate,
                                      std::int64_t n, bool count) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv =
        _mm256_add_ps(_mm256_loadu_ps(o + i), _mm256_loadu_ps(bias + i));
    const __m256 bv = _mm256_loadu_ps(bound + i);
    if (count) events += count8(xv, bv);
    _mm256_storeu_ps(o + i, clip8(xv, bv, saturate ? bv : zero, zero));
  }
  for (; i < n; ++i) {
    const float xi = o[i] + bias[i];
    const float bi = bound[i];
    if (count) events += xi > bi;
    o[i] = xi <= 0.0f ? 0.0f : (xi <= bi ? xi : (saturate ? bi : 0.0f));
  }
  return events;
}

}  // namespace

const KernelTable& avx2_table() noexcept {
  static constexpr KernelTable kTable = {
      avx2_gemm_panel,    avx2_relu,
      avx2_add,           avx2_bias_add_row,
      avx2_bias_add_const, avx2_clipped_relu,
      avx2_count_over_bound,
      avx2_fused_bias_clip_cc,
      avx2_fused_bias_clip_cr,
      avx2_fused_bias_clip_rc,
      avx2_fused_bias_clip_rr,
      avx2_gemm_i8_dot,
      avx2_gemm_i8u8_dot,
      avx2_quantize_i8,
      avx2_dequant_i32,
      avx2_fused_dequant_clip_cc,
      avx2_fused_dequant_clip_cr,
      avx2_fused_dequant_clip_rc,
      avx2_fused_dequant_clip_rr,
  };
  return kTable;
}

}  // namespace fitact::kern

#endif  // FITACT_HAVE_AVX2_KERNELS
