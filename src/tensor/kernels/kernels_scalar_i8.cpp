// Portable int8 kernels — the reference semantics the AVX2 int8 TU must
// reproduce bit-for-bit (see the int8 section of kernels.h: exact int32
// GEMM accumulation, branch-identical quantization, FMA-free epilogues).
//
// The dequantize epilogues run in place over a GEMM accumulator span that
// lives inside the plan's fp32 arena: each element is read once as int32 and
// rewritten as fp32. Both accesses go through std::memcpy so the
// read-int32/write-float pair in one loop body never relies on
// type-punned pointers.
#include <cmath>
#include <cstdint>
#include <cstring>

#include "tensor/kernels/kernel_table.h"

namespace fitact::kern {
namespace {

inline std::int32_t load_i32(const std::int32_t* p) noexcept {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store_f32(std::int32_t* p, float v) noexcept {
  std::memcpy(p, &v, sizeof(v));
}

inline float clip_cascade(float xi, float bi, bool saturate) noexcept {
  if (xi <= 0.0f) return 0.0f;
  if (xi <= bi) return xi;
  return saturate ? bi : 0.0f;  // NaN lands here: both compares fail
}

}  // namespace

void scalar_gemm_i8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                        const std::int8_t* a, std::int64_t lda,
                        const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                        std::int64_t ldc) noexcept {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * lda;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int8_t* brow = b + j * ldb;
      std::int32_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(arow[p]) *
               static_cast<std::int32_t>(brow[p]);
      }
      c[i * ldc + j] = acc;
    }
  }
}

void scalar_gemm_i8u8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                          const std::int8_t* a, std::int64_t lda,
                          const std::int8_t* b, std::int64_t ldb,
                          std::int32_t* c, std::int64_t ldc,
                          bool a_unsigned) noexcept {
  // The unsigned operand's bytes are in [0,127] by contract, so reading
  // them as int8 (as the plain signed GEMM does) yields the same values —
  // the flag only matters to vector backends picking u8xs8 instructions.
  (void)a_unsigned;
  scalar_gemm_i8_dot(m, n, k, a, lda, b, ldb, c, ldc);
}

void scalar_quantize_i8(const float* x, float inv_scale, std::int8_t* q,
                        std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) {
    float r = x[i] * inv_scale;
    if (!(r == r)) {  // NaN
      q[i] = 0;
      continue;
    }
    if (r > 127.0f) r = 127.0f;
    if (r < -127.0f) r = -127.0f;
    q[i] = static_cast<std::int8_t>(std::lrintf(r));
  }
}

void scalar_dequant_i32(std::int32_t* acc, float scale, float bias,
                        std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) {
    store_f32(acc + i, static_cast<float>(load_i32(acc + i)) * scale + bias);
  }
}

std::uint64_t scalar_fused_dequant_clip_cc(std::int32_t* acc, float scale,
                                           float bias, float bound,
                                           bool saturate, std::int64_t n,
                                           bool count) noexcept {
  std::uint64_t events = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float xi = static_cast<float>(load_i32(acc + i)) * scale + bias;
    if (count) events += xi > bound;
    store_f32(acc + i, clip_cascade(xi, bound, saturate));
  }
  return events;
}

std::uint64_t scalar_fused_dequant_clip_cr(std::int32_t* acc, float scale,
                                           float bias, const float* bound,
                                           bool saturate, std::int64_t n,
                                           bool count) noexcept {
  std::uint64_t events = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float xi = static_cast<float>(load_i32(acc + i)) * scale + bias;
    const float bi = bound[i];
    if (count) events += xi > bi;
    store_f32(acc + i, clip_cascade(xi, bi, saturate));
  }
  return events;
}

std::uint64_t scalar_fused_dequant_clip_rc(std::int32_t* acc,
                                           const float* scale,
                                           const float* bias, float bound,
                                           bool saturate, std::int64_t n,
                                           bool count) noexcept {
  std::uint64_t events = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float bi = bias != nullptr ? bias[i] : 0.0f;
    const float xi = static_cast<float>(load_i32(acc + i)) * scale[i] + bi;
    if (count) events += xi > bound;
    store_f32(acc + i, clip_cascade(xi, bound, saturate));
  }
  return events;
}

std::uint64_t scalar_fused_dequant_clip_rr(std::int32_t* acc,
                                           const float* scale,
                                           const float* bias,
                                           const float* bound, bool saturate,
                                           std::int64_t n,
                                           bool count) noexcept {
  std::uint64_t events = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float bi = bias != nullptr ? bias[i] : 0.0f;
    const float xi = static_cast<float>(load_i32(acc + i)) * scale[i] + bi;
    const float bv = bound[i];
    if (count) events += xi > bv;
    store_f32(acc + i, clip_cascade(xi, bv, saturate));
  }
  return events;
}

}  // namespace fitact::kern
