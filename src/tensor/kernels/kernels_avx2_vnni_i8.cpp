// AVX-512 VNNI int8 GEMM. Only compiled when the toolchain can target
// AVX-512 F/BW/VL/VNNI (FITACT_HAVE_AVX512VNNI_KERNELS); dispatch.cpp
// swaps it into the avx2 table's gemm_i8_dot slot only after cpuid confirms
// the host executes all four extensions — there is no separate public
// backend, the avx2 tier just upgrades its int8 GEMM. The file name keeps
// the kernels_avx2* prefix so scripts/lint.sh's <immintrin.h> allowlist
// covers it.
//
// Bit-identity with the scalar int8 GEMM is the same hard contract as
// kernels_avx2_i8.cpp. vpdpwssd computes acc + a0*b0 + a1*b1 per int32
// lane; operands here are int8 widened to int16, so each product is at most
// 2^14 and the pair sum at most 2^15 — exact in int32, no saturation
// (vpdpwssd, not vpdpwssds). Exact accumulation makes integer addition
// order-independent, so any tile shape or reduction order yields the scalar
// kernel's bits for the full int8 range including -128.
//
// Layout: the AVX2 kernel's dot-product tiling, widened to a 4x4 register
// tile with each 32-element k-chunk handled by one 512-bit vpdpwssd per
// (row, column) pair. 4x4 beats 2x4 here because each A/B widen feeds four
// dot products instead of two, and the serving GEMMs are short-k
// (K = 32..512) so widening is a large fraction of the inner loop. Two
// alternatives were measured and rejected at the serving shapes: a
// reduction-free layout (output rows in accumulator lanes, vpscatterdd
// column stores) is ~50% slower — per-column fixed costs swamp the saved
// horizontal reductions at small k; and pre-widening both operands into
// per-thread int16 scratch to strip the in-loop converts is slightly slower
// still — the inner loop re-streams B once per row quad, and doubling its
// element size costs more than the hoisted cvtepi8_epi16 saves.
#if defined(FITACT_HAVE_AVX512VNNI_KERNELS)

#include <immintrin.h>

#include <cstdint>

#include "tensor/kernels/kernel_table.h"

namespace fitact::kern {
namespace {

/// 32 int8 -> one zmm of 32 int16. One instruction per operand chunk versus
/// the AVX2 kernel's two half-widenings; the int16 lanes then feed vpdpwssd
/// directly.
inline __m512i widen32(const std::int8_t* p) noexcept {
  return _mm512_cvtepi8_epi16(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

/// Fold a zmm accumulator's 16 int32 partials to 8 (exact; associativity).
inline __m256i fold512(__m512i v) noexcept {
  return _mm256_add_epi32(_mm512_castsi512_si256(v),
                          _mm512_extracti64x4_epi64(v, 1));
}

inline std::int32_t hsum_epi32(__m256i v) noexcept {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// Transpose-reduce four folded accumulators to their four lane sums
/// (identical to the AVX2 kernel's helper; any order, same bits).
inline __m128i hsum4_epi32(__m256i v0, __m256i v1, __m256i v2,
                           __m256i v3) noexcept {
  const __m256i s01 = _mm256_hadd_epi32(v0, v1);
  const __m256i s23 = _mm256_hadd_epi32(v2, v3);
  const __m256i s = _mm256_hadd_epi32(s01, s23);
  return _mm_add_epi32(_mm256_castsi256_si128(s),
                       _mm256_extracti128_si256(s, 1));
}

/// Scalar k-tail patch for one row's four column sums.
inline __m128i tail4(__m128i sums, const std::int8_t* arow,
                     const std::int8_t* b0, const std::int8_t* b1,
                     const std::int8_t* b2, const std::int8_t* b3,
                     std::int64_t p, std::int64_t k) noexcept {
  alignas(16) std::int32_t t[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(t), sums);
  for (; p < k; ++p) {
    const std::int32_t av = arow[p];
    t[0] += av * b0[p];
    t[1] += av * b1[p];
    t[2] += av * b2[p];
    t[3] += av * b3[p];
  }
  return _mm_load_si128(reinterpret_cast<const __m128i*>(t));
}

/// acc += dot of 64 u8xs8 byte pairs in one vpdpbusd. The unsigned operand
/// comes first; kAU says whether that is the GEMM's a or b. Each lane sums
/// four u8*s8 products (|sum| <= 4*127*128, exact in int32) onto the
/// accumulator with plain wraparound — no saturation anywhere, so this is
/// bit-identical to the scalar kernel for u in [0,127].
template <bool kAU>
inline __m512i dot64u(__m512i acc, __m512i av, __m512i bv) noexcept {
  return kAU ? _mm512_dpbusd_epi32(acc, av, bv)
             : _mm512_dpbusd_epi32(acc, bv, av);
}

inline __m512i loadu_512(const void* p) noexcept {
  return _mm512_loadu_si512(p);
}

/// Masked 64-byte load for the k tail: bytes past `rem` read as zero, and
/// AVX-512 masked loads suppress faults on masked-out elements, so the
/// load never touches past the row's end. A zero byte contributes zero to
/// the exact dot, so running the tail through the same vpdpbusd keeps the
/// kernel bit-identical with no scalar patch-up (the serving GEMMs have
/// k % 64 == 32 — conv2's K is 160 — so a scalar tail would run 20% of
/// their MACs at scalar speed).
inline __m512i loadu_512_tail(const std::int8_t* p, std::int64_t rem) noexcept {
  const __mmask64 mk = static_cast<__mmask64>(~0ULL >> (64 - rem));
  return _mm512_maskz_loadu_epi8(mk, p);
}

/// gemm_i8u8_dot body: the 4x4 tile below with 64-byte chunks and no
/// widening at all — vpdpbusd eats the raw bytes, doubling the per-
/// instruction MAC density of the widened signed path.
template <bool kAU>
void gemm_i8u8_tile512(std::int64_t m, std::int64_t n, std::int64_t k,
                       const std::int8_t* a, std::int64_t lda,
                       const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                       std::int64_t ldc) noexcept {
  const std::int64_t k64 = k & ~static_cast<std::int64_t>(63);
  const std::int64_t krem = k - k64;
  std::int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const std::int8_t* arow0 = a + (i + 0) * lda;
    const std::int8_t* arow1 = a + (i + 1) * lda;
    const std::int8_t* arow2 = a + (i + 2) * lda;
    const std::int8_t* arow3 = a + (i + 3) * lda;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + (j + 0) * ldb;
      const std::int8_t* b1 = b + (j + 1) * ldb;
      const std::int8_t* b2 = b + (j + 2) * ldb;
      const std::int8_t* b3 = b + (j + 3) * ldb;
      __m512i acc00 = _mm512_setzero_si512();
      __m512i acc01 = _mm512_setzero_si512();
      __m512i acc02 = _mm512_setzero_si512();
      __m512i acc03 = _mm512_setzero_si512();
      __m512i acc10 = _mm512_setzero_si512();
      __m512i acc11 = _mm512_setzero_si512();
      __m512i acc12 = _mm512_setzero_si512();
      __m512i acc13 = _mm512_setzero_si512();
      __m512i acc20 = _mm512_setzero_si512();
      __m512i acc21 = _mm512_setzero_si512();
      __m512i acc22 = _mm512_setzero_si512();
      __m512i acc23 = _mm512_setzero_si512();
      __m512i acc30 = _mm512_setzero_si512();
      __m512i acc31 = _mm512_setzero_si512();
      __m512i acc32 = _mm512_setzero_si512();
      __m512i acc33 = _mm512_setzero_si512();
      std::int64_t p = 0;
      for (; p < k64; p += 64) {
        const __m512i a0v = loadu_512(arow0 + p);
        const __m512i a1v = loadu_512(arow1 + p);
        const __m512i a2v = loadu_512(arow2 + p);
        const __m512i a3v = loadu_512(arow3 + p);
        const __m512i b0v = loadu_512(b0 + p);
        acc00 = dot64u<kAU>(acc00, a0v, b0v);
        acc10 = dot64u<kAU>(acc10, a1v, b0v);
        acc20 = dot64u<kAU>(acc20, a2v, b0v);
        acc30 = dot64u<kAU>(acc30, a3v, b0v);
        const __m512i b1v = loadu_512(b1 + p);
        acc01 = dot64u<kAU>(acc01, a0v, b1v);
        acc11 = dot64u<kAU>(acc11, a1v, b1v);
        acc21 = dot64u<kAU>(acc21, a2v, b1v);
        acc31 = dot64u<kAU>(acc31, a3v, b1v);
        const __m512i b2v = loadu_512(b2 + p);
        acc02 = dot64u<kAU>(acc02, a0v, b2v);
        acc12 = dot64u<kAU>(acc12, a1v, b2v);
        acc22 = dot64u<kAU>(acc22, a2v, b2v);
        acc32 = dot64u<kAU>(acc32, a3v, b2v);
        const __m512i b3v = loadu_512(b3 + p);
        acc03 = dot64u<kAU>(acc03, a0v, b3v);
        acc13 = dot64u<kAU>(acc13, a1v, b3v);
        acc23 = dot64u<kAU>(acc23, a2v, b3v);
        acc33 = dot64u<kAU>(acc33, a3v, b3v);
      }
      if (krem != 0) {
        const __m512i a0v = loadu_512_tail(arow0 + p, krem);
        const __m512i a1v = loadu_512_tail(arow1 + p, krem);
        const __m512i a2v = loadu_512_tail(arow2 + p, krem);
        const __m512i a3v = loadu_512_tail(arow3 + p, krem);
        const __m512i b0v = loadu_512_tail(b0 + p, krem);
        acc00 = dot64u<kAU>(acc00, a0v, b0v);
        acc10 = dot64u<kAU>(acc10, a1v, b0v);
        acc20 = dot64u<kAU>(acc20, a2v, b0v);
        acc30 = dot64u<kAU>(acc30, a3v, b0v);
        const __m512i b1v = loadu_512_tail(b1 + p, krem);
        acc01 = dot64u<kAU>(acc01, a0v, b1v);
        acc11 = dot64u<kAU>(acc11, a1v, b1v);
        acc21 = dot64u<kAU>(acc21, a2v, b1v);
        acc31 = dot64u<kAU>(acc31, a3v, b1v);
        const __m512i b2v = loadu_512_tail(b2 + p, krem);
        acc02 = dot64u<kAU>(acc02, a0v, b2v);
        acc12 = dot64u<kAU>(acc12, a1v, b2v);
        acc22 = dot64u<kAU>(acc22, a2v, b2v);
        acc32 = dot64u<kAU>(acc32, a3v, b2v);
        const __m512i b3v = loadu_512_tail(b3 + p, krem);
        acc03 = dot64u<kAU>(acc03, a0v, b3v);
        acc13 = dot64u<kAU>(acc13, a1v, b3v);
        acc23 = dot64u<kAU>(acc23, a2v, b3v);
        acc33 = dot64u<kAU>(acc33, a3v, b3v);
      }
      const __m128i sums0 = hsum4_epi32(fold512(acc00), fold512(acc01),
                                        fold512(acc02), fold512(acc03));
      const __m128i sums1 = hsum4_epi32(fold512(acc10), fold512(acc11),
                                        fold512(acc12), fold512(acc13));
      const __m128i sums2 = hsum4_epi32(fold512(acc20), fold512(acc21),
                                        fold512(acc22), fold512(acc23));
      const __m128i sums3 = hsum4_epi32(fold512(acc30), fold512(acc31),
                                        fold512(acc32), fold512(acc33));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i + 0) * ldc + j),
                       sums0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i + 1) * ldc + j),
                       sums1);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i + 2) * ldc + j),
                       sums2);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i + 3) * ldc + j),
                       sums3);
    }
    for (; j < n; ++j) {
      const std::int8_t* brow = b + j * ldb;
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      std::int64_t p = 0;
      for (; p < k64; p += 64) {
        const __m512i bv = loadu_512(brow + p);
        acc0 = dot64u<kAU>(acc0, loadu_512(arow0 + p), bv);
        acc1 = dot64u<kAU>(acc1, loadu_512(arow1 + p), bv);
        acc2 = dot64u<kAU>(acc2, loadu_512(arow2 + p), bv);
        acc3 = dot64u<kAU>(acc3, loadu_512(arow3 + p), bv);
      }
      if (krem != 0) {
        const __m512i bv = loadu_512_tail(brow + p, krem);
        acc0 = dot64u<kAU>(acc0, loadu_512_tail(arow0 + p, krem), bv);
        acc1 = dot64u<kAU>(acc1, loadu_512_tail(arow1 + p, krem), bv);
        acc2 = dot64u<kAU>(acc2, loadu_512_tail(arow2 + p, krem), bv);
        acc3 = dot64u<kAU>(acc3, loadu_512_tail(arow3 + p, krem), bv);
      }
      c[(i + 0) * ldc + j] = hsum_epi32(fold512(acc0));
      c[(i + 1) * ldc + j] = hsum_epi32(fold512(acc1));
      c[(i + 2) * ldc + j] = hsum_epi32(fold512(acc2));
      c[(i + 3) * ldc + j] = hsum_epi32(fold512(acc3));
    }
  }
  for (; i < m; ++i) {
    const std::int8_t* arow = a + i * lda;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + (j + 0) * ldb;
      const std::int8_t* b1 = b + (j + 1) * ldb;
      const std::int8_t* b2 = b + (j + 2) * ldb;
      const std::int8_t* b3 = b + (j + 3) * ldb;
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      std::int64_t p = 0;
      for (; p < k64; p += 64) {
        const __m512i av = loadu_512(arow + p);
        acc0 = dot64u<kAU>(acc0, av, loadu_512(b0 + p));
        acc1 = dot64u<kAU>(acc1, av, loadu_512(b1 + p));
        acc2 = dot64u<kAU>(acc2, av, loadu_512(b2 + p));
        acc3 = dot64u<kAU>(acc3, av, loadu_512(b3 + p));
      }
      if (krem != 0) {
        const __m512i av = loadu_512_tail(arow + p, krem);
        acc0 = dot64u<kAU>(acc0, av, loadu_512_tail(b0 + p, krem));
        acc1 = dot64u<kAU>(acc1, av, loadu_512_tail(b1 + p, krem));
        acc2 = dot64u<kAU>(acc2, av, loadu_512_tail(b2 + p, krem));
        acc3 = dot64u<kAU>(acc3, av, loadu_512_tail(b3 + p, krem));
      }
      const __m128i sums = hsum4_epi32(fold512(acc0), fold512(acc1),
                                       fold512(acc2), fold512(acc3));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + i * ldc + j), sums);
    }
    for (; j < n; ++j) {
      const std::int8_t* brow = b + j * ldb;
      __m512i acc = _mm512_setzero_si512();
      std::int64_t p = 0;
      for (; p < k64; p += 64) {
        acc = dot64u<kAU>(acc, loadu_512(arow + p), loadu_512(brow + p));
      }
      if (krem != 0) {
        acc = dot64u<kAU>(acc, loadu_512_tail(arow + p, krem),
                          loadu_512_tail(brow + p, krem));
      }
      c[i * ldc + j] = hsum_epi32(fold512(acc));
    }
  }
}

}  // namespace

void avx2_vnni_gemm_i8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                           const std::int8_t* a, std::int64_t lda,
                           const std::int8_t* b, std::int64_t ldb,
                           std::int32_t* c, std::int64_t ldc) noexcept {
  const std::int64_t k32 = k & ~static_cast<std::int64_t>(31);
  std::int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const std::int8_t* arow0 = a + (i + 0) * lda;
    const std::int8_t* arow1 = a + (i + 1) * lda;
    const std::int8_t* arow2 = a + (i + 2) * lda;
    const std::int8_t* arow3 = a + (i + 3) * lda;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + (j + 0) * ldb;
      const std::int8_t* b1 = b + (j + 1) * ldb;
      const std::int8_t* b2 = b + (j + 2) * ldb;
      const std::int8_t* b3 = b + (j + 3) * ldb;
      __m512i acc00 = _mm512_setzero_si512();
      __m512i acc01 = _mm512_setzero_si512();
      __m512i acc02 = _mm512_setzero_si512();
      __m512i acc03 = _mm512_setzero_si512();
      __m512i acc10 = _mm512_setzero_si512();
      __m512i acc11 = _mm512_setzero_si512();
      __m512i acc12 = _mm512_setzero_si512();
      __m512i acc13 = _mm512_setzero_si512();
      __m512i acc20 = _mm512_setzero_si512();
      __m512i acc21 = _mm512_setzero_si512();
      __m512i acc22 = _mm512_setzero_si512();
      __m512i acc23 = _mm512_setzero_si512();
      __m512i acc30 = _mm512_setzero_si512();
      __m512i acc31 = _mm512_setzero_si512();
      __m512i acc32 = _mm512_setzero_si512();
      __m512i acc33 = _mm512_setzero_si512();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        const __m512i a0w = widen32(arow0 + p);
        const __m512i a1w = widen32(arow1 + p);
        const __m512i a2w = widen32(arow2 + p);
        const __m512i a3w = widen32(arow3 + p);
        const __m512i b0w = widen32(b0 + p);
        acc00 = _mm512_dpwssd_epi32(acc00, a0w, b0w);
        acc10 = _mm512_dpwssd_epi32(acc10, a1w, b0w);
        acc20 = _mm512_dpwssd_epi32(acc20, a2w, b0w);
        acc30 = _mm512_dpwssd_epi32(acc30, a3w, b0w);
        const __m512i b1w = widen32(b1 + p);
        acc01 = _mm512_dpwssd_epi32(acc01, a0w, b1w);
        acc11 = _mm512_dpwssd_epi32(acc11, a1w, b1w);
        acc21 = _mm512_dpwssd_epi32(acc21, a2w, b1w);
        acc31 = _mm512_dpwssd_epi32(acc31, a3w, b1w);
        const __m512i b2w = widen32(b2 + p);
        acc02 = _mm512_dpwssd_epi32(acc02, a0w, b2w);
        acc12 = _mm512_dpwssd_epi32(acc12, a1w, b2w);
        acc22 = _mm512_dpwssd_epi32(acc22, a2w, b2w);
        acc32 = _mm512_dpwssd_epi32(acc32, a3w, b2w);
        const __m512i b3w = widen32(b3 + p);
        acc03 = _mm512_dpwssd_epi32(acc03, a0w, b3w);
        acc13 = _mm512_dpwssd_epi32(acc13, a1w, b3w);
        acc23 = _mm512_dpwssd_epi32(acc23, a2w, b3w);
        acc33 = _mm512_dpwssd_epi32(acc33, a3w, b3w);
      }
      __m128i sums0 = hsum4_epi32(fold512(acc00), fold512(acc01),
                                  fold512(acc02), fold512(acc03));
      __m128i sums1 = hsum4_epi32(fold512(acc10), fold512(acc11),
                                  fold512(acc12), fold512(acc13));
      __m128i sums2 = hsum4_epi32(fold512(acc20), fold512(acc21),
                                  fold512(acc22), fold512(acc23));
      __m128i sums3 = hsum4_epi32(fold512(acc30), fold512(acc31),
                                  fold512(acc32), fold512(acc33));
      if (p < k) {
        sums0 = tail4(sums0, arow0, b0, b1, b2, b3, p, k);
        sums1 = tail4(sums1, arow1, b0, b1, b2, b3, p, k);
        sums2 = tail4(sums2, arow2, b0, b1, b2, b3, p, k);
        sums3 = tail4(sums3, arow3, b0, b1, b2, b3, p, k);
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i + 0) * ldc + j),
                       sums0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i + 1) * ldc + j),
                       sums1);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i + 2) * ldc + j),
                       sums2);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i + 3) * ldc + j),
                       sums3);
    }
    for (; j < n; ++j) {
      const std::int8_t* brow = b + j * ldb;
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        const __m512i bwv = widen32(brow + p);
        acc0 = _mm512_dpwssd_epi32(acc0, widen32(arow0 + p), bwv);
        acc1 = _mm512_dpwssd_epi32(acc1, widen32(arow1 + p), bwv);
        acc2 = _mm512_dpwssd_epi32(acc2, widen32(arow2 + p), bwv);
        acc3 = _mm512_dpwssd_epi32(acc3, widen32(arow3 + p), bwv);
      }
      std::int32_t s0 = hsum_epi32(fold512(acc0));
      std::int32_t s1 = hsum_epi32(fold512(acc1));
      std::int32_t s2 = hsum_epi32(fold512(acc2));
      std::int32_t s3 = hsum_epi32(fold512(acc3));
      for (; p < k; ++p) {
        const std::int32_t bv = brow[p];
        s0 += static_cast<std::int32_t>(arow0[p]) * bv;
        s1 += static_cast<std::int32_t>(arow1[p]) * bv;
        s2 += static_cast<std::int32_t>(arow2[p]) * bv;
        s3 += static_cast<std::int32_t>(arow3[p]) * bv;
      }
      c[(i + 0) * ldc + j] = s0;
      c[(i + 1) * ldc + j] = s1;
      c[(i + 2) * ldc + j] = s2;
      c[(i + 3) * ldc + j] = s3;
    }
  }
  for (; i < m; ++i) {
    const std::int8_t* arow = a + i * lda;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + (j + 0) * ldb;
      const std::int8_t* b1 = b + (j + 1) * ldb;
      const std::int8_t* b2 = b + (j + 2) * ldb;
      const std::int8_t* b3 = b + (j + 3) * ldb;
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512();
      __m512i acc3 = _mm512_setzero_si512();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        const __m512i aw = widen32(arow + p);
        acc0 = _mm512_dpwssd_epi32(acc0, aw, widen32(b0 + p));
        acc1 = _mm512_dpwssd_epi32(acc1, aw, widen32(b1 + p));
        acc2 = _mm512_dpwssd_epi32(acc2, aw, widen32(b2 + p));
        acc3 = _mm512_dpwssd_epi32(acc3, aw, widen32(b3 + p));
      }
      __m128i sums = hsum4_epi32(fold512(acc0), fold512(acc1), fold512(acc2),
                                 fold512(acc3));
      if (p < k) sums = tail4(sums, arow, b0, b1, b2, b3, p, k);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + i * ldc + j), sums);
    }
    for (; j < n; ++j) {
      const std::int8_t* brow = b + j * ldb;
      __m512i acc = _mm512_setzero_si512();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        acc = _mm512_dpwssd_epi32(acc, widen32(arow + p), widen32(brow + p));
      }
      std::int32_t s = hsum_epi32(fold512(acc));
      for (; p < k; ++p) {
        s += static_cast<std::int32_t>(arow[p]) *
             static_cast<std::int32_t>(brow[p]);
      }
      c[i * ldc + j] = s;
    }
  }
}

void avx2_vnni_gemm_i8u8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                             const std::int8_t* a, std::int64_t lda,
                             const std::int8_t* b, std::int64_t ldb,
                             std::int32_t* c, std::int64_t ldc,
                             bool a_unsigned) noexcept {
  if (a_unsigned) {
    gemm_i8u8_tile512<true>(m, n, k, a, lda, b, ldb, c, ldc);
  } else {
    gemm_i8u8_tile512<false>(m, n, k, a, lda, b, ldb, c, ldc);
  }
}

}  // namespace fitact::kern

#endif  // FITACT_HAVE_AVX512VNNI_KERNELS
