// Portable scalar backend: the reference semantics for every dispatched
// kernel, and the fallback on hosts (or builds) without AVX2. The loops here
// came from tensor/gemm.cpp's original kernel_panel and the inline bodies
// that used to live in autograd/op_kernels.h — minus the value-dependent
// zero-skip the old GEMM panel carried, which silently dropped NaN/Inf
// propagation from B whenever the matching A element was zero (exactly the
// values injected hardware faults produce; gemm_fuzz_test now pins this).
#include "tensor/kernels/kernel_table.h"

namespace fitact::kern {
namespace {

void scalar_gemm_panel(std::int64_t mb, std::int64_t nb, std::int64_t kb,
                       float alpha, const float* ap, const float* b,
                       std::int64_t ldb, float* c,
                       std::int64_t ldc) noexcept {
  for (std::int64_t i = 0; i < mb; ++i) {
    const float* arow = ap + i * kb;
    float* crow = c + i * ldc;
    for (std::int64_t p = 0; p < kb; ++p) {
      // No zero-skip on aval: 0 * NaN = NaN and 0 * Inf = NaN must reach C.
      const float aval = alpha * arow[p];
      const float* brow = b + p * ldb;
      std::int64_t j = 0;
      for (; j + 4 <= nb; j += 4) {
        crow[j + 0] += aval * brow[j + 0];
        crow[j + 1] += aval * brow[j + 1];
        crow[j + 2] += aval * brow[j + 2];
        crow[j + 3] += aval * brow[j + 3];
      }
      for (; j < nb; ++j) crow[j] += aval * brow[j];
    }
  }
}

void scalar_relu(const float* x, float* o, std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) o[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void scalar_add(const float* a, const float* b, float* o,
                std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}

void scalar_bias_add_row(float* row, const float* bias,
                         std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) row[i] += bias[i];
}

void scalar_bias_add_const(float* row, float value, std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) row[i] += value;
}

/// One span of elements sharing a single broadcast bound.
inline std::uint64_t clip_span_const(const float* x, float bound,
                                     bool saturate, float* o, std::int64_t n,
                                     bool count) noexcept {
  std::uint64_t events = 0;
  const float over = saturate ? bound : 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float xi = x[i];
    if (count) events += xi > bound;
    if (xi <= 0.0f) {
      o[i] = 0.0f;
    } else if (xi <= bound) {
      o[i] = xi;
    } else {
      o[i] = over;  // NaN lands here too: both ordered compares fail
    }
  }
  return events;
}

/// One span with an elementwise bound row (per-neuron granularity).
inline std::uint64_t clip_span_rowwise(const float* x, const float* bound,
                                       bool saturate, float* o,
                                       std::int64_t n, bool count) noexcept {
  std::uint64_t events = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float xi = x[i];
    const float bi = bound[i];
    if (count) events += xi > bi;
    if (xi <= 0.0f) {
      o[i] = 0.0f;
    } else if (xi <= bi) {
      o[i] = xi;
    } else {
      o[i] = saturate ? bi : 0.0f;
    }
  }
  return events;
}

std::uint64_t scalar_clipped_relu(const float* x, const float* bound,
                                  std::int64_t bound_numel, std::int64_t feat,
                                  std::int64_t hw, bool saturate, float* o,
                                  std::int64_t n, bool count) noexcept {
  std::uint64_t events = 0;
  if (bound_numel == 1) {
    return clip_span_const(x, bound[0], saturate, o, n, count);
  }
  // Walk whole per-sample rows; inside a row the bound broadcast is either
  // elementwise (per-neuron) or constant over hw-length channel spans.
  for (std::int64_t base = 0; base < n; base += feat) {
    const std::int64_t row = base + feat <= n ? feat : n - base;
    if (bound_numel == feat) {
      events += clip_span_rowwise(x + base, bound, saturate, o + base, row,
                                  count);
    } else {  // per-channel: bound index = fi / hw
      for (std::int64_t f = 0; f < row; f += hw) {
        const std::int64_t span = f + hw <= row ? hw : row - f;
        events += clip_span_const(x + base + f, bound[f / hw], saturate,
                                  o + base + f, span, count);
      }
    }
  }
  return events;
}

/// Count-only spans mirroring clip_span_*: events += x > bound.
inline std::uint64_t count_span_const(const float* x, float bound,
                                      std::int64_t n) noexcept {
  std::uint64_t events = 0;
  for (std::int64_t i = 0; i < n; ++i) events += x[i] > bound;
  return events;
}

inline std::uint64_t count_span_rowwise(const float* x, const float* bound,
                                        std::int64_t n) noexcept {
  std::uint64_t events = 0;
  for (std::int64_t i = 0; i < n; ++i) events += x[i] > bound[i];
  return events;
}

std::uint64_t scalar_count_over_bound(const float* x, const float* bound,
                                      std::int64_t bound_numel,
                                      std::int64_t feat, std::int64_t hw,
                                      std::int64_t n) noexcept {
  if (bound_numel == 1) return count_span_const(x, bound[0], n);
  std::uint64_t events = 0;
  for (std::int64_t base = 0; base < n; base += feat) {
    const std::int64_t row = base + feat <= n ? feat : n - base;
    if (bound_numel == feat) {
      events += count_span_rowwise(x + base, bound, row);
    } else {
      for (std::int64_t f = 0; f < row; f += hw) {
        const std::int64_t span = f + hw <= row ? hw : row - f;
        events += count_span_const(x + base + f, bound[f / hw], span);
      }
    }
  }
  return events;
}

// Fused GEMM epilogues: the bias add and the clamp are the same float ops
// the unfused bias_add_* + clip_span_* sequence performs, in the same order
// per element — only the store of the pre-activation value is elided. That
// is what keeps fused plans bit-identical to unfused ones.

std::uint64_t scalar_fused_bias_clip_cc(float* o, float bias, float bound,
                                        bool saturate, std::int64_t n,
                                        bool count) noexcept {
  std::uint64_t events = 0;
  const float over = saturate ? bound : 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float xi = o[i] + bias;
    if (count) events += xi > bound;
    if (xi <= 0.0f) {
      o[i] = 0.0f;
    } else if (xi <= bound) {
      o[i] = xi;
    } else {
      o[i] = over;  // NaN lands here too: both ordered compares fail
    }
  }
  return events;
}

std::uint64_t scalar_fused_bias_clip_cr(float* o, float bias,
                                        const float* bound, bool saturate,
                                        std::int64_t n, bool count) noexcept {
  std::uint64_t events = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float xi = o[i] + bias;
    const float bi = bound[i];
    if (count) events += xi > bi;
    if (xi <= 0.0f) {
      o[i] = 0.0f;
    } else if (xi <= bi) {
      o[i] = xi;
    } else {
      o[i] = saturate ? bi : 0.0f;
    }
  }
  return events;
}

std::uint64_t scalar_fused_bias_clip_rc(float* o, const float* bias,
                                        float bound, bool saturate,
                                        std::int64_t n, bool count) noexcept {
  std::uint64_t events = 0;
  const float over = saturate ? bound : 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float xi = o[i] + bias[i];
    if (count) events += xi > bound;
    if (xi <= 0.0f) {
      o[i] = 0.0f;
    } else if (xi <= bound) {
      o[i] = xi;
    } else {
      o[i] = over;
    }
  }
  return events;
}

std::uint64_t scalar_fused_bias_clip_rr(float* o, const float* bias,
                                        const float* bound, bool saturate,
                                        std::int64_t n, bool count) noexcept {
  std::uint64_t events = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float xi = o[i] + bias[i];
    const float bi = bound[i];
    if (count) events += xi > bi;
    if (xi <= 0.0f) {
      o[i] = 0.0f;
    } else if (xi <= bi) {
      o[i] = xi;
    } else {
      o[i] = saturate ? bi : 0.0f;
    }
  }
  return events;
}

}  // namespace

const KernelTable& scalar_table() noexcept {
  static constexpr KernelTable kTable = {
      scalar_gemm_panel,    scalar_relu,
      scalar_add,           scalar_bias_add_row,
      scalar_bias_add_const, scalar_clipped_relu,
      scalar_count_over_bound,
      scalar_fused_bias_clip_cc,
      scalar_fused_bias_clip_cr,
      scalar_fused_bias_clip_rc,
      scalar_fused_bias_clip_rr,
      scalar_gemm_i8_dot,
      scalar_gemm_i8u8_dot,
      scalar_quantize_i8,
      scalar_dequant_i32,
      scalar_fused_dequant_clip_cc,
      scalar_fused_dequant_clip_cr,
      scalar_fused_dequant_clip_rc,
      scalar_fused_dequant_clip_rr,
  };
  return kTable;
}

}  // namespace fitact::kern
