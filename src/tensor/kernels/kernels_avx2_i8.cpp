// AVX2 int8 kernels. Only compiled when the toolchain targets AVX2
// (FITACT_HAVE_AVX2_KERNELS); selected by dispatch.cpp only after cpuid.
// This TU and kernels_avx2.cpp are the only files allowed to include
// <immintrin.h> (scripts/lint.sh enforces it).
//
// Bit-identity with the scalar int8 TU is a hard contract (kernels.h):
//   * gemm_i8_dot widens both operands to int16 (_mm256_cvtepi8_epi16) and
//     accumulates _mm256_madd_epi16 pair-sums into int32 lanes. Every
//     product of two values in [-128, 127] is exact and integer addition is
//     order-independent, so accumulators match the scalar kernel bit-for-bit
//     for the full int8 range — including the -128 only bit flips produce.
//     (The maddubs unsigned*signed trick is deliberately avoided HERE: its
//     sign-transfer prepass wraps on a corrupted -128 and would break this.)
//   * gemm_i8u8_dot is where maddubs IS safe, with no prepass at all: the
//     caller guarantees one operand's bytes are genuine u8 in [0,127]
//     (FitAct's clamp epilogue makes post-activation values nonnegative), so
//     each maddubs int16 pair sum is bounded by 2*127*128 < 2^15 and cannot
//     saturate even against a fault-flipped -128 weight. Exact pairs + exact
//     int32 madd keep it bit-identical to the scalar/signed kernels.
//   * quantize_i8 mirrors the scalar clamp/round branches; NaN is masked to
//     0 explicitly because maxps/minps would otherwise leak it as -127.
//   * The dequantize epilogues use mul-then-add (two IEEE roundings), never
//     FMA, matching scalar float(acc) * scale + bias exactly.
#if defined(FITACT_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "tensor/kernels/kernel_table.h"

namespace fitact::kern {
namespace {

inline std::int32_t hsum_epi32(__m256i v) noexcept {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// acc += dot of 32 int8 pairs, as 8 int32 partial sums.
inline __m256i dot32(__m256i acc, __m256i a, __m256i b) noexcept {
  const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(a));
  const __m256i a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(a, 1));
  const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(b));
  const __m256i b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(b, 1));
  acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
  return _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
}

/// Pre-widened operand half: madd the int16 halves of one 32-byte chunk.
inline __m256i dot32w(__m256i acc, __m256i a_lo, __m256i a_hi, __m256i b)
    noexcept {
  const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(b));
  const __m256i b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(b, 1));
  acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
  return _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
}

/// Transpose-reduce four int32x8 accumulators to their four lane sums.
/// Integer addition is associative, so any reduction order yields the same
/// bits as four independent hsum_epi32 calls — this one costs ~6 shuffles
/// for all four outputs instead of ~6 each.
inline __m128i hsum4_epi32(__m256i v0, __m256i v1, __m256i v2,
                           __m256i v3) noexcept {
  const __m256i s01 = _mm256_hadd_epi32(v0, v1);
  const __m256i s23 = _mm256_hadd_epi32(v2, v3);
  const __m256i s = _mm256_hadd_epi32(s01, s23);
  return _mm_add_epi32(_mm256_castsi256_si128(s),
                       _mm256_extracti128_si256(s, 1));
}

inline __m256i loadu_256(const void* p) noexcept {
  return _mm256_loadu_si256(static_cast<const __m256i*>(p));
}

/// acc += dot of 32 u8xs8 byte pairs. maddubs wants its unsigned operand
/// first; kAU says whether that is the GEMM's a or b. The int16 pair sums
/// are exact for u in [0,127] (see file comment), and madd against ones
/// widens them exactly to int32.
template <bool kAU>
inline __m256i dot32u(__m256i acc, __m256i av, __m256i bv,
                      __m256i ones) noexcept {
  const __m256i pair =
      kAU ? _mm256_maddubs_epi16(av, bv) : _mm256_maddubs_epi16(bv, av);
  return _mm256_add_epi32(acc, _mm256_madd_epi16(pair, ones));
}

/// gemm_i8u8_dot body: the signed kernel's 2x4 tile with each widen+2*madd
/// dot replaced by one maddubs+madd — double the bytes per instruction.
template <bool kAU>
void gemm_i8u8_tile(std::int64_t m, std::int64_t n, std::int64_t k,
                    const std::int8_t* a, std::int64_t lda,
                    const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                    std::int64_t ldc) noexcept {
  const __m256i ones = _mm256_set1_epi16(1);
  const std::int64_t k32 = k & ~static_cast<std::int64_t>(31);
  std::int64_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const std::int8_t* arow0 = a + i * lda;
    const std::int8_t* arow1 = a + (i + 1) * lda;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + (j + 0) * ldb;
      const std::int8_t* b1 = b + (j + 1) * ldb;
      const std::int8_t* b2 = b + (j + 2) * ldb;
      const std::int8_t* b3 = b + (j + 3) * ldb;
      __m256i acc00 = _mm256_setzero_si256();
      __m256i acc01 = _mm256_setzero_si256();
      __m256i acc02 = _mm256_setzero_si256();
      __m256i acc03 = _mm256_setzero_si256();
      __m256i acc10 = _mm256_setzero_si256();
      __m256i acc11 = _mm256_setzero_si256();
      __m256i acc12 = _mm256_setzero_si256();
      __m256i acc13 = _mm256_setzero_si256();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        const __m256i a0 = loadu_256(arow0 + p);
        const __m256i a1 = loadu_256(arow1 + p);
        const __m256i bv0 = loadu_256(b0 + p);
        acc00 = dot32u<kAU>(acc00, a0, bv0, ones);
        acc10 = dot32u<kAU>(acc10, a1, bv0, ones);
        const __m256i bv1 = loadu_256(b1 + p);
        acc01 = dot32u<kAU>(acc01, a0, bv1, ones);
        acc11 = dot32u<kAU>(acc11, a1, bv1, ones);
        const __m256i bv2 = loadu_256(b2 + p);
        acc02 = dot32u<kAU>(acc02, a0, bv2, ones);
        acc12 = dot32u<kAU>(acc12, a1, bv2, ones);
        const __m256i bv3 = loadu_256(b3 + p);
        acc03 = dot32u<kAU>(acc03, a0, bv3, ones);
        acc13 = dot32u<kAU>(acc13, a1, bv3, ones);
      }
      __m128i sums0 = hsum4_epi32(acc00, acc01, acc02, acc03);
      __m128i sums1 = hsum4_epi32(acc10, acc11, acc12, acc13);
      if (p < k) {
        alignas(16) std::int32_t t0[4];
        alignas(16) std::int32_t t1[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(t0), sums0);
        _mm_store_si128(reinterpret_cast<__m128i*>(t1), sums1);
        for (; p < k; ++p) {
          const std::int32_t a0v = arow0[p];
          const std::int32_t a1v = arow1[p];
          t0[0] += a0v * b0[p];
          t0[1] += a0v * b1[p];
          t0[2] += a0v * b2[p];
          t0[3] += a0v * b3[p];
          t1[0] += a1v * b0[p];
          t1[1] += a1v * b1[p];
          t1[2] += a1v * b2[p];
          t1[3] += a1v * b3[p];
        }
        sums0 = _mm_load_si128(reinterpret_cast<const __m128i*>(t0));
        sums1 = _mm_load_si128(reinterpret_cast<const __m128i*>(t1));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + i * ldc + j), sums0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i + 1) * ldc + j),
                       sums1);
    }
    for (; j < n; ++j) {
      const std::int8_t* brow = b + j * ldb;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        const __m256i bv = loadu_256(brow + p);
        acc0 = dot32u<kAU>(acc0, loadu_256(arow0 + p), bv, ones);
        acc1 = dot32u<kAU>(acc1, loadu_256(arow1 + p), bv, ones);
      }
      std::int32_t s0 = hsum_epi32(acc0);
      std::int32_t s1 = hsum_epi32(acc1);
      for (; p < k; ++p) {
        const std::int32_t bv = brow[p];
        s0 += static_cast<std::int32_t>(arow0[p]) * bv;
        s1 += static_cast<std::int32_t>(arow1[p]) * bv;
      }
      c[i * ldc + j] = s0;
      c[(i + 1) * ldc + j] = s1;
    }
  }
  for (; i < m; ++i) {
    const std::int8_t* arow = a + i * lda;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + (j + 0) * ldb;
      const std::int8_t* b1 = b + (j + 1) * ldb;
      const std::int8_t* b2 = b + (j + 2) * ldb;
      const std::int8_t* b3 = b + (j + 3) * ldb;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        const __m256i av = loadu_256(arow + p);
        acc0 = dot32u<kAU>(acc0, av, loadu_256(b0 + p), ones);
        acc1 = dot32u<kAU>(acc1, av, loadu_256(b1 + p), ones);
        acc2 = dot32u<kAU>(acc2, av, loadu_256(b2 + p), ones);
        acc3 = dot32u<kAU>(acc3, av, loadu_256(b3 + p), ones);
      }
      __m128i sums = hsum4_epi32(acc0, acc1, acc2, acc3);
      if (p < k) {
        alignas(16) std::int32_t t[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(t), sums);
        for (; p < k; ++p) {
          const std::int32_t av = arow[p];
          t[0] += av * b0[p];
          t[1] += av * b1[p];
          t[2] += av * b2[p];
          t[3] += av * b3[p];
        }
        sums = _mm_load_si128(reinterpret_cast<const __m128i*>(t));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + i * ldc + j), sums);
    }
    for (; j < n; ++j) {
      const std::int8_t* brow = b + j * ldb;
      __m256i acc = _mm256_setzero_si256();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        acc = dot32u<kAU>(acc, loadu_256(arow + p), loadu_256(brow + p), ones);
      }
      std::int32_t s = hsum_epi32(acc);
      for (; p < k; ++p) {
        s += static_cast<std::int32_t>(arow[p]) *
             static_cast<std::int32_t>(brow[p]);
      }
      c[i * ldc + j] = s;
    }
  }
}

// clip8/count8 duplicate kernels_avx2.cpp's helpers (both live in anonymous
// namespaces; the branch structure must stay in lockstep with the scalar
// cascade: x <= 0 -> 0; x <= b -> x; else over; NaN -> over path).
inline __m256 clip8(__m256 x, __m256 b, __m256 over, __m256 zero) noexcept {
  const __m256 le0 = _mm256_cmp_ps(x, zero, _CMP_LE_OQ);
  const __m256 leb = _mm256_cmp_ps(x, b, _CMP_LE_OQ);
  __m256 r = _mm256_blendv_ps(over, x, leb);
  r = _mm256_blendv_ps(r, zero, le0);
  return r;
}

inline std::uint64_t count8(__m256 x, __m256 b) noexcept {
  return static_cast<std::uint64_t>(__builtin_popcount(static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_cmp_ps(x, b, _CMP_GT_OQ)))));
}

/// float(acc) * scale + bias with two roundings (no FMA — see file comment).
inline __m256 dequant8(__m256i acc, __m256 scale, __m256 bias) noexcept {
  return _mm256_add_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(acc), scale), bias);
}

}  // namespace

void avx2_gemm_i8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::int8_t* a, std::int64_t lda,
                      const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                      std::int64_t ldc) noexcept {
  const std::int64_t k32 = k & ~static_cast<std::int64_t>(31);
  // 2x4 register tile. The serving GEMMs are short-k (an im2row conv's k is
  // a few dozen to a few hundred), so per-output fixed costs — operand
  // widening and the horizontal reduction — dominate a naive dot loop. The
  // tile makes both amortized: each A chunk is widened once and reused by
  // four B columns, each B chunk is widened once and reused by two A rows,
  // and the eight accumulators reduce via two 4-way hadd transposes instead
  // of eight lane-by-lane sums. All-integer arithmetic keeps every tiling
  // choice bit-identical to the scalar kernel.
  std::int64_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const std::int8_t* arow0 = a + i * lda;
    const std::int8_t* arow1 = a + (i + 1) * lda;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + (j + 0) * ldb;
      const std::int8_t* b1 = b + (j + 1) * ldb;
      const std::int8_t* b2 = b + (j + 2) * ldb;
      const std::int8_t* b3 = b + (j + 3) * ldb;
      __m256i acc00 = _mm256_setzero_si256();
      __m256i acc01 = _mm256_setzero_si256();
      __m256i acc02 = _mm256_setzero_si256();
      __m256i acc03 = _mm256_setzero_si256();
      __m256i acc10 = _mm256_setzero_si256();
      __m256i acc11 = _mm256_setzero_si256();
      __m256i acc12 = _mm256_setzero_si256();
      __m256i acc13 = _mm256_setzero_si256();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        const __m256i a0 = loadu_256(arow0 + p);
        const __m256i a1 = loadu_256(arow1 + p);
        const __m256i a0_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(a0));
        const __m256i a0_hi =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(a0, 1));
        const __m256i a1_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(a1));
        const __m256i a1_hi =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(a1, 1));
        {
          const __m256i bv = loadu_256(b0 + p);
          const __m256i b_lo =
              _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
          const __m256i b_hi =
              _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
          acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(a0_lo, b_lo));
          acc00 = _mm256_add_epi32(acc00, _mm256_madd_epi16(a0_hi, b_hi));
          acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(a1_lo, b_lo));
          acc10 = _mm256_add_epi32(acc10, _mm256_madd_epi16(a1_hi, b_hi));
        }
        {
          const __m256i bv = loadu_256(b1 + p);
          const __m256i b_lo =
              _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
          const __m256i b_hi =
              _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
          acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(a0_lo, b_lo));
          acc01 = _mm256_add_epi32(acc01, _mm256_madd_epi16(a0_hi, b_hi));
          acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(a1_lo, b_lo));
          acc11 = _mm256_add_epi32(acc11, _mm256_madd_epi16(a1_hi, b_hi));
        }
        {
          const __m256i bv = loadu_256(b2 + p);
          const __m256i b_lo =
              _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
          const __m256i b_hi =
              _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
          acc02 = _mm256_add_epi32(acc02, _mm256_madd_epi16(a0_lo, b_lo));
          acc02 = _mm256_add_epi32(acc02, _mm256_madd_epi16(a0_hi, b_hi));
          acc12 = _mm256_add_epi32(acc12, _mm256_madd_epi16(a1_lo, b_lo));
          acc12 = _mm256_add_epi32(acc12, _mm256_madd_epi16(a1_hi, b_hi));
        }
        {
          const __m256i bv = loadu_256(b3 + p);
          const __m256i b_lo =
              _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
          const __m256i b_hi =
              _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
          acc03 = _mm256_add_epi32(acc03, _mm256_madd_epi16(a0_lo, b_lo));
          acc03 = _mm256_add_epi32(acc03, _mm256_madd_epi16(a0_hi, b_hi));
          acc13 = _mm256_add_epi32(acc13, _mm256_madd_epi16(a1_lo, b_lo));
          acc13 = _mm256_add_epi32(acc13, _mm256_madd_epi16(a1_hi, b_hi));
        }
      }
      __m128i sums0 = hsum4_epi32(acc00, acc01, acc02, acc03);
      __m128i sums1 = hsum4_epi32(acc10, acc11, acc12, acc13);
      if (p < k) {
        alignas(16) std::int32_t t0[4];
        alignas(16) std::int32_t t1[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(t0), sums0);
        _mm_store_si128(reinterpret_cast<__m128i*>(t1), sums1);
        for (; p < k; ++p) {
          const std::int32_t a0 = arow0[p];
          const std::int32_t a1 = arow1[p];
          t0[0] += a0 * b0[p];
          t0[1] += a0 * b1[p];
          t0[2] += a0 * b2[p];
          t0[3] += a0 * b3[p];
          t1[0] += a1 * b0[p];
          t1[1] += a1 * b1[p];
          t1[2] += a1 * b2[p];
          t1[3] += a1 * b3[p];
        }
        sums0 = _mm_load_si128(reinterpret_cast<const __m128i*>(t0));
        sums1 = _mm_load_si128(reinterpret_cast<const __m128i*>(t1));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + i * ldc + j), sums0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i + 1) * ldc + j),
                       sums1);
    }
    for (; j < n; ++j) {
      const std::int8_t* brow = b + j * ldb;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        const __m256i bv = loadu_256(brow + p);
        const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
        const __m256i b_hi =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
        acc0 = dot32w(acc0, b_lo, b_hi, loadu_256(arow0 + p));
        acc1 = dot32w(acc1, b_lo, b_hi, loadu_256(arow1 + p));
      }
      std::int32_t s0 = hsum_epi32(acc0);
      std::int32_t s1 = hsum_epi32(acc1);
      for (; p < k; ++p) {
        const std::int32_t bv = brow[p];
        s0 += static_cast<std::int32_t>(arow0[p]) * bv;
        s1 += static_cast<std::int32_t>(arow1[p]) * bv;
      }
      c[i * ldc + j] = s0;
      c[(i + 1) * ldc + j] = s1;
    }
  }
  for (; i < m; ++i) {
    const std::int8_t* arow = a + i * lda;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + (j + 0) * ldb;
      const std::int8_t* b1 = b + (j + 1) * ldb;
      const std::int8_t* b2 = b + (j + 2) * ldb;
      const std::int8_t* b3 = b + (j + 3) * ldb;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        const __m256i av = loadu_256(arow + p);
        const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(av));
        const __m256i a_hi =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(av, 1));
        acc0 = dot32w(acc0, a_lo, a_hi, loadu_256(b0 + p));
        acc1 = dot32w(acc1, a_lo, a_hi, loadu_256(b1 + p));
        acc2 = dot32w(acc2, a_lo, a_hi, loadu_256(b2 + p));
        acc3 = dot32w(acc3, a_lo, a_hi, loadu_256(b3 + p));
      }
      __m128i sums = hsum4_epi32(acc0, acc1, acc2, acc3);
      if (p < k) {
        alignas(16) std::int32_t t[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(t), sums);
        for (; p < k; ++p) {
          const std::int32_t av = arow[p];
          t[0] += av * b0[p];
          t[1] += av * b1[p];
          t[2] += av * b2[p];
          t[3] += av * b3[p];
        }
        sums = _mm_load_si128(reinterpret_cast<const __m128i*>(t));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + i * ldc + j), sums);
    }
    for (; j < n; ++j) {
      const std::int8_t* brow = b + j * ldb;
      __m256i acc = _mm256_setzero_si256();
      std::int64_t p = 0;
      for (; p < k32; p += 32) {
        acc = dot32(acc, loadu_256(arow + p), loadu_256(brow + p));
      }
      std::int32_t s = hsum_epi32(acc);
      for (; p < k; ++p) {
        s += static_cast<std::int32_t>(arow[p]) *
             static_cast<std::int32_t>(brow[p]);
      }
      c[i * ldc + j] = s;
    }
  }
}

void avx2_gemm_i8u8_dot(std::int64_t m, std::int64_t n, std::int64_t k,
                        const std::int8_t* a, std::int64_t lda,
                        const std::int8_t* b, std::int64_t ldb, std::int32_t* c,
                        std::int64_t ldc, bool a_unsigned) noexcept {
  if (a_unsigned) {
    gemm_i8u8_tile<true>(m, n, k, a, lda, b, ldb, c, ldc);
  } else {
    gemm_i8u8_tile<false>(m, n, k, a, lda, b, ldb, c, ldc);
  }
}

void avx2_quantize_i8(const float* x, float inv_scale, std::int8_t* q,
                      std::int64_t n) noexcept {
  const __m256 inv = _mm256_set1_ps(inv_scale);
  const __m256 lo = _mm256_set1_ps(-127.0f);
  const __m256 hi = _mm256_set1_ps(127.0f);
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i vi[4];
    for (int r = 0; r < 4; ++r) {
      __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i + 8 * r), inv);
      // maxps/minps return the second operand on NaN, which would turn NaN
      // into -127; mask NaN lanes back to 0 to match the scalar branch.
      const __m256 nan_mask = _mm256_cmp_ps(v, v, _CMP_UNORD_Q);
      v = _mm256_min_ps(_mm256_max_ps(v, lo), hi);
      vi[r] = _mm256_andnot_si256(_mm256_castps_si256(nan_mask),
                                  _mm256_cvtps_epi32(v));
    }
    // Pack 4 x i32x8 -> i8x32. packs interleaves 128-bit lanes; the final
    // permute restores element order. Saturation in packs is a no-op here —
    // every lane is already in [-127, 127].
    const __m256i ab = _mm256_packs_epi32(vi[0], vi[1]);
    const __m256i cd = _mm256_packs_epi32(vi[2], vi[3]);
    const __m256i abcd = _mm256_packs_epi16(ab, cd);
    const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i),
                        _mm256_permutevar8x32_epi32(abcd, order));
  }
  for (; i < n; ++i) {
    float r = x[i] * inv_scale;
    if (!(r == r)) {
      q[i] = 0;
      continue;
    }
    if (r > 127.0f) r = 127.0f;
    if (r < -127.0f) r = -127.0f;
    q[i] = static_cast<std::int8_t>(std::lrintf(r));
  }
}

void avx2_dequant_i32(std::int32_t* acc, float scale, float bias,
                      std::int64_t n) noexcept {
  const __m256 sv = _mm256_set1_ps(scale);
  const __m256 bv = _mm256_set1_ps(bias);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(reinterpret_cast<float*>(acc + i),
                     dequant8(loadu_256(acc + i), sv, bv));
  }
  for (; i < n; ++i) {
    const float xi = static_cast<float>(acc[i]) * scale + bias;
    std::int32_t raw;
    __builtin_memcpy(&raw, &xi, sizeof(raw));
    acc[i] = raw;
  }
}

std::uint64_t avx2_fused_dequant_clip_cc(std::int32_t* acc, float scale,
                                         float bias, float bound, bool saturate,
                                         std::int64_t n, bool count) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 sv = _mm256_set1_ps(scale);
  const __m256 biasv = _mm256_set1_ps(bias);
  const __m256 bv = _mm256_set1_ps(bound);
  const __m256 over = saturate ? bv : zero;
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = dequant8(loadu_256(acc + i), sv, biasv);
    if (count) events += count8(xv, bv);
    _mm256_storeu_ps(reinterpret_cast<float*>(acc + i),
                     clip8(xv, bv, over, zero));
  }
  const float over_s = saturate ? bound : 0.0f;
  for (; i < n; ++i) {
    const float xi = static_cast<float>(acc[i]) * scale + bias;
    if (count) events += xi > bound;
    const float r = xi <= 0.0f ? 0.0f : (xi <= bound ? xi : over_s);
    std::int32_t raw;
    __builtin_memcpy(&raw, &r, sizeof(raw));
    acc[i] = raw;
  }
  return events;
}

std::uint64_t avx2_fused_dequant_clip_cr(std::int32_t* acc, float scale,
                                         float bias, const float* bound,
                                         bool saturate, std::int64_t n,
                                         bool count) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 sv = _mm256_set1_ps(scale);
  const __m256 biasv = _mm256_set1_ps(bias);
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = dequant8(loadu_256(acc + i), sv, biasv);
    const __m256 bv = _mm256_loadu_ps(bound + i);
    if (count) events += count8(xv, bv);
    _mm256_storeu_ps(reinterpret_cast<float*>(acc + i),
                     clip8(xv, bv, saturate ? bv : zero, zero));
  }
  for (; i < n; ++i) {
    const float xi = static_cast<float>(acc[i]) * scale + bias;
    const float bi = bound[i];
    if (count) events += xi > bi;
    const float r =
        xi <= 0.0f ? 0.0f : (xi <= bi ? xi : (saturate ? bi : 0.0f));
    std::int32_t raw;
    __builtin_memcpy(&raw, &r, sizeof(raw));
    acc[i] = raw;
  }
  return events;
}

std::uint64_t avx2_fused_dequant_clip_rc(std::int32_t* acc, const float* scale,
                                         const float* bias, float bound,
                                         bool saturate, std::int64_t n,
                                         bool count) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 bv = _mm256_set1_ps(bound);
  const __m256 over = saturate ? bv : zero;
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 sv = _mm256_loadu_ps(scale + i);
    const __m256 biasv = bias != nullptr ? _mm256_loadu_ps(bias + i) : zero;
    const __m256 xv = dequant8(loadu_256(acc + i), sv, biasv);
    if (count) events += count8(xv, bv);
    _mm256_storeu_ps(reinterpret_cast<float*>(acc + i),
                     clip8(xv, bv, over, zero));
  }
  const float over_s = saturate ? bound : 0.0f;
  for (; i < n; ++i) {
    const float bi = bias != nullptr ? bias[i] : 0.0f;
    const float xi = static_cast<float>(acc[i]) * scale[i] + bi;
    if (count) events += xi > bound;
    const float r = xi <= 0.0f ? 0.0f : (xi <= bound ? xi : over_s);
    std::int32_t raw;
    __builtin_memcpy(&raw, &r, sizeof(raw));
    acc[i] = raw;
  }
  return events;
}

std::uint64_t avx2_fused_dequant_clip_rr(std::int32_t* acc, const float* scale,
                                         const float* bias, const float* bound,
                                         bool saturate, std::int64_t n,
                                         bool count) noexcept {
  const __m256 zero = _mm256_setzero_ps();
  std::uint64_t events = 0;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 sv = _mm256_loadu_ps(scale + i);
    const __m256 biasv = bias != nullptr ? _mm256_loadu_ps(bias + i) : zero;
    const __m256 xv = dequant8(loadu_256(acc + i), sv, biasv);
    const __m256 bv = _mm256_loadu_ps(bound + i);
    if (count) events += count8(xv, bv);
    _mm256_storeu_ps(reinterpret_cast<float*>(acc + i),
                     clip8(xv, bv, saturate ? bv : zero, zero));
  }
  for (; i < n; ++i) {
    const float bi = bias != nullptr ? bias[i] : 0.0f;
    const float xi = static_cast<float>(acc[i]) * scale[i] + bi;
    const float bo = bound[i];
    if (count) events += xi > bo;
    const float r =
        xi <= 0.0f ? 0.0f : (xi <= bo ? xi : (saturate ? bo : 0.0f));
    std::int32_t raw;
    __builtin_memcpy(&raw, &r, sizeof(raw));
    acc[i] = raw;
  }
  return events;
}

}  // namespace fitact::kern

#endif  // FITACT_HAVE_AVX2_KERNELS
