// Dense float32 tensor with shared, contiguous storage.
//
// Copying a Tensor is cheap (shared_ptr aliasing of the storage, like
// torch.Tensor); use clone() for an independent copy. All compute happens in
// float32; the fixed-point Q1.15.16 representation of the paper lives in
// src/quant and is applied to *stored parameters* only.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>

#include "tensor/shape.h"

namespace fitact::ut {
class Rng;
}

namespace fitact {

class Tensor {
 public:
  /// Empty (rank-0, no storage) tensor.
  Tensor() = default;

  /// Uninitialised tensor of the given shape.
  explicit Tensor(Shape shape);

  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// Standard-normal entries scaled by stddev.
  static Tensor randn(Shape shape, ut::Rng& rng, float stddev = 1.0f);
  /// Uniform entries in [lo, hi).
  static Tensor rand_uniform(Shape shape, ut::Rng& rng, float lo, float hi);
  /// 1-D tensor from a list.
  static Tensor from_values(std::initializer_list<float> values);
  /// Scalar (shape [1]).
  static Tensor scalar(float value);
  /// Non-owning view over caller-managed storage (e.g. an InferencePlan
  /// arena). The returned tensor shares no ownership: the caller must keep
  /// `data` alive for the view's lifetime, and clone() is the way to detach
  /// a result from it. Constructing a view performs no heap allocation.
  static Tensor view(Shape shape, float* data) noexcept;

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::int64_t numel() const noexcept { return numel_; }
  [[nodiscard]] bool defined() const noexcept { return data_ != nullptr; }

  [[nodiscard]] float* data() noexcept { return data_.get(); }
  [[nodiscard]] const float* data() const noexcept { return data_.get(); }
  [[nodiscard]] std::span<float> span() noexcept {
    return {data_.get(), static_cast<std::size_t>(numel_)};
  }
  [[nodiscard]] std::span<const float> span() const noexcept {
    return {data_.get(), static_cast<std::size_t>(numel_)};
  }

  /// Flat element access (no bounds check in release).
  float& operator[](std::int64_t i) noexcept { return data_.get()[i]; }
  float operator[](std::int64_t i) const noexcept { return data_.get()[i]; }

  /// N-d element access with bounds checking; for tests and small code paths.
  [[nodiscard]] float& at(std::initializer_list<std::int64_t> idx);
  [[nodiscard]] float at(std::initializer_list<std::int64_t> idx) const;

  /// Deep, independent copy.
  [[nodiscard]] Tensor clone() const;

  /// Same storage, different shape (numel must match).
  [[nodiscard]] Tensor reshape(Shape new_shape) const;

  /// Value of a single-element tensor.
  [[nodiscard]] float item() const;

  void fill(float value) noexcept;

  /// Copy values from another tensor of identical numel (shapes may differ).
  void copy_from(const Tensor& src);

  [[nodiscard]] std::string str() const;  // summary, for diagnostics

 private:
  Tensor(Shape shape, std::shared_ptr<float[]> data);

  Shape shape_;
  std::int64_t numel_ = 0;
  std::shared_ptr<float[]> data_;
};

}  // namespace fitact
