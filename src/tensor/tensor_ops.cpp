#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "tensor/gemm.h"

namespace fitact {
namespace {
void check_same_numel(const Tensor& a, const Tensor& b, const char* op) {
  if (a.numel() != b.numel()) {
    throw std::invalid_argument(std::string(op) + ": numel mismatch " +
                                a.shape().str() + " vs " + b.shape().str());
  }
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_numel(a, b, "add");
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] + pb[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_numel(a, b, "sub");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_numel(a, b, "mul");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * s;
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_numel(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}

void axpy_inplace(Tensor& y, float alpha, const Tensor& x) {
  check_same_numel(y, x, "axpy_inplace");
  float* py = y.data();
  const float* px = x.data();
  for (std::int64_t i = 0; i < y.numel(); ++i) py[i] += alpha * px[i];
}

void scale_inplace(Tensor& a, float s) {
  for (auto& v : a.span()) v *= s;
}

void clamp_min_inplace(Tensor& a, float lo) {
  for (auto& v : a.span()) v = std::max(v, lo);
}

float sum(const Tensor& a) {
  double acc = 0.0;
  for (const auto v : a.span()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  if (a.numel() == 0) return 0.0f;
  return sum(a) / static_cast<float>(a.numel());
}

float max_value(const Tensor& a) {
  float m = -std::numeric_limits<float>::infinity();
  for (const auto v : a.span()) m = std::max(m, v);
  return m;
}

float min_value(const Tensor& a) {
  float m = std::numeric_limits<float>::infinity();
  for (const auto v : a.span()) m = std::min(m, v);
  return m;
}

std::int64_t argmax_range(const Tensor& a, std::int64_t begin,
                          std::int64_t len) {
  if (len <= 0 || begin < 0 || begin + len > a.numel()) {
    throw std::out_of_range("argmax_range");
  }
  const float* p = a.data() + begin;
  std::int64_t best = 0;
  float best_v = p[0];
  for (std::int64_t i = 1; i < len; ++i) {
    if (p[i] > best_v) {
      best_v = p[i];
      best = i;
    }
  }
  return best;
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  if (a.shape().rank() != 2) {
    throw std::invalid_argument("argmax_rows expects rank-2 tensor");
  }
  const std::int64_t rows = a.shape()[0];
  const std::int64_t cols = a.shape()[1];
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    out[static_cast<std::size_t>(r)] = argmax_range(a, r * cols, cols);
  }
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    throw std::invalid_argument("matmul expects rank-2 tensors");
  }
  const std::int64_t m = a.shape()[0];
  const std::int64_t k = a.shape()[1];
  const std::int64_t k2 = b.shape()[0];
  const std::int64_t n = b.shape()[1];
  if (k != k2) {
    throw std::invalid_argument("matmul: inner dimension mismatch " +
                                a.shape().str() + " x " + b.shape().str());
  }
  Tensor c(Shape{m, n});
  sgemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f, c.data(),
        n);
  return c;
}

void im2col(const Conv2dGeometry& g, const float* image, float* col) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t hw = g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    const float* chan = image + c * hw;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* dst = col + row * (oh * ow);
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.padding;
          if (iy < 0 || iy >= g.in_h) {
            std::fill_n(dst + y * ow, static_cast<std::size_t>(ow), 0.0f);
            continue;
          }
          const float* src_row = chan + iy * g.in_w;
          const std::int64_t x0 = kw - g.padding;  // ix = x*stride + x0
          if (g.stride == 1) {
            // Contiguous copy of the valid middle, zero-fill the borders.
            std::int64_t x_lo = std::max<std::int64_t>(0, -x0);
            std::int64_t x_hi = std::min<std::int64_t>(ow, g.in_w - x0);
            if (x_hi < x_lo) x_hi = x_lo;
            std::fill_n(dst + y * ow, static_cast<std::size_t>(x_lo), 0.0f);
            if (x_hi > x_lo) {
              std::memcpy(dst + y * ow + x_lo, src_row + x0 + x_lo,
                          static_cast<std::size_t>(x_hi - x_lo) *
                              sizeof(float));
            }
            std::fill_n(dst + y * ow + x_hi,
                        static_cast<std::size_t>(ow - x_hi), 0.0f);
          } else {
            for (std::int64_t x = 0; x < ow; ++x) {
              const std::int64_t ix = x * g.stride + x0;
              dst[y * ow + x] =
                  (ix >= 0 && ix < g.in_w) ? src_row[ix] : 0.0f;
            }
          }
        }
      }
    }
  }
}

void col2im(const Conv2dGeometry& g, const float* col, float* image) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t hw = g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    float* chan = image + c * hw;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = col + row * (oh * ow);
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.padding;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst_row = chan + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kw - g.padding;
            if (ix >= 0 && ix < g.in_w) dst_row[ix] += src[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace fitact
