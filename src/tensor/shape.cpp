#include "tensor/shape.h"

#include <stdexcept>

namespace fitact {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (const auto d : dims_) {
    if (d < 0) throw std::invalid_argument("Shape: negative dimension");
  }
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (const auto d : dims_) {
    if (d < 0) throw std::invalid_argument("Shape: negative dimension");
  }
}

std::int64_t Shape::numel() const noexcept {
  std::int64_t n = 1;
  for (const auto d : dims_) n *= d;
  return n;
}

std::int64_t Shape::dim(std::int64_t i) const {
  const auto r = static_cast<std::int64_t>(dims_.size());
  if (i < 0) i += r;
  if (i < 0 || i >= r) throw std::out_of_range("Shape::dim index");
  return dims_[static_cast<std::size_t>(i)];
}

std::string Shape::str() const {
  std::string s = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(dims_[i]);
  }
  s += "]";
  return s;
}

}  // namespace fitact
