#include "core/post_training.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "autograd/ops.h"
#include "data/data_loader.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"
#include "util/timer.h"

namespace fitact::core {
namespace {

double clean_accuracy(nn::Module& model, const data::Dataset& ds,
                      std::int64_t max_samples, std::int64_t batch_size) {
  const NoGradGuard no_grad;
  model.set_training(false);
  const std::int64_t total =
      max_samples > 0 ? std::min(max_samples, ds.size()) : ds.size();
  std::int64_t correct = 0;
  std::int64_t done = 0;
  std::vector<std::int64_t> labels;
  while (done < total) {
    const std::int64_t count = std::min<std::int64_t>(batch_size, total - done);
    Tensor images = ds.batch(done, count, &labels);
    const Variable out = model.forward(Variable(std::move(images)));
    const auto pred = argmax_rows(out.value());
    for (std::int64_t i = 0; i < count; ++i) {
      if (pred[static_cast<std::size_t>(i)] == labels[static_cast<std::size_t>(i)]) {
        ++correct;
      }
    }
    done += count;
  }
  return total > 0 ? static_cast<double>(correct) / static_cast<double>(total)
                   : 0.0;
}

double bound_energy(const std::vector<Variable>& lambdas) {
  double acc = 0.0;
  for (const auto& l : lambdas) {
    for (const auto v : l.value().span()) acc += static_cast<double>(v) * v;
  }
  return acc;
}

}  // namespace

PostTrainReport post_train_bounds(nn::Module& model,
                                  const data::Dataset& train,
                                  const data::Dataset& val,
                                  double baseline_accuracy,
                                  const PostTrainConfig& config) {
  const ut::Timer timer;
  PostTrainReport report;
  report.baseline_accuracy = baseline_accuracy;

  // Gather the trainable bounds (Theta_R).
  std::vector<Variable> lambdas;
  std::int64_t bound_n = 0;
  for (const auto& act : collect_activations(model)) {
    if (act->scheme() != Scheme::fitrelu) continue;
    if (!act->has_bounds()) {
      throw std::logic_error(
          "post_train_bounds: fitrelu site without initialised bounds");
    }
    act->bounds().set_requires_grad(true);
    lambdas.push_back(act->bounds());
    bound_n += act->bounds().numel();
  }
  if (lambdas.empty()) {
    throw std::logic_error(
        "post_train_bounds: model has no fitrelu activation sites");
  }

  // Snapshots for the constraint-driven rollback.
  auto snapshot = [&lambdas] {
    std::vector<Tensor> s;
    s.reserve(lambdas.size());
    for (const auto& l : lambdas) s.push_back(l.value().clone());
    return s;
  };
  auto restore = [&lambdas](const std::vector<Tensor>& s) {
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
      lambdas[i].value().copy_from(s[i]);
    }
  };
  const std::vector<Tensor> initial = snapshot();
  std::vector<Tensor> best = snapshot();
  double best_energy = std::numeric_limits<double>::infinity();

  report.initial_accuracy =
      clean_accuracy(model, val, config.val_samples, config.batch_size);
  report.initial_bound_energy = bound_energy(lambdas);

  // Theta_A stays frozen: only lambdas enter the optimiser, and the model
  // runs in eval mode so BatchNorm statistics are not perturbed.
  model.set_training(false);
  nn::Adam adam(lambdas, config.lr);
  const float reg_scale = config.zeta / static_cast<float>(bound_n);

  data::DataLoader loader(train, config.batch_size, /*shuffle=*/true,
                          config.seed);
  data::Batch batch;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    loader.start_epoch();
    double loss_sum = 0.0;
    double ce_sum = 0.0;
    std::int64_t batches = 0;
    while (loader.next(batch)) {
      if (config.max_batches_per_epoch > 0 &&
          batches >= config.max_batches_per_epoch) {
        break;
      }
      adam.zero_grad();
      const Variable logits = model.forward(Variable(batch.images));
      const Variable ce = ag::softmax_cross_entropy(logits, batch.labels);
      Variable reg = ag::sum_of_squares(lambdas[0]);
      for (std::size_t i = 1; i < lambdas.size(); ++i) {
        reg = ag::add(reg, ag::sum_of_squares(lambdas[i]));
      }
      Variable loss = ag::add(ce, ag::scale(reg, reg_scale));
      loss.backward();
      adam.step();
      // Projection: bounds are magnitudes; keep them non-negative.
      for (auto& l : lambdas) clamp_min_inplace(l.value(), 0.0f);
      loss_sum += loss.value().item();
      ce_sum += ce.value().item();
      ++batches;
    }

    PostTrainEpoch ep;
    ep.loss = batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    ep.ce_loss = batches > 0 ? ce_sum / static_cast<double>(batches) : 0.0;
    ep.bound_energy = bound_energy(lambdas);
    ep.val_accuracy =
        clean_accuracy(model, val, config.val_samples, config.batch_size);
    ep.feasible =
        (baseline_accuracy - ep.val_accuracy) < static_cast<double>(config.delta);
    if (ep.feasible && ep.bound_energy < best_energy) {
      best_energy = ep.bound_energy;
      best = snapshot();
      report.any_feasible = true;
    }
    report.epochs.push_back(ep);
  }

  if (report.any_feasible) {
    restore(best);
  } else {
    restore(initial);
  }
  for (auto& l : lambdas) {
    l.zero_grad();
    l.set_requires_grad(false);
  }
  report.final_accuracy =
      clean_accuracy(model, val, config.val_samples, config.batch_size);
  report.final_bound_energy = bound_energy(lambdas);
  report.wall_time_s = timer.elapsed_s();
  return report;
}

}  // namespace fitact::core
