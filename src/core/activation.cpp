#include "core/activation.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "autograd/ops.h"
#include "nn/plan.h"
#include "tensor/kernels/kernels.h"

namespace fitact::core {

std::string to_string(Scheme s) {
  switch (s) {
    case Scheme::relu:
      return "relu";
    case Scheme::clip_act:
      return "clip_act";
    case Scheme::ranger:
      return "ranger";
    case Scheme::fitrelu_naive:
      return "fitrelu_naive";
    case Scheme::fitrelu:
      return "fitrelu";
  }
  return "?";
}

std::string to_string(Granularity g) {
  switch (g) {
    case Granularity::per_layer:
      return "per_layer";
    case Granularity::per_channel:
      return "per_channel";
    case Granularity::per_neuron:
      return "per_neuron";
  }
  return "?";
}

BoundedActivation::BoundedActivation(const ActivationConfig& config)
    : config_(config) {}

void BoundedActivation::observe_geometry(const Shape& xs) {
  std::int64_t feat = 0;
  std::int64_t channels = 0;
  std::int64_t hw = 1;
  if (xs.rank() == 2) {
    feat = xs[1];
    channels = xs[1];
  } else if (xs.rank() == 4) {
    feat = xs[1] * xs[2] * xs[3];
    channels = xs[1];
    hw = xs[2] * xs[3];
  } else {
    throw std::invalid_argument("BoundedActivation: rank-2/4 input expected, got " +
                                xs.str());
  }
  if (feat_ == 0) {
    feat_ = feat;
    channels_ = channels;
    hw_ = hw;
  } else if (feat_ != feat) {
    throw std::logic_error(
        "BoundedActivation: input feature extent changed between forwards (" +
        std::to_string(feat_) + " -> " + std::to_string(feat) +
        "); per-neuron bounds require a fixed activation-map shape");
  }
}

void BoundedActivation::update_profile(const Tensor& x) {
  if (!profile_max_.defined()) {
    profile_max_ = Tensor::zeros(Shape{feat_});
  }
  const std::int64_t batch = x.numel() / feat_;
  const float* px = x.data();
  float* pm = profile_max_.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* row = px + b * feat_;
    for (std::int64_t f = 0; f < feat_; ++f) {
      if (row[f] > pm[f]) pm[f] = row[f];
    }
  }
}

void BoundedActivation::init_bounds_from_profile(float margin) {
  if (!profile_max_.defined()) {
    throw std::logic_error(
        "BoundedActivation: no profile recorded; run a profiling pass before "
        "init_bounds_from_profile");
  }
  std::int64_t extent = 0;
  switch (config_.granularity) {
    case Granularity::per_layer:
      extent = 1;
      break;
    case Granularity::per_channel:
      extent = channels_;
      break;
    case Granularity::per_neuron:
      extent = feat_;
      break;
  }
  Tensor b = Tensor::zeros(Shape{extent});
  const float* pm = profile_max_.data();
  if (config_.granularity == Granularity::per_neuron) {
    for (std::int64_t f = 0; f < feat_; ++f) b[f] = pm[f] * margin;
  } else if (config_.granularity == Granularity::per_channel) {
    for (std::int64_t f = 0; f < feat_; ++f) {
      const std::int64_t c = f / hw_;
      b[c] = std::max(b[c], pm[f] * margin);
    }
  } else {
    float mx = 0.0f;
    for (std::int64_t f = 0; f < feat_; ++f) mx = std::max(mx, pm[f]);
    b[0] = mx * margin;
  }

  // Reinitialising existing same-extent storage keeps its trainability
  // (post-training may have enabled gradients); fresh storage starts
  // non-trainable until post-training opts in.
  set_bounds(b, bounds_.defined() && bounds_.numel() == extent &&
                    bounds_.requires_grad());
}

void BoundedActivation::set_layer_bound(float bound) {
  config_.granularity = Granularity::per_layer;
  set_bounds(Tensor::full(Shape{1}, bound),
             bounds_.defined() && bounds_.numel() == 1 &&
                 bounds_.requires_grad());
}

void BoundedActivation::set_bounds(const Tensor& values, bool trainable) {
  if (bounds_.defined() && bounds_.numel() == values.numel()) {
    bounds_.value().copy_from(values);
    bounds_.set_requires_grad(trainable);
  } else {
    bounds_ = Variable(values.clone(), trainable);
    register_or_replace_parameter("lambda", bounds_);
    bounds_registered_ = true;
  }
}

void BoundedActivation::count_clamps(const Tensor& x) {
  // Unbounded sites (plain ReLU, or bounds not yet installed) cannot clamp;
  // they contribute to neither counter so they don't dilute the model-wide
  // clamp rate of the bounded sites.
  if (config_.scheme == Scheme::relu || !bounds_.defined()) return;
#ifndef NDEBUG
  // Single-writer enforcement (debug builds): two overlapping counted
  // forwards mean this model is shared across serving lanes, which would
  // silently corrupt/double-count the detection statistic. Sequential use
  // from different threads (e.g. a campaign slot migrating between pool
  // workers) is legitimate and passes.
  const bool was_busy = clamp_busy_.exchange(true, std::memory_order_acquire);
  assert(!was_busy &&
         "BoundedActivation: concurrent clamp-counting forwards — counting "
         "must only be enabled on per-lane replicas, never a shared model");
  (void)was_busy;
#endif
  const Tensor& b = bounds_.value();
  const std::int64_t n = x.numel();
  // Dispatched count kernel (tensor/kernels): same broadcast rule as the
  // clip kernels — per-neuron (extent == feat), per-channel (extent ==
  // channels, bound index fi / hw), or a single layer bound.
  const std::uint64_t events =
      kern::count_over_bound(x.data(), b.data(), b.numel(), feat_, hw_, n);
  clamp_events_ += events;
  clamp_total_ += static_cast<std::uint64_t>(n);
#ifndef NDEBUG
  clamp_busy_.store(false, std::memory_order_release);
#endif
}

void BoundedActivation::add_clamp_counts(std::uint64_t events,
                                         std::uint64_t total) noexcept {
#ifndef NDEBUG
  // Same single-writer enforcement as count_clamps: overlapping deposits
  // mean two lanes share one model (see the clamp-counting comment above).
  const bool was_busy = clamp_busy_.exchange(true, std::memory_order_acquire);
  assert(!was_busy &&
         "BoundedActivation: concurrent clamp-count deposits — counting "
         "must only be enabled on per-lane replicas, never a shared model");
  (void)was_busy;
#endif
  clamp_events_ += events;
  clamp_total_ += total;
#ifndef NDEBUG
  clamp_busy_.store(false, std::memory_order_release);
#endif
}

nn::PlanValueId BoundedActivation::record(nn::PlanBuilder& builder,
                                          nn::PlanValueId input) {
  if (profiling_) {
    builder.fail(
        "BoundedActivation is in profiling mode; finish profiling and "
        "install bounds before compiling a plan");
  }
  if (corruptor_) {
    builder.fail(
        "BoundedActivation has an input corruptor installed; plans are "
        "clean inference programs (transient-fault ablations run eagerly)");
  }
  if (config_.scheme != Scheme::relu && !bounds_.defined()) {
    builder.fail("BoundedActivation(" + to_string(config_.scheme) +
                 "): bounds not initialised — profile and "
                 "init_bounds_from_profile (or set_bounds) before compiling "
                 "a plan");
  }
  // Lock in the feature geometry exactly as an eager forward would (the
  // per-sample plan shape gains a synthetic batch dim of 1).
  const Shape& xs = builder.value_shape(input);
  if (xs.rank() == 1) {
    observe_geometry(Shape{1, xs[0]});
  } else if (xs.rank() == 3) {
    observe_geometry(Shape{1, xs[0], xs[1], xs[2]});
  } else {
    builder.fail("BoundedActivation: rank-1/3 per-sample input expected, got " +
                 xs.str());
  }
  return builder.activation(this, input);
}

Variable BoundedActivation::forward(const Variable& x) {
  observe_geometry(x.shape());
  if (profiling_) {
    update_profile(x.value());
    return ag::relu(x);
  }
  Variable input = x;
  if (corruptor_) {
    Tensor corrupted = x.value().clone();
    corruptor_(corrupted);
    input = Variable(std::move(corrupted), false);
  }
  const Variable& xin = input;
  if (clamp_counting_) count_clamps(xin.value());
  switch (config_.scheme) {
    case Scheme::relu:
      return ag::relu(xin);
    case Scheme::clip_act:
    case Scheme::fitrelu_naive: {
      if (!bounds_.defined()) {
        throw std::logic_error("BoundedActivation(" + to_string(config_.scheme) +
                               "): bounds not initialised");
      }
      return ag::clipped_relu(xin, bounds_.value(), ag::ClipMode::zero_above);
    }
    case Scheme::ranger: {
      if (!bounds_.defined()) {
        throw std::logic_error("BoundedActivation(ranger): bounds not initialised");
      }
      return ag::clipped_relu(xin, bounds_.value(), ag::ClipMode::saturate);
    }
    case Scheme::fitrelu: {
      if (!bounds_.defined()) {
        throw std::logic_error("BoundedActivation(fitrelu): bounds not initialised");
      }
      return ag::fitrelu(xin, bounds_, config_.k);
    }
  }
  throw std::logic_error("BoundedActivation: unknown scheme");
}

namespace {
void collect_impl(const nn::Module& m,
                  std::vector<std::shared_ptr<BoundedActivation>>& out) {
  for (const auto& [name, child] : m.children()) {
    if (auto act = std::dynamic_pointer_cast<BoundedActivation>(child)) {
      out.push_back(act);
    }
    collect_impl(*child, out);
  }
}
}  // namespace

std::vector<std::shared_ptr<BoundedActivation>> collect_activations(
    const nn::Module& root) {
  std::vector<std::shared_ptr<BoundedActivation>> out;
  collect_impl(root, out);
  return out;
}

std::int64_t total_bound_count(const nn::Module& root) {
  std::int64_t n = 0;
  for (const auto& act : collect_activations(root)) n += act->bound_count();
  return n;
}

void reset_clamp_counters(
    const std::vector<std::shared_ptr<BoundedActivation>>& sites) {
  for (const auto& site : sites) site->reset_clamp_counter();
}

double peak_site_clamp_rate(
    const std::vector<std::shared_ptr<BoundedActivation>>& sites) {
  double rate = 0.0;
  for (const auto& site : sites) {
    if (site->clamp_total() == 0) continue;
    rate = std::max(rate, static_cast<double>(site->clamp_events()) /
                              static_cast<double>(site->clamp_total()));
  }
  return rate;
}

}  // namespace fitact::core
