// The paper's subject: bounded activation functions.
//
// One module class implements the whole zoo behind a runtime-switchable
// scheme, so a trained network can be re-protected in place ("DNN
// architecture modification" in the FitAct workflow, paper Fig. 4):
//
//   scheme          bound extent          above-bound     trainable
//   -------------   -------------------   -------------   ---------
//   relu            (none)                -               -
//   clip_act        per layer (default)   -> 0            no   [GBReLU, Eq. 4]
//   ranger          per layer (default)   -> bound        no
//   fitrelu_naive   per neuron            -> 0            no   [Eq. 5]
//   fitrelu         per neuron            smooth -> 0     yes  [Eq. 6]
//
// Bound storage is materialised lazily on the first forward pass (the
// per-neuron extent depends on the activation-map shape, which the model
// does not know at construction time).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"

namespace fitact::core {

enum class Scheme {
  relu,
  clip_act,
  ranger,
  fitrelu_naive,
  fitrelu,
};

enum class Granularity {
  per_layer,
  per_channel,
  per_neuron,
};

[[nodiscard]] std::string to_string(Scheme s);
[[nodiscard]] std::string to_string(Granularity g);

/// Per-site configuration shared by every activation in a model.
struct ActivationConfig {
  Scheme scheme = Scheme::relu;
  Granularity granularity = Granularity::per_neuron;
  float k = 8.0f;  ///< FitReLU steepness coefficient (paper: "empirically computed")
};

class BoundedActivation final : public nn::Module {
 public:
  explicit BoundedActivation(const ActivationConfig& config);

  Variable forward(const Variable& x) override;

  /// Records this site as a planned activation op (nn/plan.h). The op holds
  /// a pointer back to this site and reads scheme/bounds/steepness/counting
  /// state at execute time, so re-protection (set_scheme/set_bounds) and
  /// clamp-counting toggles stay visible to a compiled plan. Recording fails
  /// while profiling or with an input corruptor installed (plans are clean
  /// inference programs), and for a bounded scheme whose bounds were never
  /// initialised.
  nn::PlanValueId record(nn::PlanBuilder& builder,
                         nn::PlanValueId input) override;

  // -- scheme control ---------------------------------------------------
  [[nodiscard]] Scheme scheme() const noexcept { return config_.scheme; }
  void set_scheme(Scheme s) noexcept { config_.scheme = s; }
  [[nodiscard]] Granularity granularity() const noexcept {
    return config_.granularity;
  }
  void set_granularity(Granularity g) noexcept { config_.granularity = g; }
  [[nodiscard]] float steepness() const noexcept { return config_.k; }
  void set_steepness(float k) noexcept { config_.k = k; }

  // -- profiling ----------------------------------------------------------
  /// While enabled, forward() records the per-neuron maximum of the
  /// pre-activation input over everything it sees (and applies plain ReLU).
  void set_profiling(bool on) noexcept { profiling_ = on; }
  [[nodiscard]] bool profiling() const noexcept { return profiling_; }
  /// Per-neuron maxima recorded so far; undefined before the first
  /// profiled forward.
  [[nodiscard]] const Tensor& profile_max() const { return profile_max_; }
  [[nodiscard]] bool has_profile() const noexcept {
    return profile_max_.defined();
  }
  void clear_profile() { profile_max_ = Tensor(); }

  // -- bounds ---------------------------------------------------------------
  /// Initialise bound storage from the recorded profile at the configured
  /// granularity (per-layer/channel bounds take the max over their group),
  /// scaled by `margin`. Requires a completed profiling pass.
  void init_bounds_from_profile(float margin = 1.0f);

  /// Directly set a per-layer bound (used by tests and the Fig. 1 sweep).
  void set_layer_bound(float bound);

  /// Install bound storage of arbitrary extent directly, bypassing the
  /// profile. Used when replicating a protected model (e.g. per-worker
  /// campaign replicas): the source site's bound values are copied in
  /// verbatim at whatever granularity they already have.
  void set_bounds(const Tensor& values, bool trainable);

  [[nodiscard]] bool has_bounds() const noexcept { return bounds_.defined(); }
  /// Trainable for Scheme::fitrelu; plain storage otherwise.
  [[nodiscard]] Variable& bounds() { return bounds_; }
  [[nodiscard]] const Variable& bounds() const { return bounds_; }
  [[nodiscard]] std::int64_t bound_count() const {
    return bounds_.defined() ? bounds_.numel() : 0;
  }

  /// Feature geometry captured from the first forward: activations per
  /// sample and channel count. Zero before any forward.
  [[nodiscard]] std::int64_t feature_count() const noexcept { return feat_; }
  [[nodiscard]] std::int64_t channel_count() const noexcept {
    return channels_;
  }

  // -- clamp-event counting -------------------------------------------------
  /// Opt-in counter of activations that hit their bound. While enabled,
  /// every (non-profiling) forward of a bounded scheme adds the number of
  /// pre-activation values strictly above their bound to clamp_events() and
  /// the number of values inspected to clamp_total(). A saturated clamp is
  /// an observable symptom of an underlying parameter fault (the bounded
  /// activation is *doing its job* confining the excursion), so the ratio
  /// events/total is an online fault detector — see serve::InferenceServer.
  /// Counting never changes the computed output. Counters are plain (not
  /// atomic): a model instance must be driven from one thread at a time,
  /// which is already the Module contract. The single-writer rule is what
  /// lets the serve detector trust the counters — if one model were ever
  /// shared by two lanes, concurrent forwards would corrupt (or
  /// double-count) the per-batch rates and the detector would silently
  /// mis-fire. Debug builds enforce it: count_clamps asserts that no two
  /// counted forwards overlap (see clamp_busy_ below), so a shared model
  /// trips an assert instead of corrupting detection. Enable counting only
  /// on per-lane replicas, never on a model other threads can reach.
  void set_clamp_counting(bool on) noexcept { clamp_counting_ = on; }
  [[nodiscard]] bool clamp_counting() const noexcept { return clamp_counting_; }
  /// Activations observed strictly above their bound since the last reset.
  [[nodiscard]] std::uint64_t clamp_events() const noexcept {
    return clamp_events_;
  }
  /// Activations inspected since the last reset (0 while the site has no
  /// bounds: an unbounded site cannot clamp, so it contributes to neither
  /// numerator nor denominator of a model-wide clamp rate).
  [[nodiscard]] std::uint64_t clamp_total() const noexcept {
    return clamp_total_;
  }
  void reset_clamp_counter() noexcept {
    clamp_events_ = 0;
    clamp_total_ = 0;
  }

  /// Fold externally counted clamp statistics into this site's counters.
  /// Planned execution fuses the event count into the activation kernel's
  /// pass over the data (autograd/op_kernels.h) and deposits it here; the
  /// single-writer contract and debug enforcement are the same as for
  /// count_clamps.
  void add_clamp_counts(std::uint64_t events, std::uint64_t total) noexcept;

  // -- transient activation faults ------------------------------------------
  /// Mutates a *copy* of the pre-activation input tensor. Used by the
  /// transient-fault ablation to model soft errors in computed activations
  /// (Ranger's original fault class) rather than in stored parameters.
  /// Ignored while profiling. See fault/transient.h for a standard
  /// implementation.
  using InputCorruptor = std::function<void(Tensor&)>;
  void set_input_corruptor(InputCorruptor corruptor) {
    corruptor_ = std::move(corruptor);
  }
  void clear_input_corruptor() { corruptor_ = nullptr; }
  [[nodiscard]] bool has_input_corruptor() const noexcept {
    return corruptor_ != nullptr;
  }

 private:
  void observe_geometry(const Shape& xs);
  void update_profile(const Tensor& x);
  void count_clamps(const Tensor& x);

  ActivationConfig config_;
  InputCorruptor corruptor_;
  bool profiling_ = false;
  bool clamp_counting_ = false;
  std::uint64_t clamp_events_ = 0;
  std::uint64_t clamp_total_ = 0;
  /// Debug-build detector for the single-writer contract above: set for the
  /// duration of each counted forward; a second thread finding it set means
  /// the model is shared across lanes. Atomic so the check itself is not a
  /// data race under TSan; it carries no synchronisation duty beyond that.
  std::atomic<bool> clamp_busy_{false};
  bool bounds_registered_ = false;
  std::int64_t feat_ = 0;
  std::int64_t channels_ = 0;
  std::int64_t hw_ = 1;
  Tensor profile_max_;  // per-neuron, extent feat_
  Variable bounds_;     // extent per granularity
};

/// All BoundedActivation sites in a module tree, in registration order
/// (which matches forward order for the models in src/models).
[[nodiscard]] std::vector<std::shared_ptr<BoundedActivation>>
collect_activations(const nn::Module& root);

/// Total bound-parameter count across a model (Table I memory accounting).
[[nodiscard]] std::int64_t total_bound_count(const nn::Module& root);

/// Zero every site's clamp counters (start of a counted forward).
void reset_clamp_counters(
    const std::vector<std::shared_ptr<BoundedActivation>>& sites);

/// The clamp-based fault-detection statistic: the maximum over sites of
/// clamp_events() / clamp_total(), from the counters as they stand (sites
/// that inspected nothing are skipped; 0 when nothing was inspected).
/// serve::InferenceServer thresholds it per batch and
/// ev::peak_clean_clamp_rate calibrates against it per sample — one
/// definition so the calibrated threshold and the served statistic cannot
/// drift apart.
[[nodiscard]] double peak_site_clamp_rate(
    const std::vector<std::shared_ptr<BoundedActivation>>& sites);

}  // namespace fitact::core
