// FitAct stage 2: resilience post-training (paper Section V).
//
// With the model's weights Theta_A frozen, the per-neuron bounds Theta_R are
// minimised with ADAM under the loss
//
//     L(D; Theta_A, Theta_R) = L(D; Theta_A) + (zeta / N) * sum_i lambda_i^2
//                                                              (paper Eq. 10)
//
// subject to the clean-accuracy constraint
//
//     A(Theta_A) - A(Theta_A, Theta_R) < delta                 (paper Eq. 9)
//
// The trainer keeps the best feasible snapshot (lowest bound energy with the
// accuracy drop under delta) and restores it at the end; if no epoch
// produces a feasible snapshot the initial (profiled) bounds are restored.
#pragma once

#include <cstdint>
#include <vector>

#include "core/activation.h"
#include "data/dataset.h"

namespace fitact::core {

struct PostTrainConfig {
  std::int64_t epochs = 8;
  std::int64_t batch_size = 32;
  /// Cap on mini-batches per epoch (<=0: full epoch). Keeps the stage
  /// "lightweight" relative to conventional training, as in the paper.
  std::int64_t max_batches_per_epoch = 0;
  float lr = 0.05f;
  float zeta = 1.0f;    ///< bound-regulariser weight (paper Eq. 10)
  float delta = 0.02f;  ///< allowed clean-accuracy drop, fraction (Eq. 9)
  std::uint64_t seed = 7;
  /// Samples used for the per-epoch clean-accuracy constraint check.
  std::int64_t val_samples = 512;
};

struct PostTrainEpoch {
  double loss = 0.0;         ///< mean total loss over the epoch
  double ce_loss = 0.0;      ///< mean cross-entropy component
  double bound_energy = 0.0; ///< sum of lambda^2 after the epoch
  double val_accuracy = 0.0; ///< clean accuracy after the epoch
  bool feasible = false;     ///< accuracy drop < delta
};

struct PostTrainReport {
  double baseline_accuracy = 0.0;  ///< A(Theta_A): clean accuracy pre-switch
  double initial_accuracy = 0.0;   ///< accuracy right after bound seeding
  double final_accuracy = 0.0;     ///< accuracy with the restored snapshot
  double initial_bound_energy = 0.0;
  double final_bound_energy = 0.0;
  bool any_feasible = false;
  double wall_time_s = 0.0;
  std::vector<PostTrainEpoch> epochs;
};

/// Run resilience post-training over the fitrelu bounds of `model`.
/// `baseline_accuracy` is A(Theta_A), the clean accuracy of the model before
/// protection (the constraint reference in Eq. 9). The model must already be
/// protected with Scheme::fitrelu (see core/protection.h).
PostTrainReport post_train_bounds(nn::Module& model,
                                  const data::Dataset& train,
                                  const data::Dataset& val,
                                  double baseline_accuracy,
                                  const PostTrainConfig& config = {});

}  // namespace fitact::core
