#include "core/bound_profiler.h"

#include <algorithm>

#include "autograd/variable.h"

namespace fitact::core {

std::int64_t profile_bounds(nn::Module& model, const data::Dataset& dataset,
                            const ProfileConfig& config) {
  const auto activations = collect_activations(model);
  for (const auto& act : activations) act->set_profiling(true);
  model.set_training(false);

  const std::int64_t total =
      config.max_samples > 0 ? std::min(config.max_samples, dataset.size())
                             : dataset.size();
  const NoGradGuard no_grad;
  std::int64_t done = 0;
  while (done < total) {
    const std::int64_t count =
        std::min<std::int64_t>(config.batch_size, total - done);
    Tensor images = dataset.batch(done, count, nullptr);
    model.forward(Variable(std::move(images)));
    done += count;
  }

  for (const auto& act : activations) act->set_profiling(false);
  return done;
}

}  // namespace fitact::core
