// Protection application: switches every activation site of a profiled
// model to a protection scheme and initialises its bounds.
//
//   apply_protection(model, Scheme::clip_act)   -> Clip-Act  (layer bounds)
//   apply_protection(model, Scheme::ranger)     -> Ranger    (layer bounds)
//   apply_protection(model, Scheme::fitrelu)    -> FitAct    (neuron bounds;
//                                        post-train with core/post_training)
#pragma once

#include "core/activation.h"

namespace fitact::core {

struct ProtectionOptions {
  /// Bound granularity for the bounded schemes. Clip-Act and Ranger use
  /// per-layer bounds in the paper; FitAct uses per-neuron. Overridable for
  /// the granularity ablation.
  Granularity granularity = Granularity::per_neuron;
  /// Multiplier applied to profiled maxima when seeding bounds.
  float margin = 1.0f;
  /// FitReLU steepness.
  float k = 8.0f;
};

/// Default options matching the paper for the given scheme.
[[nodiscard]] ProtectionOptions default_options(Scheme scheme);

/// Switch all activation sites to `scheme` and seed bounds from the profile
/// (no-op bound initialisation for Scheme::relu). Requires profile_bounds()
/// to have run for bounded schemes.
void apply_protection(nn::Module& model, Scheme scheme,
                      const ProtectionOptions& options);

inline void apply_protection(nn::Module& model, Scheme scheme) {
  apply_protection(model, scheme, default_options(scheme));
}

/// Copy scheme, granularity, steepness, and bound storage from every
/// activation site of `src` onto the matching site of `dst` (same
/// architecture; sites are matched by registration order). Unlike
/// apply_protection this needs no profile on `dst`, so it can stamp out
/// ready-to-evaluate replicas of a protected model — the per-worker model
/// copies of the parallel fault-campaign engine. Throws std::invalid_argument
/// when the two trees have different activation-site counts.
void replicate_protection(const nn::Module& src, nn::Module& dst);

}  // namespace fitact::core
