#include "core/protection.h"

namespace fitact::core {

ProtectionOptions default_options(Scheme scheme) {
  ProtectionOptions o;
  switch (scheme) {
    case Scheme::clip_act:
    case Scheme::ranger:
      o.granularity = Granularity::per_layer;
      break;
    case Scheme::fitrelu:
    case Scheme::fitrelu_naive:
    case Scheme::relu:
      o.granularity = Granularity::per_neuron;
      break;
  }
  return o;
}

void apply_protection(nn::Module& model, Scheme scheme,
                      const ProtectionOptions& options) {
  for (const auto& act : collect_activations(model)) {
    act->set_scheme(scheme);
    act->set_steepness(options.k);
    if (scheme == Scheme::relu) continue;
    act->set_granularity(options.granularity);
    act->init_bounds_from_profile(options.margin);
  }
}

}  // namespace fitact::core
