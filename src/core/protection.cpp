#include "core/protection.h"

#include <stdexcept>
#include <string>

namespace fitact::core {

ProtectionOptions default_options(Scheme scheme) {
  ProtectionOptions o;
  switch (scheme) {
    case Scheme::clip_act:
    case Scheme::ranger:
      o.granularity = Granularity::per_layer;
      break;
    case Scheme::fitrelu:
    case Scheme::fitrelu_naive:
    case Scheme::relu:
      o.granularity = Granularity::per_neuron;
      break;
  }
  return o;
}

void apply_protection(nn::Module& model, Scheme scheme,
                      const ProtectionOptions& options) {
  for (const auto& act : collect_activations(model)) {
    act->set_scheme(scheme);
    act->set_steepness(options.k);
    if (scheme == Scheme::relu) continue;
    act->set_granularity(options.granularity);
    act->init_bounds_from_profile(options.margin);
  }
}

void replicate_protection(const nn::Module& src, nn::Module& dst) {
  const auto src_acts = collect_activations(src);
  const auto dst_acts = collect_activations(dst);
  if (src_acts.size() != dst_acts.size()) {
    throw std::invalid_argument(
        "replicate_protection: activation-site count mismatch (" +
        std::to_string(src_acts.size()) + " vs " +
        std::to_string(dst_acts.size()) + ")");
  }
  for (std::size_t i = 0; i < src_acts.size(); ++i) {
    const auto& s = *src_acts[i];
    auto& d = *dst_acts[i];
    if (s.has_input_corruptor()) {
      // A corruptor is an arbitrary, possibly stateful closure; sharing it
      // across replicas would race and cloning it is impossible. Refuse
      // loudly rather than hand back replicas that silently evaluate
      // fault-free (activation-fault sweeps must stay on the one model).
      throw std::invalid_argument(
          "replicate_protection: source activation site has an input "
          "corruptor installed; clear it before replicating");
    }
    d.set_scheme(s.scheme());
    d.set_granularity(s.granularity());
    d.set_steepness(s.steepness());
    d.set_profiling(s.profiling());
    // Counting is stateless configuration (unlike a corruptor closure), so
    // it replicates; the replica starts from fresh counters.
    d.set_clamp_counting(s.clamp_counting());
    d.reset_clamp_counter();
    if (s.has_bounds()) {
      d.set_bounds(s.bounds().value(), s.bounds().requires_grad());
    }
  }
}

}  // namespace fitact::core
