// Profiling pass: drives a trained model over (a subset of) the training
// data with profiling enabled on every activation site, so each site records
// its per-neuron maximum activation. These maxima initialise the activation
// bounds — per neuron for FitAct (paper: "initialize the bound parameters
// Theta_R for each neuron to their maximum values over the training
// dataset"), per layer for Clip-Act / Ranger (paper Section III-C).
#pragma once

#include <cstdint>

#include "core/activation.h"
#include "data/dataset.h"

namespace fitact::core {

struct ProfileConfig {
  std::int64_t max_samples = 1024;  ///< cap on profiled samples (<=0: all)
  std::int64_t batch_size = 64;
};

/// Runs the profiling pass (model is put in eval mode, gradients off).
/// Returns the number of samples profiled.
std::int64_t profile_bounds(nn::Module& model, const data::Dataset& dataset,
                            const ProfileConfig& config = {});

}  // namespace fitact::core
