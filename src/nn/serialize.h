// Binary checkpointing of module parameters and buffers.
//
// Format: magic, version, entry count, then per entry: name, rank, dims,
// float payload. Entries are matched by name on load; shape mismatches are
// errors. Used by the bench harnesses to cache trained models between runs.
#pragma once

#include <string>

#include "nn/module.h"

namespace fitact::nn {

/// Write all parameters and buffers of `m` to `path`.
/// Throws std::runtime_error on I/O failure.
void save_state(const Module& m, const std::string& path);

/// Load parameters and buffers by name into `m`.
/// Returns false (leaving `m` untouched) if the file does not exist;
/// throws std::runtime_error on malformed files or name/shape mismatches.
bool load_state(Module& m, const std::string& path);

/// In-memory save/load round trip: copy every parameter and buffer of `src`
/// into the same-named entry of `dst`. The two modules must expose exactly
/// the same names with matching shapes; throws std::runtime_error otherwise.
/// Used to stamp out value-identical model replicas (parallel campaigns).
void copy_state(const Module& src, Module& dst);

}  // namespace fitact::nn
