// Define-then-execute inference plans (the serving hot path's forward API).
//
// The eager Module::forward path allocates every intermediate tensor on
// every call — fine for training, where autograd needs the graph anyway,
// but pure overhead for serving, where the op sequence of a model is fixed.
// An InferencePlan splits define from execute, ggml-style:
//
//   record    Module::record(PlanBuilder&) walks the model once and appends
//             plan ops (conv2d / linear / batch_norm2d / pools / flatten /
//             bounded activation / residual add), capturing parameter
//             tensors by shared storage — live fault injection and clean-
//             image scrubs through quant::ParamImage remain visible to the
//             plan because they write through that same storage.
//   fuse      A peephole pass (on by default; serve::ServerOptions::fuse)
//             merges conv2d/linear ops with the bounded activation that is
//             their sole consumer into single fused ops whose epilogue
//             applies bias + bound-clamp (+ clamp-event counting) directly
//             on the GEMM output — the pre-activation tensor never occupies
//             an arena slot. The epilogue runs the exact per-element float
//             sequence of the unfused bias-add + clamp, so fusion preserves
//             the plan-vs-eager bit-identity contract; the activation site
//             is still read at execute time, so re-protection after compile
//             stays visible exactly as on the unfused path.
//   plan      A liveness pass assigns every intermediate value an offset in
//             one pre-sized activation arena (first-fit over live ranges,
//             which degenerates to ping-pong for chain models), with a
//             separate offset table per batch-size bucket (powers of two up
//             to max_batch) so small batches stay cache-tight.
//   execute   Batches run through the recorded ops with zero heap
//             allocations in steady state: kernels come from
//             autograd/op_kernels.h (the same inline code the eager ops
//             run, so outputs are bit-identical to eager forwards), nested
//             GEMM parallelism is disabled via ut::InlineKernelScope (lane
//             threads already saturate the cores), and input/output views
//             are pre-built non-owning Tensors over the arena.
//
// Recording fails with PlanError — listing the offending module's path —
// for module types without a record() override and for train-only behavior
// (BatchNorm2d in training mode, active Dropout). Train-only modules that
// are inert at inference (Dropout in eval mode) record an explicit no-op so
// the plan documents them instead of silently diverging from forward().
//
// Thread safety: a plan is mutable state (its arena); drive it from one
// thread at a time. Serving lanes hold their lane mutex across execute,
// exactly as they do for the eager path.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "autograd/op_kernels.h"
#include "nn/module.h"
#include "quant/int8.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace fitact::core {
class BoundedActivation;
}

namespace fitact::nn {

/// Arithmetic the plan's fused conv/linear ops execute with.
///
/// int8 converts every fused clamp op whose input range is statically known
/// (see compile()'s input_range and the bound-derived range propagation in
/// plan.cpp) to block-quantized int8 GEMM with a fused
/// dequantize+bias+clamp epilogue. Ops that don't qualify (unbounded
/// schemes, unknown ranges, FitReLU's sigmoid shaping) stay fp32, so a plan
/// is int8 *where the bounds allow* — compile throws PlanError when nothing
/// qualifies rather than silently serving fp32 under an int8 label.
///
/// Fault model of an int8 op: its live quantized bytes (Int8Weights::q) are
/// the deployed weight storage — fp32 weight faults injected through
/// ParamImage after compile are not visible to it (the fp32 tensor is no
/// longer read), while bias / BatchNorm / bound tensors stay fp32-live and
/// fault-visible exactly as before. restore_int8_weights() is the matching
/// scrub.
enum class Precision : std::uint8_t {
  fp32 = 0,
  int8 = 1,
};

/// Recording failed: the model cannot run under planned execution (the
/// message names the offending module path). Callers fall back to eager
/// forward.
class PlanError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Accumulates the op sequence and value list while Module::record walks a
/// model. Values are per-sample shapes (no batch dimension); the batch
/// dimension is bound at execute time.
class PlanBuilder {
 public:
  PlanBuilder(const PlanBuilder&) = delete;
  PlanBuilder& operator=(const PlanBuilder&) = delete;

  // -- ops (each returns the output value id) -----------------------------
  PlanValueId conv2d(const Tensor& weight, const Tensor& bias,
                     std::int64_t stride, std::int64_t padding,
                     PlanValueId in);
  PlanValueId linear(const Tensor& weight, const Tensor& bias,
                     PlanValueId in);
  PlanValueId batch_norm2d(const Tensor& gamma, const Tensor& beta,
                           const Tensor& running_mean,
                           const Tensor& running_var, float eps,
                           PlanValueId in);
  PlanValueId max_pool2d(std::int64_t kernel, std::int64_t stride,
                         PlanValueId in);
  PlanValueId global_avg_pool(PlanValueId in);
  /// Pure view: no op is recorded and no arena space is assigned — the
  /// flattened value aliases its source.
  PlanValueId flatten(PlanValueId in);
  /// Bounded activation with clamp counting fused into the same pass over
  /// the data. The site is captured by pointer and its scheme/bounds are
  /// read at execute time, so re-protection (set_bounds replaces the bound
  /// storage) stays visible to the plan.
  PlanValueId activation(core::BoundedActivation* site, PlanValueId in);
  /// Elementwise sum (residual shortcuts).
  PlanValueId add(PlanValueId a, PlanValueId b);
  /// Explicit recorded no-op: a train-only module that is inert at
  /// inference (e.g. Dropout in eval mode). Documents the module in the
  /// plan instead of silently skipping it.
  PlanValueId noop(const std::string& what, PlanValueId in);

  /// Per-sample shape of a recorded value.
  [[nodiscard]] const Shape& value_shape(PlanValueId v) const;

  /// Record `child` under `name` so PlanError messages carry the module
  /// path ("features.7.act1").
  PlanValueId record_child(const std::string& name, Module& child,
                           PlanValueId in);

  /// Throw PlanError anchored at the current module path.
  [[noreturn]] void fail(const std::string& message) const;

 private:
  friend class InferencePlan;

  enum class OpKind : std::uint8_t {
    conv2d,
    linear,
    batch_norm2d,
    max_pool2d,
    global_avg_pool,
    activation,
    add,
    noop,
    // Fusion-pass products: a conv2d/linear whose bias + bound-clamp run as
    // an epilogue on the GEMM output (never recorded directly). A fused
    // conv may additionally carry a folded eval-mode BatchNorm (gamma
    // defined): conv -> bn -> clamp replayed as one op.
    fused_conv2d_clamp,
    fused_linear_clamp,
    // Quantization-pass products (Precision::int8): int8 GEMM over
    // block-quantized weights with a dequantize+bias+clamp epilogue.
    fused_conv2d_int8_clamp,
    fused_linear_int8_clamp,
  };

  struct Value {
    Shape sample_shape;
    std::int64_t sample_numel = 0;
    PlanValueId alias_of = -1;  ///< flatten views share their source's arena slot
    std::int32_t def = -1;      ///< op index that writes it (-1: plan input)
    std::int32_t last_use = -1; ///< last op index that reads it
    bool dead = false;          ///< eliminated by fusion; gets no arena slot
  };

  struct Op {
    OpKind kind;
    PlanValueId in0 = -1;
    PlanValueId in1 = -1;
    PlanValueId out = -1;
    std::string label;  ///< module path at record time (diagnostics)

    // conv2d
    Conv2dGeometry geo{};
    std::int64_t out_c = 0;
    // conv2d / linear / batch_norm2d parameters (shared storage with the
    // module's live parameters)
    Tensor weight;
    Tensor bias;
    Tensor gamma, beta, running_mean, running_var;
    float eps = 0.0f;
    // linear
    std::int64_t in_f = 0, out_f = 0;
    // max_pool2d
    std::int64_t kernel = 0, stride = 0;
    // activation
    core::BoundedActivation* site = nullptr;
    ag::FeatureBroadcast fb{};
    // int8 ops: block-quantized weights + scales (quantization pass product)
    std::shared_ptr<quant::Int8Weights> q8;
    // int8 ops: the quantization pass proved this op's input nonnegative
    // (it flows from a clamp output through only sign-preserving ops), so
    // its quantized activation bytes are all in [0,127] and execute may use
    // the u8xs8 GEMM (kern::gemm_i8u8_dot) instead of the signed one.
    bool q8_in_nonneg = false;
  };

  explicit PlanBuilder(Shape sample_shape);

  PlanValueId new_value(Shape sample_shape, std::int32_t def_op,
                        PlanValueId alias_of = -1);
  PlanValueId root(PlanValueId v) const noexcept;
  void use(PlanValueId v, std::int32_t op_index);
  const Value& value(PlanValueId v) const;
  [[nodiscard]] std::string scope_path() const;

  std::vector<Value> values_;
  std::vector<Op> ops_;
  std::vector<std::string> scope_;
};

/// A recorded, arena-planned, batch-bucketed inference program for one
/// model replica. See the file comment for the lifecycle.
class InferencePlan {
 public:
  /// Record `model`'s inference op sequence for per-sample inputs of shape
  /// `sample_shape` ([C,H,W]) and batches of 1..max_batch, run the fusion
  /// peephole (unless `fuse` is false — the A/B lever for tests and
  /// benches), then plan the arena. Throws PlanError when the model cannot
  /// be recorded (message names the module), std::invalid_argument for bad
  /// arguments. The plan keeps `model` alive (ops point into its parameter
  /// storage).
  ///
  /// Precision::int8 additionally runs the quantization pass: fused clamp
  /// ops whose input activation range is statically known convert to int8
  /// GEMM ops (see Precision). `input_range` is the max-abs of the plan
  /// *input* (callers calibrate it over sample data; <= 0 means unknown, so
  /// the first layer stays fp32); ranges of deeper layers come from the
  /// clamp bounds themselves. Requires fuse=true; throws PlanError when no
  /// op qualifies.
  static std::shared_ptr<InferencePlan> compile(
      std::shared_ptr<Module> model, const Shape& sample_shape,
      std::int64_t max_batch, bool fuse = true,
      Precision precision = Precision::fp32, float input_range = -1.0f);

  InferencePlan(const InferencePlan&) = delete;
  InferencePlan& operator=(const InferencePlan&) = delete;

  /// Staging view for the next batch's input, shaped [batch, C, H, W] over
  /// the arena. Fill it (memcpy per sample), then call execute(batch).
  /// Valid until the plan is destroyed; no allocation.
  [[nodiscard]] Tensor& input_view(std::int64_t batch);

  /// Run the recorded ops over the staged input. Returns the logits view
  /// [batch, classes]; the view's contents are valid until the next
  /// execute/input_view fill. Performs zero heap allocations in steady
  /// state (after each thread's first GEMM warmed its pack buffer).
  Tensor& execute(std::int64_t batch);

  [[nodiscard]] std::int64_t max_batch() const noexcept { return max_batch_; }
  [[nodiscard]] const Shape& sample_shape() const;
  [[nodiscard]] std::size_t op_count() const noexcept { return ops_.size(); }
  /// Number of conv/linear+clamp pairs the fusion pass merged (0 when
  /// compiled with fuse=false or when no pair qualified). BN-folded triples
  /// count once here too.
  [[nodiscard]] std::size_t fused_op_count() const noexcept {
    return fused_ops_;
  }
  /// Number of conv -> batch_norm -> activation triples the fusion pass
  /// folded (each removes *two* ops from the program, unlike a pair's one).
  [[nodiscard]] std::size_t bn_folded_op_count() const noexcept {
    return bn_folded_;
  }
  /// Number of fused ops the quantization pass converted to int8.
  [[nodiscard]] std::size_t int8_op_count() const noexcept {
    return int8_ops_;
  }
  [[nodiscard]] Precision precision() const noexcept { return precision_; }
  /// Scrub every int8 op's live quantized weights back to the clean image
  /// captured at compile time (the int8 analogue of ParamImage::restore;
  /// no-op on fp32 plans). The serving recovery path calls both.
  void restore_int8_weights();
  /// Live quantized weight bytes of int8 op `index` (0-based, program
  /// order) — the int8 fault space, exposed so tests and benches can inject
  /// corruption. Throws std::out_of_range past int8_op_count().
  [[nodiscard]] std::pair<std::int8_t*, std::size_t> int8_weight_span(
      std::size_t index);
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_floats_ * sizeof(float);
  }
  /// One line per op plus arena accounting (diagnostics, bench output).
  [[nodiscard]] std::string summary() const;

 private:
  using Op = PlanBuilder::Op;
  using Value = PlanBuilder::Value;
  struct Bucket {
    std::int64_t capacity = 0;
    std::vector<std::size_t> offsets;  ///< per root value, floats into arena
    std::size_t scratch_offset = 0;
    std::size_t total_floats = 0;
  };

  InferencePlan() = default;

  void fuse_ops();
  void quantize_ops(float input_range);
  void finalize_liveness();
  void plan_arena();
  [[nodiscard]] const Bucket& bucket_for(std::int64_t batch) const;
  PlanValueId root(PlanValueId v) const noexcept;

  std::shared_ptr<Module> model_;
  std::vector<Value> values_;
  std::vector<Op> ops_;
  PlanValueId output_ = -1;
  std::size_t fused_ops_ = 0;
  std::size_t bn_folded_ = 0;
  std::size_t int8_ops_ = 0;
  Precision precision_ = Precision::fp32;
  std::int64_t max_batch_ = 0;
  std::size_t scratch_floats_ = 0;
  std::size_t scratch_i8_bytes_ = 0;
  std::unique_ptr<std::int8_t[]> scratch_i8_;
  std::vector<Bucket> buckets_;
  std::vector<std::size_t> bucket_of_batch_;  ///< batch-1 -> bucket index
  std::size_t arena_floats_ = 0;
  std::unique_ptr<float[]> arena_;
  std::vector<Tensor> input_views_;   ///< per batch size 1..max_batch
  std::vector<Tensor> output_views_;  ///< per batch size 1..max_batch
};

}  // namespace fitact::nn
