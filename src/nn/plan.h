// Define-then-execute inference plans (the serving hot path's forward API).
//
// The eager Module::forward path allocates every intermediate tensor on
// every call — fine for training, where autograd needs the graph anyway,
// but pure overhead for serving, where the op sequence of a model is fixed.
// An InferencePlan splits define from execute, ggml-style:
//
//   record    Module::record(PlanBuilder&) walks the model once and appends
//             plan ops (conv2d / linear / batch_norm2d / pools / flatten /
//             bounded activation / residual add), capturing parameter
//             tensors by shared storage — live fault injection and clean-
//             image scrubs through quant::ParamImage remain visible to the
//             plan because they write through that same storage.
//   fuse      A peephole pass (on by default; serve::ServerOptions::fuse)
//             merges conv2d/linear ops with the bounded activation that is
//             their sole consumer into single fused ops whose epilogue
//             applies bias + bound-clamp (+ clamp-event counting) directly
//             on the GEMM output — the pre-activation tensor never occupies
//             an arena slot. The epilogue runs the exact per-element float
//             sequence of the unfused bias-add + clamp, so fusion preserves
//             the plan-vs-eager bit-identity contract; the activation site
//             is still read at execute time, so re-protection after compile
//             stays visible exactly as on the unfused path.
//   plan      A liveness pass assigns every intermediate value an offset in
//             one pre-sized activation arena (first-fit over live ranges,
//             which degenerates to ping-pong for chain models), with a
//             separate offset table per batch-size bucket (powers of two up
//             to max_batch) so small batches stay cache-tight.
//   execute   Batches run through the recorded ops with zero heap
//             allocations in steady state: kernels come from
//             autograd/op_kernels.h (the same inline code the eager ops
//             run, so outputs are bit-identical to eager forwards), nested
//             GEMM parallelism is disabled via ut::InlineKernelScope (lane
//             threads already saturate the cores), and input/output views
//             are pre-built non-owning Tensors over the arena.
//
// Recording fails with PlanError — listing the offending module's path —
// for module types without a record() override and for train-only behavior
// (BatchNorm2d in training mode, active Dropout). Train-only modules that
// are inert at inference (Dropout in eval mode) record an explicit no-op so
// the plan documents them instead of silently diverging from forward().
//
// Thread safety: a plan is mutable state (its arena); drive it from one
// thread at a time. Serving lanes hold their lane mutex across execute,
// exactly as they do for the eager path.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "autograd/op_kernels.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace fitact::core {
class BoundedActivation;
}

namespace fitact::nn {

/// Recording failed: the model cannot run under planned execution (the
/// message names the offending module path). Callers fall back to eager
/// forward.
class PlanError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Accumulates the op sequence and value list while Module::record walks a
/// model. Values are per-sample shapes (no batch dimension); the batch
/// dimension is bound at execute time.
class PlanBuilder {
 public:
  PlanBuilder(const PlanBuilder&) = delete;
  PlanBuilder& operator=(const PlanBuilder&) = delete;

  // -- ops (each returns the output value id) -----------------------------
  PlanValueId conv2d(const Tensor& weight, const Tensor& bias,
                     std::int64_t stride, std::int64_t padding,
                     PlanValueId in);
  PlanValueId linear(const Tensor& weight, const Tensor& bias,
                     PlanValueId in);
  PlanValueId batch_norm2d(const Tensor& gamma, const Tensor& beta,
                           const Tensor& running_mean,
                           const Tensor& running_var, float eps,
                           PlanValueId in);
  PlanValueId max_pool2d(std::int64_t kernel, std::int64_t stride,
                         PlanValueId in);
  PlanValueId global_avg_pool(PlanValueId in);
  /// Pure view: no op is recorded and no arena space is assigned — the
  /// flattened value aliases its source.
  PlanValueId flatten(PlanValueId in);
  /// Bounded activation with clamp counting fused into the same pass over
  /// the data. The site is captured by pointer and its scheme/bounds are
  /// read at execute time, so re-protection (set_bounds replaces the bound
  /// storage) stays visible to the plan.
  PlanValueId activation(core::BoundedActivation* site, PlanValueId in);
  /// Elementwise sum (residual shortcuts).
  PlanValueId add(PlanValueId a, PlanValueId b);
  /// Explicit recorded no-op: a train-only module that is inert at
  /// inference (e.g. Dropout in eval mode). Documents the module in the
  /// plan instead of silently skipping it.
  PlanValueId noop(const std::string& what, PlanValueId in);

  /// Per-sample shape of a recorded value.
  [[nodiscard]] const Shape& value_shape(PlanValueId v) const;

  /// Record `child` under `name` so PlanError messages carry the module
  /// path ("features.7.act1").
  PlanValueId record_child(const std::string& name, Module& child,
                           PlanValueId in);

  /// Throw PlanError anchored at the current module path.
  [[noreturn]] void fail(const std::string& message) const;

 private:
  friend class InferencePlan;

  enum class OpKind : std::uint8_t {
    conv2d,
    linear,
    batch_norm2d,
    max_pool2d,
    global_avg_pool,
    activation,
    add,
    noop,
    // Fusion-pass products: a conv2d/linear whose bias + bound-clamp run as
    // an epilogue on the GEMM output (never recorded directly).
    fused_conv2d_clamp,
    fused_linear_clamp,
  };

  struct Value {
    Shape sample_shape;
    std::int64_t sample_numel = 0;
    PlanValueId alias_of = -1;  ///< flatten views share their source's arena slot
    std::int32_t def = -1;      ///< op index that writes it (-1: plan input)
    std::int32_t last_use = -1; ///< last op index that reads it
    bool dead = false;          ///< eliminated by fusion; gets no arena slot
  };

  struct Op {
    OpKind kind;
    PlanValueId in0 = -1;
    PlanValueId in1 = -1;
    PlanValueId out = -1;
    std::string label;  ///< module path at record time (diagnostics)

    // conv2d
    Conv2dGeometry geo{};
    std::int64_t out_c = 0;
    // conv2d / linear / batch_norm2d parameters (shared storage with the
    // module's live parameters)
    Tensor weight;
    Tensor bias;
    Tensor gamma, beta, running_mean, running_var;
    float eps = 0.0f;
    // linear
    std::int64_t in_f = 0, out_f = 0;
    // max_pool2d
    std::int64_t kernel = 0, stride = 0;
    // activation
    core::BoundedActivation* site = nullptr;
    ag::FeatureBroadcast fb{};
  };

  explicit PlanBuilder(Shape sample_shape);

  PlanValueId new_value(Shape sample_shape, std::int32_t def_op,
                        PlanValueId alias_of = -1);
  PlanValueId root(PlanValueId v) const noexcept;
  void use(PlanValueId v, std::int32_t op_index);
  const Value& value(PlanValueId v) const;
  [[nodiscard]] std::string scope_path() const;

  std::vector<Value> values_;
  std::vector<Op> ops_;
  std::vector<std::string> scope_;
};

/// A recorded, arena-planned, batch-bucketed inference program for one
/// model replica. See the file comment for the lifecycle.
class InferencePlan {
 public:
  /// Record `model`'s inference op sequence for per-sample inputs of shape
  /// `sample_shape` ([C,H,W]) and batches of 1..max_batch, run the fusion
  /// peephole (unless `fuse` is false — the A/B lever for tests and
  /// benches), then plan the arena. Throws PlanError when the model cannot
  /// be recorded (message names the module), std::invalid_argument for bad
  /// arguments. The plan keeps `model` alive (ops point into its parameter
  /// storage).
  static std::shared_ptr<InferencePlan> compile(std::shared_ptr<Module> model,
                                                const Shape& sample_shape,
                                                std::int64_t max_batch,
                                                bool fuse = true);

  InferencePlan(const InferencePlan&) = delete;
  InferencePlan& operator=(const InferencePlan&) = delete;

  /// Staging view for the next batch's input, shaped [batch, C, H, W] over
  /// the arena. Fill it (memcpy per sample), then call execute(batch).
  /// Valid until the plan is destroyed; no allocation.
  [[nodiscard]] Tensor& input_view(std::int64_t batch);

  /// Run the recorded ops over the staged input. Returns the logits view
  /// [batch, classes]; the view's contents are valid until the next
  /// execute/input_view fill. Performs zero heap allocations in steady
  /// state (after each thread's first GEMM warmed its pack buffer).
  Tensor& execute(std::int64_t batch);

  [[nodiscard]] std::int64_t max_batch() const noexcept { return max_batch_; }
  [[nodiscard]] const Shape& sample_shape() const;
  [[nodiscard]] std::size_t op_count() const noexcept { return ops_.size(); }
  /// Number of conv/linear+clamp pairs the fusion pass merged (0 when
  /// compiled with fuse=false or when no pair qualified).
  [[nodiscard]] std::size_t fused_op_count() const noexcept {
    return fused_ops_;
  }
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_floats_ * sizeof(float);
  }
  /// One line per op plus arena accounting (diagnostics, bench output).
  [[nodiscard]] std::string summary() const;

 private:
  using Op = PlanBuilder::Op;
  using Value = PlanBuilder::Value;
  struct Bucket {
    std::int64_t capacity = 0;
    std::vector<std::size_t> offsets;  ///< per root value, floats into arena
    std::size_t scratch_offset = 0;
    std::size_t total_floats = 0;
  };

  InferencePlan() = default;

  void fuse_ops();
  void finalize_liveness();
  void plan_arena();
  [[nodiscard]] const Bucket& bucket_for(std::int64_t batch) const;
  PlanValueId root(PlanValueId v) const noexcept;

  std::shared_ptr<Module> model_;
  std::vector<Value> values_;
  std::vector<Op> ops_;
  PlanValueId output_ = -1;
  std::size_t fused_ops_ = 0;
  std::int64_t max_batch_ = 0;
  std::size_t scratch_floats_ = 0;
  std::vector<Bucket> buckets_;
  std::vector<std::size_t> bucket_of_batch_;  ///< batch-1 -> bucket index
  std::size_t arena_floats_ = 0;
  std::unique_ptr<float[]> arena_;
  std::vector<Tensor> input_views_;   ///< per batch size 1..max_batch
  std::vector<Tensor> output_views_;  ///< per batch size 1..max_batch
};

}  // namespace fitact::nn
