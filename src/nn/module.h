// Module: base class for layers and models.
//
// A module owns named parameters (trainable Variables), named buffers
// (non-trainable Tensors such as BatchNorm running statistics), and named
// child modules. named_parameters()/named_buffers() walk the tree and return
// dotted paths ("features.3.weight"), which the serializer, the optimizers,
// and the fault injector use as stable parameter identities.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace fitact::nn {

class PlanBuilder;

/// Identifier of a value (an intermediate activation) inside an
/// InferencePlan under construction. See nn/plan.h.
using PlanValueId = std::int32_t;

struct NamedParam {
  std::string name;
  Variable var;
};

struct NamedBuffer {
  std::string name;
  Tensor tensor;
};

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual Variable forward(const Variable& x) = 0;

  /// Append this module's inference-time ops to a plan under construction
  /// (see nn/plan.h) and return the output value id. The base implementation
  /// throws PlanError naming the module — a type without an override cannot
  /// run under planned execution, and callers (ev::make_server) fall back to
  /// the eager forward path. Overrides must record exactly the arithmetic
  /// their eval-mode forward performs, so planned and eager outputs stay
  /// bit-identical.
  virtual PlanValueId record(PlanBuilder& builder, PlanValueId input);

  /// Training vs evaluation mode (affects BatchNorm); recursive.
  void set_training(bool training);
  [[nodiscard]] bool is_training() const noexcept { return training_; }

  /// True when this module (not its children) was built with
  /// InitMode::deferred and its parameters have not been overwritten since:
  /// forwarding it would compute on uninitialised memory. Cleared by
  /// clear_pending_init(), which copy_state/load_state call after filling
  /// the tree.
  [[nodiscard]] bool pending_init() const noexcept { return pending_init_; }

  /// Whether any module in the subtree is still pending-init.
  [[nodiscard]] bool subtree_pending_init() const noexcept;

  /// Mark the whole subtree as initialised (parameters now hold real
  /// values). Called by copy_state/load_state; also callable directly by
  /// code that fills parameters through other means.
  void clear_pending_init() noexcept;

  /// All parameters in the subtree, with dotted path names.
  [[nodiscard]] std::vector<NamedParam> named_parameters() const;
  [[nodiscard]] std::vector<Variable> parameters() const;

  /// All buffers (running statistics etc.) in the subtree.
  [[nodiscard]] std::vector<NamedBuffer> named_buffers() const;

  /// Zero every parameter gradient in the subtree.
  void zero_grad();

  /// Total parameter element count in the subtree.
  [[nodiscard]] std::int64_t parameter_count() const;

  /// Direct children, in registration order.
  [[nodiscard]] const std::vector<std::pair<std::string,
                                            std::shared_ptr<Module>>>&
  children() const noexcept {
    return children_;
  }

 protected:
  /// Register a trainable parameter; returns a reference to the stored
  /// Variable (which shares its impl with the caller's copy).
  Variable& register_parameter(const std::string& name, Variable v);

  /// Register, or overwrite an existing registration slot of the same name.
  /// Used by activation sites whose bound extent can change when a model is
  /// re-protected at a different granularity.
  Variable& register_or_replace_parameter(const std::string& name, Variable v);

  /// Register a non-trainable buffer; the stored Tensor shares storage with
  /// the caller's copy, so in-place updates are visible both ways.
  Tensor& register_buffer(const std::string& name, Tensor t);

  /// Register a child module; returns the argument for chaining.
  template <typename M>
  std::shared_ptr<M> register_module(const std::string& name,
                                     std::shared_ptr<M> m) {
    children_.emplace_back(name, m);
    return m;
  }

  /// Hook for subclasses that need to react to mode changes.
  virtual void on_set_training(bool /*training*/) {}

  /// Called by layer constructors that honoured InitMode::deferred and left
  /// their parameters unfilled.
  void mark_pending_init() noexcept { pending_init_ = true; }

  /// Debug-build guard for forward paths of layers that support deferred
  /// init: trips when the layer is evaluated before copy_state/load_state
  /// installed real parameter values. Compiles to nothing under NDEBUG.
  void assert_initialized() const noexcept;

 private:
  void collect_parameters(const std::string& prefix,
                          std::vector<NamedParam>& out) const;
  void collect_buffers(const std::string& prefix,
                       std::vector<NamedBuffer>& out) const;

  bool training_ = true;
  bool pending_init_ = false;
  std::vector<std::pair<std::string, Variable>> params_;
  std::vector<std::pair<std::string, Tensor>> buffers_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
};

}  // namespace fitact::nn
