#include "nn/module.h"

#include <cassert>
#include <typeinfo>

#include "nn/plan.h"

namespace fitact::nn {

PlanValueId Module::record(PlanBuilder& builder, PlanValueId /*input*/) {
  builder.fail(std::string("module type '") + typeid(*this).name() +
               "' has no record() override and cannot run under planned "
               "execution");
}

void Module::set_training(bool training) {
  training_ = training;
  on_set_training(training);
  for (auto& [name, child] : children_) child->set_training(training);
}

bool Module::subtree_pending_init() const noexcept {
  if (pending_init_) return true;
  for (const auto& [name, child] : children_) {
    if (child->subtree_pending_init()) return true;
  }
  return false;
}

void Module::clear_pending_init() noexcept {
  pending_init_ = false;
  for (auto& [name, child] : children_) child->clear_pending_init();
}

void Module::assert_initialized() const noexcept {
  assert(!pending_init_ &&
         "layer built with InitMode::deferred evaluated before "
         "copy_state/load_state installed its parameters");
}

std::vector<NamedParam> Module::named_parameters() const {
  std::vector<NamedParam> out;
  collect_parameters("", out);
  return out;
}

std::vector<Variable> Module::parameters() const {
  std::vector<Variable> out;
  for (auto& np : named_parameters()) out.push_back(np.var);
  return out;
}

std::vector<NamedBuffer> Module::named_buffers() const {
  std::vector<NamedBuffer> out;
  collect_buffers("", out);
  return out;
}

void Module::zero_grad() {
  for (auto& p : named_parameters()) p.var.zero_grad();
}

std::int64_t Module::parameter_count() const {
  std::int64_t n = 0;
  for (const auto& p : named_parameters()) n += p.var.numel();
  return n;
}

Variable& Module::register_parameter(const std::string& name, Variable v) {
  params_.emplace_back(name, std::move(v));
  return params_.back().second;
}

Variable& Module::register_or_replace_parameter(const std::string& name,
                                                Variable v) {
  for (auto& [existing, var] : params_) {
    if (existing == name) {
      var = std::move(v);
      return var;
    }
  }
  return register_parameter(name, std::move(v));
}

Tensor& Module::register_buffer(const std::string& name, Tensor t) {
  buffers_.emplace_back(name, std::move(t));
  return buffers_.back().second;
}

void Module::collect_parameters(const std::string& prefix,
                                std::vector<NamedParam>& out) const {
  for (const auto& [name, var] : params_) {
    out.push_back({prefix.empty() ? name : prefix + "." + name, var});
  }
  for (const auto& [name, child] : children_) {
    child->collect_parameters(prefix.empty() ? name : prefix + "." + name,
                              out);
  }
}

void Module::collect_buffers(const std::string& prefix,
                             std::vector<NamedBuffer>& out) const {
  for (const auto& [name, tensor] : buffers_) {
    out.push_back({prefix.empty() ? name : prefix + "." + name, tensor});
  }
  for (const auto& [name, child] : children_) {
    child->collect_buffers(prefix.empty() ? name : prefix + "." + name, out);
  }
}

}  // namespace fitact::nn
