#include "nn/init.h"

#include <cmath>

namespace fitact::nn {

void kaiming_normal(Tensor& w, std::int64_t fan_in, ut::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (auto& v : w.span()) v = rng.normal(0.0f, stddev);
}

void kaiming_uniform(Tensor& w, std::int64_t fan_in, ut::Rng& rng) {
  const float b = std::sqrt(6.0f / static_cast<float>(fan_in));
  for (auto& v : w.span()) v = rng.uniform(-b, b);
}

void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    ut::Rng& rng) {
  const float b = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (auto& v : w.span()) v = rng.uniform(-b, b);
}

}  // namespace fitact::nn
