// Gradient-descent optimisers. Both take an explicit parameter list, which
// is how the FitAct post-training stage restricts updates to the activation
// bounds (paper: "only bound values Theta_R would be adjusted").
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace fitact::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void step() = 0;
  void zero_grad();

  [[nodiscard]] const std::vector<Variable>& params() const noexcept {
    return params_;
  }

 protected:
  std::vector<Variable> params_;
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);

  void step() override;

  void set_lr(float lr) noexcept { lr_ = lr; }
  [[nodiscard]] float lr() const noexcept { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// ADAM (Kingma & Ba), the optimiser the paper uses for post-training.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void step() override;

  void set_lr(float lr) noexcept { lr_ = lr; }
  [[nodiscard]] float lr() const noexcept { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace fitact::nn
