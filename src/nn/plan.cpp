#include "nn/plan.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/activation.h"
#include "tensor/kernels/kernels.h"
#include "util/thread_pool.h"

namespace fitact::nn {
namespace {

/// Sentinel last_use for values that must stay live for the whole program:
/// the plan input (the caller stages the next batch into it before execute)
/// and the plan output (the caller reads it after execute returns). Keeping
/// both always-live means the arena planner can never overlap them with an
/// intermediate — or each other — so a caller filling the next input cannot
/// clobber logits it has not copied out yet.
constexpr std::int32_t kLiveForever = std::numeric_limits<std::int32_t>::max();

/// Arena offsets are aligned to 16 floats (one 64-byte cache line) so
/// values never share a line across lanes' false-sharing boundaries.
constexpr std::size_t kAlignFloats = 16;

std::size_t align_up(std::size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

Shape batched(std::int64_t batch, const Shape& sample) {
  std::vector<std::int64_t> dims;
  dims.reserve(sample.rank() + 1);
  dims.push_back(batch);
  dims.insert(dims.end(), sample.dims().begin(), sample.dims().end());
  return Shape(std::move(dims));
}

/// Int8 scratch offsets are 64-byte aligned (vector load friendliness; the
/// buffers themselves come from operator new[], which is already aligned).
std::size_t align_up_bytes(std::size_t n) { return (n + 63) / 64 * 64; }

/// True when the scheme's forward is the clip cascade the int8 epilogue
/// implements (FitReLU's sigmoid shaping and plain ReLU's missing bound
/// both disqualify).
bool clampable_scheme(core::Scheme s) {
  return s == core::Scheme::clip_act || s == core::Scheme::ranger ||
         s == core::Scheme::fitrelu_naive;
}

/// Output range of an activation site, from its clamp bounds: every output
/// lands in [0, max(bound)] under both clamp modes. -1 when the scheme is
/// not clampable or bounds are missing/degenerate — the range (and int8
/// eligibility) is then unknown.
float site_output_range(const core::BoundedActivation* site) {
  if (site == nullptr || !clampable_scheme(site->scheme()) ||
      !site->has_bounds()) {
    return -1.0f;
  }
  const Tensor& bt = site->bounds().value();
  float maxb = 0.0f;
  const float* b = bt.data();
  for (std::int64_t i = 0; i < bt.numel(); ++i) {
    maxb = std::max(maxb, b[i]);
  }
  return maxb > 0.0f ? maxb : -1.0f;
}

/// CHW int8 -> HWC int8 (channel-fastest), the layout im2row_i8 gathers
/// from. The transpose costs one pass over the sample but turns every patch
/// row of the gather into contiguous byte copies — the gather is the int8
/// conv's second-largest cost after the GEMM, the transpose is noise.
void chw_to_hwc_i8(const std::int8_t* chw, std::int8_t* hwc, std::int64_t c_n,
                   std::int64_t hw) {
  for (std::int64_t c = 0; c < c_n; ++c) {
    const std::int8_t* src = chw + c * hw;
    for (std::int64_t i = 0; i < hw; ++i) hwc[i * c_n + c] = src[i];
  }
}

/// im2row for quantized conv input: the [out_h*out_w, C*kh*kw] patch matrix
/// (the transpose of the fp32 path's im2col), padded to row_stride columns
/// with zeros so the int8 GEMM runs whole blocks. Every row is rewritten in
/// full, so a dirty shared scratch buffer is fine.
///
/// The k-axis is ordered [kh][kw][c] — channel fastest — and the input is
/// the HWC image chw_to_hwc_i8 produces. quantize_ops packs the weights
/// with the same permutation, and an integer dot product is invariant under
/// any shared k-permutation, so GEMM results (and cross-backend
/// bit-identity) are untouched. What the order buys: for each (oh, ow, kh)
/// the patch bytes [kw0..kw1) x [0..C) are one contiguous source run of the
/// image and one contiguous destination run of the row — a single memcpy of
/// (kw1-kw0)*C bytes replaces a per-element bounds-checked gather.
void im2row_i8(const Conv2dGeometry& g, const std::int8_t* hwc,
               std::int8_t* rows, std::int64_t row_stride) {
  // One upfront memset covers both the halo zeros and the row_stride
  // padding tail, so the copies below only ever move valid image bytes.
  // (It also serves as a streaming prefetch of the destination: narrowing
  // it to just the halo bytes measures slightly slower.)
  const std::int64_t ow_n = g.out_w();
  const std::int64_t c_n = g.in_channels;
  std::memset(rows, 0,
              static_cast<std::size_t>(g.out_h() * ow_n * row_stride));
  for (std::int64_t oh = 0; oh < g.out_h(); ++oh) {
    std::int8_t* base = rows + oh * ow_n * row_stride;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      const std::int64_t ih = oh * g.stride - g.padding + kh;
      if (ih < 0 || ih >= g.in_h) continue;
      const std::int8_t* src_row = hwc + ih * g.in_w * c_n;
      std::int8_t* col = base + kh * g.kernel_w * c_n;
      for (std::int64_t ow = 0; ow < ow_n; ++ow) {
        const std::int64_t iw0 = ow * g.stride - g.padding;
        const std::int64_t klo = std::max<std::int64_t>(0, -iw0);
        const std::int64_t khi =
            std::min<std::int64_t>(g.kernel_w, g.in_w - iw0);
        std::memcpy(col + ow * row_stride + klo * c_n,
                    src_row + (iw0 + klo) * c_n,
                    static_cast<std::size_t>((khi - klo) * c_n));
      }
    }
  }
}

}  // namespace

// ---- PlanBuilder -----------------------------------------------------------

PlanBuilder::PlanBuilder(Shape sample_shape) {
  if (sample_shape.numel() <= 0) {
    throw std::invalid_argument("InferencePlan: empty sample shape " +
                                sample_shape.str());
  }
  new_value(std::move(sample_shape), /*def_op=*/-1);
}

PlanValueId PlanBuilder::new_value(Shape sample_shape, std::int32_t def_op,
                                   PlanValueId alias_of) {
  Value v;
  v.sample_numel = sample_shape.numel();
  v.sample_shape = std::move(sample_shape);
  v.alias_of = alias_of;
  v.def = def_op;
  v.last_use = def_op;
  values_.push_back(std::move(v));
  return static_cast<PlanValueId>(values_.size() - 1);
}

PlanValueId PlanBuilder::root(PlanValueId v) const noexcept {
  while (values_[static_cast<std::size_t>(v)].alias_of >= 0) {
    v = values_[static_cast<std::size_t>(v)].alias_of;
  }
  return v;
}

void PlanBuilder::use(PlanValueId v, std::int32_t op_index) {
  Value& r = values_[static_cast<std::size_t>(root(v))];
  r.last_use = std::max(r.last_use, op_index);
}

const PlanBuilder::Value& PlanBuilder::value(PlanValueId v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= values_.size()) {
    throw std::logic_error("PlanBuilder: invalid value id " +
                           std::to_string(v));
  }
  return values_[static_cast<std::size_t>(v)];
}

const Shape& PlanBuilder::value_shape(PlanValueId v) const {
  return value(v).sample_shape;
}

std::string PlanBuilder::scope_path() const {
  std::string path;
  for (const auto& s : scope_) {
    if (!path.empty()) path += ".";
    path += s;
  }
  return path;
}

void PlanBuilder::fail(const std::string& message) const {
  const std::string at = scope_path();
  throw PlanError(at.empty() ? message : at + ": " + message);
}

PlanValueId PlanBuilder::record_child(const std::string& name, Module& child,
                                      PlanValueId in) {
  scope_.push_back(name);
  const PlanValueId out = child.record(*this, in);
  // Not popped on throw: fail() builds its message from the scope stack as
  // it stands, and a throwing builder is discarded.
  scope_.pop_back();
  return out;
}

PlanValueId PlanBuilder::conv2d(const Tensor& weight, const Tensor& bias,
                                std::int64_t stride, std::int64_t padding,
                                PlanValueId in) {
  const Shape& xs = value_shape(in);
  if (xs.rank() != 3) {
    fail("conv2d expects a [C,H,W] per-sample input, got " + xs.str());
  }
  if (weight.shape().rank() != 4 || weight.shape()[1] != xs[0]) {
    fail("conv2d weight " + weight.shape().str() +
         " incompatible with input " + xs.str());
  }
  Op op;
  op.kind = OpKind::conv2d;
  op.label = scope_path();
  op.geo.in_channels = xs[0];
  op.geo.in_h = xs[1];
  op.geo.in_w = xs[2];
  op.geo.kernel_h = weight.shape()[2];
  op.geo.kernel_w = weight.shape()[3];
  op.geo.stride = stride;
  op.geo.padding = padding;
  op.out_c = weight.shape()[0];
  if (op.geo.out_h() <= 0 || op.geo.out_w() <= 0) {
    fail("conv2d output collapses to zero extent for input " + xs.str());
  }
  if (bias.defined() && bias.numel() != op.out_c) {
    fail("conv2d bias extent " + std::to_string(bias.numel()) +
         " != out channels " + std::to_string(op.out_c));
  }
  op.weight = weight;
  op.bias = bias;
  const auto idx = static_cast<std::int32_t>(ops_.size());
  op.in0 = in;
  op.out = new_value(Shape{op.out_c, op.geo.out_h(), op.geo.out_w()}, idx);
  use(in, idx);
  ops_.push_back(std::move(op));
  return ops_.back().out;
}

PlanValueId PlanBuilder::linear(const Tensor& weight, const Tensor& bias,
                                PlanValueId in) {
  const Shape& xs = value_shape(in);
  if (xs.rank() != 1) {
    fail("linear expects a flattened [F] per-sample input, got " + xs.str());
  }
  if (weight.shape().rank() != 2 || weight.shape()[1] != xs[0]) {
    fail("linear weight " + weight.shape().str() + " incompatible with input " +
         xs.str());
  }
  Op op;
  op.kind = OpKind::linear;
  op.label = scope_path();
  op.in_f = weight.shape()[1];
  op.out_f = weight.shape()[0];
  if (bias.defined() && bias.numel() != op.out_f) {
    fail("linear bias extent " + std::to_string(bias.numel()) +
         " != out features " + std::to_string(op.out_f));
  }
  op.weight = weight;
  op.bias = bias;
  const auto idx = static_cast<std::int32_t>(ops_.size());
  op.in0 = in;
  op.out = new_value(Shape{op.out_f}, idx);
  use(in, idx);
  ops_.push_back(std::move(op));
  return ops_.back().out;
}

PlanValueId PlanBuilder::batch_norm2d(const Tensor& gamma, const Tensor& beta,
                                      const Tensor& running_mean,
                                      const Tensor& running_var, float eps,
                                      PlanValueId in) {
  const Shape& xs = value_shape(in);
  if (xs.rank() != 3) {
    fail("batch_norm2d expects a [C,H,W] per-sample input, got " + xs.str());
  }
  const std::int64_t ch = xs[0];
  if (gamma.numel() != ch || beta.numel() != ch ||
      running_mean.numel() != ch || running_var.numel() != ch) {
    fail("batch_norm2d per-channel extent mismatch with input " + xs.str());
  }
  Op op;
  op.kind = OpKind::batch_norm2d;
  op.label = scope_path();
  op.gamma = gamma;
  op.beta = beta;
  op.running_mean = running_mean;
  op.running_var = running_var;
  op.eps = eps;
  const auto idx = static_cast<std::int32_t>(ops_.size());
  op.in0 = in;
  op.out = new_value(xs, idx);
  use(in, idx);
  ops_.push_back(std::move(op));
  return ops_.back().out;
}

PlanValueId PlanBuilder::max_pool2d(std::int64_t kernel, std::int64_t stride,
                                    PlanValueId in) {
  const Shape& xs = value_shape(in);
  if (xs.rank() != 3) {
    fail("max_pool2d expects a [C,H,W] per-sample input, got " + xs.str());
  }
  const std::int64_t oh = (xs[1] - kernel) / stride + 1;
  const std::int64_t ow = (xs[2] - kernel) / stride + 1;
  if (oh <= 0 || ow <= 0) {
    fail("max_pool2d output collapses to zero extent for input " + xs.str());
  }
  Op op;
  op.kind = OpKind::max_pool2d;
  op.label = scope_path();
  op.kernel = kernel;
  op.stride = stride;
  const auto idx = static_cast<std::int32_t>(ops_.size());
  op.in0 = in;
  op.out = new_value(Shape{xs[0], oh, ow}, idx);
  use(in, idx);
  ops_.push_back(std::move(op));
  return ops_.back().out;
}

PlanValueId PlanBuilder::global_avg_pool(PlanValueId in) {
  const Shape& xs = value_shape(in);
  if (xs.rank() != 3) {
    fail("global_avg_pool expects a [C,H,W] per-sample input, got " +
         xs.str());
  }
  Op op;
  op.kind = OpKind::global_avg_pool;
  op.label = scope_path();
  const auto idx = static_cast<std::int32_t>(ops_.size());
  op.in0 = in;
  op.out = new_value(Shape{xs[0]}, idx);
  use(in, idx);
  ops_.push_back(std::move(op));
  return ops_.back().out;
}

PlanValueId PlanBuilder::flatten(PlanValueId in) {
  const Value& v = value(in);
  if (v.sample_shape.rank() == 1) return in;
  // Pure view: same storage, flat shape. Batched layout is unchanged
  // because samples are contiguous.
  return new_value(Shape{v.sample_numel}, v.def, root(in));
}

PlanValueId PlanBuilder::activation(core::BoundedActivation* site,
                                    PlanValueId in) {
  if (site == nullptr) fail("activation: null site");
  const Shape& xs = value_shape(in);
  Op op;
  op.kind = OpKind::activation;
  op.label = scope_path();
  op.site = site;
  if (xs.rank() == 1) {
    op.fb.feat = xs[0];
    op.fb.hw = 1;
    op.fb.channels = xs[0];
  } else if (xs.rank() == 3) {
    op.fb.feat = xs[0] * xs[1] * xs[2];
    op.fb.hw = xs[1] * xs[2];
    op.fb.channels = xs[0];
  } else {
    fail("activation expects a rank-1/3 per-sample input, got " + xs.str());
  }
  const auto idx = static_cast<std::int32_t>(ops_.size());
  op.in0 = in;
  op.out = new_value(xs, idx);
  use(in, idx);
  ops_.push_back(std::move(op));
  return ops_.back().out;
}

PlanValueId PlanBuilder::add(PlanValueId a, PlanValueId b) {
  const Shape& as = value_shape(a);
  const Shape& bs = value_shape(b);
  if (as != bs) {
    fail("add operand shapes differ: " + as.str() + " vs " + bs.str());
  }
  Op op;
  op.kind = OpKind::add;
  op.label = scope_path();
  const auto idx = static_cast<std::int32_t>(ops_.size());
  op.in0 = a;
  op.in1 = b;
  op.out = new_value(as, idx);
  use(a, idx);
  use(b, idx);
  ops_.push_back(std::move(op));
  return ops_.back().out;
}

PlanValueId PlanBuilder::noop(const std::string& what, PlanValueId in) {
  // Documented pass-through: the op appears in the program (and summary())
  // but moves no data — its output is the input value itself.
  Op op;
  op.kind = OpKind::noop;
  op.label = scope_path().empty() ? what : scope_path() + " (" + what + ")";
  const auto idx = static_cast<std::int32_t>(ops_.size());
  op.in0 = in;
  op.out = in;
  use(in, idx);
  ops_.push_back(std::move(op));
  return in;
}

// ---- InferencePlan ---------------------------------------------------------

PlanValueId InferencePlan::root(PlanValueId v) const noexcept {
  while (values_[static_cast<std::size_t>(v)].alias_of >= 0) {
    v = values_[static_cast<std::size_t>(v)].alias_of;
  }
  return v;
}

std::shared_ptr<InferencePlan> InferencePlan::compile(
    std::shared_ptr<Module> model, const Shape& sample_shape,
    std::int64_t max_batch, bool fuse, Precision precision,
    float input_range) {
  if (!model) throw std::invalid_argument("InferencePlan: null model");
  if (max_batch < 1) {
    throw std::invalid_argument("InferencePlan: max_batch must be >= 1, got " +
                                std::to_string(max_batch));
  }
  if (precision == Precision::int8 && !fuse) {
    throw std::invalid_argument(
        "InferencePlan: precision=int8 requires fuse=true (the quantization "
        "pass converts fused clamp ops)");
  }
  if (model->subtree_pending_init()) {
    throw std::invalid_argument(
        "InferencePlan: model has pending-init parameters; install state "
        "before compiling");
  }

  PlanBuilder builder(sample_shape);
  const PlanValueId out = model->record(builder, 0);
  if (builder.ops_.empty()) {
    throw PlanError("InferencePlan: model recorded no ops");
  }

  auto plan = std::shared_ptr<InferencePlan>(new InferencePlan());
  plan->model_ = std::move(model);
  plan->values_ = std::move(builder.values_);
  plan->ops_ = std::move(builder.ops_);
  plan->output_ = out;
  plan->max_batch_ = max_batch;
  plan->precision_ = precision;

  if (fuse) plan->fuse_ops();
  if (precision == Precision::int8) {
    plan->quantize_ops(input_range);
    if (plan->int8_ops_ == 0) {
      throw PlanError(
          "InferencePlan: precision=int8 but no fused clamp op qualified for "
          "quantization (needs bounded clampable activations and a positive "
          "input_range)");
    }
  }
  plan->finalize_liveness();

  // Per-sample scratch high-water mark: conv needs an im2col matrix, linear
  // a transposed weight; ops run one at a time, so one block serves all.
  // Int8 ops don't participate — their integer scratch is sized below, and
  // they never fall back to fp32 (execute throws instead).
  std::size_t scratch = 0;
  std::size_t scratch_i8 = 0;
  for (const auto& op : plan->ops_) {
    if (op.kind == PlanBuilder::OpKind::conv2d ||
        op.kind == PlanBuilder::OpKind::fused_conv2d_clamp) {
      scratch = std::max(
          scratch, static_cast<std::size_t>(op.geo.col_rows() *
                                            op.geo.col_cols()));
    } else if (op.kind == PlanBuilder::OpKind::linear ||
               op.kind == PlanBuilder::OpKind::fused_linear_clamp) {
      scratch =
          std::max(scratch, static_cast<std::size_t>(op.in_f * op.out_f));
    } else if (op.kind == PlanBuilder::OpKind::fused_conv2d_int8_clamp) {
      // Quantized input sample + im2row patch matrix.
      const auto in_numel = static_cast<std::size_t>(
          plan->values_[static_cast<std::size_t>(op.in0)].sample_numel);
      scratch_i8 = std::max(
          scratch_i8,
          2 * align_up_bytes(in_numel) +
              static_cast<std::size_t>(op.geo.col_cols() * op.q8->cols_padded));
    } else if (op.kind == PlanBuilder::OpKind::fused_linear_int8_clamp) {
      // Quantized batch rows, padded to the block width.
      scratch_i8 = std::max(
          scratch_i8, static_cast<std::size_t>(max_batch * op.q8->cols_padded));
    }
  }
  plan->scratch_floats_ = scratch;
  plan->scratch_i8_bytes_ = scratch_i8;
  if (scratch_i8 > 0) {
    plan->scratch_i8_ = std::make_unique<std::int8_t[]>(scratch_i8);
  }

  plan->plan_arena();
  return plan;
}

void InferencePlan::fuse_ops() {
  // Peephole over the recorded (pre-liveness) program: merge each conv2d /
  // linear with an immediately following bounded activation that reads its
  // output directly and is its sole consumer. The producer's output value
  // goes dead — the fused op writes straight into the activation's slot —
  // which is the arena saving fusion exists for. The liveness check uses
  // the record-time op indices (this runs before finalize_liveness
  // renumbers anything), so a residual edge or a later re-read of the
  // pre-activation value blocks fusion exactly as it must.
  std::vector<Op> fused;
  fused.reserve(ops_.size());
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    Op& op = ops_[i];
    const bool fusable_producer = op.kind == PlanBuilder::OpKind::conv2d ||
                                  op.kind == PlanBuilder::OpKind::linear;
    // conv -> eval-BatchNorm -> activation triple (the ResNet block shape):
    // fold structurally into one fused conv op carrying the BN tensors.
    // Execute replays the exact eager kernel sequence (conv+bias, BN in
    // place, clamp pass), so bit-identity and live BN-parameter fault
    // visibility both survive — which is why the fold is structural rather
    // than algebraic (pre-scaling weights by gamma/sigma would bake BN
    // faults out of the served model). Both intermediates go dead.
    if (op.kind == PlanBuilder::OpKind::conv2d && i + 2 < ops_.size()) {
      const Op& bn = ops_[i + 1];
      const Op& act = ops_[i + 2];
      const Value& mid1 = values_[static_cast<std::size_t>(op.out)];
      const Value& mid2 = values_[static_cast<std::size_t>(bn.out)];
      if (bn.kind == PlanBuilder::OpKind::batch_norm2d && bn.in0 == op.out &&
          act.kind == PlanBuilder::OpKind::activation && act.in0 == bn.out &&
          mid1.last_use == static_cast<std::int32_t>(i) + 1 &&
          mid2.last_use == static_cast<std::int32_t>(i) + 2 &&
          root(output_) != op.out && root(output_) != bn.out) {
        Op f = std::move(op);
        f.kind = PlanBuilder::OpKind::fused_conv2d_clamp;
        f.gamma = bn.gamma;
        f.beta = bn.beta;
        f.running_mean = bn.running_mean;
        f.running_var = bn.running_var;
        f.eps = bn.eps;
        f.site = act.site;
        f.fb = act.fb;
        if (!bn.label.empty()) f.label += " + " + bn.label;
        if (!act.label.empty()) f.label += " + " + act.label;
        values_[static_cast<std::size_t>(f.out)].dead = true;
        values_[static_cast<std::size_t>(bn.out)].dead = true;
        f.out = act.out;
        fused.push_back(std::move(f));
        ++fused_ops_;
        ++bn_folded_;
        i += 2;  // the bn and activation ops are consumed by the fused op
        continue;
      }
    }
    if (fusable_producer && i + 1 < ops_.size()) {
      const Op& next = ops_[i + 1];
      const Value& mid = values_[static_cast<std::size_t>(op.out)];
      if (next.kind == PlanBuilder::OpKind::activation &&
          next.in0 == op.out &&
          mid.last_use == static_cast<std::int32_t>(i) + 1 &&
          root(output_) != op.out) {
        Op f = std::move(op);
        f.kind = f.kind == PlanBuilder::OpKind::conv2d
                     ? PlanBuilder::OpKind::fused_conv2d_clamp
                     : PlanBuilder::OpKind::fused_linear_clamp;
        f.site = next.site;
        f.fb = next.fb;
        if (!next.label.empty()) f.label += " + " + next.label;
        values_[static_cast<std::size_t>(f.out)].dead = true;
        f.out = next.out;
        fused.push_back(std::move(f));
        ++fused_ops_;
        ++i;  // the activation op is consumed by the fused op
        continue;
      }
    }
    fused.push_back(std::move(op));
  }
  ops_ = std::move(fused);
}

void InferencePlan::quantize_ops(float input_range) {
  // Forward range propagation: range[v] > 0 when every element of value v
  // is statically known to lie in [-range, range]. The plan input's range
  // comes from calibration (compile's input_range); a clampable bounded
  // activation emits [0, max(bound)] by construction — FitAct's bounds are
  // what make static activation scales possible at all. Anything a GEMM or
  // BatchNorm produces is unbounded until the next clamp. A fused clamp op
  // with known input AND output range converts to int8: weights quantize
  // per output channel now, the input range fixes the activation scale, and
  // the op's own bounds keep feeding the clamp-event detector through the
  // fused dequantize epilogue.
  std::vector<float> range(values_.size(), -1.0f);
  range[static_cast<std::size_t>(root(0))] =
      input_range > 0.0f ? input_range : -1.0f;
  const auto rng = [&](PlanValueId v) {
    return range[static_cast<std::size_t>(root(v))];
  };
  const auto set = [&](PlanValueId v, float r) {
    range[static_cast<std::size_t>(root(v))] = r;
  };
  // Sign propagation alongside the ranges: nonneg[v] when every element of
  // value v is statically >= 0. Clamp outputs are nonnegative by the clip
  // cascade (even in detect-only mode an over-bound element becomes 0, not
  // its raw value), and pooling/add preserve the sign. An int8 op whose
  // input is proven nonnegative quantizes it into [0,127], which lets
  // execute use the u8xs8 GEMM at twice the vector MAC density.
  std::vector<char> nonneg(values_.size(), 0);
  const auto is_nonneg = [&](PlanValueId v) {
    return nonneg[static_cast<std::size_t>(root(v))] != 0;
  };
  const auto set_nonneg = [&](PlanValueId v, bool nn) {
    nonneg[static_cast<std::size_t>(root(v))] = nn ? 1 : 0;
  };
  for (auto& op : ops_) {
    switch (op.kind) {
      case PlanBuilder::OpKind::conv2d:
      case PlanBuilder::OpKind::linear:
      case PlanBuilder::OpKind::batch_norm2d:
        set(op.out, -1.0f);
        set_nonneg(op.out, false);
        break;
      case PlanBuilder::OpKind::max_pool2d:
      case PlanBuilder::OpKind::global_avg_pool:
        // Max and mean of bounded values stay within the bound (and keep
        // their sign).
        set(op.out, rng(op.in0));
        set_nonneg(op.out, is_nonneg(op.in0));
        break;
      case PlanBuilder::OpKind::add: {
        const float a = rng(op.in0);
        const float b = rng(op.in1);
        set(op.out, a > 0.0f && b > 0.0f ? a + b : -1.0f);
        set_nonneg(op.out, is_nonneg(op.in0) && is_nonneg(op.in1));
        break;
      }
      case PlanBuilder::OpKind::activation:
        set(op.out, site_output_range(op.site));
        set_nonneg(op.out, true);  // clip cascade output is always in [0, b]
        break;
      case PlanBuilder::OpKind::fused_conv2d_clamp:
      case PlanBuilder::OpKind::fused_linear_clamp: {
        const float out_r = site_output_range(op.site);
        const float in_r = rng(op.in0);
        if (in_r > 0.0f && out_r > 0.0f) {
          const bool is_conv =
              op.kind == PlanBuilder::OpKind::fused_conv2d_clamp;
          const std::int64_t rows = is_conv ? op.out_c : op.out_f;
          const std::int64_t cols = is_conv ? op.geo.col_rows() : op.in_f;
          const float* wsrc = op.weight.data();
          std::vector<float> wperm;
          if (is_conv) {
            // Permute each filter's k-axis from the tensor's [c][kh][kw] to
            // the [kh][kw][c] order im2row_i8 gathers (see its comment).
            // Per-channel max-abs is permutation-invariant, so every scale
            // comes out bit-identical to the unpermuted packing.
            const std::int64_t ck = op.geo.in_channels;
            const std::int64_t kh_n = op.geo.kernel_h;
            const std::int64_t kw_n = op.geo.kernel_w;
            wperm.resize(static_cast<std::size_t>(rows * cols));
            for (std::int64_t r = 0; r < rows; ++r) {
              const float* src = wsrc + r * cols;
              float* dst = wperm.data() + r * cols;
              for (std::int64_t c = 0; c < ck; ++c) {
                for (std::int64_t kh = 0; kh < kh_n; ++kh) {
                  for (std::int64_t kw = 0; kw < kw_n; ++kw) {
                    dst[(kh * kw_n + kw) * ck + c] =
                        src[(c * kh_n + kh) * kw_n + kw];
                  }
                }
              }
            }
            wsrc = wperm.data();
          }
          op.q8 = std::make_shared<quant::Int8Weights>(
              quant::quantize_weights_i8(wsrc, rows, cols));
          op.q8->set_act_scale(in_r / 127.0f);
          op.q8_in_nonneg = is_nonneg(op.in0);
          op.kind = is_conv ? PlanBuilder::OpKind::fused_conv2d_int8_clamp
                            : PlanBuilder::OpKind::fused_linear_int8_clamp;
          ++int8_ops_;
        }
        set(op.out, out_r);
        set_nonneg(op.out, true);  // fused clamp: same cascade as activation
        break;
      }
      case PlanBuilder::OpKind::noop:
      case PlanBuilder::OpKind::fused_conv2d_int8_clamp:
      case PlanBuilder::OpKind::fused_linear_int8_clamp:
        break;  // noop moves nothing; int8 kinds don't exist before this pass
    }
  }
}

void InferencePlan::finalize_liveness() {
  // Recompute def/last_use against the final op list (fusion drops ops, so
  // record-time indices are stale), mirroring the builder's bookkeeping:
  // aliases track their root, a noop reads but does not define, and a
  // value's live range starts at its defining op. Then pin the plan input
  // and output live forever (see kLiveForever above).
  for (auto& v : values_) {
    if (v.alias_of < 0) {
      v.def = -1;
      v.last_use = -1;
    }
  }
  const auto use = [&](PlanValueId v, std::int32_t idx) {
    Value& r = values_[static_cast<std::size_t>(root(v))];
    r.last_use = std::max(r.last_use, idx);
  };
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    const auto idx = static_cast<std::int32_t>(i);
    if (op.kind != PlanBuilder::OpKind::noop) {
      Value& o = values_[static_cast<std::size_t>(root(op.out))];
      o.def = idx;
      o.last_use = std::max(o.last_use, idx);
    }
    use(op.in0, idx);
    if (op.in1 >= 0) use(op.in1, idx);
  }
  // A root value no op defines any more (other than the plan input) was
  // eliminated by fusion; it must not claim an arena slot.
  for (std::size_t vi = 1; vi < values_.size(); ++vi) {
    Value& v = values_[vi];
    if (v.alias_of < 0 && v.def < 0) v.dead = true;
  }
  for (std::size_t vi = 0; vi < values_.size(); ++vi) {
    Value& v = values_[vi];
    if (v.alias_of >= 0) {
      const Value& r = values_[static_cast<std::size_t>(
          root(static_cast<PlanValueId>(vi)))];
      v.def = r.def;
      v.last_use = r.last_use;
      v.dead = r.dead;
    }
  }
  values_[static_cast<std::size_t>(root(0))].last_use = kLiveForever;
  values_[static_cast<std::size_t>(root(output_))].last_use = kLiveForever;
}

void InferencePlan::plan_arena() {
  // Batch-size buckets: powers of two up to max_batch, plus max_batch
  // itself. A batch executes in the smallest bucket that fits, so arena
  // strides (and cache footprint) track the work actually in flight.
  std::vector<std::int64_t> capacities;
  for (std::int64_t c = 1; c < max_batch_; c *= 2) capacities.push_back(c);
  capacities.push_back(max_batch_);

  bucket_of_batch_.assign(static_cast<std::size_t>(max_batch_), 0);
  for (std::int64_t b = 1; b <= max_batch_; ++b) {
    std::size_t bucket = 0;
    while (capacities[bucket] < b) ++bucket;
    bucket_of_batch_[static_cast<std::size_t>(b - 1)] = bucket;
  }

  struct Placed {
    std::size_t offset, size;
    std::int32_t def, last;
  };

  arena_floats_ = 0;
  buckets_.clear();
  buckets_.reserve(capacities.size());
  for (const std::int64_t cap : capacities) {
    Bucket bk;
    bk.capacity = cap;
    bk.offsets.assign(values_.size(), 0);

    std::vector<Placed> placed;
    // The shared scratch block is live for the whole program; placing it
    // first pins it at offset 0 in every bucket.
    placed.push_back({0, align_up(scratch_floats_), -1, kLiveForever});
    bk.scratch_offset = 0;

    for (std::size_t vi = 0; vi < values_.size(); ++vi) {
      const Value& v = values_[vi];
      if (v.alias_of >= 0) continue;  // views resolve through their root
      if (v.dead) continue;           // fusion eliminated it: no slot
      const auto size = align_up(
          static_cast<std::size_t>(v.sample_numel) * static_cast<std::size_t>(cap));
      // First-fit: scan occupied extents of time-overlapping blocks in
      // offset order and take the first gap large enough.
      std::vector<Placed> live;
      for (const auto& p : placed) {
        if (v.def <= p.last && p.def <= v.last_use) live.push_back(p);
      }
      std::sort(live.begin(), live.end(),
                [](const Placed& a, const Placed& b) {
                  return a.offset < b.offset;
                });
      std::size_t offset = 0;
      for (const auto& p : live) {
        if (offset + size <= p.offset) break;
        offset = std::max(offset, p.offset + p.size);
      }
      bk.offsets[vi] = offset;
      placed.push_back({offset, size, v.def, v.last_use});
    }

    for (const auto& p : placed) {
      bk.total_floats = std::max(bk.total_floats, p.offset + p.size);
    }
    // Alias values read/write through their root's slot.
    for (std::size_t vi = 0; vi < values_.size(); ++vi) {
      if (values_[vi].alias_of >= 0) {
        bk.offsets[vi] =
            bk.offsets[static_cast<std::size_t>(root(
                static_cast<PlanValueId>(vi)))];
      }
    }
    arena_floats_ = std::max(arena_floats_, bk.total_floats);
    buckets_.push_back(std::move(bk));
  }

  arena_ = std::make_unique<float[]>(std::max<std::size_t>(arena_floats_, 1));
  std::memset(arena_.get(), 0, arena_floats_ * sizeof(float));

  // Pre-built per-batch-size views: execute() and input_view() hand out
  // references to these, so steady state constructs no Shapes (a Shape copy
  // allocates its dims vector).
  input_views_.clear();
  output_views_.clear();
  input_views_.reserve(static_cast<std::size_t>(max_batch_));
  output_views_.reserve(static_cast<std::size_t>(max_batch_));
  const PlanValueId out_root = root(output_);
  for (std::int64_t b = 1; b <= max_batch_; ++b) {
    const Bucket& bk = buckets_[bucket_of_batch_[static_cast<std::size_t>(b - 1)]];
    input_views_.push_back(
        Tensor::view(batched(b, values_[0].sample_shape),
                     arena_.get() + bk.offsets[0]));
    output_views_.push_back(Tensor::view(
        batched(b, values_[static_cast<std::size_t>(output_)].sample_shape),
        arena_.get() + bk.offsets[static_cast<std::size_t>(out_root)]));
  }
}

const InferencePlan::Bucket& InferencePlan::bucket_for(
    std::int64_t batch) const {
  if (batch < 1 || batch > max_batch_) {
    throw std::invalid_argument("InferencePlan: batch " +
                                std::to_string(batch) +
                                " outside compiled range [1, " +
                                std::to_string(max_batch_) + "]");
  }
  return buckets_[bucket_of_batch_[static_cast<std::size_t>(batch - 1)]];
}

const Shape& InferencePlan::sample_shape() const {
  return values_[0].sample_shape;
}

Tensor& InferencePlan::input_view(std::int64_t batch) {
  (void)bucket_for(batch);  // range check
  return input_views_[static_cast<std::size_t>(batch - 1)];
}

Tensor& InferencePlan::execute(std::int64_t batch) {
  const Bucket& bk = bucket_for(batch);
  // Lane threads run kernels inline: plan execution is already one lane of
  // a thread-per-lane server, and inline kernels are also what keeps the
  // steady state allocation-free (pool dispatch allocates task state).
  ut::InlineKernelScope inline_scope;
  float* const base = arena_.get();
  float* const scratch = base + bk.scratch_offset;
  const auto ptr = [&](PlanValueId v) {
    return base + bk.offsets[static_cast<std::size_t>(v)];
  };

  for (const auto& op : ops_) {
    switch (op.kind) {
      case PlanBuilder::OpKind::conv2d: {
        const std::int64_t in_stride =
            values_[static_cast<std::size_t>(op.in0)].sample_numel;
        const std::int64_t out_stride =
            values_[static_cast<std::size_t>(op.out)].sample_numel;
        const float* x = ptr(op.in0);
        float* o = ptr(op.out);
        const float* w = op.weight.data();
        const float* b = op.bias.defined() ? op.bias.data() : nullptr;
        for (std::int64_t s = 0; s < batch; ++s) {
          ag::conv2d_forward_sample(op.geo, op.out_c, x + s * in_stride, w, b,
                                    scratch, o + s * out_stride);
        }
        break;
      }
      case PlanBuilder::OpKind::linear:
        ag::linear_forward(batch, op.in_f, op.out_f, ptr(op.in0),
                           op.weight.data(),
                           op.bias.defined() ? op.bias.data() : nullptr,
                           scratch, ptr(op.out));
        break;
      case PlanBuilder::OpKind::fused_conv2d_clamp:
      case PlanBuilder::OpKind::fused_linear_clamp: {
        core::BoundedActivation* site = op.site;
        if (site->profiling() || site->has_input_corruptor()) {
          throw std::logic_error(
              "InferencePlan: activation site '" + op.label +
              "' entered profiling/corruptor mode after compile; planned "
              "lanes serve clean inference only");
        }
        const bool is_conv =
            op.kind == PlanBuilder::OpKind::fused_conv2d_clamp;
        const std::int64_t in_stride =
            values_[static_cast<std::size_t>(op.in0)].sample_numel;
        const std::int64_t out_stride =
            values_[static_cast<std::size_t>(op.out)].sample_numel;
        const float* x = ptr(op.in0);
        float* o = ptr(op.out);
        const float* w = op.weight.data();
        const float* b = op.bias.defined() ? op.bias.data() : nullptr;
        // Scheme and bounds are re-read from the site on every execute, so
        // re-protection after compile behaves exactly as on the unfused
        // path. A plain ReLU is bound = +inf under the clamp cascade (every
        // finite positive passes, NaN maps to 0), with counting off — the
        // unfused relu never counts either.
        const core::Scheme scheme = site->scheme();
        static constexpr float kInf = std::numeric_limits<float>::infinity();
        ag::ClampSpec spec{&kInf, 1, ag::ClipMode::zero_above, false};
        bool count = false;
        if (scheme != core::Scheme::relu) {
          if (!site->has_bounds()) {
            throw std::logic_error("BoundedActivation(" +
                                   core::to_string(scheme) +
                                   "): bounds not initialised");
          }
          const Tensor& bt = site->bounds().value();
          op.fb.validate_bound(bt.numel());
          count = site->clamp_counting();
          spec = {bt.data(), bt.numel(),
                  scheme == core::Scheme::ranger ? ag::ClipMode::saturate
                                                 : ag::ClipMode::zero_above,
                  count};
        }
        std::uint64_t events = 0;
        const bool has_bn = op.gamma.defined();
        if (scheme == core::Scheme::fitrelu || has_bn) {
          // No single-epilogue form: FitReLU's sigmoid shaping has no
          // clip-kernel expression, and a folded BatchNorm sits between the
          // GEMM and the clamp. Run the producer (bias included) into the
          // fused output slot, then BN in place, then the activation pass —
          // the same steps in the same order as the unfused program, minus
          // the separate intermediate slots, so outputs stay bit-identical.
          if (is_conv) {
            for (std::int64_t s = 0; s < batch; ++s) {
              ag::conv2d_forward_sample(op.geo, op.out_c, x + s * in_stride,
                                        w, b, scratch, o + s * out_stride);
            }
          } else {
            ag::linear_forward(batch, op.in_f, op.out_f, x, w, b, scratch, o);
          }
          if (has_bn) {
            ag::batch_norm2d_eval_forward(
                batch, op.out_c, out_stride / op.out_c, o, op.gamma.data(),
                op.beta.data(), op.running_mean.data(), op.running_var.data(),
                op.eps, o);
          }
          if (scheme == core::Scheme::fitrelu) {
            const Tensor& bt = site->bounds().value();
            events = ag::fitrelu_forward(o, bt.data(), bt.numel(), op.fb,
                                         site->steepness(), o,
                                         batch * out_stride, count);
          } else {
            // Covers plain ReLU too: spec is then bound=+inf / zero_above /
            // no counting, bit-identical to relu_forward.
            events = ag::clipped_relu_forward(o, spec.bound, spec.bound_numel,
                                              op.fb, spec.mode, o,
                                              batch * out_stride, count);
          }
        } else if (is_conv) {
          for (std::int64_t s = 0; s < batch; ++s) {
            events += ag::conv2d_clamp_forward_sample(
                op.geo, op.out_c, x + s * in_stride, w, b, scratch,
                o + s * out_stride, spec);
          }
        } else {
          events = ag::linear_clamp_forward(batch, op.in_f, op.out_f, x, w, b,
                                            scratch, o, spec);
        }
        if (count) {
          site->add_clamp_counts(
              events, static_cast<std::uint64_t>(batch * out_stride));
        }
        break;
      }
      case PlanBuilder::OpKind::fused_conv2d_int8_clamp:
      case PlanBuilder::OpKind::fused_linear_int8_clamp: {
        core::BoundedActivation* site = op.site;
        if (site->profiling() || site->has_input_corruptor()) {
          throw std::logic_error(
              "InferencePlan: activation site '" + op.label +
              "' entered profiling/corruptor mode after compile; planned "
              "lanes serve clean inference only");
        }
        // The op was quantized under this site's bounds (they fixed the
        // activation scale); swapping scheme or bounds afterwards would
        // silently serve stale scales, so demand a recompile instead.
        const core::Scheme scheme = site->scheme();
        if (!clampable_scheme(scheme) || !site->has_bounds()) {
          throw std::logic_error(
              "InferencePlan: int8 op '" + op.label +
              "' lost the bounded clamp scheme it was quantized under; "
              "recompile the plan after re-protection");
        }
        const bool is_conv =
            op.kind == PlanBuilder::OpKind::fused_conv2d_int8_clamp;
        const std::int64_t in_stride =
            values_[static_cast<std::size_t>(op.in0)].sample_numel;
        const std::int64_t out_stride =
            values_[static_cast<std::size_t>(op.out)].sample_numel;
        const float* x = ptr(op.in0);
        float* o = ptr(op.out);
        const quant::Int8Weights& q8 = *op.q8;
        const Tensor& bt = site->bounds().value();
        op.fb.validate_bound(bt.numel());
        const bool saturate = scheme == core::Scheme::ranger;
        const bool count = site->clamp_counting();
        const float* b = op.bias.defined() ? op.bias.data() : nullptr;
        std::uint64_t events = 0;
        std::int8_t* const qbuf = scratch_i8_.get();
        if (is_conv) {
          // Per sample: quantize the input, gather the padded im2row patch
          // matrix, int8 GEMM straight into the output slot (int32
          // accumulators reinterpret the float storage), then the
          // per-channel dequantize+bias+clamp epilogue in place. A folded
          // BatchNorm defers the clamp: plain dequantize per plane, BN over
          // the batch, then the same clamp pass as the fp32 path.
          const std::int64_t hw = op.geo.out_h() * op.geo.out_w();
          const std::int64_t ckk_pad = q8.cols_padded;
          std::int8_t* const qin = qbuf;
          std::int8_t* const qhwc =
              qbuf + align_up_bytes(static_cast<std::size_t>(in_stride));
          std::int8_t* const qcol =
              qbuf + 2 * align_up_bytes(static_cast<std::size_t>(in_stride));
          const bool has_bn = op.gamma.defined();
          for (std::int64_t s = 0; s < batch; ++s) {
            kern::quantize_i8(x + s * in_stride, q8.inv_act_scale, qin,
                              in_stride);
            chw_to_hwc_i8(qin, qhwc, op.geo.in_channels,
                          op.geo.in_h * op.geo.in_w);
            im2row_i8(op.geo, qhwc, qcol, ckk_pad);
            auto* acc = reinterpret_cast<std::int32_t*>(o + s * out_stride);
            if (op.q8_in_nonneg) {
              // Proven-nonneg input: patch bytes are in [0,127], so the
              // u8xs8 kernel applies (patches are the B operand here).
              kern::gemm_i8u8_dot(op.out_c, hw, ckk_pad, q8.q.data(), ckk_pad,
                                  qcol, ckk_pad, acc, hw,
                                  /*a_unsigned=*/false);
            } else {
              kern::gemm_i8_dot(op.out_c, hw, ckk_pad, q8.q.data(), ckk_pad,
                                qcol, ckk_pad, acc, hw);
            }
            for (std::int64_t c = 0; c < op.out_c; ++c) {
              const float scale = q8.combined[static_cast<std::size_t>(c)];
              const float bc = b != nullptr ? b[c] : 0.0f;
              std::int32_t* plane = acc + c * hw;
              if (has_bn) {
                kern::dequant_i32(plane, scale, bc, hw);
              } else if (bt.numel() == 1) {
                events += kern::fused_dequant_clip_cc(
                    plane, scale, bc, bt.data()[0], saturate, hw, count);
              } else if (bt.numel() == op.out_c) {
                events += kern::fused_dequant_clip_cc(
                    plane, scale, bc, bt.data()[c], saturate, hw, count);
              } else {
                events += kern::fused_dequant_clip_cr(plane, scale, bc,
                                                      bt.data() + c * hw,
                                                      saturate, hw, count);
              }
            }
          }
          if (has_bn) {
            ag::batch_norm2d_eval_forward(
                batch, op.out_c, hw, o, op.gamma.data(), op.beta.data(),
                op.running_mean.data(), op.running_var.data(), op.eps, o);
            events = ag::clipped_relu_forward(
                o, bt.data(), bt.numel(), op.fb,
                saturate ? ag::ClipMode::saturate : ag::ClipMode::zero_above,
                o, batch * out_stride, count);
          }
        } else {
          // Quantize the batch rows (zero-padding each row's block tail),
          // one GEMM for the whole batch, then the per-row epilogue with
          // per-channel combined scales.
          const std::int64_t in_f_pad = q8.cols_padded;
          for (std::int64_t s = 0; s < batch; ++s) {
            kern::quantize_i8(x + s * in_stride, q8.inv_act_scale,
                              qbuf + s * in_f_pad, in_stride);
            std::memset(qbuf + s * in_f_pad + in_stride, 0,
                        static_cast<std::size_t>(in_f_pad - in_stride));
          }
          auto* acc = reinterpret_cast<std::int32_t*>(o);
          if (op.q8_in_nonneg) {
            // Proven-nonneg input: the quantized batch rows (the A operand
            // here) are in [0,127], so the u8xs8 kernel applies.
            kern::gemm_i8u8_dot(batch, op.out_f, in_f_pad, qbuf, in_f_pad,
                                q8.q.data(), in_f_pad, acc, op.out_f,
                                /*a_unsigned=*/true);
          } else {
            kern::gemm_i8_dot(batch, op.out_f, in_f_pad, qbuf, in_f_pad,
                              q8.q.data(), in_f_pad, acc, op.out_f);
          }
          for (std::int64_t s = 0; s < batch; ++s) {
            std::int32_t* row = acc + s * op.out_f;
            if (bt.numel() == 1) {
              events += kern::fused_dequant_clip_rc(row, q8.combined.data(),
                                                    b, bt.data()[0], saturate,
                                                    op.out_f, count);
            } else {
              events += kern::fused_dequant_clip_rr(row, q8.combined.data(),
                                                    b, bt.data(), saturate,
                                                    op.out_f, count);
            }
          }
        }
        if (count) {
          site->add_clamp_counts(
              events, static_cast<std::uint64_t>(batch * out_stride));
        }
        break;
      }
      case PlanBuilder::OpKind::batch_norm2d: {
        const Shape& xs = values_[static_cast<std::size_t>(op.in0)].sample_shape;
        ag::batch_norm2d_eval_forward(batch, xs[0], xs[1] * xs[2], ptr(op.in0),
                                      op.gamma.data(), op.beta.data(),
                                      op.running_mean.data(),
                                      op.running_var.data(), op.eps,
                                      ptr(op.out));
        break;
      }
      case PlanBuilder::OpKind::max_pool2d: {
        const Shape& xs = values_[static_cast<std::size_t>(op.in0)].sample_shape;
        ag::max_pool2d_forward(batch, xs[0], xs[1], xs[2], op.kernel,
                               op.stride, ptr(op.in0), ptr(op.out), nullptr);
        break;
      }
      case PlanBuilder::OpKind::global_avg_pool: {
        const Shape& xs = values_[static_cast<std::size_t>(op.in0)].sample_shape;
        ag::global_avg_pool_forward(batch, xs[0], xs[1] * xs[2], ptr(op.in0),
                                    ptr(op.out));
        break;
      }
      case PlanBuilder::OpKind::activation: {
        core::BoundedActivation* site = op.site;
        if (site->profiling() || site->has_input_corruptor()) {
          throw std::logic_error(
              "InferencePlan: activation site '" + op.label +
              "' entered profiling/corruptor mode after compile; planned "
              "lanes serve clean inference only");
        }
        const std::int64_t n =
            batch * values_[static_cast<std::size_t>(op.in0)].sample_numel;
        const float* x = ptr(op.in0);
        float* o = ptr(op.out);
        if (site->scheme() == core::Scheme::relu) {
          ag::relu_forward(x, o, n);
          break;
        }
        if (!site->has_bounds()) {
          throw std::logic_error("BoundedActivation(" +
                                 core::to_string(site->scheme()) +
                                 "): bounds not initialised");
        }
        const Tensor& bt = site->bounds().value();
        op.fb.validate_bound(bt.numel());
        const bool count = site->clamp_counting();
        std::uint64_t events = 0;
        switch (site->scheme()) {
          case core::Scheme::clip_act:
          case core::Scheme::fitrelu_naive:
            events = ag::clipped_relu_forward(x, bt.data(), bt.numel(), op.fb,
                                              ag::ClipMode::zero_above, o, n,
                                              count);
            break;
          case core::Scheme::ranger:
            events = ag::clipped_relu_forward(x, bt.data(), bt.numel(), op.fb,
                                              ag::ClipMode::saturate, o, n,
                                              count);
            break;
          case core::Scheme::fitrelu:
            events = ag::fitrelu_forward(x, bt.data(), bt.numel(), op.fb,
                                         site->steepness(), o, n, count);
            break;
          case core::Scheme::relu:
            break;  // handled above
        }
        if (count) {
          site->add_clamp_counts(events, static_cast<std::uint64_t>(n));
        }
        break;
      }
      case PlanBuilder::OpKind::add:
        ag::add_forward(ptr(op.in0), ptr(op.in1), ptr(op.out),
                        batch *
                            values_[static_cast<std::size_t>(op.out)]
                                .sample_numel);
        break;
      case PlanBuilder::OpKind::noop:
        break;
    }
  }
  return output_views_[static_cast<std::size_t>(batch - 1)];
}

void InferencePlan::restore_int8_weights() {
  for (auto& op : ops_) {
    if (op.q8) op.q8->restore();
  }
}

std::pair<std::int8_t*, std::size_t> InferencePlan::int8_weight_span(
    std::size_t index) {
  std::size_t seen = 0;
  for (auto& op : ops_) {
    if (!op.q8) continue;
    if (seen == index) return {op.q8->q.data(), op.q8->q.size()};
    ++seen;
  }
  throw std::out_of_range("InferencePlan: int8 op index " +
                          std::to_string(index) + " out of range (have " +
                          std::to_string(seen) + ")");
}

std::string InferencePlan::summary() const {
  static const char* const kKindNames[] = {
      "conv2d",      "linear", "batch_norm2d", "max_pool2d",
      "global_avg_pool", "activation", "add",  "noop",
      "fused_conv2d_clamp", "fused_linear_clamp",
      "fused_conv2d_int8_clamp", "fused_linear_int8_clamp"};
  std::ostringstream os;
  os << "InferencePlan: " << ops_.size() << " ops (" << fused_ops_
     << " fused, " << bn_folded_ << " bn-folded, " << int8_ops_
     << " int8), " << values_.size() << " values, max_batch " << max_batch_
     << ", arena " << arena_bytes() / 1024 << " KiB (" << buckets_.size()
     << " buckets)\n";
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    os << "  %" << op.out << " = "
       << kKindNames[static_cast<std::size_t>(op.kind)] << "(%" << op.in0;
    if (op.in1 >= 0) os << ", %" << op.in1;
    os << ") -> "
       << values_[static_cast<std::size_t>(op.out)].sample_shape.str();
    if (!op.label.empty()) os << "  # " << op.label;
    os << "\n";
  }
  return os.str();
}

}  // namespace fitact::nn
