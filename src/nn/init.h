// Weight initialisation schemes.
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace fitact::nn {

/// How a layer fills its parameters at construction time.
///
/// `random` runs the usual scheme (Kaiming/Xavier draws from the builder's
/// RNG). `deferred` allocates the parameter tensors but skips the random
/// fill entirely — the layer is marked pending-init and its values are
/// garbage until `copy_state`/`load_state` overwrites them. Used for
/// campaign worker replicas, whose parameters are copied from a source
/// model immediately after construction, so paying for a full random init
/// would be pure waste. Debug builds assert that a pending-init layer is
/// never forwarded.
enum class InitMode {
  random,
  deferred,
};

/// Kaiming/He normal init for ReLU-family networks: N(0, sqrt(2/fan_in)).
void kaiming_normal(Tensor& w, std::int64_t fan_in, ut::Rng& rng);

/// Kaiming uniform: U(-b, b) with b = sqrt(6/fan_in).
void kaiming_uniform(Tensor& w, std::int64_t fan_in, ut::Rng& rng);

/// Xavier/Glorot uniform: U(-b, b) with b = sqrt(6/(fan_in+fan_out)).
void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    ut::Rng& rng);

}  // namespace fitact::nn
