// Weight initialisation schemes.
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace fitact::nn {

/// Kaiming/He normal init for ReLU-family networks: N(0, sqrt(2/fan_in)).
void kaiming_normal(Tensor& w, std::int64_t fan_in, ut::Rng& rng);

/// Kaiming uniform: U(-b, b) with b = sqrt(6/fan_in).
void kaiming_uniform(Tensor& w, std::int64_t fan_in, ut::Rng& rng);

/// Xavier/Glorot uniform: U(-b, b) with b = sqrt(6/(fan_in+fan_out)).
void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    ut::Rng& rng);

}  // namespace fitact::nn
