// Gradient utilities: global-norm clipping (stabilises the BatchNorm-less
// architectures early in training) and gradient statistics.
#pragma once

#include <vector>

#include "autograd/variable.h"

namespace fitact::nn {

/// L2 norm over all gradients in `params` (parameters without an allocated
/// gradient contribute zero).
[[nodiscard]] double grad_norm(const std::vector<Variable>& params);

/// Scale all gradients so the global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double clip_grad_norm(std::vector<Variable>& params, double max_norm);

}  // namespace fitact::nn
