#include "nn/optimizer.h"

#include <cmath>

namespace fitact::nn {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (auto& p : params_) velocity_.push_back(Tensor::zeros(p.shape()));
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.value().data();
    const float* g = p.grad().data();
    float* vel = velocity_[i].data();
    for (std::int64_t j = 0; j < p.numel(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      vel[j] = momentum_ * vel[j] + grad;
      w[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Variable> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.push_back(Tensor::zeros(p.shape()));
    v_.push_back(Tensor::zeros(p.shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.value().data();
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::int64_t j = 0; j < p.numel(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace fitact::nn
