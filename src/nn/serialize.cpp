#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>

namespace fitact::nn {
namespace {

constexpr std::uint32_t kMagic = 0xF17AC701;
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_entry(std::ostream& os, const std::string& name,
                 const Tensor& t) {
  write_u64(os, name.size());
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  const auto& dims = t.shape().dims();
  write_u32(os, static_cast<std::uint32_t>(dims.size()));
  for (const auto d : dims) write_u64(os, static_cast<std::uint64_t>(d));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

}  // namespace

void save_state(const Module& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_state: cannot open " + path);
  const auto params = m.named_parameters();
  const auto buffers = m.named_buffers();
  write_u32(os, kMagic);
  write_u32(os, kVersion);
  write_u64(os, params.size() + buffers.size());
  for (const auto& p : params) write_entry(os, p.name, p.var.value());
  for (const auto& b : buffers) write_entry(os, b.name, b.tensor);
  if (!os) throw std::runtime_error("save_state: write failure on " + path);
}

bool load_state(Module& m, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  if (read_u32(is) != kMagic) {
    throw std::runtime_error("load_state: bad magic in " + path);
  }
  if (read_u32(is) != kVersion) {
    throw std::runtime_error("load_state: unsupported version in " + path);
  }
  const std::uint64_t count = read_u64(is);

  std::map<std::string, Tensor> targets;
  for (auto& p : m.named_parameters()) targets.emplace(p.name, p.var.value());
  for (auto& b : m.named_buffers()) targets.emplace(b.name, b.tensor);

  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = read_u64(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    const std::uint32_t rank = read_u32(is);
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) d = static_cast<std::int64_t>(read_u64(is));
    const Shape shape{dims};
    const auto it = targets.find(name);
    if (it == targets.end()) {
      throw std::runtime_error("load_state: unknown entry '" + name + "' in " +
                               path);
    }
    if (it->second.shape() != shape) {
      throw std::runtime_error("load_state: shape mismatch for '" + name +
                               "': file " + shape.str() + " vs module " +
                               it->second.shape().str());
    }
    is.read(reinterpret_cast<char*>(it->second.data()),
            static_cast<std::streamsize>(it->second.numel() * sizeof(float)));
    if (!is) {
      throw std::runtime_error("load_state: truncated file " + path);
    }
  }
  return true;
}

}  // namespace fitact::nn
