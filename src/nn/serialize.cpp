#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>

namespace fitact::nn {
namespace {

constexpr std::uint32_t kMagic = 0xF17AC701;
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_entry(std::ostream& os, const std::string& name,
                 const Tensor& t) {
  write_u64(os, name.size());
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  const auto& dims = t.shape().dims();
  write_u32(os, static_cast<std::uint32_t>(dims.size()));
  for (const auto d : dims) write_u64(os, static_cast<std::uint64_t>(d));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

/// Every writable state entry of `m`, by dotted name. The mapped Tensors
/// share storage with the module, so writing into them updates it.
std::map<std::string, Tensor> state_targets(const Module& m) {
  std::map<std::string, Tensor> targets;
  for (auto& p : m.named_parameters()) targets.emplace(p.name, p.var.value());
  for (auto& b : m.named_buffers()) targets.emplace(b.name, b.tensor);
  return targets;
}

/// Look up `name` in the target map and check it matches `shape`;
/// `context` prefixes error messages ("load_state: ...").
Tensor& find_target(std::map<std::string, Tensor>& targets,
                    const std::string& name, const Shape& shape,
                    const std::string& context) {
  const auto it = targets.find(name);
  if (it == targets.end()) {
    throw std::runtime_error(context + ": unknown entry '" + name + "'");
  }
  if (it->second.shape() != shape) {
    throw std::runtime_error(context + ": shape mismatch for '" + name +
                             "': source " + shape.str() + " vs module " +
                             it->second.shape().str());
  }
  return it->second;
}

}  // namespace

void save_state(const Module& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_state: cannot open " + path);
  const auto params = m.named_parameters();
  const auto buffers = m.named_buffers();
  write_u32(os, kMagic);
  write_u32(os, kVersion);
  write_u64(os, params.size() + buffers.size());
  for (const auto& p : params) write_entry(os, p.name, p.var.value());
  for (const auto& b : buffers) write_entry(os, b.name, b.tensor);
  if (!os) throw std::runtime_error("save_state: write failure on " + path);
}

bool load_state(Module& m, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  if (read_u32(is) != kMagic) {
    throw std::runtime_error("load_state: bad magic in " + path);
  }
  if (read_u32(is) != kVersion) {
    throw std::runtime_error("load_state: unsupported version in " + path);
  }
  const std::uint64_t count = read_u64(is);

  std::map<std::string, Tensor> targets = state_targets(m);
  const std::string context = "load_state(" + path + ")";
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = read_u64(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    const std::uint32_t rank = read_u32(is);
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) d = static_cast<std::int64_t>(read_u64(is));
    Tensor& target =
        find_target(targets, name, Shape{dims}, context);
    is.read(reinterpret_cast<char*>(target.data()),
            static_cast<std::streamsize>(target.numel() * sizeof(float)));
    if (!is) {
      throw std::runtime_error("load_state: truncated file " + path);
    }
  }
  m.clear_pending_init();
  return true;
}

void copy_state(const Module& src, Module& dst) {
  std::map<std::string, Tensor> targets = state_targets(dst);
  std::size_t copied = 0;
  for (const auto& [name, value] : state_targets(src)) {
    find_target(targets, name, value.shape(), "copy_state").copy_from(value);
    ++copied;
  }
  if (copied != targets.size()) {
    throw std::runtime_error(
        "copy_state: destination has entries the source lacks (" +
        std::to_string(targets.size()) + " vs " + std::to_string(copied) + ")");
  }
  // Every destination entry now holds real values; deferred-init layers
  // (InitMode::deferred replicas) are safe to evaluate.
  dst.clear_pending_init();
}

}  // namespace fitact::nn
