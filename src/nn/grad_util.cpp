#include "nn/grad_util.h"

#include <cmath>

namespace fitact::nn {

double grad_norm(const std::vector<Variable>& params) {
  double acc = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    for (const float g : p.grad().span()) {
      acc += static_cast<double>(g) * g;
    }
  }
  return std::sqrt(acc);
}

double clip_grad_norm(std::vector<Variable>& params, double max_norm) {
  const double norm = grad_norm(params);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params) {
      if (!p.has_grad()) continue;
      for (auto& g : p.grad().span()) g *= scale;
    }
  }
  return norm;
}

}  // namespace fitact::nn
