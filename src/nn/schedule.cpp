#include "nn/schedule.h"

#include <cmath>

namespace fitact::nn {

float StepDecay::lr_at(std::int64_t epoch) const {
  const std::int64_t steps = epoch / step_;
  return base_ * std::pow(gamma_, static_cast<float>(steps));
}

float CosineAnnealing::lr_at(std::int64_t epoch) const {
  if (epoch >= total_) return min_;
  const float t = static_cast<float>(epoch) / static_cast<float>(total_);
  return min_ + 0.5f * (base_ - min_) *
                    (1.0f + std::cos(3.14159265358979323846f * t));
}

float WarmupWrapper::lr_at(std::int64_t epoch) const {
  if (warmup_ > 0 && epoch < warmup_) {
    const float target = inner_->lr_at(warmup_);
    return target * static_cast<float>(epoch + 1) /
           static_cast<float>(warmup_);
  }
  return inner_->lr_at(epoch);
}

}  // namespace fitact::nn
