// Standard layers. Activation layers live in src/core (they are the paper's
// subject); everything else a CIFAR-class CNN needs is here.
#pragma once

#include <memory>
#include <vector>

#include "nn/init.h"
#include "nn/module.h"
#include "util/rng.h"

namespace fitact::nn {

class Conv2d final : public Module {
 public:
  /// InitMode::deferred allocates the weight without the Kaiming fill (for
  /// replicas whose state is copied in right after construction).
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         bool bias, ut::Rng& rng, InitMode init = InitMode::random);

  Variable forward(const Variable& x) override;
  PlanValueId record(PlanBuilder& builder, PlanValueId input) override;

  [[nodiscard]] std::int64_t out_channels() const noexcept { return out_c_; }

 private:
  std::int64_t out_c_;
  std::int64_t stride_;
  std::int64_t padding_;
  Variable weight_;
  Variable bias_;
};

class Linear final : public Module {
 public:
  /// InitMode::deferred allocates the weight without the Kaiming fill (for
  /// replicas whose state is copied in right after construction).
  Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
         ut::Rng& rng, InitMode init = InitMode::random);

  Variable forward(const Variable& x) override;
  PlanValueId record(PlanBuilder& builder, PlanValueId input) override;

 private:
  Variable weight_;
  Variable bias_;
};

class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Variable forward(const Variable& x) override;
  /// Records the eval-mode affine map; fails while in training mode (batch
  /// statistics depend on the batch, which a plan cannot represent).
  PlanValueId record(PlanBuilder& builder, PlanValueId input) override;

 private:
  float momentum_;
  float eps_;
  Variable gamma_;
  Variable beta_;
  Tensor running_mean_;
  Tensor running_var_;
};

class MaxPool2d final : public Module {
 public:
  explicit MaxPool2d(std::int64_t kernel, std::int64_t stride = -1);

  Variable forward(const Variable& x) override;
  PlanValueId record(PlanBuilder& builder, PlanValueId input) override;

 private:
  std::int64_t kernel_;
  std::int64_t stride_;
};

class GlobalAvgPool final : public Module {
 public:
  Variable forward(const Variable& x) override;
  PlanValueId record(PlanBuilder& builder, PlanValueId input) override;
};

class Flatten final : public Module {
 public:
  Variable forward(const Variable& x) override;
  PlanValueId record(PlanBuilder& builder, PlanValueId input) override;
};

class Identity final : public Module {
 public:
  Variable forward(const Variable& x) override { return x; }
  PlanValueId record(PlanBuilder& /*builder*/, PlanValueId input) override {
    return input;
  }
};

/// Inverted dropout; active only in training mode. Owns its RNG stream so
/// mask draws are reproducible per layer instance.
class Dropout final : public Module {
 public:
  explicit Dropout(float p, std::uint64_t seed = 0xD50Full);

  Variable forward(const Variable& x) override;
  /// In eval mode (or with p == 0) dropout is the identity, recorded as an
  /// explicit no-op so the plan documents the module. Recording an *active*
  /// dropout fails: a plan is an inference program and must not embed
  /// train-only stochastic behavior.
  PlanValueId record(PlanBuilder& builder, PlanValueId input) override;

 private:
  float p_;
  ut::Rng rng_;
};

/// Ordered container; children named by index ("0", "1", ...).
class Sequential final : public Module {
 public:
  Sequential() = default;

  /// Append a module; returns it for further wiring.
  template <typename M>
  std::shared_ptr<M> add(std::shared_ptr<M> m) {
    register_module(std::to_string(size_++), m);
    modules_.push_back(m);
    return m;
  }

  Variable forward(const Variable& x) override;
  PlanValueId record(PlanBuilder& builder, PlanValueId input) override;

  [[nodiscard]] std::size_t size() const noexcept { return modules_.size(); }
  [[nodiscard]] const std::shared_ptr<Module>& at(std::size_t i) const {
    return modules_.at(i);
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::shared_ptr<Module>> modules_;
};

}  // namespace fitact::nn
