#include "nn/layers.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace fitact::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool bias, ut::Rng& rng, InitMode init)
    : out_c_(out_channels), stride_(stride), padding_(padding) {
  Tensor w(Shape{out_channels, in_channels, kernel, kernel});
  if (init == InitMode::random) {
    kaiming_normal(w, in_channels * kernel * kernel, rng);
  } else {
    mark_pending_init();
  }
  weight_ = register_parameter("weight", Variable(std::move(w), true));
  if (bias) {
    bias_ = register_parameter("bias",
                               Variable(Tensor::zeros(Shape{out_channels}),
                                        true));
  }
}

Variable Conv2d::forward(const Variable& x) {
  assert_initialized();
  return ag::conv2d(x, weight_, bias_, stride_, padding_);
}

Linear::Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
               ut::Rng& rng, InitMode init) {
  Tensor w(Shape{out_features, in_features});
  if (init == InitMode::random) {
    kaiming_uniform(w, in_features, rng);
  } else {
    mark_pending_init();
  }
  weight_ = register_parameter("weight", Variable(std::move(w), true));
  if (bias) {
    bias_ = register_parameter(
        "bias", Variable(Tensor::zeros(Shape{out_features}), true));
  }
}

Variable Linear::forward(const Variable& x) {
  assert_initialized();
  return ag::linear(x, weight_, bias_);
}

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : momentum_(momentum), eps_(eps) {
  gamma_ = register_parameter("weight",
                              Variable(Tensor::ones(Shape{channels}), true));
  beta_ = register_parameter("bias",
                             Variable(Tensor::zeros(Shape{channels}), true));
  running_mean_ = register_buffer("running_mean", Tensor::zeros(Shape{channels}));
  running_var_ = register_buffer("running_var", Tensor::ones(Shape{channels}));
}

Variable BatchNorm2d::forward(const Variable& x) {
  return ag::batch_norm2d(x, gamma_, beta_, running_mean_, running_var_,
                          is_training(), momentum_, eps_);
}

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {}

Variable MaxPool2d::forward(const Variable& x) {
  return ag::max_pool2d(x, kernel_, stride_);
}

Variable GlobalAvgPool::forward(const Variable& x) {
  return ag::global_avg_pool(x);
}

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {}

Variable Dropout::forward(const Variable& x) {
  return ag::dropout(x, p_, is_training(), rng_);
}

Variable Flatten::forward(const Variable& x) { return ag::flatten(x); }

Variable Sequential::forward(const Variable& x) {
  Variable h = x;
  for (auto& m : modules_) h = m->forward(h);
  return h;
}

}  // namespace fitact::nn
