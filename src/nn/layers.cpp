#include "nn/layers.h"

#include "autograd/ops.h"
#include "nn/init.h"
#include "nn/plan.h"

namespace fitact::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool bias, ut::Rng& rng, InitMode init)
    : out_c_(out_channels), stride_(stride), padding_(padding) {
  Tensor w(Shape{out_channels, in_channels, kernel, kernel});
  if (init == InitMode::random) {
    kaiming_normal(w, in_channels * kernel * kernel, rng);
  } else {
    mark_pending_init();
  }
  weight_ = register_parameter("weight", Variable(std::move(w), true));
  if (bias) {
    bias_ = register_parameter("bias",
                               Variable(Tensor::zeros(Shape{out_channels}),
                                        true));
  }
}

Variable Conv2d::forward(const Variable& x) {
  assert_initialized();
  return ag::conv2d(x, weight_, bias_, stride_, padding_);
}

PlanValueId Conv2d::record(PlanBuilder& builder, PlanValueId input) {
  assert_initialized();
  return builder.conv2d(weight_.value(),
                        bias_.defined() ? bias_.value() : Tensor(), stride_,
                        padding_, input);
}

Linear::Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
               ut::Rng& rng, InitMode init) {
  Tensor w(Shape{out_features, in_features});
  if (init == InitMode::random) {
    kaiming_uniform(w, in_features, rng);
  } else {
    mark_pending_init();
  }
  weight_ = register_parameter("weight", Variable(std::move(w), true));
  if (bias) {
    bias_ = register_parameter(
        "bias", Variable(Tensor::zeros(Shape{out_features}), true));
  }
}

Variable Linear::forward(const Variable& x) {
  assert_initialized();
  return ag::linear(x, weight_, bias_);
}

PlanValueId Linear::record(PlanBuilder& builder, PlanValueId input) {
  assert_initialized();
  return builder.linear(weight_.value(),
                        bias_.defined() ? bias_.value() : Tensor(), input);
}

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : momentum_(momentum), eps_(eps) {
  gamma_ = register_parameter("weight",
                              Variable(Tensor::ones(Shape{channels}), true));
  beta_ = register_parameter("bias",
                             Variable(Tensor::zeros(Shape{channels}), true));
  running_mean_ = register_buffer("running_mean", Tensor::zeros(Shape{channels}));
  running_var_ = register_buffer("running_var", Tensor::ones(Shape{channels}));
}

Variable BatchNorm2d::forward(const Variable& x) {
  return ag::batch_norm2d(x, gamma_, beta_, running_mean_, running_var_,
                          is_training(), momentum_, eps_);
}

PlanValueId BatchNorm2d::record(PlanBuilder& builder, PlanValueId input) {
  if (is_training()) {
    builder.fail(
        "BatchNorm2d is in training mode; plans record the eval-mode affine "
        "map only — call set_training(false) before compiling a plan");
  }
  return builder.batch_norm2d(gamma_.value(), beta_.value(), running_mean_,
                              running_var_, eps_, input);
}

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {}

Variable MaxPool2d::forward(const Variable& x) {
  return ag::max_pool2d(x, kernel_, stride_);
}

PlanValueId MaxPool2d::record(PlanBuilder& builder, PlanValueId input) {
  return builder.max_pool2d(kernel_, stride_, input);
}

Variable GlobalAvgPool::forward(const Variable& x) {
  return ag::global_avg_pool(x);
}

PlanValueId GlobalAvgPool::record(PlanBuilder& builder, PlanValueId input) {
  return builder.global_avg_pool(input);
}

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {}

Variable Dropout::forward(const Variable& x) {
  return ag::dropout(x, p_, is_training(), rng_);
}

PlanValueId Dropout::record(PlanBuilder& builder, PlanValueId input) {
  if (is_training() && p_ > 0.0f) {
    builder.fail(
        "Dropout is active (training mode, p > 0); plans are inference "
        "programs — call set_training(false) before compiling a plan");
  }
  return builder.noop("Dropout", input);
}

Variable Flatten::forward(const Variable& x) { return ag::flatten(x); }

PlanValueId Flatten::record(PlanBuilder& builder, PlanValueId input) {
  return builder.flatten(input);
}

Variable Sequential::forward(const Variable& x) {
  Variable h = x;
  for (auto& m : modules_) h = m->forward(h);
  return h;
}

PlanValueId Sequential::record(PlanBuilder& builder, PlanValueId input) {
  PlanValueId h = input;
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    h = builder.record_child(std::to_string(i), *modules_[i], h);
  }
  return h;
}

}  // namespace fitact::nn
