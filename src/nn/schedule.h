// Learning-rate schedules for the stage-1 trainer. The paper's training
// details are unspecified beyond "conventional training"; step decay is the
// classic CIFAR recipe and cosine annealing the modern default, so both are
// provided (plus warmup, useful for the BatchNorm-less architectures).
#pragma once

#include <cstdint>

namespace fitact::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate to use for `epoch` (0-based).
  [[nodiscard]] virtual float lr_at(std::int64_t epoch) const = 0;
};

/// lr = base * gamma^(epoch / step_size)  (integer division).
class StepDecay final : public LrSchedule {
 public:
  StepDecay(float base_lr, std::int64_t step_size, float gamma) noexcept
      : base_(base_lr), step_(step_size < 1 ? 1 : step_size), gamma_(gamma) {}

  [[nodiscard]] float lr_at(std::int64_t epoch) const override;

 private:
  float base_;
  std::int64_t step_;
  float gamma_;
};

/// Cosine annealing from base_lr to min_lr over total_epochs.
class CosineAnnealing final : public LrSchedule {
 public:
  CosineAnnealing(float base_lr, std::int64_t total_epochs,
                  float min_lr = 0.0f) noexcept
      : base_(base_lr),
        total_(total_epochs < 1 ? 1 : total_epochs),
        min_(min_lr) {}

  [[nodiscard]] float lr_at(std::int64_t epoch) const override;

 private:
  float base_;
  std::int64_t total_;
  float min_;
};

/// Linear warmup over the first `warmup_epochs`, then delegates.
class WarmupWrapper final : public LrSchedule {
 public:
  WarmupWrapper(const LrSchedule& inner, std::int64_t warmup_epochs) noexcept
      : inner_(&inner), warmup_(warmup_epochs) {}

  [[nodiscard]] float lr_at(std::int64_t epoch) const override;

 private:
  const LrSchedule* inner_;
  std::int64_t warmup_;
};

}  // namespace fitact::nn
