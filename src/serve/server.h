// Resilient online inference serving.
//
// InferenceServer accepts single-sample requests, micro-batches them
// (configurable maximum batch size and batching window), and fans the
// batches out across worker lanes. Each lane owns an independent replica of
// the served model plus a clean quant::ParamImage of its parameters — the
// same lane anatomy as the fault-campaign engine (fault::CampaignWorker),
// assembled here into an online serving path.
//
// Fault detection exploits the dual of the paper's core observation:
// bounded activations confine fault propagation, so a *saturated clamp at
// inference time* is an observable symptom of an underlying parameter
// fault. Every lane forward counts clamp events (BoundedActivation's
// opt-in counter) per activation site; when the peak per-site clamp rate
// of a batch crosses the configured threshold, the lane declares a fault,
// scrubs its parameters by restoring the clean image, and re-runs the
// batch. (Per-site, not pooled: a saturating fault in a 64-neuron head
// would otherwise drown in the tens of thousands of activations the early
// conv maps contribute.) Clean traffic clamps at a low, calibratable
// baseline rate (see ev::make_server), so detection is free: the
// protection layer doubles as the detector.
//
// Locking discipline (machine-checked under clang -Wthread-safety): the
// request queue, shape latch, and shutdown flag live under queue_mutex_;
// aggregate counters under stats_mutex_; and each lane's model/image/sites
// under that lane's own mutex (held for the whole batch, and by with_lane).
// Lock order: a lane mutex is acquired before queue_mutex_/stats_mutex_ and
// the two global mutexes are never held together.
//
// Output contract: per-request results are bit-identical to running the
// sample alone through the lane model — every layer computes each batch row
// with a fixed per-element accumulation order independent of the batch
// assembly — so micro-batching, lane count, and arrival order never change
// what a client receives. serve_test enforces this.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/activation.h"
#include "nn/module.h"
#include "nn/plan.h"
#include "quant/param_image.h"
#include "tensor/tensor.h"
#include "util/thread_annotations.h"

namespace fitact::serve {

/// Everything a server's shape is made of, validated in one place:
/// InferenceServer's constructor calls validate(), so every invalid
/// combination surfaces through the same std::invalid_argument path no
/// matter which layer (examples, benches, ev::make_server) assembled the
/// options.
struct ServerOptions {
  /// Worker lanes; each lane runs its own replica on its own thread.
  std::size_t lanes = 1;
  /// Requests per micro-batch (upper bound).
  std::int64_t max_batch = 8;
  /// How long a lane waits for more requests after finding the queue
  /// non-empty but below max_batch. 0 = greedy: take whatever is queued
  /// immediately (deterministic; what the tests use).
  std::chrono::microseconds batch_window{0};
  /// Clamp-rate fault detection on lane forwards.
  bool detection = true;
  /// Peak per-site clamp rate (one site's clamp events / activations
  /// inspected, maximised over the model's activation sites) above which a
  /// lane declares a parameter fault. ev::make_server can calibrate this
  /// from clean traffic (it treats a negative value as "calibrate"; by the
  /// time options reach InferenceServer a detection threshold must be
  /// non-negative).
  double clamp_rate_threshold = 0.05;
  /// Scrub-and-re-run attempts per batch. After the last attempt the batch
  /// is served from the scrubbed (clean) parameters even if the rate is
  /// still above threshold — a persistent alarm on clean parameters means
  /// the threshold is miscalibrated for this traffic, not that the
  /// parameters are faulty.
  int max_recoveries_per_batch = 1;
  /// Serve through recorded nn::InferencePlans when lanes carry them
  /// (ev::make_server compiles one per lane): zero-allocation steady-state
  /// execution. Lanes without a plan — or batches the plan cannot take —
  /// fall back to the eager forward path; outputs are bit-identical either
  /// way, so this is purely a performance switch.
  bool plan = true;
  /// Fuse conv/linear + bound-clamp pairs when compiling lane plans
  /// (nn::InferencePlan::compile's fuse flag): the clamp runs as a GEMM
  /// epilogue and the pre-activation tensor gets no arena slot. Outputs and
  /// clamp-event counts are bit-identical either way (plan_test's fusion
  /// matrix pins this), so — like `plan` — this is purely a performance
  /// switch; it is the A/B lever serve_throughput's fuse_speedup row uses.
  /// Ignored when `plan` is off.
  bool fuse = true;
  /// Arithmetic the lane plans execute with (nn::Precision). int8 serves
  /// block-quantized weights through int8 GEMM with fused dequantize+clamp
  /// epilogues — quantized at make_server time from the FitAct clamp bounds
  /// (they fix the activation scales; see nn::Precision for the fault
  /// model). Requires `plan` and `fuse`: quantization is a pass over fused
  /// plan ops, and int8 never falls back to eager (ev::make_server
  /// propagates compile failures instead of silently serving fp32).
  nn::Precision precision = nn::Precision::fp32;
  /// Force the portable scalar kernel backend for the whole process
  /// (kern::force_backend; see tensor/kernels/kernels.h). Kernel dispatch
  /// is process-wide — per-lane or per-request backends would break the
  /// bit-identity contract — so constructing a server with this set pins
  /// every subsequent forward in the process, not just this server's, to
  /// the scalar backend. The A/B lever benches and tests use
  /// (serve_throughput --kernels scalar); leave false in production.
  bool force_scalar_kernels = false;

  /// Throws std::invalid_argument on the first invalid field. The single
  /// error path for server shape problems.
  void validate() const;
};

struct RequestResult {
  Tensor logits;               ///< [num_classes] row for this request
  std::int64_t predicted = -1; ///< argmax of logits
  std::uint64_t batch_id = 0;  ///< which micro-batch served it
  std::size_t lane = 0;
  std::int64_t batch_size = 0; ///< how many requests shared the batch
  bool recovered = false;      ///< batch was re-run after a detection
  /// Peak per-site clamp rate of the forward that produced this result.
  double clamp_rate = 0.0;
};

struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t forwards = 0;    ///< lane forwards, including re-runs
  std::uint64_t detections = 0;  ///< clamp-rate threshold crossings
  std::uint64_t recoveries = 0;  ///< clean-image scrubs triggered
  /// Batches still above threshold after the last permitted recovery
  /// (served from clean parameters regardless).
  std::uint64_t post_recovery_alarms = 0;
};

/// Everything one serving lane is made of. `sites` may be left empty; the
/// server collects the model's BoundedActivation sites itself, and enables
/// clamp counting on them when detection is configured.
struct Lane {
  std::shared_ptr<nn::Module> model;
  std::shared_ptr<quant::ParamImage> image;
  std::vector<std::shared_ptr<core::BoundedActivation>> sites;
  /// Optional recorded execution plan for this lane's model (compiled by
  /// ev::make_server). When present and ServerOptions::plan is set, batches
  /// within the plan's compiled range run through it instead of the eager
  /// forward. The plan must have been compiled from this lane's model (it
  /// shares the model's parameter storage and activation sites).
  std::shared_ptr<nn::InferencePlan> plan;
};

/// Builds lane `index` (0-based). Every lane must return an independent
/// replica (unlike the campaign engine there is no serial lane-0 path — all
/// lanes serve concurrently). See ev::make_server for the standard factory
/// over a PreparedModel.
using LaneFactory = std::function<Lane(std::size_t index)>;

class InferenceServer {
 public:
  /// Builds every lane on the calling thread, then starts the lane threads.
  /// Throws std::invalid_argument for a null factory, options that fail
  /// ServerOptions::validate(), or a factory that returns a lane without a
  /// model or image.
  InferenceServer(const LaneFactory& factory, ServerOptions options);

  /// Stops accepting work, drains every queued request, and joins the lane
  /// threads. Pending promises are always fulfilled.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue one sample ([C,H,W], or [1,C,H,W]); the tensor is copied into
  /// the batch during assembly, so the caller may reuse its buffer after
  /// submit returns. All samples must share one shape (fixed by the first
  /// request). Throws std::runtime_error after shutdown began.
  [[nodiscard]] std::future<RequestResult> submit(const Tensor& image);

  /// Synchronous convenience wrapper: submit + wait.
  [[nodiscard]] RequestResult infer(const Tensor& image);

  /// Block until every submitted request has been answered.
  void drain();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] std::size_t lane_count() const noexcept {
    return lanes_.size();
  }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// Exclusive access to a lane's live model and clean image while the lane
  /// is between batches — the hook fault-injection benches and tests use to
  /// corrupt a lane's parameters under the server's feet (via a
  /// fault::Injector over the lane's image, say). Blocks until the lane
  /// finishes its current batch.
  void with_lane(std::size_t index,
                 const std::function<void(nn::Module&, quant::ParamImage&)>& fn);

  /// Overload handing out the whole Lane — int8 fault campaigns need the
  /// lane's plan (nn::InferencePlan::int8_weight_span is the quantized
  /// fault space), which the model/image form cannot reach.
  void with_lane(std::size_t index, const std::function<void(Lane&)>& fn);

 private:
  struct Request {
    Tensor image;
    std::promise<RequestResult> promise;
  };
  struct LaneState {
    ut::Mutex mutex;  ///< held while the lane processes a batch
    Lane lane FITACT_GUARDED_BY(mutex);
  };

  void lane_loop(std::size_t index);
  void process_batch(std::size_t index, std::vector<Request>& batch);

  ServerOptions options_;  ///< immutable after construction
  std::vector<std::unique_ptr<LaneState>> lanes_;  ///< vector itself immutable
  std::vector<std::thread> threads_;

  mutable ut::Mutex queue_mutex_;
  ut::CondVar queue_cv_;
  ut::CondVar idle_cv_;
  std::deque<Request> queue_ FITACT_GUARDED_BY(queue_mutex_);
  /// Fixed by the first submitted request.
  Shape sample_shape_ FITACT_GUARDED_BY(queue_mutex_);
  /// Submitted, not yet answered.
  std::uint64_t in_flight_ FITACT_GUARDED_BY(queue_mutex_) = 0;
  std::uint64_t next_batch_id_ FITACT_GUARDED_BY(queue_mutex_) = 0;
  bool stopping_ FITACT_GUARDED_BY(queue_mutex_) = false;

  mutable ut::Mutex stats_mutex_;
  ServerStats stats_ FITACT_GUARDED_BY(stats_mutex_);
};

}  // namespace fitact::serve
