#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "autograd/variable.h"
#include "tensor/kernels/kernels.h"
#include "tensor/tensor_ops.h"

namespace fitact::serve {

void ServerOptions::validate() const {
  if (lanes == 0) {
    throw std::invalid_argument("ServerOptions: at least one lane required");
  }
  if (max_batch <= 0) {
    throw std::invalid_argument("ServerOptions: max_batch must be positive");
  }
  if (batch_window.count() < 0) {
    throw std::invalid_argument(
        "ServerOptions: batch_window must be non-negative");
  }
  if (detection && clamp_rate_threshold < 0.0) {
    throw std::invalid_argument(
        "ServerOptions: clamp_rate_threshold must be non-negative when "
        "detection is on (ev::make_server calibrates negative thresholds "
        "before construction)");
  }
  if (max_recoveries_per_batch < 0) {
    throw std::invalid_argument(
        "ServerOptions: max_recoveries_per_batch must be non-negative");
  }
  if (precision == nn::Precision::int8 && (!plan || !fuse)) {
    throw std::invalid_argument(
        "ServerOptions: precision=int8 requires plan=true and fuse=true "
        "(quantization converts fused plan ops; there is no eager int8 "
        "path)");
  }
}

InferenceServer::InferenceServer(const LaneFactory& factory,
                                 ServerOptions options)
    : options_(options) {
  if (!factory) {
    throw std::invalid_argument("InferenceServer: null lane factory");
  }
  options_.validate();
  if (options_.force_scalar_kernels) {
    // Process-wide by design (see the ServerOptions field comment); applied
    // before lanes are built so calibration forwards in the factory and
    // serving forwards run the same backend.
    (void)kern::force_backend(kern::Backend::scalar);
  }
  lanes_.reserve(options_.lanes);
  for (std::size_t i = 0; i < options_.lanes; ++i) {
    auto state = std::make_unique<LaneState>();
    // No lane thread exists yet, but LaneState::lane is guarded by the lane
    // mutex and this is not LaneState's own constructor, so take the
    // (uncontended) lock to keep the annotation contract unconditional.
    const ut::LockGuard lane_lock(state->mutex);
    state->lane = factory(i);
    if (!state->lane.model || !state->lane.image) {
      throw std::invalid_argument(
          "InferenceServer: lane factory returned a lane without a model or "
          "image");
    }
    if (state->lane.sites.empty()) {
      state->lane.sites = core::collect_activations(*state->lane.model);
    }
    // Detection is thresholded on the sites' clamp counters; a lane whose
    // sites never count would make the detector silently inert, so the
    // server owns enabling it (a factory may still have done so already).
    if (options_.detection) {
      for (const auto& site : state->lane.sites) {
        site->set_clamp_counting(true);
      }
    }
    state->lane.model->set_training(false);
    lanes_.push_back(std::move(state));
  }
  threads_.reserve(options_.lanes);
  try {
    for (std::size_t i = 0; i < options_.lanes; ++i) {
      threads_.emplace_back([this, i] { lane_loop(i); });
    }
  } catch (...) {
    // A lane thread failed to spawn (thread limit): shut down the ones
    // already running before rethrowing — destroying a joinable
    // std::thread would terminate the process.
    {
      const ut::LockGuard lock(queue_mutex_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    for (auto& t : threads_) t.join();
    throw;
  }
}

InferenceServer::~InferenceServer() {
  {
    const ut::LockGuard lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<RequestResult> InferenceServer::submit(const Tensor& image) {
  if (!image.defined()) {
    throw std::invalid_argument("InferenceServer::submit: undefined tensor");
  }
  // Accept [C,H,W] or a leading singleton batch dim [1,C,H,W]; the lane
  // stacks samples along a fresh batch dimension.
  Shape sample = image.shape();
  if (sample.rank() == 4 && sample[0] == 1) {
    sample = Shape{sample[1], sample[2], sample[3]};
  }
  if (sample.rank() != 3) {
    throw std::invalid_argument(
        "InferenceServer::submit: expected a [C,H,W] sample, got " +
        image.shape().str());
  }
  Request req;
  req.image = image;
  std::future<RequestResult> future = req.promise.get_future();
  {
    const ut::LockGuard lock(queue_mutex_);
    if (stopping_) {
      throw std::runtime_error("InferenceServer::submit: server is stopping");
    }
    if (sample_shape_.empty()) {
      sample_shape_ = sample;
    } else if (sample_shape_ != sample) {
      throw std::invalid_argument(
          "InferenceServer::submit: sample shape " + sample.str() +
          " does not match the server's " + sample_shape_.str());
    }
    queue_.push_back(std::move(req));
    ++in_flight_;
  }
  {
    const ut::LockGuard lock(stats_mutex_);
    ++stats_.requests;
  }
  queue_cv_.notify_all();
  return future;
}

RequestResult InferenceServer::infer(const Tensor& image) {
  return submit(image).get();
}

void InferenceServer::drain() {
  const ut::LockGuard lock(queue_mutex_);
  while (in_flight_ != 0) idle_cv_.wait(queue_mutex_);
}

ServerStats InferenceServer::stats() const {
  const ut::LockGuard lock(stats_mutex_);
  return stats_;
}

void InferenceServer::with_lane(
    std::size_t index,
    const std::function<void(nn::Module&, quant::ParamImage&)>& fn) {
  if (index >= lanes_.size()) {
    throw std::out_of_range("InferenceServer::with_lane: no lane " +
                            std::to_string(index));
  }
  LaneState& state = *lanes_[index];
  const ut::LockGuard lock(state.mutex);
  fn(*state.lane.model, *state.lane.image);
}

void InferenceServer::with_lane(std::size_t index,
                                const std::function<void(Lane&)>& fn) {
  if (index >= lanes_.size()) {
    throw std::out_of_range("InferenceServer::with_lane: no lane " +
                            std::to_string(index));
  }
  LaneState& state = *lanes_[index];
  const ut::LockGuard lock(state.mutex);
  fn(state.lane);
}

void InferenceServer::lane_loop(std::size_t index) {
  for (;;) {
    std::vector<Request> batch;
    {
      const ut::LockGuard lock(queue_mutex_);
      while (!stopping_ && queue_.empty()) queue_cv_.wait(queue_mutex_);
      if (queue_.empty()) return;  // stopping, and fully drained
      if (options_.batch_window.count() > 0 &&
          queue_.size() < static_cast<std::size_t>(options_.max_batch)) {
        // Found work but not a full batch: wait up to the batching window
        // for more arrivals, then take what's there.
        const auto deadline =
            std::chrono::steady_clock::now() + options_.batch_window;
        while (!stopping_ &&
               queue_.size() < static_cast<std::size_t>(options_.max_batch)) {
          if (queue_cv_.wait_until(queue_mutex_, deadline) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }
      const std::size_t take = std::min(
          queue_.size(), static_cast<std::size_t>(options_.max_batch));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (batch.empty()) continue;
    process_batch(index, batch);
    {
      const ut::LockGuard lock(queue_mutex_);
      in_flight_ -= batch.size();
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void InferenceServer::process_batch(std::size_t index,
                                    std::vector<Request>& batch) {
  LaneState& state = *lanes_[index];
  const ut::LockGuard lane_lock(state.mutex);

  std::uint64_t batch_id = 0;
  {
    const ut::LockGuard lock(queue_mutex_);
    batch_id = next_batch_id_++;
  }

  std::size_t fulfilled = 0;
  try {
    const std::int64_t b = static_cast<std::int64_t>(batch.size());
    const std::int64_t sample_numel = batch.front().image.numel();
    const Shape& s0 = batch.front().image.shape();
    const std::size_t skip = s0.rank() == 4 ? 1 : 0;  // leading [1,...]

    // Planned execution: when the lane carries a plan whose compiled sample
    // shape and batch range cover this batch, stage the samples straight
    // into the plan's arena and run the recorded program — the steady-state
    // hot path, zero heap allocations inside execute(). Anything else (plan
    // disabled, unrecordable model, out-of-range batch, shape mismatch)
    // takes the eager forward; outputs are bit-identical either way.
    nn::InferencePlan* plan = nullptr;
    if (options_.plan && state.lane.plan &&
        b <= state.lane.plan->max_batch()) {
      const Shape& ps = state.lane.plan->sample_shape();
      bool match = ps.rank() + skip == s0.rank();
      for (std::size_t d = 0; match && d < ps.rank(); ++d) {
        match = ps[d] == s0[d + skip];
      }
      if (match) plan = state.lane.plan.get();
    }

    Tensor input;  // eager staging buffer; planned batches stage in-arena
    float* staging = nullptr;
    if (plan != nullptr) {
      staging = plan->input_view(b).data();
    } else {
      std::vector<std::int64_t> dims;
      dims.push_back(b);
      for (std::size_t d = skip; d < s0.rank(); ++d) dims.push_back(s0[d]);
      input = Tensor{Shape(dims)};
      staging = input.data();
    }
    for (std::int64_t i = 0; i < b; ++i) {
      std::memcpy(staging + i * sample_numel, batch[i].image.data(),
                  static_cast<std::size_t>(sample_numel) * sizeof(float));
    }

    const NoGradGuard no_grad;
    // Detection statistic: the *peak per-site* clamp rate
    // (core::peak_site_clamp_rate). Pooling all sites into one ratio would
    // let the large early conv maps (tens of thousands of activations)
    // drown out a saturating fault in a small late layer (a 64-neuron head
    // contributes at most 64 events). Planned forwards feed the same site
    // counters (the bound-clamp op fuses counting into its kernel pass), so
    // detection and recovery are path-agnostic.
    const auto forward_once = [&]() -> std::pair<Tensor, double> {
      core::reset_clamp_counters(state.lane.sites);
      if (plan != nullptr) {
        const Tensor& out = plan->execute(b);
        return {out, core::peak_site_clamp_rate(state.lane.sites)};
      }
      const Variable out = state.lane.model->forward(Variable(input));
      return {out.value(), core::peak_site_clamp_rate(state.lane.sites)};
    };

    std::pair<Tensor, double> fwd = forward_once();
    Tensor& logits = fwd.first;
    double& rate = fwd.second;
    std::uint64_t forwards = 1;
    std::uint64_t detections = 0;
    std::uint64_t recoveries = 0;
    bool recovered = false;
    if (options_.detection && rate > options_.clamp_rate_threshold) {
      ++detections;
      for (int attempt = 0; attempt < options_.max_recoveries_per_batch;
           ++attempt) {
        // Memory scrubbing: write the clean image back over the (presumed
        // faulty) live parameters, then re-run the batch on clean state. An
        // int8 plan's quantized weight bytes are deployed storage of their
        // own (fp32 scrubs don't reach them), so they get their own scrub.
        state.lane.image->restore();
        if (state.lane.plan) state.lane.plan->restore_int8_weights();
        ++recoveries;
        recovered = true;
        fwd = forward_once();
        ++forwards;
        if (rate <= options_.clamp_rate_threshold) break;
      }
    }
    const bool post_recovery_alarm =
        recovered && rate > options_.clamp_rate_threshold;

    {
      const ut::LockGuard lock(stats_mutex_);
      ++stats_.batches;
      stats_.forwards += forwards;
      stats_.detections += detections;
      stats_.recoveries += recoveries;
      stats_.post_recovery_alarms += post_recovery_alarm ? 1 : 0;
    }

    const std::int64_t classes = logits.numel() / b;
    const auto predicted = argmax_rows(logits);
    for (std::int64_t i = 0; i < b; ++i) {
      RequestResult r;
      r.logits = Tensor(Shape{classes});
      std::memcpy(r.logits.data(), logits.data() + i * classes,
                  static_cast<std::size_t>(classes) * sizeof(float));
      r.predicted = predicted[static_cast<std::size_t>(i)];
      r.batch_id = batch_id;
      r.lane = index;
      r.batch_size = b;
      r.recovered = recovered;
      r.clamp_rate = rate;
      batch[static_cast<std::size_t>(i)].promise.set_value(std::move(r));
      ++fulfilled;
    }
  } catch (...) {
    // Never break a promise: forward or assembly failures surface on the
    // caller's future, and the lane keeps serving. Skip promises already
    // fulfilled (a failure mid-fulfillment-loop) — set_exception on a
    // satisfied promise would itself throw out of the lane thread.
    for (std::size_t i = fulfilled; i < batch.size(); ++i) {
      batch[i].promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace fitact::serve
