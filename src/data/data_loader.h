// Mini-batch iteration with per-epoch shuffling.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace fitact::data {

struct Batch {
  Tensor images;                     // [B, 3, 32, 32]
  std::vector<std::int64_t> labels;  // B entries
};

class DataLoader {
 public:
  DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle,
             std::uint64_t seed);

  /// Number of batches per epoch (last partial batch included).
  [[nodiscard]] std::int64_t batches_per_epoch() const noexcept;

  /// Reset to the start of a new epoch (reshuffles when enabled).
  void start_epoch();

  /// Fetch the next batch; returns false at epoch end.
  bool next(Batch& out);

 private:
  const Dataset* dataset_;
  std::int64_t batch_size_;
  bool shuffle_;
  ut::Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace fitact::data
