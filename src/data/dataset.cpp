#include "data/dataset.h"

#include <stdexcept>

namespace fitact::data {

Tensor Dataset::batch(std::int64_t begin, std::int64_t count,
                      std::vector<std::int64_t>* labels_out) const {
  if (begin < 0 || begin + count > size()) {
    throw std::out_of_range("Dataset::batch range");
  }
  Tensor out(Shape{count, kImageChannels, kImageHeight, kImageWidth});
  if (labels_out != nullptr) {
    labels_out->clear();
    labels_out->reserve(static_cast<std::size_t>(count));
  }
  for (std::int64_t i = 0; i < count; ++i) {
    image_into(begin + i, out.data() + i * kImageNumel);
    if (labels_out != nullptr) labels_out->push_back(label(begin + i));
  }
  return out;
}

Tensor Dataset::gather(const std::vector<std::size_t>& indices,
                       std::vector<std::int64_t>* labels_out) const {
  Tensor out(Shape{static_cast<std::int64_t>(indices.size()), kImageChannels,
                   kImageHeight, kImageWidth});
  if (labels_out != nullptr) {
    labels_out->clear();
    labels_out->reserve(indices.size());
  }
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto idx = static_cast<std::int64_t>(indices[i]);
    if (idx >= size()) throw std::out_of_range("Dataset::gather index");
    image_into(idx, out.data() + static_cast<std::int64_t>(i) * kImageNumel);
    if (labels_out != nullptr) labels_out->push_back(label(idx));
  }
  return out;
}

}  // namespace fitact::data
