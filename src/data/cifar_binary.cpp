#include "data/cifar_binary.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace fitact::data {
namespace {

constexpr float kMean[3] = {0.4914f, 0.4822f, 0.4465f};
constexpr float kStd[3] = {0.2470f, 0.2435f, 0.2616f};

}  // namespace

CifarBinary::CifarBinary(const std::vector<std::string>& files,
                         std::int64_t num_classes, bool fine_labels)
    : num_classes_(num_classes) {
  const std::size_t label_bytes = fine_labels ? 2 : 1;
  const std::size_t record = label_bytes + 3072;
  std::vector<unsigned char> buf;
  for (const auto& file : files) {
    std::ifstream is(file, std::ios::binary | std::ios::ate);
    if (!is) throw std::runtime_error("CifarBinary: cannot open " + file);
    const auto bytes = static_cast<std::size_t>(is.tellg());
    if (bytes % record != 0) {
      throw std::runtime_error("CifarBinary: " + file +
                               " is not a whole number of records");
    }
    is.seekg(0);
    buf.resize(bytes);
    is.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(bytes));
    const std::size_t count = bytes / record;
    pixels_.reserve(pixels_.size() + count * kImageNumel);
    labels_.reserve(labels_.size() + count);
    for (std::size_t r = 0; r < count; ++r) {
      const unsigned char* rec = buf.data() + r * record;
      // CIFAR-100 uses <coarse><fine>; we want the fine label.
      labels_.push_back(static_cast<std::int64_t>(rec[label_bytes - 1]));
      const unsigned char* px = rec + label_bytes;
      for (std::int64_t c = 0; c < 3; ++c) {
        const float m = kMean[c];
        const float s = kStd[c];
        for (std::int64_t i = 0; i < 1024; ++i) {
          pixels_.push_back(
              (static_cast<float>(px[c * 1024 + i]) / 255.0f - m) / s);
        }
      }
    }
  }
}

void CifarBinary::image_into(std::int64_t i, float* out) const {
  std::memcpy(out, pixels_.data() + i * kImageNumel,
              kImageNumel * sizeof(float));
}

bool CifarBinary::available(const std::string& root,
                            std::int64_t num_classes) {
  namespace fs = std::filesystem;
  if (num_classes == 10) {
    return fs::exists(fs::path(root) / "cifar-10-batches-bin" /
                      "data_batch_1.bin");
  }
  return fs::exists(fs::path(root) / "cifar-100-binary" / "train.bin");
}

CifarBinary CifarBinary::open(const std::string& root,
                              std::int64_t num_classes, bool train) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  if (num_classes == 10) {
    const fs::path dir = fs::path(root) / "cifar-10-batches-bin";
    if (train) {
      for (int i = 1; i <= 5; ++i) {
        files.push_back((dir / ("data_batch_" + std::to_string(i) + ".bin"))
                            .string());
      }
    } else {
      files.push_back((dir / "test_batch.bin").string());
    }
    return CifarBinary(files, 10, /*fine_labels=*/false);
  }
  const fs::path dir = fs::path(root) / "cifar-100-binary";
  files.push_back((dir / (train ? "train.bin" : "test.bin")).string());
  return CifarBinary(files, 100, /*fine_labels=*/true);
}

}  // namespace fitact::data
