// Dataset abstraction: indexed access to (image, label) pairs with CIFAR
// geometry (3x32x32 float images, integer labels).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fitact::data {

inline constexpr std::int64_t kImageChannels = 3;
inline constexpr std::int64_t kImageHeight = 32;
inline constexpr std::int64_t kImageWidth = 32;
inline constexpr std::int64_t kImageNumel =
    kImageChannels * kImageHeight * kImageWidth;

class Dataset {
 public:
  virtual ~Dataset() = default;

  [[nodiscard]] virtual std::int64_t size() const = 0;
  [[nodiscard]] virtual std::int64_t num_classes() const = 0;

  /// Copy sample i's image into `out` (kImageNumel floats, CHW layout).
  virtual void image_into(std::int64_t i, float* out) const = 0;
  [[nodiscard]] virtual std::int64_t label(std::int64_t i) const = 0;

  /// Materialise samples [begin, begin+count) into a batch tensor
  /// [count, 3, 32, 32] plus labels.
  [[nodiscard]] Tensor batch(std::int64_t begin, std::int64_t count,
                             std::vector<std::int64_t>* labels_out) const;

  /// Materialise an arbitrary index list.
  [[nodiscard]] Tensor gather(const std::vector<std::size_t>& indices,
                              std::vector<std::int64_t>* labels_out) const;
};

}  // namespace fitact::data
