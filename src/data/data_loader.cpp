#include "data/data_loader.h"

#include <numeric>

namespace fitact::data {

DataLoader::DataLoader(const Dataset& dataset, std::int64_t batch_size,
                       bool shuffle, std::uint64_t seed)
    : dataset_(&dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  order_.resize(static_cast<std::size_t>(dataset.size()));
  std::iota(order_.begin(), order_.end(), 0u);
  start_epoch();
}

std::int64_t DataLoader::batches_per_epoch() const noexcept {
  return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::start_epoch() {
  cursor_ = 0;
  if (shuffle_) rng_.shuffle(order_);
}

bool DataLoader::next(Batch& out) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t end =
      std::min(order_.size(), cursor_ + static_cast<std::size_t>(batch_size_));
  const std::vector<std::size_t> indices(order_.begin() + static_cast<long>(cursor_),
                                         order_.begin() + static_cast<long>(end));
  cursor_ = end;
  out.images = dataset_->gather(indices, &out.labels);
  return true;
}

}  // namespace fitact::data
