#include "data/synthetic_cifar.h"

#include <array>
#include <cmath>

namespace fitact::data {

SyntheticCifar::SyntheticCifar(const SyntheticCifarConfig& config)
    : config_(config) {
  ut::Rng rng(config_.seed * 0x9E3779B97F4A7C15ull + 17);
  class_gratings_.resize(static_cast<std::size_t>(config_.num_classes));
  class_color_.resize(static_cast<std::size_t>(config_.num_classes));
  for (std::int64_t c = 0; c < config_.num_classes; ++c) {
    auto& gratings = class_gratings_[static_cast<std::size_t>(c)];
    gratings.resize(static_cast<std::size_t>(config_.gratings_per_class));
    for (auto& g : gratings) {
      g.fx = rng.uniform(0.5f, 4.0f);
      g.fy = rng.uniform(0.5f, 4.0f);
      g.amp = rng.uniform(0.5f, 1.2f);
      g.phase = rng.uniform(0.0f, 6.2831853f);
      for (auto& w : g.rgb) w = rng.uniform(-1.0f, 1.0f);
    }
    auto& color = class_color_[static_cast<std::size_t>(c)];
    for (auto& w : color) w = rng.uniform(-0.6f, 0.6f);
  }
}

std::int64_t SyntheticCifar::label(std::int64_t i) const {
  // Balanced round-robin labels; deterministic in the index.
  return i % config_.num_classes;
}

void SyntheticCifar::image_into(std::int64_t i, float* out) const {
  const std::int64_t cls = label(i);
  // Per-sample stream: derived from (seed, split, index) so train and test
  // splits never alias.
  ut::Rng rng(config_.seed ^ (config_.split_salt * 0xD1B54A32D192ED03ull) ^
              (static_cast<std::uint64_t>(i) * 0x2545F4914F6CDD1Dull));

  const auto& gratings = class_gratings_[static_cast<std::size_t>(cls)];
  const auto& color = class_color_[static_cast<std::size_t>(cls)];

  // Random per-sample modulation.
  const float amp_jitter = rng.uniform(0.7f, 1.3f);
  const float phase_x = rng.uniform(0.0f, 6.2831853f);
  const float phase_y = rng.uniform(0.0f, 6.2831853f);

  constexpr float kTwoPiOverW = 6.2831853f / static_cast<float>(kImageWidth);
  for (std::int64_t ch = 0; ch < kImageChannels; ++ch) {
    float* plane = out + ch * kImageHeight * kImageWidth;
    for (std::int64_t y = 0; y < kImageHeight; ++y) {
      for (std::int64_t x = 0; x < kImageWidth; ++x) {
        float v = color[static_cast<std::size_t>(ch)];
        for (const auto& g : gratings) {
          const float arg = g.fx * (static_cast<float>(x) * kTwoPiOverW +
                                    phase_x) +
                            g.fy * (static_cast<float>(y) * kTwoPiOverW +
                                    phase_y) +
                            g.phase;
          v += amp_jitter * g.amp * g.rgb[static_cast<std::size_t>(ch)] *
               std::sin(arg);
        }
        plane[y * kImageWidth + x] = v;
      }
    }
  }
  // Additive pixel noise.
  for (std::int64_t p = 0; p < kImageNumel; ++p) {
    out[p] += rng.normal(0.0f, config_.noise_stddev);
  }
}

SyntheticSplits make_synthetic_splits(std::int64_t num_classes,
                                      std::int64_t train_size,
                                      std::int64_t test_size,
                                      std::uint64_t seed) {
  SyntheticCifarConfig train_cfg;
  train_cfg.num_classes = num_classes;
  train_cfg.size = train_size;
  train_cfg.seed = seed;
  train_cfg.split_salt = 1;
  SyntheticCifarConfig test_cfg = train_cfg;
  test_cfg.size = test_size;
  test_cfg.split_salt = 2;
  return SyntheticSplits{SyntheticCifar(train_cfg), SyntheticCifar(test_cfg)};
}

}  // namespace fitact::data
