// SyntheticCifar: procedural stand-in for CIFAR-10 / CIFAR-100.
//
// The real datasets are not bundled (no network access in the reproduction
// environment); this generator produces class-conditional textured images
// with the same geometry (3x32x32) and class counts (10 or 100). Each class
// owns a deterministic mixture of 2-D sinusoidal gratings plus a class color
// cast; a sample is the class texture under a random phase shift, amplitude
// jitter, and additive Gaussian pixel noise. The result is:
//   - learnable by the paper's architectures within a few epochs,
//   - non-trivial (samples of one class differ; classes overlap under noise),
//   - rich in activation-magnitude spread across neurons, which is the
//     property the paper's Fig. 2 motivation and all protection schemes
//     depend on.
// Samples are generated on the fly from (seed, index) and never stored, so
// arbitrarily large epochs cost no memory.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace fitact::data {

struct SyntheticCifarConfig {
  std::int64_t num_classes = 10;
  std::int64_t size = 2048;       ///< samples in this split
  std::uint64_t seed = 1;         ///< class-texture seed (shared by splits)
  std::uint64_t split_salt = 0;   ///< distinguishes train/test sample streams
  float noise_stddev = 0.35f;     ///< additive pixel noise
  int gratings_per_class = 3;     ///< sinusoidal components per class
};

class SyntheticCifar final : public Dataset {
 public:
  explicit SyntheticCifar(const SyntheticCifarConfig& config);

  [[nodiscard]] std::int64_t size() const override { return config_.size; }
  [[nodiscard]] std::int64_t num_classes() const override {
    return config_.num_classes;
  }

  void image_into(std::int64_t i, float* out) const override;
  [[nodiscard]] std::int64_t label(std::int64_t i) const override;

 private:
  struct Grating {
    float fx, fy;     // spatial frequency
    float amp;        // amplitude
    float phase;      // base phase
    float rgb[3];     // per-channel weight
  };

  SyntheticCifarConfig config_;
  std::vector<std::vector<Grating>> class_gratings_;
  std::vector<std::array<float, 3>> class_color_;
};

/// Standard train/test split pair with CIFAR-like sizes scaled by `scale`
/// (scale=1 -> 50k/10k; the benches use smaller scales).
struct SyntheticSplits {
  SyntheticCifar train;
  SyntheticCifar test;
};

[[nodiscard]] SyntheticSplits make_synthetic_splits(std::int64_t num_classes,
                                                    std::int64_t train_size,
                                                    std::int64_t test_size,
                                                    std::uint64_t seed);

}  // namespace fitact::data
