// Loader for the original CIFAR-10 / CIFAR-100 binary format
// (https://www.cs.toronto.edu/~kriz/cifar.html). When the binary files are
// present on disk the experiment drivers use the real data; otherwise they
// fall back to SyntheticCifar (see DESIGN.md, substitutions).
//
// CIFAR-10 record:  <1 x label><3072 x pixel>      (6 files x 10000 records)
// CIFAR-100 record: <1 x coarse><1 x fine><3072 x pixel>
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"

namespace fitact::data {

class CifarBinary final : public Dataset {
 public:
  /// Load from explicit .bin file paths. `fine_labels` selects the
  /// CIFAR-100 record layout. Pixel values are scaled to [0,1] and
  /// standardised per channel with the canonical CIFAR statistics.
  CifarBinary(const std::vector<std::string>& files, std::int64_t num_classes,
              bool fine_labels);

  [[nodiscard]] std::int64_t size() const override {
    return static_cast<std::int64_t>(labels_.size());
  }
  [[nodiscard]] std::int64_t num_classes() const override {
    return num_classes_;
  }

  void image_into(std::int64_t i, float* out) const override;
  [[nodiscard]] std::int64_t label(std::int64_t i) const override {
    return labels_[static_cast<std::size_t>(i)];
  }

  /// True if the canonical directory layout for the dataset exists under
  /// `root` (cifar-10-batches-bin/ or cifar-100-binary/).
  static bool available(const std::string& root, std::int64_t num_classes);

  /// Load train or test split from the canonical layout under `root`.
  static CifarBinary open(const std::string& root, std::int64_t num_classes,
                          bool train);

 private:
  std::int64_t num_classes_;
  std::vector<float> pixels_;  // size() * kImageNumel, standardised CHW
  std::vector<std::int64_t> labels_;
};

}  // namespace fitact::data
