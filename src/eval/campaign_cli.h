// Shared command-line handling for the campaign drivers (the fig*/ablation*
// benches and the fault-injection examples). Every driver accepts the same
// family of scale flags — --full, --trials, --threads, --train-size,
// --test-size, --epochs, --eval-samples — and used to hand-parse them with
// per-driver copies of the same dozen lines. This helper owns the mapping
// from flags to ev::ExperimentScale once; drivers differ only in their
// default overrides.
#pragma once

#include <cstdint>

#include "eval/experiment.h"
#include "util/cli.h"

namespace fitact::ev {

/// Per-driver default overrides, applied to the base scale *before* the
/// command-line flags (so flags always win). -1 keeps the base scale's own
/// value.
struct CampaignCliDefaults {
  std::int64_t train_size = -1;
  std::int64_t test_size = -1;
  std::int64_t train_epochs = -1;
  std::int64_t eval_samples = -1;
  std::int64_t trials = -1;
  /// Honour --full (paper-scale run). Drivers whose full-scale behavior is
  /// untested can opt out; --full is then ignored.
  bool allow_full = true;
};

/// Build an ExperimentScale from the standard campaign flags:
///   base        = --full (when allowed) ? full() : scaled()
///   overrides   = defaults with a non-negative value
///   flags       = --train-size, --test-size, --epochs, --eval-samples,
///                 --trials (only when present), --threads
/// --threads defaults to 1 (serial campaign lanes — the fail-safe setting);
/// 0 means one lane per hardware thread.
[[nodiscard]] ExperimentScale scale_from_cli(
    const ut::Cli& cli, const CampaignCliDefaults& defaults = {});

}  // namespace fitact::ev
