#include "eval/metrics.h"

#include <algorithm>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace fitact::ev {

double evaluate_accuracy(nn::Module& model, const data::Dataset& dataset,
                         const EvalConfig& config) {
  const NoGradGuard no_grad;
  model.set_training(false);
  const std::int64_t total = config.max_samples > 0
                                 ? std::min(config.max_samples, dataset.size())
                                 : dataset.size();
  std::int64_t correct = 0;
  std::int64_t done = 0;
  std::vector<std::int64_t> labels;
  while (done < total) {
    const std::int64_t count =
        std::min<std::int64_t>(config.batch_size, total - done);
    Tensor images = dataset.batch(done, count, &labels);
    const Variable out = model.forward(Variable(std::move(images)));
    const auto pred = argmax_rows(out.value());
    for (std::int64_t i = 0; i < count; ++i) {
      if (pred[static_cast<std::size_t>(i)] ==
          labels[static_cast<std::size_t>(i)]) {
        ++correct;
      }
    }
    done += count;
  }
  return total > 0 ? static_cast<double>(correct) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace fitact::ev
