// Summary statistics for campaign accuracy distributions (five-number
// summaries feed the Fig. 5 box-plot reproduction).
#pragma once

#include <vector>

namespace fitact::ev {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Five-number summary plus mean/stddev. Quartiles use linear interpolation
/// between order statistics (type-7, the numpy default).
[[nodiscard]] Summary summarize(std::vector<double> values);

}  // namespace fitact::ev
