// Conventional (stage 1) training: learns the weights Theta_A for accuracy,
// with no resilience consideration — exactly the left half of the FitAct
// workflow (paper Fig. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "nn/module.h"
#include "nn/schedule.h"

namespace fitact::ev {

struct TrainConfig {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 32;
  std::int64_t max_batches_per_epoch = 0;  ///< <=0: full epoch
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  /// Multiply lr by this factor at each epoch boundary (simple decay).
  /// Ignored when `schedule` is set.
  float lr_decay = 0.85f;
  /// Optional epoch-indexed schedule (overrides lr/lr_decay); not owned.
  const nn::LrSchedule* schedule = nullptr;
  /// Global-norm gradient clipping; <= 0 disables.
  double clip_norm = 0.0;
  /// Label smoothing passed to the cross-entropy loss.
  float label_smoothing = 0.0f;
  std::uint64_t seed = 3;
};

struct TrainReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;  ///< train-batch accuracy
  double wall_time_s = 0.0;
};

/// SGD-with-momentum training of all model parameters.
TrainReport train_classifier(nn::Module& model, const data::Dataset& train,
                             const TrainConfig& config = {});

}  // namespace fitact::ev
