#include "eval/campaign_cli.h"

namespace fitact::ev {

ExperimentScale scale_from_cli(const ut::Cli& cli,
                               const CampaignCliDefaults& defaults) {
  ExperimentScale scale = (defaults.allow_full && cli.get_flag("full"))
                              ? ExperimentScale::full()
                              : ExperimentScale::scaled();
  if (defaults.train_size >= 0) scale.train_size = defaults.train_size;
  if (defaults.test_size >= 0) scale.test_size = defaults.test_size;
  if (defaults.train_epochs >= 0) scale.train_epochs = defaults.train_epochs;
  if (defaults.eval_samples >= 0) scale.eval_samples = defaults.eval_samples;
  if (defaults.trials >= 0) scale.trials = defaults.trials;

  scale.train_size = cli.get_int("train-size", scale.train_size);
  scale.test_size = cli.get_int("test-size", scale.test_size);
  scale.train_epochs = cli.get_int("epochs", scale.train_epochs);
  scale.eval_samples = cli.get_int("eval-samples", scale.eval_samples);
  if (cli.has("trials")) scale.trials = cli.get_int("trials", scale.trials);
  scale.campaign_threads = cli.get_count("threads", 1);
  return scale;
}

}  // namespace fitact::ev
