#include "eval/experiment.h"

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "core/bound_profiler.h"
#include "data/cifar_binary.h"
#include "data/synthetic_cifar.h"
#include "models/registry.h"
#include "nn/serialize.h"
#include "quant/param_image.h"
#include "util/log.h"
#include "util/timer.h"

namespace fitact::ev {

std::vector<double> paper_fault_rates() {
  return {1e-7, 1e-6, 3e-6, 1e-5, 3e-5};
}

ExperimentScale ExperimentScale::scaled() {
  ExperimentScale s;
  s.train_epochs = 14;  // the BatchNorm-less models converge more slowly
  s.post.epochs = 3;
  s.post.batch_size = 32;
  s.post.max_batches_per_epoch = 16;
  s.post.lr = 0.01f;
  s.post.zeta = 0.1f;
  s.post.delta = 0.03f;
  s.post.val_samples = 256;
  return s;
}

ExperimentScale ExperimentScale::full() {
  ExperimentScale s;
  s.width_alexnet = 1.0f;
  s.width_vgg16 = 1.0f;
  s.width_resnet50 = 1.0f;
  s.train_size = 50000;
  s.test_size = 10000;
  s.train_epochs = 60;
  s.train_batch = 128;
  s.profile_samples = 10000;
  s.eval_samples = 2000;
  s.trials = 30;
  s.post.epochs = 10;
  s.post.batch_size = 128;
  s.post.max_batches_per_epoch = 0;
  s.post.lr = 0.02f;
  s.post.zeta = 0.5f;
  s.post.delta = 0.02f;
  s.post.val_samples = 2000;
  return s;
}

float ExperimentScale::width_for(const std::string& model_name) const {
  if (model_name == "alexnet") return width_alexnet;
  if (model_name == "vgg16") return width_vgg16;
  if (model_name == "resnet50") return width_resnet50;
  return 1.0f;
}

std::shared_ptr<data::Dataset> open_dataset(std::int64_t num_classes,
                                            bool train, std::int64_t size,
                                            std::uint64_t seed) {
  const char* env = std::getenv("FITACT_DATA_DIR");
  const std::string root = env != nullptr ? env : "./data";
  if (data::CifarBinary::available(root, num_classes)) {
    ut::log_info() << "using real CIFAR-" << num_classes << " from " << root;
    return std::make_shared<data::CifarBinary>(
        data::CifarBinary::open(root, num_classes, train));
  }
  data::SyntheticCifarConfig cfg;
  cfg.num_classes = num_classes;
  cfg.size = size;
  cfg.seed = seed;
  cfg.split_salt = train ? 1 : 2;
  return std::make_shared<data::SyntheticCifar>(cfg);
}

namespace {

/// The BatchNorm-less architectures (AlexNet, original VGG16) need a
/// gentler learning rate than the normalised ResNet50 to train stably.
float default_train_lr(const std::string& model_name) {
  if (model_name == "alexnet" || model_name == "vgg16") return 0.01f;
  return 0.05f;
}

std::string cache_file(const std::string& cache_dir,
                       const std::string& model_name, std::int64_t classes,
                       const ExperimentScale& scale, std::uint64_t seed) {
  // v2: gradient clipping added to the training recipe.
  std::ostringstream os;
  os << "v2_" << model_name << "_c" << classes << "_w"
     << static_cast<int>(scale.width_for(model_name) * 1000) << "_n"
     << scale.train_size << "_e" << scale.train_epochs << "_b"
     << scale.train_batch << "_lr"
     << static_cast<int>(default_train_lr(model_name) * 1000) << "_s" << seed
     << ".bin";
  return (std::filesystem::path(cache_dir) / os.str()).string();
}

}  // namespace

PreparedModel prepare_model(const std::string& model_name,
                            std::int64_t num_classes,
                            const ExperimentScale& scale,
                            const std::string& cache_dir, std::uint64_t seed) {
  PreparedModel pm;
  pm.model_name = model_name;
  pm.num_classes = num_classes;
  // 100-class runs need more samples per class to train to a useful
  // baseline; scale the split sizes rather than the epoch count.
  ExperimentScale eff = scale;
  if (num_classes >= 100 && eff.train_size < 50000) {
    eff.train_size = scale.train_size * 2;
    eff.test_size = scale.test_size * 2;
  }
  pm.train = open_dataset(num_classes, true, eff.train_size, seed);
  pm.test = open_dataset(num_classes, false, eff.test_size, seed);

  models::ModelConfig cfg;
  cfg.num_classes = num_classes;
  cfg.width_mult = scale.width_for(model_name);
  cfg.activation.scheme = core::Scheme::relu;
  cfg.seed = seed;
  pm.model_config = cfg;
  pm.model = models::make_model(model_name, cfg);

  std::string path;
  if (!cache_dir.empty()) {
    std::filesystem::create_directories(cache_dir);
    path = cache_file(cache_dir, model_name, num_classes, eff, seed);
    if (nn::load_state(*pm.model, path)) {
      pm.from_cache = true;
      ut::log_info() << "loaded cached model " << path;
    }
  }
  if (!pm.from_cache) {
    TrainConfig tc;
    tc.epochs = eff.train_epochs;
    tc.batch_size = eff.train_batch;
    tc.lr = default_train_lr(model_name);
    tc.lr_decay = 0.92f;
    tc.clip_norm = 5.0;  // guards the momentum-SGD runs against divergence
    tc.seed = seed;
    ut::log_info() << "training " << model_name << " (classes=" << num_classes
                   << ", width=" << cfg.width_mult << ") ...";
    const TrainReport tr = train_classifier(*pm.model, *pm.train, tc);
    pm.train_time_s = tr.wall_time_s;
    if (!path.empty()) nn::save_state(*pm.model, path);
  }

  EvalConfig ec;
  ec.max_samples = eff.test_size;
  pm.baseline_accuracy = evaluate_accuracy(*pm.model, *pm.test, ec);
  ut::log_info() << model_name << " baseline accuracy "
                 << pm.baseline_accuracy;
  return pm;
}

ProtectReport protect_model(PreparedModel& pm, core::Scheme scheme,
                            const ExperimentScale& scale,
                            bool skip_post_training) {
  ProtectReport report;
  report.scheme = scheme;

  if (!pm.profiled) {
    // Profile the *unprotected* trained network once (paper: bounds are
    // seeded from maximum activations of the trained DNN). Done for every
    // scheme — including plain ReLU — so callers that start from an
    // unprotected configuration can still seed bounds later.
    core::apply_protection(*pm.model, core::Scheme::relu);
    core::ProfileConfig pc;
    pc.max_samples = scale.profile_samples;
    profile_bounds(*pm.model, *pm.train, pc);
    pm.profiled = true;
  }

  const core::ProtectionOptions opts = core::default_options(scheme);
  core::apply_protection(*pm.model, scheme, opts);

  if (scheme == core::Scheme::fitrelu && !skip_post_training) {
    report.post = core::post_train_bounds(*pm.model, *pm.train, *pm.test,
                                          pm.baseline_accuracy, scale.post);
    report.post_trained = true;
  }
  EvalConfig ec;
  ec.max_samples = scale.test_size;
  report.clean_accuracy = evaluate_accuracy(*pm.model, *pm.test, ec);
  // Profiling, scheme application, and post-training all changed the model:
  // any live CampaignSession must re-sync its replicas.
  pm.touch();
  return report;
}

std::shared_ptr<nn::Module> replicate_model(const PreparedModel& pm) {
  // The replica's parameters are overwritten by copy_state immediately, so
  // skip the random init in make_model (the replica stays pending-init for
  // the instant between construction and the copy).
  models::ModelConfig cfg = pm.model_config;
  cfg.skip_init = true;
  auto replica = models::make_model(pm.model_name, cfg);
  core::replicate_protection(*pm.model, *replica);
  nn::copy_state(*pm.model, *replica);
  replica->set_training(false);
  return replica;
}

fault::WorkerFactory make_campaign_worker_factory(PreparedModel& pm,
                                                  const EvalConfig& ec) {
  struct Lane {
    std::shared_ptr<nn::Module> model;
    std::unique_ptr<quant::ParamImage> image;
    std::unique_ptr<fault::Injector> injector;
  };
  const std::shared_ptr<data::Dataset> test = pm.test;
  return [&pm, test, ec](std::size_t lane) {
    auto ctx = std::make_shared<Lane>();
    ctx->model = lane == 0 ? pm.model : replicate_model(pm);
    ctx->image =
        std::make_unique<quant::ParamImage>(*ctx->model,
                                            /*include_buffers=*/false);
    ctx->injector = std::make_unique<fault::Injector>(*ctx->image);
    fault::CampaignWorker w;
    w.keepalive = ctx;
    w.injector = ctx->injector.get();
    w.evaluate = [ctx, test, ec] {
      return evaluate_accuracy(*ctx->model, *test, ec);
    };
    w.sync = [ctx, &pm](bool source_changed) {
      if (source_changed && ctx->model != pm.model) {
        // Re-protection may have changed schemes, bound extents, or (after
        // post-training) parameter values on the source; carry all of it
        // over before re-snapshotting. Lane 0 wraps the source itself.
        core::replicate_protection(*pm.model, *ctx->model);
        nn::copy_state(*pm.model, *ctx->model);
        ctx->model->set_training(false);
      }
      // refresh() re-walks the parameter tree, so replaced bound storage is
      // picked up; the injector re-reads the image every trial and needs no
      // rebuild.
      ctx->image->refresh();
    };
    return w;
  };
}

CampaignSession::CampaignSession(PreparedModel& pm,
                                 const ExperimentScale& scale)
    : pm_(&pm),
      trials_(scale.trials),
      threads_(scale.campaign_threads),
      session_([&pm, &scale] {
        EvalConfig ec;
        ec.max_samples = scale.eval_samples;
        return fault::CampaignSession(make_campaign_worker_factory(pm, ec));
      }()),
      synced_epoch_(pm.state_epoch) {}

fault::CampaignResult CampaignSession::run(double bit_error_rate,
                                           std::uint64_t seed) {
  fault::CampaignConfig cc;
  cc.bit_error_rate = bit_error_rate;
  cc.trials = trials_;
  cc.seed = seed;
  cc.threads = threads_;
  return run(cc);
}

fault::CampaignResult CampaignSession::run(
    const fault::CampaignConfig& config) {
  if (pm_->state_epoch != synced_epoch_) {
    session_.invalidate();
    synced_epoch_ = pm_->state_epoch;
  }
  return session_.run(config);
}

fault::CampaignResult campaign_at_rate(PreparedModel& pm,
                                       double bit_error_rate,
                                       const ExperimentScale& scale,
                                       std::uint64_t seed) {
  CampaignSession session(pm, scale);
  return session.run(bit_error_rate, seed);
}

double clean_subset_accuracy(PreparedModel& pm, const ExperimentScale& scale) {
  EvalConfig ec;
  ec.max_samples = scale.eval_samples;
  return evaluate_accuracy(*pm.model, *pm.test, ec);
}

double full_scale_rate_factor(const std::string& model_name,
                              std::int64_t num_classes,
                              const ExperimentScale& scale) {
  const float width = scale.width_for(model_name);
  if (width >= 1.0f) return 1.0;
  models::ModelConfig cfg;
  cfg.num_classes = num_classes;
  cfg.seed = 1;
  cfg.width_mult = 1.0f;
  const std::int64_t full = models::make_model(model_name, cfg)
                                ->parameter_count();
  cfg.width_mult = width;
  const std::int64_t small = models::make_model(model_name, cfg)
                                 ->parameter_count();
  return small > 0 ? static_cast<double>(full) / static_cast<double>(small)
                   : 1.0;
}

std::string paper_label(core::Scheme scheme) {
  switch (scheme) {
    case core::Scheme::fitrelu:
      return "FitAct";
    case core::Scheme::clip_act:
      return "Clip-Act";
    case core::Scheme::ranger:
      return "Ranger";
    case core::Scheme::relu:
      return "Unprotected";
    case core::Scheme::fitrelu_naive:
      return "FitReLU-Naive";
  }
  return "?";
}

}  // namespace fitact::ev
