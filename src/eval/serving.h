// Adapter from the experiment layer to the serving subsystem: stands an
// serve::InferenceServer up from a PreparedModel, reusing the campaign
// engine's replica machinery (ev::replicate_model = skip-init make_model +
// core::replicate_protection + nn::copy_state) for the lanes and
// calibrating the clamp-rate fault-detection threshold from clean traffic.
#pragma once

#include <cstdint>
#include <memory>

#include "eval/experiment.h"
#include "serve/server.h"

namespace fitact::ev {

struct ServeOptions {
  /// Server shape (lanes, batch size, window, detection threshold, planned
  /// execution on/off). A negative clamp_rate_threshold means "calibrate
  /// from clean traffic" (the default here, overriding the ServerOptions
  /// default).
  serve::ServerOptions server = [] {
    serve::ServerOptions c;
    c.clamp_rate_threshold = -1.0;
    return c;
  }();
  /// Clean test samples used to calibrate the detection threshold.
  std::int64_t calibration_samples = 64;
  /// Threshold = max(peak clean per-sample clamp rate * margin, floor).
  /// The peak *per-sample* statistic bounds every possible batch's
  /// statistic: a batch's per-site rate is the mean of its samples'
  /// per-site rates (every sample contributes the same activation count to
  /// a site), so the batch's peak site rate cannot exceed the peak over
  /// its samples. The calibrated detector is therefore false-positive-free
  /// on the calibration set for any batch assembly.
  double calibration_margin = 3.0;
  double calibration_floor = 1e-3;

  /// Validates the embedded server shape (serve::ServerOptions::validate)
  /// plus the calibration knobs: calibration_samples must be positive,
  /// margin and floor non-negative. make_server calls this first, so every
  /// invalid combination surfaces through the same std::invalid_argument
  /// path instead of being silently patched by driver defaults.
  void validate() const;
};

/// Peak per-sample, per-site clamp rate of pm.model over the first
/// `samples` test samples (clean traffic) — the detection statistic
/// serve::InferenceServer thresholds. `samples` must be positive (throws
/// std::invalid_argument otherwise; ServeOptions::validate() rejects the
/// value before it gets here) and is clamped to the test split size.
/// Enables clamp counting for the measurement and restores the sites'
/// previous counting state afterwards.
[[nodiscard]] double peak_clean_clamp_rate(const PreparedModel& pm,
                                           std::int64_t samples);

/// Stand up a resilient inference server over the prepared (protected)
/// model:
///   1. quantisation-round-trips pm.model's parameters once (deployment
///      stores parameters in Q1.15.16; this also makes every later lane
///      scrub value-stable, so recovered lanes match pm.model bit-for-bit)
///      and bumps pm.state_epoch;
///   2. calibrates the clamp-rate threshold from clean test traffic when
///      options ask for it (threshold < 0);
///   3. builds `lanes` independent replicas, each with its own clean
///      ParamImage, clamp counting enabled when detection is on;
///   4. compiles an nn::InferencePlan per lane (when options.server.plan is
///      set and a test split provides the sample shape), so lanes serve
///      through recorded zero-allocation execution; a model that cannot be
///      recorded logs the PlanError once and serves eagerly.
/// pm must outlive the returned server. Detection requires a bounded
/// scheme: when no activation site has bounds installed the clamp rate is
/// identically zero, so rather than serving with a detector that can never
/// fire (a threshold calibrated to the floor, "on" but blind), make_server
/// logs a warning naming the condition and disables detection for this
/// server.
[[nodiscard]] std::unique_ptr<serve::InferenceServer> make_server(
    PreparedModel& pm, const ServeOptions& options = {});

}  // namespace fitact::ev
