#include "eval/stats.h"

#include <algorithm>
#include <cmath>

namespace fitact::ev {
namespace {
double quantile_sorted(const std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  if (v.size() == 1) return v[0];
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}
}  // namespace

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  s.min = values.front();
  s.max = values.back();
  s.q1 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.5);
  s.q3 = quantile_sorted(values, 0.75);
  return s;
}

}  // namespace fitact::ev
