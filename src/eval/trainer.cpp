#include "eval/trainer.h"

#include "autograd/ops.h"
#include "data/data_loader.h"
#include "nn/grad_util.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"
#include "util/log.h"
#include "util/timer.h"

namespace fitact::ev {

TrainReport train_classifier(nn::Module& model, const data::Dataset& train,
                             const TrainConfig& config) {
  const ut::Timer timer;
  TrainReport report;
  model.set_training(true);
  std::vector<Variable> params = model.parameters();
  nn::Sgd sgd(params, config.lr, config.momentum, config.weight_decay);
  data::DataLoader loader(train, config.batch_size, /*shuffle=*/true,
                          config.seed);
  data::Batch batch;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.schedule != nullptr) {
      sgd.set_lr(config.schedule->lr_at(epoch));
    }
    loader.start_epoch();
    double loss_sum = 0.0;
    std::int64_t correct = 0;
    std::int64_t seen = 0;
    std::int64_t batches = 0;
    while (loader.next(batch)) {
      if (config.max_batches_per_epoch > 0 &&
          batches >= config.max_batches_per_epoch) {
        break;
      }
      model.zero_grad();
      const Variable logits = model.forward(Variable(batch.images));
      Variable loss = ag::softmax_cross_entropy(logits, batch.labels, nullptr,
                                                config.label_smoothing);
      loss.backward();
      if (config.clip_norm > 0.0) {
        nn::clip_grad_norm(params, config.clip_norm);
      }
      sgd.step();
      loss_sum += loss.value().item();
      const auto pred = argmax_rows(logits.value());
      for (std::size_t i = 0; i < batch.labels.size(); ++i) {
        if (pred[i] == batch.labels[i]) ++correct;
      }
      seen += static_cast<std::int64_t>(batch.labels.size());
      ++batches;
    }
    const double mean_loss =
        batches > 0 ? loss_sum / static_cast<double>(batches) : 0.0;
    const double acc =
        seen > 0 ? static_cast<double>(correct) / static_cast<double>(seen)
                 : 0.0;
    report.epoch_loss.push_back(mean_loss);
    report.epoch_accuracy.push_back(acc);
    ut::log_info() << "train epoch " << (epoch + 1) << "/" << config.epochs
                   << " loss=" << mean_loss << " acc=" << acc;
    if (config.schedule == nullptr) {
      sgd.set_lr(sgd.lr() * config.lr_decay);
    }
  }
  report.wall_time_s = timer.elapsed_s();
  return report;
}

}  // namespace fitact::ev
