// Shared experiment driver for the bench harnesses: dataset selection (real
// CIFAR binaries when present, synthetic otherwise), cached stage-1 model
// training, protection (profiling + scheme application + FitAct
// post-training), and fault campaigns over a rate grid.
//
// Scale: the paper's evaluation ran full-width models on a GPU; the default
// `ExperimentScale::scaled()` shrinks widths, dataset sizes, trial counts,
// and evaluation subsets so the complete bench suite finishes on a 2-core
// CPU container. `ExperimentScale::full()` restores paper-scale settings.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/post_training.h"
#include "core/protection.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "fault/campaign.h"
#include "models/model_config.h"
#include "nn/module.h"

namespace fitact::ev {

/// The paper's fault-rate grid (Figs. 5 and 6).
[[nodiscard]] std::vector<double> paper_fault_rates();

struct ExperimentScale {
  float width_alexnet = 0.25f;
  float width_vgg16 = 0.125f;
  float width_resnet50 = 0.125f;
  std::int64_t train_size = 1024;
  std::int64_t test_size = 512;
  std::int64_t train_epochs = 6;
  std::int64_t train_batch = 32;
  std::int64_t profile_samples = 512;
  std::int64_t eval_samples = 64;  ///< per campaign trial
  std::int64_t trials = 5;         ///< campaign trials per (rate, scheme)
  /// Worker lanes for fault campaigns (fault::CampaignConfig::threads):
  /// 1 = serial, 0 = one lane per hardware thread. Each extra lane
  /// evaluates trials on its own replica of the protected model; results
  /// are bit-identical at every setting. Lanes run their kernels inline,
  /// so intermediate values cap total concurrency at the lane count — use
  /// 0 to saturate a multi-core host (see CampaignConfig::threads).
  std::size_t campaign_threads = 1;
  core::PostTrainConfig post;      ///< FitAct stage-2 settings

  [[nodiscard]] static ExperimentScale scaled();
  [[nodiscard]] static ExperimentScale full();
  [[nodiscard]] float width_for(const std::string& model_name) const;
};

/// Open train/test splits: real CIFAR if the binaries exist under
/// $FITACT_DATA_DIR (default "./data"), synthetic otherwise.
[[nodiscard]] std::shared_ptr<data::Dataset> open_dataset(
    std::int64_t num_classes, bool train, std::int64_t size,
    std::uint64_t seed);

struct PreparedModel {
  std::string model_name;
  std::int64_t num_classes = 10;
  /// The exact configuration the model was built with; campaign workers use
  /// it to stamp out architecturally identical replicas.
  models::ModelConfig model_config;
  std::shared_ptr<nn::Module> model;
  std::shared_ptr<data::Dataset> train;
  std::shared_ptr<data::Dataset> test;
  double baseline_accuracy = 0.0;  ///< clean accuracy with plain ReLU
  double train_time_s = 0.0;       ///< stage-1 wall time (0 on cache hit)
  bool from_cache = false;
  bool profiled = false;
  /// Monotonic counter of model-state changes, used by CampaignSession to
  /// decide when its cached replicas must re-sync from `model`.
  /// protect_model bumps it automatically; code that mutates the model
  /// directly (core::apply_protection, core::post_train_bounds, manual
  /// parameter edits) must call touch() afterwards.
  std::uint64_t state_epoch = 0;

  /// Record that `model` changed outside protect_model, so sessions resync.
  void touch() noexcept { ++state_epoch; }
};

/// Build (or load from `cache_dir`) a stage-1-trained model with plain ReLU
/// activations. The cache key covers architecture, classes, width, dataset,
/// and training settings.
[[nodiscard]] PreparedModel prepare_model(const std::string& model_name,
                                          std::int64_t num_classes,
                                          const ExperimentScale& scale,
                                          const std::string& cache_dir,
                                          std::uint64_t seed = 42);

struct ProtectReport {
  core::Scheme scheme = core::Scheme::relu;
  double clean_accuracy = 0.0;  ///< after protection (and post-training)
  bool post_trained = false;
  core::PostTrainReport post;  ///< valid when post_trained
};

/// Profile (once) and protect the prepared model in place. For
/// Scheme::fitrelu the FitAct post-training stage runs as well unless
/// `skip_post_training` is set.
ProtectReport protect_model(PreparedModel& pm, core::Scheme scheme,
                            const ExperimentScale& scale,
                            bool skip_post_training = false);

/// Architecturally identical, value-identical copy of the prepared model in
/// its current (possibly protected) state, in eval mode. Campaign worker
/// lanes each get one so trials can run concurrently. Built with
/// ModelConfig::skip_init (the random init would be overwritten by
/// nn::copy_state anyway).
[[nodiscard]] std::shared_ptr<nn::Module> replicate_model(
    const PreparedModel& pm);

/// Campaign worker factory over the prepared model: lane 0 injects into
/// pm.model itself (and leaves it restored), every other lane gets its own
/// replica + parameter image + injector; all lanes evaluate accuracy on
/// pm.test under `ec`. `pm` must outlive the campaign run.
[[nodiscard]] fault::WorkerFactory make_campaign_worker_factory(
    PreparedModel& pm, const EvalConfig& ec);

/// Persistent campaign engine over a prepared model: keeps the worker-lane
/// replicas (models, parameter images, injectors) alive across an entire
/// rate grid instead of rebuilding them for every rate. Replicas re-sync
/// from `pm.model` (core::replicate_protection + nn::copy_state) only when
/// `pm.state_epoch` moves — protect_model bumps it; call pm.touch() after
/// mutating the model directly. Campaign results are byte-identical to
/// fresh-replica campaign_at_rate calls at every thread count.
///
/// `pm` must outlive the session; `scale` fixes trials / eval samples /
/// lanes for every run.
class CampaignSession {
 public:
  CampaignSession(PreparedModel& pm, const ExperimentScale& scale);

  /// Campaign at one bit-error rate (the campaign_at_rate contract).
  [[nodiscard]] fault::CampaignResult run(double bit_error_rate,
                                          std::uint64_t seed);

  /// Full-control overload for drivers that set their own fault model.
  /// `config.threads` is honoured as given.
  [[nodiscard]] fault::CampaignResult run(const fault::CampaignConfig& config);

  /// Replica lanes currently cached (0 before the first run).
  [[nodiscard]] std::size_t lane_count() const noexcept {
    return session_.lane_count();
  }

 private:
  PreparedModel* pm_;
  std::int64_t trials_;
  std::size_t threads_;
  fault::CampaignSession session_;
  std::uint64_t synced_epoch_;
};

/// Run a fault campaign on the (already protected) model at one rate,
/// fanned out over `scale.campaign_threads` worker lanes. One-shot: builds
/// the worker lanes, runs, and tears them down. Sweeps over several rates
/// should hold a CampaignSession instead, which caches the lanes across
/// calls.
[[nodiscard]] fault::CampaignResult campaign_at_rate(
    PreparedModel& pm, double bit_error_rate, const ExperimentScale& scale,
    std::uint64_t seed);

/// Clean accuracy of the current (protected) model on the campaign subset.
[[nodiscard]] double clean_subset_accuracy(PreparedModel& pm,
                                           const ExperimentScale& scale);

/// Human-readable scheme labels matching the paper's legends.
[[nodiscard]] std::string paper_label(core::Scheme scheme);

/// Ratio of full-width to scaled-width parameter counts for a model.
///
/// The bit error rate itself is scale-invariant (it fixes the *fraction* of
/// corrupted parameters, which is what drives accuracy degradation), so the
/// fig5/fig6 benches inject at the paper's rates unmodified by default.
/// This factor is exposed for sensitivity studies via their --rate-scale
/// option: multiplying by it reproduces an "equal absolute flip count"
/// mapping instead, which concentrates the same number of flips in a much
/// smaller network and is correspondingly more destructive.
[[nodiscard]] double full_scale_rate_factor(const std::string& model_name,
                                            std::int64_t num_classes,
                                            const ExperimentScale& scale);

}  // namespace fitact::ev
