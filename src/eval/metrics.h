// Top-1 accuracy evaluation (the paper's metric throughout).
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "nn/module.h"

namespace fitact::ev {

struct EvalConfig {
  std::int64_t batch_size = 64;
  /// Cap on evaluated samples (<=0: the whole dataset). Fault campaigns use
  /// a fixed subset so every trial sees identical inputs.
  std::int64_t max_samples = 0;
};

/// Top-1 accuracy in [0,1]. Puts the model in eval mode; no gradients.
[[nodiscard]] double evaluate_accuracy(nn::Module& model,
                                       const data::Dataset& dataset,
                                       const EvalConfig& config = {});

}  // namespace fitact::ev
