#include "eval/serving.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "nn/plan.h"
#include "util/log.h"

namespace fitact::ev {

void ServeOptions::validate() const {
  // A negative clamp_rate_threshold is this layer's "calibrate from clean
  // traffic" sentinel — make_server resolves it to a concrete non-negative
  // value before the server is constructed — so it is exempt from
  // ServerOptions' non-negativity check at this stage.
  serve::ServerOptions shape = server;
  if (shape.detection && shape.clamp_rate_threshold < 0.0) {
    shape.clamp_rate_threshold = 0.0;
  }
  shape.validate();
  if (calibration_samples <= 0) {
    throw std::invalid_argument(
        "ServeOptions: calibration_samples must be positive, got " +
        std::to_string(calibration_samples));
  }
  if (calibration_margin < 0.0) {
    throw std::invalid_argument(
        "ServeOptions: calibration_margin must be non-negative, got " +
        std::to_string(calibration_margin));
  }
  if (calibration_floor < 0.0) {
    throw std::invalid_argument(
        "ServeOptions: calibration_floor must be non-negative, got " +
        std::to_string(calibration_floor));
  }
}

double peak_clean_clamp_rate(const PreparedModel& pm, std::int64_t samples) {
  if (!pm.model || !pm.test) {
    throw std::invalid_argument(
        "peak_clean_clamp_rate: prepared model has no model or test split");
  }
  if (samples <= 0) {
    throw std::invalid_argument(
        "peak_clean_clamp_rate: samples must be positive, got " +
        std::to_string(samples));
  }
  const auto sites = core::collect_activations(*pm.model);
  std::vector<bool> was_counting;
  was_counting.reserve(sites.size());
  for (const auto& site : sites) {
    was_counting.push_back(site->clamp_counting());
    site->set_clamp_counting(true);
  }

  const NoGradGuard no_grad;
  pm.model->set_training(false);
  // Rejecting samples <= 0 above means this is a pure clamp to the split
  // size, never a silent substitution of a driver default.
  const std::int64_t total = std::min<std::int64_t>(samples, pm.test->size());
  double peak = 0.0;
  for (std::int64_t i = 0; i < total; ++i) {
    core::reset_clamp_counters(sites);
    std::vector<std::int64_t> labels;
    (void)pm.model->forward(Variable(pm.test->batch(i, 1, &labels)));
    peak = std::max(peak, core::peak_site_clamp_rate(sites));
  }

  core::reset_clamp_counters(sites);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    sites[i]->set_clamp_counting(was_counting[i]);
  }
  return peak;
}

std::unique_ptr<serve::InferenceServer> make_server(
    PreparedModel& pm, const ServeOptions& options) {
  if (!pm.model) {
    throw std::invalid_argument("make_server: prepared model has no model");
  }
  options.validate();
  // Deployment stores parameters in fixed point: round-trip the source once
  // so pm.model itself holds the Q1.15.16-representable values the lanes
  // will serve. Lane images snapshot these exact values, so a recovery
  // restore is value-stable and recovered lanes stay bit-identical to
  // pm.model. (The round-trip is idempotent — the campaign session layer
  // already relies on that.)
  {
    quant::ParamImage image(*pm.model);
    image.restore();
    pm.touch();
  }

  serve::ServerOptions config = options.server;
  const auto source_sites = core::collect_activations(*pm.model);
  const bool any_bounds =
      std::any_of(source_sites.begin(), source_sites.end(),
                  [](const auto& s) {
                    return s->scheme() != core::Scheme::relu && s->has_bounds();
                  });
  if (config.detection && !any_bounds) {
    // A detector over a clamp rate that is identically zero would calibrate
    // to the floor and then never fire — "on" but blind. Disabling it makes
    // the server's true capability visible in its options() instead of
    // silently serving unprotected traffic behind an armed-looking flag.
    ut::log_warn() << "make_server: no activation site has bounds installed "
                      "(any_bounds == false); the clamp rate is identically "
                      "zero, so clamp-rate fault detection is disabled for "
                      "this server";
    config.detection = false;
    if (config.clamp_rate_threshold < 0.0) config.clamp_rate_threshold = 0.0;
  }
  if (config.detection && config.clamp_rate_threshold < 0.0) {
    const double peak =
        peak_clean_clamp_rate(pm, options.calibration_samples);
    config.clamp_rate_threshold =
        std::max(peak * options.calibration_margin, options.calibration_floor);
    ut::log_info() << "make_server: calibrated clamp-rate threshold "
                   << config.clamp_rate_threshold << " (peak clean rate "
                   << peak << ")";
  }

  // Planned execution needs the per-sample input shape, which the test
  // split provides. Without one the lanes simply serve eagerly.
  Shape sample_shape;
  if (config.plan && pm.test && pm.test->size() > 0) {
    const Shape s = pm.test->batch(0, 1, nullptr).shape();
    sample_shape = Shape{s[1], s[2], s[3]};
  } else if (config.plan) {
    ut::log_warn() << "make_server: planned execution requested but no test "
                      "split provides a sample shape; lanes will serve "
                      "eagerly";
  }
  if (config.precision == nn::Precision::int8 && sample_shape.empty()) {
    // int8 has no eager fallback; without a plannable shape the server
    // would silently serve fp32 under an int8 label.
    throw std::invalid_argument(
        "make_server: precision=int8 requires a test split to provide the "
        "plan's sample shape");
  }

  // Int8 input calibration: the first layer's activation scale comes from
  // the max-abs of real input samples (deeper layers derive theirs from the
  // clamp bounds). Reuses the detection-calibration sample budget.
  float input_range = -1.0f;
  if (config.precision == nn::Precision::int8) {
    const std::int64_t total =
        std::min<std::int64_t>(options.calibration_samples, pm.test->size());
    for (std::int64_t i = 0; i < total; ++i) {
      const Tensor x = pm.test->batch(i, 1, nullptr);
      const float* p = x.data();
      for (std::int64_t j = 0; j < x.numel(); ++j) {
        input_range = std::max(input_range, std::abs(p[j]));
      }
    }
    ut::log_info() << "make_server: int8 input range calibrated to "
                   << input_range << " over " << total << " samples";
  }

  // The server itself enables clamp counting on lane sites when detection
  // is on, so the factory only assembles the lane anatomy.
  bool plan_error_logged = false;
  serve::LaneFactory factory = [&pm, &config, &sample_shape, input_range,
                                &plan_error_logged](std::size_t index) {
    serve::Lane lane;
    lane.model = replicate_model(pm);
    lane.image = std::make_shared<quant::ParamImage>(*lane.model);
    if (config.plan && !sample_shape.empty()) {
      // Recording requires eval mode (BatchNorm's plan op is the eval-mode
      // affine map); the server re-asserts eval on every lane anyway.
      lane.model->set_training(false);
      try {
        lane.plan = nn::InferencePlan::compile(lane.model, sample_shape,
                                               config.max_batch, config.fuse,
                                               config.precision, input_range);
        if (index == 0) {
          ut::log_info() << "make_server: compiled lane plan ("
                         << lane.plan->op_count() << " ops, "
                         << lane.plan->fused_op_count() << " fused, "
                         << lane.plan->int8_op_count() << " int8, arena "
                         << lane.plan->arena_bytes() / 1024 << " KiB)";
        }
      } catch (const nn::PlanError& e) {
        // int8 never falls back: an eager lane would silently serve fp32
        // under an int8 label (the bit-width is an accuracy contract, not a
        // performance hint), so compile failures propagate to the caller.
        if (config.precision == nn::Precision::int8) throw;
        if (!plan_error_logged) {
          ut::log_warn() << "make_server: model not plannable, lanes serve "
                            "eagerly: "
                         << e.what();
          plan_error_logged = true;
        }
      }
    }
    return lane;
  };
  return std::make_unique<serve::InferenceServer>(factory, config);
}

}  // namespace fitact::ev
