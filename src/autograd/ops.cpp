#include "autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/thread_pool.h"

namespace fitact::ag {
namespace {

using detail::VarImpl;
using ImplPtr = std::shared_ptr<VarImpl>;

/// Accumulate g into the parent's gradient if it participates in autograd.
void accum(const ImplPtr& p, const Tensor& g) {
  if (!p->requires_grad) return;
  if (!p->grad.defined()) p->grad = Tensor::zeros(p->value.shape());
  float* dst = p->grad.data();
  const float* src = g.data();
  for (std::int64_t i = 0; i < g.numel(); ++i) dst[i] += src[i];
}

void accum_scaled(const ImplPtr& p, const Tensor& g, float s) {
  if (!p->requires_grad) return;
  if (!p->grad.defined()) p->grad = Tensor::zeros(p->value.shape());
  float* dst = p->grad.data();
  const float* src = g.data();
  for (std::int64_t i = 0; i < g.numel(); ++i) dst[i] += s * src[i];
}

float* grad_buffer(const ImplPtr& p) {
  if (!p->grad.defined()) p->grad = Tensor::zeros(p->value.shape());
  return p->grad.data();
}

// stable_sigmoid and FeatureBroadcast live in autograd/op_kernels.h, shared
// with the planned-execution engine (nn/plan.cpp).

void check_rank(const Variable& v, std::size_t rank, const char* op) {
  if (v.shape().rank() != rank) {
    throw std::invalid_argument(std::string(op) + ": expected rank " +
                                std::to_string(rank) + ", got " +
                                v.shape().str());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// arithmetic
// ---------------------------------------------------------------------------

Variable add(const Variable& a, const Variable& b) {
  Tensor out = fitact::add(a.value(), b.value());
  const ImplPtr pa = a.impl();
  const ImplPtr pb = b.impl();
  return Variable::from_op(std::move(out), {a, b}, [pa, pb](const Tensor& g) {
    accum(pa, g);
    accum(pb, g);
  });
}

Variable sub(const Variable& a, const Variable& b) {
  Tensor out = fitact::sub(a.value(), b.value());
  const ImplPtr pa = a.impl();
  const ImplPtr pb = b.impl();
  return Variable::from_op(std::move(out), {a, b}, [pa, pb](const Tensor& g) {
    accum(pa, g);
    accum_scaled(pb, g, -1.0f);
  });
}

Variable mul(const Variable& a, const Variable& b) {
  Tensor out = fitact::mul(a.value(), b.value());
  const ImplPtr pa = a.impl();
  const ImplPtr pb = b.impl();
  const Tensor av = a.value();
  const Tensor bv = b.value();
  return Variable::from_op(std::move(out), {a, b},
                           [pa, pb, av, bv](const Tensor& g) {
                             accum(pa, fitact::mul(g, bv));
                             accum(pb, fitact::mul(g, av));
                           });
}

Variable scale(const Variable& a, float s) {
  Tensor out = fitact::scale(a.value(), s);
  const ImplPtr pa = a.impl();
  return Variable::from_op(std::move(out), {a}, [pa, s](const Tensor& g) {
    accum_scaled(pa, g, s);
  });
}

// ---------------------------------------------------------------------------
// linear algebra
// ---------------------------------------------------------------------------

Variable matmul(const Variable& a, const Variable& b) {
  check_rank(a, 2, "matmul");
  check_rank(b, 2, "matmul");
  Tensor out = fitact::matmul(a.value(), b.value());
  const ImplPtr pa = a.impl();
  const ImplPtr pb = b.impl();
  const Tensor av = a.value();
  const Tensor bv = b.value();
  const std::int64_t m = av.shape()[0];
  const std::int64_t k = av.shape()[1];
  const std::int64_t n = bv.shape()[1];
  return Variable::from_op(
      std::move(out), {a, b}, [pa, pb, av, bv, m, k, n](const Tensor& g) {
        if (pa->requires_grad) {
          // dA[M,K] += g[M,N] * B^T
          sgemm(false, true, m, k, n, 1.0f, g.data(), n, bv.data(), n, 1.0f,
                grad_buffer(pa), k);
        }
        if (pb->requires_grad) {
          // dB[K,N] += A^T * g
          sgemm(true, false, k, n, m, 1.0f, av.data(), k, g.data(), n, 1.0f,
                grad_buffer(pb), n);
        }
      });
}

Variable linear(const Variable& x, const Variable& w, const Variable& bias) {
  check_rank(x, 2, "linear");
  check_rank(w, 2, "linear");
  const std::int64_t batch = x.shape()[0];
  const std::int64_t in = x.shape()[1];
  const std::int64_t out_f = w.shape()[0];
  if (w.shape()[1] != in) {
    throw std::invalid_argument("linear: weight " + w.shape().str() +
                                " incompatible with input " + x.shape().str());
  }

  if (bias.defined() && bias.numel() != out_f) {
    throw std::invalid_argument("linear: bias extent mismatch");
  }
  // Weight transposed into scratch every call so the GEMM runs on its fast
  // path (shared kernel; plans reuse it with arena scratch).
  Tensor wt(Shape{in, out_f});
  Tensor out(Shape{batch, out_f});
  linear_forward(batch, in, out_f, x.value().data(), w.value().data(),
                 bias.defined() ? bias.value().data() : nullptr, wt.data(),
                 out.data());

  const ImplPtr px = x.impl();
  const ImplPtr pw_impl = w.impl();
  const ImplPtr pbias = bias.defined() ? bias.impl() : nullptr;
  const Tensor xv = x.value();
  const Tensor wv = w.value();
  std::vector<Variable> parents{x, w};
  if (bias.defined()) parents.push_back(bias);
  return Variable::from_op(
      std::move(out), std::move(parents),
      [px, pw_impl, pbias, xv, wv, batch, in, out_f](const Tensor& g) {
        if (px->requires_grad) {
          // dX[B,I] += g[B,O] * W[O,I]
          sgemm(false, false, batch, in, out_f, 1.0f, g.data(), out_f,
                wv.data(), in, 1.0f, grad_buffer(px), in);
        }
        if (pw_impl->requires_grad) {
          // dW[O,I] += g^T[O,B] * X[B,I]
          sgemm(true, false, out_f, in, batch, 1.0f, g.data(), out_f,
                xv.data(), in, 1.0f, grad_buffer(pw_impl), in);
        }
        if (pbias && pbias->requires_grad) {
          float* db = grad_buffer(pbias);
          const float* pg = g.data();
          for (std::int64_t r = 0; r < batch; ++r) {
            for (std::int64_t o = 0; o < out_f; ++o) db[o] += pg[r * out_f + o];
          }
        }
      });
}

// ---------------------------------------------------------------------------
// convolution / pooling
// ---------------------------------------------------------------------------

Variable conv2d(const Variable& x, const Variable& w, const Variable& bias,
                std::int64_t stride, std::int64_t padding) {
  check_rank(x, 4, "conv2d");
  check_rank(w, 4, "conv2d");
  const auto& xs = x.shape();
  const auto& ws = w.shape();
  if (ws[1] != xs[1]) {
    throw std::invalid_argument("conv2d: channel mismatch " + xs.str() +
                                " vs " + ws.str());
  }
  Conv2dGeometry geo;
  geo.in_channels = xs[1];
  geo.in_h = xs[2];
  geo.in_w = xs[3];
  geo.kernel_h = ws[2];
  geo.kernel_w = ws[3];
  geo.stride = stride;
  geo.padding = padding;
  const std::int64_t batch = xs[0];
  const std::int64_t out_c = ws[0];
  const std::int64_t oh = geo.out_h();
  const std::int64_t ow = geo.out_w();
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d: empty output for input " + xs.str());
  }
  const std::int64_t ckk = geo.col_rows();
  const std::int64_t ohw = geo.col_cols();

  Tensor out(Shape{batch, out_c, oh, ow});
  const float* px = x.value().data();
  const float* pw = w.value().data();
  const float* pb = bias.defined() ? bias.value().data() : nullptr;
  const std::int64_t in_stride = geo.in_channels * geo.in_h * geo.in_w;
  const std::int64_t out_stride = out_c * ohw;

  ut::global_pool().parallel_for_each(
      0, static_cast<std::size_t>(batch), 1, [&](std::size_t b) {
        std::vector<float> col(static_cast<std::size_t>(ckk * ohw));
        conv2d_forward_sample(
            geo, out_c, px + static_cast<std::int64_t>(b) * in_stride, pw, pb,
            col.data(), out.data() + static_cast<std::int64_t>(b) * out_stride);
      });

  const ImplPtr px_impl = x.impl();
  const ImplPtr pw_impl = w.impl();
  const ImplPtr pb_impl = bias.defined() ? bias.impl() : nullptr;
  const Tensor xv = x.value();
  const Tensor wv = w.value();
  std::vector<Variable> parents{x, w};
  if (bias.defined()) parents.push_back(bias);

  return Variable::from_op(
      std::move(out), std::move(parents),
      [px_impl, pw_impl, pb_impl, xv, wv, geo, batch, out_c, ckk, ohw,
       in_stride, out_stride](const Tensor& g) {
        const float* pxv = xv.data();
        const float* pwv = wv.data();
        float* dx = px_impl->requires_grad ? grad_buffer(px_impl) : nullptr;
        float* dw = pw_impl->requires_grad ? grad_buffer(pw_impl) : nullptr;
        float* db = (pb_impl && pb_impl->requires_grad) ? grad_buffer(pb_impl)
                                                        : nullptr;
        std::vector<float> col(static_cast<std::size_t>(ckk * ohw));
        std::vector<float> colt(static_cast<std::size_t>(ckk * ohw));
        std::vector<float> dcol(static_cast<std::size_t>(ckk * ohw));
        // Images are processed serially: dW accumulation is shared state and
        // the inner GEMMs parallelise across the pool already.
        for (std::int64_t b = 0; b < batch; ++b) {
          const float* gb = g.data() + b * out_stride;
          if (dw != nullptr) {
            im2col(geo, pxv + b * in_stride, col.data());
            // transpose col -> colt so dW uses the fast GEMM path
            for (std::int64_t r = 0; r < ckk; ++r) {
              for (std::int64_t c = 0; c < ohw; ++c) {
                colt[static_cast<std::size_t>(c * ckk + r)] =
                    col[static_cast<std::size_t>(r * ohw + c)];
              }
            }
            // dW[O,CKK] += g_b[O,OHW] * colT[OHW,CKK]
            sgemm(false, false, out_c, ckk, ohw, 1.0f, gb, ohw, colt.data(),
                  ckk, 1.0f, dw, ckk);
          }
          if (db != nullptr) {
            for (std::int64_t c = 0; c < out_c; ++c) {
              const float* row = gb + c * ohw;
              double acc = 0.0;
              for (std::int64_t i = 0; i < ohw; ++i) acc += row[i];
              db[c] += static_cast<float>(acc);
            }
          }
          if (dx != nullptr) {
            // dCol[CKK,OHW] = W^T[CKK,O] * g_b[O,OHW]
            sgemm(true, false, ckk, ohw, out_c, 1.0f, pwv, ckk, gb, ohw, 0.0f,
                  dcol.data(), ohw);
            col2im(geo, dcol.data(), dx + b * in_stride);
          }
        }
      });
}

Variable max_pool2d(const Variable& x, std::int64_t kernel,
                    std::int64_t stride) {
  check_rank(x, 4, "max_pool2d");
  const auto& xs = x.shape();
  const std::int64_t batch = xs[0];
  const std::int64_t ch = xs[1];
  const std::int64_t h = xs[2];
  const std::int64_t w = xs[3];
  const std::int64_t oh = (h - kernel) / stride + 1;
  const std::int64_t ow = (w - kernel) / stride + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("max_pool2d: empty output for " + xs.str());
  }
  Tensor out(Shape{batch, ch, oh, ow});
  auto indices = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(out.numel()));

  max_pool2d_forward(batch, ch, h, w, kernel, stride, x.value().data(),
                     out.data(), indices->data());

  const ImplPtr px_impl = x.impl();
  return Variable::from_op(std::move(out), {x},
                           [px_impl, indices](const Tensor& g) {
                             if (!px_impl->requires_grad) return;
                             float* dx = grad_buffer(px_impl);
                             const float* pg = g.data();
                             for (std::int64_t i = 0; i < g.numel(); ++i) {
                               dx[(*indices)[static_cast<std::size_t>(i)]] +=
                                   pg[i];
                             }
                           });
}

Variable global_avg_pool(const Variable& x) {
  check_rank(x, 4, "global_avg_pool");
  const auto& xs = x.shape();
  const std::int64_t batch = xs[0];
  const std::int64_t ch = xs[1];
  const std::int64_t hw = xs[2] * xs[3];
  Tensor out(Shape{batch, ch});
  global_avg_pool_forward(batch, ch, hw, x.value().data(), out.data());
  const ImplPtr px_impl = x.impl();
  return Variable::from_op(
      std::move(out), {x}, [px_impl, hw](const Tensor& g) {
        if (!px_impl->requires_grad) return;
        float* dx = grad_buffer(px_impl);
        const float inv = 1.0f / static_cast<float>(hw);
        for (std::int64_t bc = 0; bc < g.numel(); ++bc) {
          const float gv = g[bc] * inv;
          float* plane = dx + bc * hw;
          for (std::int64_t i = 0; i < hw; ++i) plane[i] += gv;
        }
      });
}

Variable flatten(const Variable& x) {
  const auto& xs = x.shape();
  if (xs.rank() < 2) throw std::invalid_argument("flatten: rank < 2");
  const std::int64_t batch = xs[0];
  Tensor out = x.value().reshape(Shape{batch, x.numel() / batch});
  const ImplPtr px_impl = x.impl();
  return Variable::from_op(std::move(out), {x}, [px_impl](const Tensor& g) {
    accum(px_impl, g);  // same flat layout
  });
}

// ---------------------------------------------------------------------------
// batch normalisation
// ---------------------------------------------------------------------------

Variable batch_norm2d(const Variable& x, const Variable& gamma,
                      const Variable& beta, Tensor& running_mean,
                      Tensor& running_var, bool training, float momentum,
                      float eps) {
  check_rank(x, 4, "batch_norm2d");
  const auto& xs = x.shape();
  const std::int64_t batch = xs[0];
  const std::int64_t ch = xs[1];
  const std::int64_t hw = xs[2] * xs[3];
  const std::int64_t plane = ch * hw;
  if (gamma.numel() != ch || beta.numel() != ch ||
      running_mean.numel() != ch || running_var.numel() != ch) {
    throw std::invalid_argument("batch_norm2d: per-channel extent mismatch");
  }

  Tensor mean_t(Shape{ch});
  Tensor invstd_t(Shape{ch});
  const float* px = x.value().data();
  if (training) {
    const double m = static_cast<double>(batch * hw);
    for (std::int64_t c = 0; c < ch; ++c) {
      double s = 0.0;
      double s2 = 0.0;
      for (std::int64_t b = 0; b < batch; ++b) {
        const float* p = px + b * plane + c * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          s += p[i];
          s2 += static_cast<double>(p[i]) * p[i];
        }
      }
      const double mu = s / m;
      const double var = std::max(0.0, s2 / m - mu * mu);
      mean_t[c] = static_cast<float>(mu);
      invstd_t[c] = static_cast<float>(1.0 / std::sqrt(var + eps));
      running_mean[c] =
          (1.0f - momentum) * running_mean[c] + momentum * static_cast<float>(mu);
      running_var[c] =
          (1.0f - momentum) * running_var[c] + momentum * static_cast<float>(var);
    }
  } else {
    for (std::int64_t c = 0; c < ch; ++c) {
      mean_t[c] = running_mean[c];
      invstd_t[c] = 1.0f / std::sqrt(running_var[c] + eps);
    }
  }

  Tensor out(xs);
  const float* pg = gamma.value().data();
  const float* pbeta = beta.value().data();
  float* po = out.data();
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < ch; ++c) {
      bn_plane_forward(px + b * plane + c * hw, po + b * plane + c * hw, hw,
                       mean_t[c], invstd_t[c], pg[c], pbeta[c]);
    }
  }

  const ImplPtr px_impl = x.impl();
  const ImplPtr pg_impl = gamma.impl();
  const ImplPtr pb_impl = beta.impl();
  const Tensor xv = x.value();
  const Tensor gv = gamma.value();
  return Variable::from_op(
      std::move(out), {x, gamma, beta},
      [px_impl, pg_impl, pb_impl, xv, gv, mean_t, invstd_t, training, batch,
       ch, hw, plane](const Tensor& g) {
        const float* pxv = xv.data();
        const float* pgv = gv.data();
        const float* pgrad = g.data();
        const std::int64_t m = batch * hw;

        for (std::int64_t c = 0; c < ch; ++c) {
          const float mu = mean_t[c];
          const float is = invstd_t[c];
          // Per-channel reductions: sum(g) and sum(g * xhat).
          double sum_g = 0.0;
          double sum_gx = 0.0;
          for (std::int64_t b = 0; b < batch; ++b) {
            const float* gp = pgrad + b * plane + c * hw;
            const float* xp = pxv + b * plane + c * hw;
            for (std::int64_t i = 0; i < hw; ++i) {
              sum_g += gp[i];
              sum_gx += static_cast<double>(gp[i]) * (xp[i] - mu) * is;
            }
          }
          if (pb_impl->requires_grad) {
            grad_buffer(pb_impl)[c] += static_cast<float>(sum_g);
          }
          if (pg_impl->requires_grad) {
            grad_buffer(pg_impl)[c] += static_cast<float>(sum_gx);
          }
          if (px_impl->requires_grad) {
            float* dx = grad_buffer(px_impl);
            const float ga = pgv[c];
            if (training) {
              const float inv_m = 1.0f / static_cast<float>(m);
              for (std::int64_t b = 0; b < batch; ++b) {
                const float* gp = pgrad + b * plane + c * hw;
                const float* xp = pxv + b * plane + c * hw;
                float* dxp = dx + b * plane + c * hw;
                for (std::int64_t i = 0; i < hw; ++i) {
                  const float xhat = (xp[i] - mu) * is;
                  dxp[i] += ga * is * inv_m *
                            (static_cast<float>(m) * gp[i] -
                             static_cast<float>(sum_g) -
                             xhat * static_cast<float>(sum_gx));
                }
              }
            } else {
              // Eval mode: affine map with constant statistics.
              const float scale = ga * is;
              for (std::int64_t b = 0; b < batch; ++b) {
                const float* gp = pgrad + b * plane + c * hw;
                float* dxp = dx + b * plane + c * hw;
                for (std::int64_t i = 0; i < hw; ++i) dxp[i] += scale * gp[i];
              }
            }
          }
        }
      });
}

// ---------------------------------------------------------------------------
// activations
// ---------------------------------------------------------------------------

Variable dropout(const Variable& x, float p, bool training, ut::Rng& rng) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument("dropout: p must be in [0, 1)");
  }
  if (!training || p == 0.0f) return x;
  const float scale_keep = 1.0f / (1.0f - p);
  Tensor mask(x.shape());
  Tensor out(x.shape());
  const float* px = x.value().data();
  float* pm = mask.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    pm[i] = rng.bernoulli(p) ? 0.0f : scale_keep;
    po[i] = px[i] * pm[i];
  }
  const ImplPtr px_impl = x.impl();
  return Variable::from_op(std::move(out), {x},
                           [px_impl, mask](const Tensor& g) {
                             if (!px_impl->requires_grad) return;
                             float* dx = grad_buffer(px_impl);
                             const float* pm2 = mask.data();
                             const float* pg = g.data();
                             for (std::int64_t i = 0; i < g.numel(); ++i) {
                               dx[i] += pg[i] * pm2[i];
                             }
                           });
}

Variable relu(const Variable& x) {
  Tensor out(x.shape());
  relu_forward(x.value().data(), out.data(), out.numel());
  const ImplPtr px_impl = x.impl();
  const Tensor xv = x.value();
  return Variable::from_op(std::move(out), {x}, [px_impl, xv](const Tensor& g) {
    if (!px_impl->requires_grad) return;
    float* dx = grad_buffer(px_impl);
    const float* pxv = xv.data();
    const float* pg = g.data();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
      if (pxv[i] > 0.0f) dx[i] += pg[i];
    }
  });
}

Variable clipped_relu(const Variable& x, const Tensor& bound, ClipMode mode) {
  const FeatureBroadcast fb = FeatureBroadcast::of(x.shape());
  fb.validate_bound(bound.numel());
  const std::int64_t bn = bound.numel();

  Tensor out(x.shape());
  (void)clipped_relu_forward(x.value().data(), bound.data(), bn, fb, mode,
                             out.data(), out.numel());
  const ImplPtr px_impl = x.impl();
  const Tensor xv = x.value();
  const Tensor bv = bound;  // shared storage; cheap
  return Variable::from_op(
      std::move(out), {x}, [px_impl, xv, bv, fb, bn](const Tensor& g) {
        if (!px_impl->requires_grad) return;
        float* dx = grad_buffer(px_impl);
        const float* pxv = xv.data();
        const float* pbv = bv.data();
        const float* pg = g.data();
        for (std::int64_t i = 0; i < g.numel(); ++i) {
          const float xi = pxv[i];
          const float bi = pbv[fb.map(i % fb.feat, bn)];
          if (xi > 0.0f && xi <= bi) dx[i] += pg[i];
        }
      });
}

Variable fitrelu(const Variable& x, const Variable& lambda, float k) {
  const FeatureBroadcast fb = FeatureBroadcast::of(x.shape());
  fb.validate_bound(lambda.numel());
  const std::int64_t ln = lambda.numel();

  Tensor out(x.shape());
  (void)fitrelu_forward(x.value().data(), lambda.value().data(), ln, fb, k,
                        out.data(), out.numel());

  const ImplPtr px_impl = x.impl();
  const ImplPtr pl_impl = lambda.impl();
  const Tensor xv = x.value();
  const Tensor lv = lambda.value();
  return Variable::from_op(
      std::move(out), {x, lambda},
      [px_impl, pl_impl, xv, lv, fb, ln, k](const Tensor& g) {
        const float* pxv = xv.data();
        const float* plv = lv.data();
        const float* pg = g.data();
        float* dx = px_impl->requires_grad ? grad_buffer(px_impl) : nullptr;
        float* dl = pl_impl->requires_grad ? grad_buffer(pl_impl) : nullptr;
        for (std::int64_t i = 0; i < g.numel(); ++i) {
          const float xi = pxv[i];
          if (xi <= 0.0f) continue;
          const std::int64_t li_idx = fb.map(i % fb.feat, ln);
          const float s = stable_sigmoid(k * (plv[li_idx] - xi));
          const float ds = s * (1.0f - s);
          if (dx != nullptr) {
            // d/dx [x * s(k(l-x))] = s - k*x*s*(1-s)
            dx[i] += pg[i] * (s - k * xi * ds);
          }
          if (dl != nullptr) {
            // d/dl = k*x*s*(1-s)
            dl[li_idx] += pg[i] * (k * xi * ds);
          }
        }
      });
}

// ---------------------------------------------------------------------------
// losses / reductions
// ---------------------------------------------------------------------------

Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<std::int64_t>& labels,
                               Tensor* probs_out, float label_smoothing) {
  check_rank(logits, 2, "softmax_cross_entropy");
  const std::int64_t batch = logits.shape()[0];
  const std::int64_t classes = logits.shape()[1];
  if (static_cast<std::int64_t>(labels.size()) != batch) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  if (label_smoothing < 0.0f || label_smoothing >= 1.0f) {
    throw std::invalid_argument(
        "softmax_cross_entropy: label_smoothing must be in [0, 1)");
  }
  // Target distribution weights: q_y = 1 - s + s/K, q_other = s/K.
  const float q_other = label_smoothing / static_cast<float>(classes);
  const float q_label = 1.0f - label_smoothing + q_other;

  Tensor probs(Shape{batch, classes});
  const float* pl = logits.value().data();
  float* pp = probs.data();
  double loss_acc = 0.0;
  for (std::int64_t b = 0; b < batch; ++b) {
    const float* row = pl + b * classes;
    float* prow = pp + b * classes;
    float mx = row[0];
    for (std::int64_t c = 1; c < classes; ++c) mx = std::max(mx, row[c]);
    double z = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      const float e = std::exp(row[c] - mx);
      prow[c] = e;
      z += e;
    }
    const float inv_z = static_cast<float>(1.0 / z);
    for (std::int64_t c = 0; c < classes; ++c) prow[c] *= inv_z;
    const std::int64_t y = labels[b];
    if (y < 0 || y >= classes) {
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    }
    if (label_smoothing == 0.0f) {
      loss_acc += -std::log(std::max(1e-12f, prow[y]));
    } else {
      double row_loss = 0.0;
      for (std::int64_t c = 0; c < classes; ++c) {
        const float q = (c == y) ? q_label : q_other;
        row_loss += -static_cast<double>(q) *
                    std::log(std::max(1e-12f, prow[c]));
      }
      loss_acc += row_loss;
    }
  }
  if (probs_out != nullptr) *probs_out = probs;

  Tensor loss = Tensor::scalar(
      static_cast<float>(loss_acc / static_cast<double>(batch)));
  const ImplPtr pl_impl = logits.impl();
  auto labels_copy = std::make_shared<std::vector<std::int64_t>>(labels);
  return Variable::from_op(
      std::move(loss), {logits},
      [pl_impl, probs, labels_copy, batch, classes, q_label,
       q_other](const Tensor& g) {
        if (!pl_impl->requires_grad) return;
        float* dx = grad_buffer(pl_impl);
        const float* pp2 = probs.data();
        const float gs = g[0] / static_cast<float>(batch);
        for (std::int64_t b = 0; b < batch; ++b) {
          const std::int64_t y = (*labels_copy)[static_cast<std::size_t>(b)];
          const float* prow = pp2 + b * classes;
          float* drow = dx + b * classes;
          for (std::int64_t c = 0; c < classes; ++c) {
            drow[c] += gs * (prow[c] - (c == y ? q_label : q_other));
          }
        }
      });
}

Variable sum_of_squares(const Variable& x) {
  double acc = 0.0;
  for (const auto v : x.value().span()) acc += static_cast<double>(v) * v;
  Tensor out = Tensor::scalar(static_cast<float>(acc));
  const ImplPtr px_impl = x.impl();
  const Tensor xv = x.value();
  return Variable::from_op(std::move(out), {x},
                           [px_impl, xv](const Tensor& g) {
                             if (!px_impl->requires_grad) return;
                             float* dx = grad_buffer(px_impl);
                             const float gs = 2.0f * g[0];
                             const float* pxv = xv.data();
                             for (std::int64_t i = 0; i < xv.numel(); ++i) {
                               dx[i] += gs * pxv[i];
                             }
                           });
}

Variable mean_all(const Variable& x) {
  Tensor out = Tensor::scalar(fitact::mean(x.value()));
  const ImplPtr px_impl = x.impl();
  const std::int64_t n = x.numel();
  return Variable::from_op(std::move(out), {x}, [px_impl, n](const Tensor& g) {
    if (!px_impl->requires_grad) return;
    float* dx = grad_buffer(px_impl);
    const float gs = g[0] / static_cast<float>(n);
    for (std::int64_t i = 0; i < n; ++i) dx[i] += gs;
  });
}

}  // namespace fitact::ag
