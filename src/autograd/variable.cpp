#include "autograd/variable.h"

#include <stdexcept>
#include <unordered_set>

namespace fitact {
namespace {
thread_local bool tl_grad_enabled = true;
}

bool grad_enabled() noexcept { return tl_grad_enabled; }

NoGradGuard::NoGradGuard() noexcept : previous_(tl_grad_enabled) {
  tl_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { tl_grad_enabled = previous_; }

Variable::Variable(Tensor value, bool requires_grad)
    : impl_(std::make_shared<detail::VarImpl>()) {
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
}

Variable Variable::from_op(Tensor value, std::vector<Variable> parents,
                           BackwardFn backward) {
  Variable out(std::move(value));
  bool any = false;
  for (const auto& p : parents) {
    if (p.defined() && p.requires_grad()) {
      any = true;
      break;
    }
  }
  if (any && tl_grad_enabled) {
    out.impl_->requires_grad = true;
    out.impl_->parents.reserve(parents.size());
    for (const auto& p : parents) {
      if (p.defined()) out.impl_->parents.push_back(p.impl());
    }
    out.impl_->backward = std::move(backward);
  }
  return out;
}

const Tensor& Variable::value() const {
  if (!impl_) throw std::logic_error("Variable::value on undefined Variable");
  return impl_->value;
}

Tensor& Variable::value() {
  if (!impl_) throw std::logic_error("Variable::value on undefined Variable");
  return impl_->value;
}

const Shape& Variable::shape() const { return value().shape(); }

std::int64_t Variable::numel() const { return value().numel(); }

bool Variable::requires_grad() const noexcept {
  return impl_ && impl_->requires_grad;
}

void Variable::set_requires_grad(bool v) {
  if (!impl_) throw std::logic_error("set_requires_grad on undefined");
  impl_->requires_grad = v;
}

Tensor& Variable::grad() {
  if (!impl_ || !impl_->grad.defined()) {
    throw std::logic_error("Variable::grad absent; call ensure_grad/backward");
  }
  return impl_->grad;
}

const Tensor& Variable::grad() const {
  if (!impl_ || !impl_->grad.defined()) {
    throw std::logic_error("Variable::grad absent; call ensure_grad/backward");
  }
  return impl_->grad;
}

bool Variable::has_grad() const noexcept {
  return impl_ && impl_->grad.defined();
}

void Variable::ensure_grad() {
  if (!impl_) throw std::logic_error("ensure_grad on undefined Variable");
  if (!impl_->grad.defined()) impl_->grad = Tensor::zeros(impl_->value.shape());
}

void Variable::zero_grad() {
  if (impl_ && impl_->grad.defined()) impl_->grad.fill(0.0f);
}

void Variable::backward() { backward(Tensor::ones(shape())); }

void Variable::backward(const Tensor& seed) {
  if (!impl_) throw std::logic_error("backward on undefined Variable");
  if (seed.numel() != impl_->value.numel()) {
    throw std::invalid_argument("backward seed numel mismatch");
  }

  // Iterative post-order DFS to produce a topological order of the subgraph.
  std::vector<detail::VarImpl*> topo;
  std::unordered_set<detail::VarImpl*> visited;
  struct Frame {
    detail::VarImpl* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      detail::VarImpl* parent = f.node->parents[f.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  // Allocate grads for every node in the sweep, seed the root.
  for (auto* node : topo) {
    if (!node->grad.defined()) node->grad = Tensor::zeros(node->value.shape());
  }
  {
    Tensor& g = impl_->grad;
    for (std::int64_t i = 0; i < g.numel(); ++i) g[i] += seed[i];
  }

  // topo ends with the root; walk backwards (reverse topological order).
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    detail::VarImpl* node = *it;
    if (node->backward) node->backward(node->grad);
  }
}

}  // namespace fitact
