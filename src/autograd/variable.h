// Tape-based reverse-mode automatic differentiation.
//
// A Variable wraps a Tensor value plus (optionally) a node in the dynamic
// compute graph: parent links and a backward closure that scatters this
// node's accumulated gradient into its parents' gradients. backward() walks
// the graph in reverse topological order.
//
// Gradients are only tracked while grad mode is enabled (see NoGradGuard)
// and at least one operand requires a gradient — inference runs allocate no
// graph nodes at all.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fitact {

namespace detail {
struct VarImpl;
}

/// Receives the node's accumulated output gradient; must accumulate (+=)
/// into the parents' grad tensors.
using BackwardFn = std::function<void(const Tensor& grad_out)>;

class Variable {
 public:
  Variable() = default;

  /// Leaf variable. Set requires_grad for trainable parameters.
  explicit Variable(Tensor value, bool requires_grad = false);

  /// Interior graph node produced by an op. The backward closure must
  /// capture the parents' impls it writes to.
  static Variable from_op(Tensor value, std::vector<Variable> parents,
                          BackwardFn backward);

  [[nodiscard]] bool defined() const noexcept { return impl_ != nullptr; }

  [[nodiscard]] const Tensor& value() const;
  [[nodiscard]] Tensor& value();
  [[nodiscard]] const Shape& shape() const;
  [[nodiscard]] std::int64_t numel() const;

  [[nodiscard]] bool requires_grad() const noexcept;
  void set_requires_grad(bool v);

  /// Gradient tensor; ensure_grad() must have been called (backward() does).
  [[nodiscard]] Tensor& grad();
  [[nodiscard]] const Tensor& grad() const;
  [[nodiscard]] bool has_grad() const noexcept;

  /// Allocate a zero gradient if absent.
  void ensure_grad();
  /// Zero the gradient if allocated.
  void zero_grad();

  /// Reverse-mode sweep from this node. For non-scalar outputs a seed
  /// gradient of ones is used; pass an explicit seed to override.
  void backward();
  void backward(const Tensor& seed);

  /// Identity comparison (same graph node).
  [[nodiscard]] bool is_same(const Variable& other) const noexcept {
    return impl_ == other.impl_;
  }

  [[nodiscard]] const std::shared_ptr<detail::VarImpl>& impl() const noexcept {
    return impl_;
  }

 private:
  std::shared_ptr<detail::VarImpl> impl_;
};

namespace detail {
struct VarImpl {
  Tensor value;
  Tensor grad;  // undefined until ensure_grad
  bool requires_grad = false;
  std::vector<std::shared_ptr<VarImpl>> parents;
  BackwardFn backward;
};
}  // namespace detail

/// True while gradient recording is enabled (default on; thread-local).
[[nodiscard]] bool grad_enabled() noexcept;

/// RAII guard that disables gradient recording in its scope.
class NoGradGuard {
 public:
  NoGradGuard() noexcept;
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace fitact
