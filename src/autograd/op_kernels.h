// Forward compute kernels shared by the eager autograd ops (autograd/ops.cpp)
// and the recorded inference plans (nn/plan.cpp).
//
// The serving layer promises bit-identical per-request outputs no matter how
// a batch was assembled or executed (serve/server.h "output contract"), and
// the planned-execution path extends that promise to "no matter whether the
// lane ran eagerly or through its plan". The only way to keep two execution
// engines bit-identical under refactoring is for them to run the *same*
// arithmetic, so every forward inner loop lives here, inline, and both
// engines call it. Each kernel computes one sample row (or the whole batch)
// with a fixed per-element accumulation order independent of batch size and
// thread count.
//
// Kernels write through raw pointers (eager ops pass freshly allocated
// Tensors, plans pass arena offsets) and never allocate.
//
// The hot inner loops (ReLU, bound-clamp with event counting, elementwise
// add, bias adds, and the GEMM behind linear/conv) dispatch through the
// runtime kernel layer (tensor/kernels/kernels.h): AVX2/FMA on hosts that
// have it, the portable scalar backend otherwise. The elementwise kernels
// are bit-identical across backends, so the plan-vs-eager output contract
// is unaffected by dispatch; forcing the scalar backend (FITACT_KERNELS=
// scalar) A/Bs the whole forward path on any host.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "tensor/gemm.h"
#include "tensor/kernels/kernels.h"
#include "tensor/shape.h"
#include "tensor/tensor_ops.h"

namespace fitact::ag {

/// What a bounded activation does with values above the bound.
enum class ClipMode {
  zero_above,  ///< x > bound -> 0        (Clip-Act / GBReLU, paper Eq. 4)
  saturate,    ///< x > bound -> bound    (Ranger-style range restriction)
};

inline float stable_sigmoid(float x) noexcept {
  if (x >= 0.0f) {
    return 1.0f / (1.0f + std::exp(-x));
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

/// Maps a per-sample flat feature index to a bound index for the three
/// supported bound extents (layer / channel / neuron).
struct FeatureBroadcast {
  std::int64_t feat = 0;      // features per sample
  std::int64_t hw = 1;        // spatial size (1 for FC)
  std::int64_t channels = 0;  // channel count (== feat for FC)

  static FeatureBroadcast of(const Shape& xs) {
    FeatureBroadcast fb;
    if (xs.rank() == 2) {
      fb.feat = xs[1];
      fb.hw = 1;
      fb.channels = xs[1];
    } else if (xs.rank() == 4) {
      fb.feat = xs[1] * xs[2] * xs[3];
      fb.hw = xs[2] * xs[3];
      fb.channels = xs[1];
    } else {
      throw std::invalid_argument(
          "bounded activation expects rank-2 or rank-4 input, got " +
          xs.str());
    }
    return fb;
  }

  void validate_bound(std::int64_t bound_numel) const {
    if (bound_numel != 1 && bound_numel != channels && bound_numel != feat) {
      throw std::invalid_argument(
          "bound numel " + std::to_string(bound_numel) +
          " incompatible with feature extent " + std::to_string(feat) +
          " (expect 1, C=" + std::to_string(channels) + " or " +
          std::to_string(feat) + ")");
    }
  }

  [[nodiscard]] std::int64_t map(std::int64_t fi,
                                 std::int64_t bound_numel) const noexcept {
    if (bound_numel == feat) return fi;
    if (bound_numel == 1) return 0;
    return fi / hw;  // per-channel
  }
};

// ---- elementwise -----------------------------------------------------------

inline void relu_forward(const float* x, float* o, std::int64_t n) noexcept {
  kern::relu(x, o, n);
}

inline void add_forward(const float* a, const float* b, float* o,
                        std::int64_t n) noexcept {
  kern::add(a, b, o, n);
}

/// Bounded ReLU over n contiguous elements (any number of batch rows).
/// When `count` is set, also returns the number of inputs strictly above
/// their bound — the clamp-event statistic BoundedActivation feeds the
/// serve-time fault detector — fused into the same pass over the data.
/// Counting never changes the computed output.
inline std::uint64_t clipped_relu_forward(const float* x, const float* bound,
                                          std::int64_t bound_numel,
                                          const FeatureBroadcast& fb,
                                          ClipMode mode, float* o,
                                          std::int64_t n,
                                          bool count = false) noexcept {
  return kern::clipped_relu(x, bound, bound_numel, fb.feat, fb.hw,
                            mode == ClipMode::saturate, o, n, count);
}

/// Trainable FitReLU forward (paper Eq. 6): y = max(0, x*sigmoid(k*(l-x))).
/// Clamp counting fuses in exactly as for clipped_relu_forward.
inline std::uint64_t fitrelu_forward(const float* x, const float* lambda,
                                     std::int64_t lambda_numel,
                                     const FeatureBroadcast& fb, float k,
                                     float* o, std::int64_t n,
                                     bool count = false) noexcept {
  std::uint64_t events = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float xi = x[i];
    const float li = lambda[fb.map(i % fb.feat, lambda_numel)];
    if (count) events += xi > li;
    if (xi <= 0.0f) {
      o[i] = 0.0f;
      continue;
    }
    o[i] = xi * stable_sigmoid(k * (li - xi));
  }
  return events;
}

// ---- linear algebra --------------------------------------------------------

/// y[B,O] = x[B,I] * w[O,I]^T + bias. The weight is transposed into
/// wt_scratch (I*O floats) on every call so the GEMM runs on its fast path
/// *and* live parameter faults injected into w since the last call are
/// honoured — plans must not cache derived weight state.
inline void linear_forward(std::int64_t batch, std::int64_t in,
                           std::int64_t out_f, const float* x, const float* w,
                           const float* bias_or_null, float* wt_scratch,
                           float* out) noexcept {
  for (std::int64_t o = 0; o < out_f; ++o) {
    for (std::int64_t i = 0; i < in; ++i) {
      wt_scratch[i * out_f + o] = w[o * in + i];
    }
  }
  sgemm(false, false, batch, out_f, in, 1.0f, x, in, wt_scratch, out_f, 0.0f,
        out, out_f);
  if (bias_or_null != nullptr) {
    for (std::int64_t r = 0; r < batch; ++r) {
      kern::bias_add_row(out + r * out_f, bias_or_null, out_f);
    }
  }
}

/// One sample of a conv2d forward: im2col into col_scratch
/// (col_rows()*col_cols() floats), one GEMM, bias row-add. Batch rows are
/// independent, so callers pick the batch strategy (the eager op fans rows
/// over the thread pool, plans run them serially in-lane) without touching
/// the arithmetic.
inline void conv2d_forward_sample(const Conv2dGeometry& geo, std::int64_t out_c,
                                  const float* x_sample, const float* w,
                                  const float* bias_or_null, float* col_scratch,
                                  float* out_sample) noexcept {
  const std::int64_t ckk = geo.col_rows();
  const std::int64_t ohw = geo.col_cols();
  im2col(geo, x_sample, col_scratch);
  sgemm(false, false, out_c, ohw, ckk, 1.0f, w, ckk, col_scratch, ohw, 0.0f,
        out_sample, ohw);
  if (bias_or_null != nullptr) {
    for (std::int64_t c = 0; c < out_c; ++c) {
      kern::bias_add_const(out_sample + c * ohw, bias_or_null[c], ohw);
    }
  }
}

// ---- fused GEMM + bound-clamp ----------------------------------------------

/// The clamp a fused conv/linear op applies to its GEMM output, resolved
/// from the activation site at execute time (so bounds or scheme changes
/// installed after plan compile stay visible). A plain ReLU is expressed as
/// bound = +inf (one value), zero_above, counting off: every finite positive
/// x passes, NaN maps to 0 — exactly relu_forward's semantics.
struct ClampSpec {
  const float* bound;        ///< broadcast bound values (never null)
  std::int64_t bound_numel;  ///< 1 | channels | feat
  ClipMode mode;
  bool count;                ///< tally elements with x + bias > bound
};

/// In-place bias + clamp over one linear output row (out_f features). The
/// bias add and clamp are the same per-element float ops, in the same
/// order, as the unfused bias_add_row + clipped_relu_forward sequence (a
/// null bias adds 0.0f, which is bit-transparent to the compare-and-select
/// cascade), so fusion preserves bit-identity.
inline std::uint64_t linear_bias_clamp_epilogue(float* row,
                                                const float* bias_or_null,
                                                std::int64_t out_f,
                                                const ClampSpec& s) noexcept {
  const bool sat = s.mode == ClipMode::saturate;
  if (s.bound_numel == 1) {
    if (bias_or_null != nullptr) {
      return kern::fused_bias_clip_rc(row, bias_or_null, s.bound[0], sat,
                                      out_f, s.count);
    }
    return kern::fused_bias_clip_cc(row, 0.0f, s.bound[0], sat, out_f,
                                    s.count);
  }
  if (bias_or_null != nullptr) {
    return kern::fused_bias_clip_rr(row, bias_or_null, s.bound, sat, out_f,
                                    s.count);
  }
  return kern::fused_bias_clip_cr(row, 0.0f, s.bound, sat, out_f, s.count);
}

/// In-place bias + clamp over one conv output sample (out_c planes of hw
/// elements). Conv bias is per-channel, so each plane sees one scalar bias;
/// the bound is constant per plane except at per-neuron granularity.
inline std::uint64_t conv_bias_clamp_epilogue(float* out_sample,
                                              const float* bias_or_null,
                                              std::int64_t out_c,
                                              std::int64_t hw,
                                              const ClampSpec& s) noexcept {
  const bool sat = s.mode == ClipMode::saturate;
  const bool per_neuron = s.bound_numel == out_c * hw;
  std::uint64_t events = 0;
  for (std::int64_t c = 0; c < out_c; ++c) {
    float* plane = out_sample + c * hw;
    const float bias = bias_or_null != nullptr ? bias_or_null[c] : 0.0f;
    if (per_neuron) {
      events += kern::fused_bias_clip_cr(plane, bias, s.bound + c * hw, sat,
                                         hw, s.count);
    } else {
      const float b = s.bound_numel == 1 ? s.bound[0] : s.bound[c];
      events += kern::fused_bias_clip_cc(plane, bias, b, sat, hw, s.count);
    }
  }
  return events;
}

/// Fused linear forward: the linear_forward GEMM (bias deferred) with the
/// clamp epilogue applied per output row while it is cache-hot. Returns the
/// clamp-event tally (0 when s.count is off).
inline std::uint64_t linear_clamp_forward(std::int64_t batch, std::int64_t in,
                                          std::int64_t out_f, const float* x,
                                          const float* w,
                                          const float* bias_or_null,
                                          float* wt_scratch, float* out,
                                          const ClampSpec& s) noexcept {
  linear_forward(batch, in, out_f, x, w, nullptr, wt_scratch, out);
  std::uint64_t events = 0;
  for (std::int64_t r = 0; r < batch; ++r) {
    events += linear_bias_clamp_epilogue(out + r * out_f, bias_or_null, out_f,
                                         s);
  }
  return events;
}

/// Fused conv2d forward for one sample: conv2d_forward_sample's im2col +
/// GEMM (bias deferred) with the clamp epilogue applied per channel plane.
inline std::uint64_t conv2d_clamp_forward_sample(
    const Conv2dGeometry& geo, std::int64_t out_c, const float* x_sample,
    const float* w, const float* bias_or_null, float* col_scratch,
    float* out_sample, const ClampSpec& s) noexcept {
  conv2d_forward_sample(geo, out_c, x_sample, w, nullptr, col_scratch,
                        out_sample);
  return conv_bias_clamp_epilogue(out_sample, bias_or_null, out_c,
                                  geo.col_cols(), s);
}

// ---- normalisation / pooling ----------------------------------------------

/// One (sample, channel) plane of the batch-norm affine map. Training and
/// eval forwards differ only in where mu/invstd come from; both funnel here.
inline void bn_plane_forward(const float* x, float* o, std::int64_t hw,
                             float mu, float invstd, float gamma,
                             float beta) noexcept {
  for (std::int64_t i = 0; i < hw; ++i) {
    o[i] = (x[i] - mu) * invstd * gamma + beta;
  }
}

/// Eval-mode batch norm over [B,C,H,W] from running statistics.
inline void batch_norm2d_eval_forward(std::int64_t batch, std::int64_t ch,
                                      std::int64_t hw, const float* x,
                                      const float* gamma, const float* beta,
                                      const float* running_mean,
                                      const float* running_var, float eps,
                                      float* out) noexcept {
  const std::int64_t plane = ch * hw;
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < ch; ++c) {
      const float mu = running_mean[c];
      const float is = 1.0f / std::sqrt(running_var[c] + eps);
      bn_plane_forward(x + b * plane + c * hw, out + b * plane + c * hw, hw,
                       mu, is, gamma[c], beta[c]);
    }
  }
}

/// Max pooling over [B,C,H,W]. indices_or_null, when given, receives the
/// flat input index of each output's argmax (the eager backward needs it;
/// plans pass nullptr).
inline void max_pool2d_forward(std::int64_t batch, std::int64_t ch,
                               std::int64_t h, std::int64_t w,
                               std::int64_t kernel, std::int64_t stride,
                               const float* x, float* out,
                               std::int64_t* indices_or_null) noexcept {
  const std::int64_t oh = (h - kernel) / stride + 1;
  const std::int64_t ow = (w - kernel) / stride + 1;
  std::int64_t oi = 0;
  if (indices_or_null == nullptr) {
    // Inference path: no argmax to track, so the window max runs branch-free
    // (the ternary compiles to maxss; the argmax loop below mispredicts on
    // every new maximum). Selection is identical to the tracking loop,
    // including NaN handling — both keep the incumbent when the comparison
    // with a NaN is false.
    for (std::int64_t b = 0; b < batch; ++b) {
      for (std::int64_t c = 0; c < ch; ++c) {
        const float* plane = x + (b * ch + c) * h * w;
        for (std::int64_t y = 0; y < oh; ++y) {
          const float* win_row = plane + y * stride * w;
          for (std::int64_t xo = 0; xo < ow; ++xo, ++oi) {
            const float* win = win_row + xo * stride;
            float best = win[0];
            for (std::int64_t ky = 0; ky < kernel; ++ky) {
              const float* row = win + ky * w;
              for (std::int64_t kx = 0; kx < kernel; ++kx) {
                const float v = row[kx];
                best = best < v ? v : best;
              }
            }
            out[oi] = best;
          }
        }
      }
    }
    return;
  }
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t c = 0; c < ch; ++c) {
      const float* plane = x + (b * ch + c) * h * w;
      const std::int64_t plane_off = (b * ch + c) * h * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo, ++oi) {
          const std::int64_t y0 = y * stride;
          const std::int64_t x0 = xo * stride;
          float best = plane[y0 * w + x0];
          std::int64_t best_idx = y0 * w + x0;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t idx = (y0 + ky) * w + (x0 + kx);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          out[oi] = best;
          if (indices_or_null != nullptr) {
            indices_or_null[oi] = plane_off + best_idx;
          }
        }
      }
    }
  }
}

/// [B,C,H,W] -> [B,C]; double-accumulated spatial mean.
inline void global_avg_pool_forward(std::int64_t batch, std::int64_t ch,
                                    std::int64_t hw, const float* x,
                                    float* out) noexcept {
  for (std::int64_t bc = 0; bc < batch * ch; ++bc) {
    double acc = 0.0;
    const float* plane = x + bc * hw;
    for (std::int64_t i = 0; i < hw; ++i) acc += plane[i];
    out[bc] = static_cast<float>(acc / static_cast<double>(hw));
  }
}

}  // namespace fitact::ag
