// Differentiable operations over Variables. Each op computes the forward
// value eagerly and, when gradients are being recorded, attaches a backward
// closure to the result.
//
// Activation-bound broadcasting: the bounded activations (clipped_relu,
// fitrelu) accept a bound tensor with one of three extents relative to an
// input of shape [B, C, H, W] (or [B, F] for fully connected):
//   numel == 1              one bound for the whole layer   (Clip-Act/Ranger)
//   numel == C              one bound per channel           (ablation)
//   numel == C*H*W (or F)   one bound per neuron            (FitAct)
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/op_kernels.h"
#include "autograd/variable.h"
#include "util/rng.h"

namespace fitact::ag {

// ---- arithmetic ------------------------------------------------------------
[[nodiscard]] Variable add(const Variable& a, const Variable& b);
[[nodiscard]] Variable sub(const Variable& a, const Variable& b);
[[nodiscard]] Variable mul(const Variable& a, const Variable& b);
[[nodiscard]] Variable scale(const Variable& a, float s);

// ---- linear algebra --------------------------------------------------------
/// C[M,N] = A[M,K] * B[K,N].
[[nodiscard]] Variable matmul(const Variable& a, const Variable& b);

/// y[B,O] = x[B,I] * w[O,I]^T + bias[O]. bias may be undefined.
[[nodiscard]] Variable linear(const Variable& x, const Variable& w,
                              const Variable& bias);

// ---- convolution / pooling -------------------------------------------------
/// x[B,Cin,H,W], w[Cout,Cin,kH,kW], bias[Cout] (may be undefined).
[[nodiscard]] Variable conv2d(const Variable& x, const Variable& w,
                              const Variable& bias, std::int64_t stride,
                              std::int64_t padding);

[[nodiscard]] Variable max_pool2d(const Variable& x, std::int64_t kernel,
                                  std::int64_t stride);

/// [B,C,H,W] -> [B,C]; mean over the spatial extent.
[[nodiscard]] Variable global_avg_pool(const Variable& x);

/// [B, ...] -> [B, prod(...)] (shares storage).
[[nodiscard]] Variable flatten(const Variable& x);

// ---- normalisation ---------------------------------------------------------
/// Batch normalisation over [B,C,H,W] with per-channel affine parameters.
/// In training mode batch statistics are used and running stats updated in
/// place (biased variance); in eval mode running stats are used. Gradients
/// flow through both modes (eval mode is an affine map), which the FitAct
/// post-training stage relies on.
[[nodiscard]] Variable batch_norm2d(const Variable& x, const Variable& gamma,
                                    const Variable& beta, Tensor& running_mean,
                                    Tensor& running_var, bool training,
                                    float momentum, float eps);

// ---- regularisation --------------------------------------------------------
/// Inverted dropout: in training mode zeroes each element with probability
/// p and scales survivors by 1/(1-p); identity in eval mode. The mask is
/// drawn from `rng` and shared with the backward pass.
[[nodiscard]] Variable dropout(const Variable& x, float p, bool training,
                               ut::Rng& rng);

// ---- activations -----------------------------------------------------------
[[nodiscard]] Variable relu(const Variable& x);

// ClipMode (what a bounded activation does above the bound) lives in
// autograd/op_kernels.h next to the kernels that implement it.

/// Non-trainable bounded ReLU with broadcastable bound (see file comment).
/// Implements both GBReLU (Clip-Act) and Ranger, and FitReLU-Naive when
/// given a per-neuron bound (paper Eq. 5).
[[nodiscard]] Variable clipped_relu(const Variable& x, const Tensor& bound,
                                    ClipMode mode);

/// Trainable FitReLU (paper Eq. 6, with the sign convention fixed so the
/// function bounds from above): y = max(0, x * sigmoid(k*(lambda - x))).
/// lambda is a trainable Variable with broadcastable extent; k controls the
/// steepness of the cut-off (larger k -> closer to FitReLU-Naive).
[[nodiscard]] Variable fitrelu(const Variable& x, const Variable& lambda,
                               float k);

// ---- losses / reductions ---------------------------------------------------
/// Mean cross-entropy of logits[B,K] against integer labels. If probs_out
/// is non-null it receives the softmax probabilities [B,K].
/// label_smoothing in [0,1) mixes the one-hot target with the uniform
/// distribution: q = (1-s)*onehot + s/K.
[[nodiscard]] Variable softmax_cross_entropy(
    const Variable& logits, const std::vector<std::int64_t>& labels,
    Tensor* probs_out = nullptr, float label_smoothing = 0.0f);

/// Scalar sum of squared entries (the FitAct bound regulariser, Eq. 10).
[[nodiscard]] Variable sum_of_squares(const Variable& x);

/// Scalar mean of all entries.
[[nodiscard]] Variable mean_all(const Variable& x);

}  // namespace fitact::ag
