#!/usr/bin/env bash
# Static lint gate: clang-tidy over src/ via the CMake compile database,
# plus fast repo-specific grep lints that protect invariants no generic
# tool knows about. CI runs this (lint job); run it locally before pushing.
#
#   ./scripts/lint.sh            # everything
#   BUILD_DIR=build-foo ./scripts/lint.sh
#
# Exit status: non-zero on any finding. clang-tidy is skipped (with a
# warning) when the host has no clang-tidy binary — the grep lints are
# always enforced, and CI provides the clang-tidy leg.
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
STATUS=0

# --------------------------------------------------------------------------
# Grep lint 1: RNG discipline. Campaign results are bit-reproducible only
# because every stochastic component draws from ut::Rng streams split from
# the experiment seed. A stray std::rand/std::random_device/std::mt19937
# anywhere in src/ (outside the ut::Rng implementation itself) would
# silently break trial-stream determinism across runs and thread counts.
# --------------------------------------------------------------------------
RNG_HITS=$(grep -rnE 'std::rand\b|random_device|std::mt19937|std::minstd' \
  src --include='*.h' --include='*.cpp' \
  | grep -v '^src/util/rng\.' || true)
if [[ -n "$RNG_HITS" ]]; then
  echo "lint: banned RNG primitive outside src/util/rng.* (use ut::Rng):"
  echo "$RNG_HITS"
  STATUS=1
fi

# --------------------------------------------------------------------------
# Grep lint 2: locking discipline. All locks in src/ go through the
# annotated ut::Mutex/ut::LockGuard/ut::CondVar wrappers so clang
# -Wthread-safety can see every acquire/release; a naked std::mutex or
# std::condition_variable member is invisible to the analysis. Only the
# wrapper header itself may touch the std primitives.
# --------------------------------------------------------------------------
MUTEX_HITS=$(grep -rnE 'std::(mutex|condition_variable|shared_mutex|recursive_mutex|lock_guard|unique_lock|scoped_lock)\b' \
  src --include='*.h' --include='*.cpp' \
  | grep -v '^src/util/thread_annotations\.h' || true)
if [[ -n "$MUTEX_HITS" ]]; then
  echo "lint: naked standard-library lock primitive outside" \
       "src/util/thread_annotations.h (use ut::Mutex/LockGuard/CondVar):"
  echo "$MUTEX_HITS"
  STATUS=1
fi

# --------------------------------------------------------------------------
# Grep lint 3: SIMD containment. Vector intrinsics live only in
# src/tensor/kernels/ — the one layer compiled with -mavx2/-mfma and gated
# by runtime cpuid. An intrinsics include anywhere else either crashes on
# older hosts (illegal instruction under baseline flags is one inlining
# decision away) or bypasses the process-wide dispatch that keeps
# plan-vs-eager outputs bit-identical. Everything routes through
# tensor/kernels/kernels.h.
# --------------------------------------------------------------------------
SIMD_HITS=$(grep -rnE '#[[:space:]]*include[[:space:]]*[<"](immintrin|x86intrin|xmmintrin|emmintrin|pmmintrin|tmmintrin|smmintrin|nmmintrin|avxintrin|avx2intrin|arm_neon)\.h' \
  src bench tests examples --include='*.h' --include='*.cpp' 2>/dev/null \
  | grep -v '^src/tensor/kernels/kernels_avx2' || true)
if [[ -n "$SIMD_HITS" ]]; then
  echo "lint: raw SIMD intrinsics include outside the" \
       "src/tensor/kernels/kernels_avx2* translation units" \
       "(dispatch through tensor/kernels/kernels.h):"
  echo "$SIMD_HITS"
  STATUS=1
fi

# --------------------------------------------------------------------------
# clang-tidy over every translation unit in src/, configured by .clang-tidy
# at the repo root. Uses the compile database the build exports
# (CMAKE_EXPORT_COMPILE_COMMANDS is always on); configures a build tree
# first if none exists yet.
# --------------------------------------------------------------------------
TIDY_BIN=""
for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
            clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    TIDY_BIN=$cand
    break
  fi
done

if [[ -z "$TIDY_BIN" ]]; then
  echo "lint: clang-tidy not found on this host; skipping the clang-tidy" \
       "pass (grep lints above still enforced — CI runs the full gate)"
else
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    # shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
    cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS:-} >/dev/null
  fi
  mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
  echo "lint: $TIDY_BIN over ${#SOURCES[@]} files ($BUILD_DIR/compile_commands.json)"
  RUNNER=""
  for cand in run-clang-tidy "${TIDY_BIN/clang-tidy/run-clang-tidy}"; do
    if command -v "$cand" >/dev/null 2>&1; then
      RUNNER=$cand
      break
    fi
  done
  if [[ -n "$RUNNER" ]]; then
    # run-clang-tidy parallelises across cores and exits non-zero on any
    # finding (.clang-tidy promotes all findings to errors).
    if ! "$RUNNER" -clang-tidy-binary "$TIDY_BIN" -quiet -p "$BUILD_DIR" \
        "${SOURCES[@]}"; then
      STATUS=1
    fi
  else
    for f in "${SOURCES[@]}"; do
      if ! "$TIDY_BIN" --quiet -p "$BUILD_DIR" "$f"; then
        STATUS=1
      fi
    done
  fi
fi

if [[ "$STATUS" == 0 ]]; then
  echo "lint: clean"
else
  echo "lint: FAILED"
fi
exit "$STATUS"
