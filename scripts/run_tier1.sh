#!/usr/bin/env bash
# Tier-1 verify, mirroring ROADMAP.md verbatim:
#
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
#
# CI runs this same script so local and CI invocations cannot drift.
# Knobs (all optional, via environment):
#   BUILD_DIR      build tree (default: build)
#   CMAKE_ARGS     extra configure arguments (compiler launchers, build type,
#                  -DFITACT_SANITIZE=address,undefined, ...)
#   CTEST_TIMEOUT  per-test timeout in seconds (default: 300) so one hung
#                  campaign test cannot stall a runner for hours
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
CTEST_TIMEOUT=${CTEST_TIMEOUT:-300}

# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR" && ctest --output-on-failure -j --timeout "$CTEST_TIMEOUT"
