#!/usr/bin/env bash
# Tier-1 verify, mirroring ROADMAP.md verbatim:
#
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
#
# CI runs this same script so local and CI invocations cannot drift.
# Knobs (all optional, via environment):
#   BUILD_DIR      build tree (default: build; build-tsan under --tsan)
#   CMAKE_ARGS     extra configure arguments (compiler launchers, build type,
#                  -DFITACT_SANITIZE=address,undefined, ...)
#   CTEST_TIMEOUT  per-test timeout in seconds (default: 300, or 900 under
#                  --tsan for the ~5-15x sanitizer slowdown) so one hung
#                  campaign test cannot stall a runner for hours
#
# Flags:
#   --tsan   ThreadSanitizer lane: configure a separate build tree with
#            -DFITACT_SANITIZE=thread and run the concurrency-bearing CTest
#            labels (stress + serve, which include the multi-client server
#            hammer test) instead of the full suite. This is the dynamic
#            half of the concurrency tooling; the static half is the clang
#            -DFITACT_THREAD_SAFETY=ON build (see README "Static analysis
#            & sanitizers").
set -euo pipefail
cd "$(dirname "$0")/.."

TSAN=0
for arg in "$@"; do
  case "$arg" in
    --tsan) TSAN=1 ;;
    *) echo "unknown flag: $arg (supported: --tsan)" >&2; exit 2 ;;
  esac
done

CTEST_ARGS=()
if [[ "$TSAN" == 1 ]]; then
  BUILD_DIR=${BUILD_DIR:-build-tsan}
  CTEST_TIMEOUT=${CTEST_TIMEOUT:-900}
  CMAKE_ARGS="${CMAKE_ARGS:-} -DFITACT_SANITIZE=thread"
  CTEST_ARGS+=(-L 'stress|serve')
else
  BUILD_DIR=${BUILD_DIR:-build}
  CTEST_TIMEOUT=${CTEST_TIMEOUT:-300}
fi

# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR" && ctest --output-on-failure -j --timeout "$CTEST_TIMEOUT" \
  ${CTEST_ARGS[@]+"${CTEST_ARGS[@]}"}
