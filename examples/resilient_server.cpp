// Walkthrough: standing up a resilient inference server.
//
// The FitAct pipeline protects a model with bounded activations so that
// parameter faults cannot propagate. This example shows the serving-side
// payoff: those same bounds double as an online fault detector. We train a
// small CNN, protect it, stand a micro-batched server up over it, serve
// clean traffic, then flip bits in a lane's live parameters and watch the
// server notice (clamp-rate spike), scrub the lane from its clean parameter
// image, and keep answering with clean outputs.
//
// Usage: resilient_server [--lanes 2] [--batch 4] [--requests 32]
#include <cstdio>
#include <future>
#include <vector>

#include "eval/experiment.h"
#include "eval/serving.h"
#include "fault/injector.h"
#include "serve/server.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  const std::size_t lanes = cli.get_count("lanes", 2);
  const std::int64_t batch = cli.get_int("batch", 4);
  const std::int64_t requests = cli.get_int("requests", 32);
  ut::set_log_level(ut::LogLevel::warn);

  // 1. Train and protect a small model (clip-act bounds from profiling).
  std::printf("1. preparing a protected tinycnn ...\n");
  ev::ExperimentScale scale = ev::ExperimentScale::scaled();
  scale.train_size = 256;
  scale.test_size = 128;
  scale.train_epochs = 3;
  ev::PreparedModel pm = ev::prepare_model("tinycnn", 10, scale,
                                           "fitact_cache");
  (void)ev::protect_model(pm, core::Scheme::clip_act, scale);
  std::printf("   baseline accuracy %.1f%%\n", pm.baseline_accuracy * 100.0);

  // 2. Stand the server up: micro-batching across worker lanes, each lane
  //    an independent replica with a clean parameter image; the clamp-rate
  //    detection threshold is calibrated from clean test traffic.
  std::printf("2. starting the server: %zu lanes, batch %lld ...\n", lanes,
              static_cast<long long>(batch));
  ev::ServeOptions options;
  options.server.lanes = lanes;
  options.server.max_batch = batch;
  const auto server = ev::make_server(pm, options);
  std::printf("   clamp-rate threshold %.4f\n",
              server->options().clamp_rate_threshold);

  // 3. Clean traffic.
  std::vector<Tensor> samples;
  std::vector<std::int64_t> labels_scratch;
  for (std::int64_t i = 0; i < requests; ++i) {
    samples.push_back(pm.test->batch(i % pm.test->size(), 1,
                                     &labels_scratch));
  }
  std::vector<std::int64_t> clean_predictions;
  {
    std::vector<std::future<serve::RequestResult>> futures;
    for (const auto& s : samples) futures.push_back(server->submit(s));
    for (auto& f : futures) clean_predictions.push_back(f.get().predicted);
  }
  const serve::ServerStats clean = server->stats();
  std::printf("3. clean wave: %llu requests in %llu batches, "
              "%llu detections\n",
              static_cast<unsigned long long>(clean.requests),
              static_cast<unsigned long long>(clean.batches),
              static_cast<unsigned long long>(clean.detections));

  // 4. Corrupt lane 0's live parameters under the server's feet: 24 bit
  //    flips at integer bit 28 turn weights into ±2^12-scale outliers —
  //    exactly the excursions bounded activations were built to confine,
  //    and therefore exactly what the clamp counters see.
  std::printf("4. flipping 24 high bits in lane 0's live parameters ...\n");
  server->with_lane(0, [](nn::Module&, quant::ParamImage& image) {
    fault::Injector injector(image);
    ut::Rng rng(7);
    (void)injector.inject_exact_at_bit(24, 28, rng);
  });

  // 5. Serve the same traffic again. Any batch the faulty lane picks up
  //    trips the detector; the lane restores its clean image and re-runs,
  //    so every answer still matches the clean predictions.
  std::vector<std::future<serve::RequestResult>> futures;
  for (const auto& s : samples) futures.push_back(server->submit(s));
  std::int64_t mismatches = 0;
  bool saw_recovered = false;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::RequestResult r = futures[i].get();
    if (r.predicted != clean_predictions[i]) ++mismatches;
    if (r.recovered) {
      saw_recovered = true;
    }
  }
  const serve::ServerStats after = server->stats();
  std::printf("5. faulty wave: %llu detections, %llu recoveries, "
              "%lld mismatched predictions%s\n",
              static_cast<unsigned long long>(after.detections),
              static_cast<unsigned long long>(after.recoveries),
              static_cast<long long>(mismatches),
              saw_recovered ? " (recovered batches served clean)" : "");

  std::printf("\nThe protection layer is the detector: a saturated clamp at "
              "inference\ntime is the observable symptom of a parameter "
              "fault, so scrubbing the\nlane from its clean image the moment "
              "the clamp rate spikes keeps the\nserved answers "
              "bit-identical to the clean model's.\n");
  return 0;
}
