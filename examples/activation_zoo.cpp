// Tour of the activation zoo as a library user sees it: build one
// BoundedActivation, profile it, and watch how each scheme transforms the
// same faulty input vector. Useful for building intuition about why
// per-neuron bounds (FitAct) remove faults that per-layer bounds miss.
//
// Run: ./activation_zoo
#include <cstdio>

#include "autograd/variable.h"
#include "core/activation.h"
#include "util/table.h"

int main() {
  using namespace fitact;

  // One layer with four neurons whose normal operating ranges differ wildly
  // (cf. paper Fig. 2: per-neuron maxima vary across a layer).
  const float neuron_max[4] = {0.6f, 1.2f, 2.5f, 4.0f};

  core::ActivationConfig cfg;
  cfg.granularity = core::Granularity::per_neuron;
  cfg.k = 8.0f;
  core::BoundedActivation act(cfg);

  // Profile with inputs at each neuron's normal maximum.
  Tensor profile = Tensor::zeros(Shape{1, 4});
  for (std::int64_t i = 0; i < 4; ++i) profile[i] = neuron_max[i];
  act.set_profiling(true);
  act.forward(Variable(profile, false));
  act.set_profiling(false);

  // A faulty activation vector: neuron 1 got hit by a parameter bit flip
  // upstream and produces 3.0 — far beyond its normal 1.2, but *below* the
  // layer-wide maximum of 4.0.
  Tensor faulty = Tensor::zeros(Shape{1, 4});
  faulty[0] = 0.5f;
  faulty[1] = 3.0f;  // faulty: normal range is <= 1.2
  faulty[2] = 2.0f;
  faulty[3] = 3.5f;

  ut::TextTable table({"scheme", "granularity", "n0 (0.5)", "n1 (3.0, FAULTY)",
                       "n2 (2.0)", "n3 (3.5)"});
  struct Row {
    core::Scheme scheme;
    core::Granularity gran;
  };
  for (const Row r : {Row{core::Scheme::relu, core::Granularity::per_layer},
                      Row{core::Scheme::ranger, core::Granularity::per_layer},
                      Row{core::Scheme::clip_act, core::Granularity::per_layer},
                      Row{core::Scheme::fitrelu_naive,
                          core::Granularity::per_neuron},
                      Row{core::Scheme::fitrelu,
                          core::Granularity::per_neuron}}) {
    act.set_scheme(r.scheme);
    if (r.scheme != core::Scheme::relu) {
      act.set_granularity(r.gran);
      act.init_bounds_from_profile();
    }
    const Variable y = act.forward(Variable(faulty, false));
    table.row({core::to_string(r.scheme), core::to_string(r.gran),
               ut::TextTable::fixed(y.value()[0], 3),
               ut::TextTable::fixed(y.value()[1], 3),
               ut::TextTable::fixed(y.value()[2], 3),
               ut::TextTable::fixed(y.value()[3], 3)});
  }
  table.print();

  std::printf(
      "\nNeuron 1's faulty value (3.0) slips past every per-layer bound\n"
      "(the layer max is 4.0) but is removed by the per-neuron schemes,\n"
      "whose bound for that neuron is its own profiled maximum (1.2).\n"
      "This is the core observation motivating FitAct (paper Sec. III-C).\n");
  return 0;
}
