// Quickstart: the complete FitAct workflow on a small CNN in ~40 lines of
// API use.
//
//   1. train a model conventionally (accuracy training, Theta_A),
//   2. profile per-neuron activation maxima,
//   3. switch every ReLU to FitReLU and post-train the bounds (Theta_R),
//   4. inject memory bit-flips and compare accuracy against the
//      unprotected model.
//
// Run: ./quickstart [--rate 2e-4] [--trials 8]
#include <cstdio>

#include "core/bound_profiler.h"
#include "core/post_training.h"
#include "core/protection.h"
#include "data/synthetic_cifar.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "fault/campaign.h"
#include "models/registry.h"
#include "quant/param_image.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  const double rate = cli.get_double("rate", 2e-4);
  const std::int64_t trials = cli.get_int("trials", 8);

  // -- data and model ------------------------------------------------------
  auto splits = data::make_synthetic_splits(/*num_classes=*/10,
                                            /*train=*/512, /*test=*/256,
                                            /*seed=*/7);
  models::ModelConfig mc;
  mc.num_classes = 10;
  mc.width_mult = 0.5f;
  auto model = models::make_model("tinycnn", mc);

  // -- stage 1: conventional training for accuracy --------------------------
  ev::TrainConfig tc;
  tc.epochs = 6;
  ev::train_classifier(*model, splits.train, tc);
  const double baseline = ev::evaluate_accuracy(*model, splits.test);
  std::printf("baseline (clean, ReLU) accuracy: %.2f%%\n", baseline * 100.0);

  // -- stage 2: FitAct resilience post-training -----------------------------
  core::ProfileConfig pc;
  pc.max_samples = 512;
  core::profile_bounds(*model, splits.train, pc);
  core::apply_protection(*model, core::Scheme::fitrelu);
  core::PostTrainConfig ptc;
  ptc.epochs = 3;
  ptc.delta = 0.03f;
  const auto report = core::post_train_bounds(*model, splits.train,
                                              splits.test, baseline, ptc);
  std::printf("post-training: %zu epochs, bound energy %.1f -> %.1f, "
              "clean accuracy %.2f%%\n",
              report.epochs.size(), report.initial_bound_energy,
              report.final_bound_energy, report.final_accuracy * 100.0);

  // -- fault injection: FitAct vs unprotected -------------------------------
  const auto campaign = [&](const char* label) {
    quant::ParamImage image(*model);
    fault::Injector injector(image);
    fault::CampaignConfig cc;
    cc.bit_error_rate = rate;
    cc.trials = trials;
    const auto result = fault::run_campaign(
        injector, [&] { return ev::evaluate_accuracy(*model, splits.test); },
        cc);
    std::printf("%-12s mean accuracy under faults (rate %.0e): %.2f%% "
                "(min %.2f%%, max %.2f%%)\n",
                label, rate, result.mean_accuracy * 100.0,
                result.min_accuracy * 100.0, result.max_accuracy * 100.0);
    return result.mean_accuracy;
  };

  const double protected_acc = campaign("FitAct");
  core::apply_protection(*model, core::Scheme::relu);
  const double unprotected_acc = campaign("Unprotected");

  std::printf("\nFitAct recovered %.1f accuracy points at this fault rate.\n",
              (protected_acc - unprotected_acc) * 100.0);
  return 0;
}
