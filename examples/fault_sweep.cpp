// Fault-rate sweep on one model: protect with a chosen scheme and print the
// accuracy curve over a geometric grid of bit-error rates, with five-number
// summaries per point. A minimal version of the Fig. 5/6 harness for
// interactive exploration.
//
// Run: ./fault_sweep --scheme fitact [--model tinycnn] [--trials 6]
//                    [--threads 1]   (campaign worker lanes; 0 = auto)
#include <cstdio>
#include <stdexcept>
#include <string>

#include "eval/campaign_cli.h"
#include "eval/experiment.h"
#include "eval/stats.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

fitact::core::Scheme parse_scheme(const std::string& s) {
  using fitact::core::Scheme;
  if (s == "fitact" || s == "fitrelu") return Scheme::fitrelu;
  if (s == "clipact" || s == "clip_act") return Scheme::clip_act;
  if (s == "ranger") return Scheme::ranger;
  if (s == "none" || s == "relu" || s == "unprotected") return Scheme::relu;
  if (s == "naive" || s == "fitrelu_naive") return Scheme::fitrelu_naive;
  throw std::invalid_argument(
      "unknown scheme '" + s +
      "' (expected fitact|clipact|ranger|naive|none)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  const std::string model_name = cli.get("model", "tinycnn");
  const core::Scheme scheme = parse_scheme(cli.get("scheme", "fitact"));

  ev::CampaignCliDefaults defaults;
  defaults.train_size = 512;
  defaults.train_epochs = 6;
  defaults.eval_samples = 96;
  defaults.trials = 6;
  defaults.allow_full = false;
  const ev::ExperimentScale scale = ev::scale_from_cli(cli, defaults);

  ev::PreparedModel pm =
      ev::prepare_model(model_name, cli.get_int("classes", 10), scale,
                        "fitact_cache");
  const ev::ProtectReport rep = ev::protect_model(pm, scheme, scale);
  std::printf("%s protected with %s: clean accuracy %.2f%% "
              "(baseline %.2f%%)\n\n",
              model_name.c_str(), ev::paper_label(scheme).c_str(),
              rep.clean_accuracy * 100.0, pm.baseline_accuracy * 100.0);

  ut::TextTable table(
      {"bit error rate", "mean", "min", "q1", "median", "q3", "max"});
  // The session keeps one set of worker-lane replicas across the whole
  // sweep (the protection doesn't change between rates).
  ev::CampaignSession session(pm, scale);
  for (const double rate :
       {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3}) {
    const auto result = session.run(rate, 1000);
    const ev::Summary s = ev::summarize(result.accuracies);
    table.row({ut::TextTable::sci(rate), ut::TextTable::percent(s.mean),
               ut::TextTable::percent(s.min), ut::TextTable::percent(s.q1),
               ut::TextTable::percent(s.median), ut::TextTable::percent(s.q3),
               ut::TextTable::percent(s.max)});
  }
  table.print();
  return 0;
}
