// Scenario: preparing a safety-critical deployment (the paper's motivating
// use case — e.g. a perception model on a self-driving edge device).
//
// The pipeline trains VGG16 (scaled), protects it with each scheme, and
// prints a deployment report: clean accuracy, accuracy under three fault
// rates, parameter memory, and the bound-parameter overhead — the numbers an
// engineer would need to sign off a protection choice.
//
// Run: ./resilient_deployment [--model vgg16] [--classes 10] [--width 0.125]
//                             [--threads 1]   (campaign worker lanes; 0 = auto)
#include <cstdio>
#include <string>
#include <vector>

#include "core/activation.h"
#include "eval/campaign_cli.h"
#include "eval/experiment.h"
#include "quant/param_image.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  const std::string model_name = cli.get("model", "vgg16");
  const std::int64_t classes = cli.get_int("classes", 10);

  ev::CampaignCliDefaults defaults;
  defaults.train_size = 768;
  defaults.train_epochs = 5;
  defaults.eval_samples = 64;
  defaults.trials = 4;
  defaults.allow_full = false;
  ev::ExperimentScale scale = ev::scale_from_cli(cli, defaults);
  if (cli.has("width")) {
    const auto w = static_cast<float>(cli.get_double("width", 0.125));
    scale.width_alexnet = scale.width_vgg16 = scale.width_resnet50 = w;
  }

  std::printf("Preparing %s (classes=%lld) for resilient deployment...\n\n",
              model_name.c_str(), static_cast<long long>(classes));
  ev::PreparedModel pm =
      ev::prepare_model(model_name, classes, scale, "fitact_cache");

  // Fault rates scaled up relative to the paper grid because the scaled
  // model has ~100x fewer parameter bits (see DESIGN.md).
  const std::vector<double> rates = {1e-5, 1e-4, 3e-4};

  ut::TextTable table({"scheme", "clean acc", "acc@1e-5", "acc@1e-4",
                       "acc@3e-4", "param Mb", "bound params"});
  // One lane set across the scheme x rate report; protect_model re-syncs it.
  ev::CampaignSession session(pm, scale);
  for (const auto scheme :
       {core::Scheme::relu, core::Scheme::ranger, core::Scheme::clip_act,
        core::Scheme::fitrelu}) {
    const ev::ProtectReport rep = ev::protect_model(pm, scheme, scale);
    std::vector<std::string> row;
    row.push_back(ev::paper_label(scheme));
    row.push_back(ut::TextTable::percent(rep.clean_accuracy));
    for (const double rate : rates) {
      const auto result = session.run(rate, 4242);
      row.push_back(ut::TextTable::percent(result.mean_accuracy));
    }
    quant::ParamImage image(*pm.model);
    row.push_back(ut::TextTable::fixed(
        static_cast<double>(image.byte_count()) / (1024.0 * 1024.0), 2));
    row.push_back(std::to_string(core::total_bound_count(*pm.model)));
    table.row(std::move(row));
  }
  table.print();

  std::printf(
      "\nReading the report: FitAct should hold accuracy furthest into the\n"
      "high-rate regime at a small bound-parameter cost; Ranger's saturating\n"
      "restriction degrades first (cf. paper Figs. 5-6).\n");
  return 0;
}
