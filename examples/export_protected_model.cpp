// Scenario: ship a FitAct-protected model to an edge device.
//
// The protected model carries extra state next to the weights: per-neuron
// bounds (lambda) for every activation site. This example shows the full
// round trip:
//   1. train + protect + post-train,
//   2. save_state() -> one checkpoint containing weights AND bounds,
//   3. rebuild the architecture in a fresh process, *materialise* the
//      bound tensors (one dry-run protection pass), then load_state(),
//   4. verify bit-identical behaviour and fault resilience of the clone.
//
// Run: ./export_protected_model [--path fitact_model.bin]
#include <cstdio>
#include <string>

#include "core/bound_profiler.h"
#include "core/post_training.h"
#include "core/protection.h"
#include "data/synthetic_cifar.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "fault/campaign.h"
#include "models/registry.h"
#include "nn/serialize.h"
#include "quant/param_image.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  const std::string path = cli.get("path", "fitact_model.bin");

  auto splits = data::make_synthetic_splits(10, 512, 256, 11);
  models::ModelConfig mc;
  mc.width_mult = 0.5f;

  // -- producer side --------------------------------------------------------
  auto model = models::make_model("tinycnn", mc);
  ev::TrainConfig tc;
  tc.epochs = 8;
  ev::train_classifier(*model, splits.train, tc);
  const double baseline = ev::evaluate_accuracy(*model, splits.test);
  core::profile_bounds(*model, splits.train);
  core::apply_protection(*model, core::Scheme::fitrelu);
  core::PostTrainConfig ptc;
  ptc.epochs = 2;
  core::post_train_bounds(*model, splits.train, splits.test, baseline, ptc);
  nn::save_state(*model, path);
  std::printf("saved protected model (+bounds) to %s: %lld parameters, "
              "%lld of them bounds\n",
              path.c_str(),
              static_cast<long long>(model->parameter_count()),
              static_cast<long long>(core::total_bound_count(*model)));

  // -- consumer side ---------------------------------------------------------
  // Rebuild the same architecture, run one profiling + protection pass so
  // the lambda tensors exist with the right extents, then overwrite all
  // state from the checkpoint.
  auto clone = models::make_model("tinycnn", mc);
  core::profile_bounds(*clone, splits.train,
                       core::ProfileConfig{.max_samples = 8, .batch_size = 8});
  core::apply_protection(*clone, core::Scheme::fitrelu);
  if (!nn::load_state(*clone, path)) {
    std::fprintf(stderr, "cannot reload %s\n", path.c_str());
    return 1;
  }

  // -- verification -----------------------------------------------------------
  const double acc_orig = ev::evaluate_accuracy(*model, splits.test);
  const double acc_clone = ev::evaluate_accuracy(*clone, splits.test);
  std::printf("clean accuracy: original %.2f%%, reloaded clone %.2f%%\n",
              acc_orig * 100.0, acc_clone * 100.0);

  quant::ParamImage image(*clone);
  fault::Injector injector(image);
  fault::CampaignConfig cc;
  cc.bit_error_rate = 2e-4;
  cc.trials = 6;
  const auto result = fault::run_campaign(
      injector, [&] { return ev::evaluate_accuracy(*clone, splits.test); },
      cc);
  std::printf("clone under faults (rate 2e-4): mean %.2f%%\n",
              result.mean_accuracy * 100.0);
  std::printf(acc_orig == acc_clone
                  ? "round trip exact: clone matches the original.\n"
                  : "WARNING: clone diverges from the original!\n");
  return acc_orig == acc_clone ? 0 : 1;
}
