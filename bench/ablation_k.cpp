// Ablation B (DESIGN.md): the FitReLU steepness coefficient k (paper Eq. 6,
// "empirically computed"). Two views:
//   1. function-level: max deviation of FitReLU from FitReLU-Naive outside
//      a transition band, which shrinks as k grows;
//   2. system-level: clean accuracy and accuracy under faults of a
//      FitAct-protected model across k values.
//
// Usage: ablation_k [--model tinycnn] [--trials N] [--threads T]
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "core/post_training.h"
#include "core/protection.h"
#include "eval/campaign_cli.h"
#include "eval/experiment.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

namespace {

using namespace fitact;

double max_deviation_from_naive(float k, float lambda) {
  double worst = 0.0;
  for (int i = 0; i <= 2000; ++i) {
    const float x = -2.0f + 10.0f * static_cast<float>(i) / 2000.0f;
    if (std::abs(x - lambda) < 4.0f / k) continue;  // transition band
    Variable vx(Tensor::full(Shape{1, 1}, x), false);
    Variable vl(Tensor::scalar(lambda), false);
    const float smooth = ag::fitrelu(vx, vl, k).value()[0];
    const float naive = (x > 0.0f && x <= lambda) ? x : 0.0f;
    worst = std::max(worst, static_cast<double>(std::abs(smooth - naive)));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const ut::Cli cli(argc, argv);
  ev::CampaignCliDefaults defaults;
  defaults.train_size = 512;
  defaults.allow_full = false;
  const ev::ExperimentScale scale = ev::scale_from_cli(cli, defaults);
  const std::string model_name = cli.get("model", "tinycnn");
  ut::set_log_level(ut::LogLevel::warn);

  std::printf("Ablation: FitReLU steepness k (lambda = 2.0)\n\n");
  ut::CsvWriter csv(cli.get("csv", "ablation_k.csv"),
                    {"k", "max_dev_from_naive", "clean_acc",
                     "acc_under_fault"});

  ev::PreparedModel pm =
      ev::prepare_model(model_name, 10, scale, "fitact_cache");
  const double rate = cli.get_double("rate", 3e-5);  // stress rate

  ut::TextTable table(
      {"k", "max |FitReLU - Naive|", "clean acc", "acc under fault"});
  // Replica lanes persist across the k sweep; pm.touch() flags the direct
  // re-protection + post-training so the session re-syncs them.
  ev::CampaignSession session(pm, scale);
  for (const float k : {1.0f, 2.0f, 5.0f, 10.0f, 25.0f, 50.0f}) {
    const double dev = max_deviation_from_naive(k, 2.0f);

    ev::protect_model(pm, core::Scheme::relu, scale);  // refresh profile path
    core::ProtectionOptions opts;
    opts.granularity = core::Granularity::per_neuron;
    opts.k = k;
    core::apply_protection(*pm.model, core::Scheme::fitrelu, opts);
    core::post_train_bounds(*pm.model, *pm.train, *pm.test,
                            pm.baseline_accuracy, scale.post);
    pm.touch();  // model mutated outside protect_model
    const double clean = ev::clean_subset_accuracy(pm, scale);
    const auto result = session.run(rate, 321);

    table.row({ut::TextTable::fixed(k, 0), ut::TextTable::fixed(dev, 4),
               ut::TextTable::percent(clean),
               ut::TextTable::percent(result.mean_accuracy)});
    csv.row_values({k, dev, clean, result.mean_accuracy});
  }
  table.print();
  std::printf(
      "\nExpected: deviation from the naive cut-off shrinks ~1/k; small k\n"
      "blurs the bound (leaks faulty values and perturbs clean signal),\n"
      "very large k gives vanishing lambda-gradients during post-training.\n"
      "Intermediate k (the library default, 8) balances both.\nCSV: %s\n",
      csv.path().c_str());
  return 0;
}
