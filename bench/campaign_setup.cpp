// Micro-benchmark for campaign setup cost: what a fault campaign pays
// *before* the first trial runs, and how much of it the session layer
// removes.
//
// Three measurements, all on real engine code paths:
//   1. make_model with the normal random init vs the init-skipping path
//      (ModelConfig::skip_init) used for replicas — the ROADMAP's
//      "replicate_model pays for a random init that copy_state immediately
//      overwrites" item;
//   2. one full worker-lane construction (replica model + ParamImage +
//      Injector), the per-lane cost a fresh engine pays at every rate;
//   3. a simulated R-point rate grid with L lanes: per-rate setup of the
//      fresh engine (rebuild every lane at every rate) vs a
//      CampaignSession (build lanes once, light image re-sync per rate).
//
// Usage: campaign_setup [--model resnet50] [--width 0.125] [--classes 10]
//                       [--lanes 4] [--rates 5] [--reps 3]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/protection.h"
#include "data/synthetic_cifar.h"
#include "eval/experiment.h"
#include "fault/injector.h"
#include "models/registry.h"
#include "nn/serialize.h"
#include "quant/param_image.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  const std::string model_name = cli.get("model", "resnet50");
  const std::int64_t classes = cli.get_int("classes", 10);
  const auto width = static_cast<float>(cli.get_double("width", 0.125));
  const std::size_t lanes = cli.get_count("lanes", 4);
  const int rates = static_cast<int>(cli.get_int("rates", 5));
  const int reps = static_cast<int>(cli.get_int("reps", 3));

  // A campaign-ready PreparedModel without the training stage: setup cost
  // does not depend on the parameter values.
  ev::PreparedModel pm;
  pm.model_name = model_name;
  pm.num_classes = classes;
  pm.model_config.num_classes = classes;
  pm.model_config.width_mult = width;
  pm.model_config.seed = 42;
  pm.model = models::make_model(model_name, pm.model_config);
  data::SyntheticCifarConfig dc;
  dc.num_classes = classes;
  dc.size = 32;
  pm.test = std::make_shared<data::SyntheticCifar>(dc);
  pm.train = pm.test;

  std::printf("Campaign setup cost: %s (width %.3f, %lld params), "
              "%zu lanes, %d-rate grid\n\n",
              model_name.c_str(), width,
              static_cast<long long>(pm.model->parameter_count()), lanes,
              rates);

  const auto avg_ms = [&](const auto& fn) {
    ut::Timer t;
    for (int r = 0; r < reps; ++r) fn();
    return t.elapsed_ms() / reps;
  };

  // 1. Model construction: random init vs the replica (skip-init) path.
  const double init_ms = avg_ms([&] {
    (void)models::make_model(model_name, pm.model_config);
  });
  models::ModelConfig skip_cfg = pm.model_config;
  skip_cfg.skip_init = true;
  const double skip_ms = avg_ms([&] {
    (void)models::make_model(model_name, skip_cfg);
  });

  // 2. One full worker lane: replica + image + injector (what the fresh
  //    engine pays per extra lane, at every rate). The "legacy" variant
  //    rebuilds the replica the pre-session way, with the random init that
  //    copy_state then overwrites — the engine this PR replaced.
  ev::EvalConfig ec;
  ec.max_samples = 8;
  const auto factory = ev::make_campaign_worker_factory(pm, ec);
  const double lane_ms = avg_ms([&] { (void)factory(1); });
  const auto legacy_lane = [&] {
    auto replica = models::make_model(model_name, pm.model_config);
    core::replicate_protection(*pm.model, *replica);
    nn::copy_state(*pm.model, *replica);
    replica->set_training(false);
    quant::ParamImage image(*replica);
    fault::Injector injector(image);
  };
  const double legacy_lane_ms = avg_ms(legacy_lane);

  // 3. Rate grid: per-rate lane rebuild (legacy random-init replicas, and
  //    today's skip-init replicas) vs session reuse. Only the setup work
  //    runs — no trials — so the numbers isolate what moves out of the
  //    per-rate loop.
  const double legacy_grid_ms = avg_ms([&] {
    for (int r = 0; r < rates; ++r) {
      (void)factory(0);  // lane 0 wraps the source; image + injector only
      for (std::size_t i = 1; i < lanes; ++i) legacy_lane();
    }
  });
  const double fresh_grid_ms = avg_ms([&] {
    for (int r = 0; r < rates; ++r) {
      std::vector<fault::CampaignWorker> workers;
      workers.reserve(lanes);
      for (std::size_t i = 0; i < lanes; ++i) workers.push_back(factory(i));
    }
  });
  const double session_grid_ms = avg_ms([&] {
    std::vector<fault::CampaignWorker> workers;
    workers.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) workers.push_back(factory(i));
    for (int r = 1; r < rates; ++r) {
      for (auto& w : workers) w.sync(/*source_changed=*/false);
    }
  });
  const double legacy_per_rate = legacy_grid_ms / rates;
  const double fresh_per_rate = fresh_grid_ms / rates;
  const double session_per_rate = session_grid_ms / rates;

  ut::TextTable table({"setup path", "cost"});
  table.row({"make_model, random init",
             ut::TextTable::fixed(init_ms, 2) + " ms"});
  table.row({"make_model, skip-init (replica path)",
             ut::TextTable::fixed(skip_ms, 2) + " ms"});
  table.row({"one worker lane, legacy (random-init replica)",
             ut::TextTable::fixed(legacy_lane_ms, 2) + " ms"});
  table.row({"one worker lane, current (skip-init replica)",
             ut::TextTable::fixed(lane_ms, 2) + " ms"});
  table.row({"per-rate setup, legacy engine (pre-PR)",
             ut::TextTable::fixed(legacy_per_rate, 2) + " ms"});
  table.row({"per-rate setup, fresh skip-init lanes",
             ut::TextTable::fixed(fresh_per_rate, 2) + " ms"});
  table.row({"per-rate setup, session (amortised)",
             ut::TextTable::fixed(session_per_rate, 2) + " ms"});
  table.print();

  std::printf("\ninit-skip speedup on make_model: %.2fx\n",
              skip_ms > 0.0 ? init_ms / skip_ms : 0.0);
  std::printf("per-rate setup reduction, session vs legacy engine: %.2fx\n",
              session_per_rate > 0.0 ? legacy_per_rate / session_per_rate
                                     : 0.0);
  std::printf("per-rate setup reduction, session vs fresh skip-init: %.2fx\n",
              session_per_rate > 0.0 ? fresh_per_rate / session_per_rate
                                     : 0.0);
  return 0;
}
