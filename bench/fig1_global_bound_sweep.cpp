// Reproduces paper Fig. 1: accuracy of VGG16 under faults as a function of
// the *global* bound value of GBReLU applied to the second layer.
//
// Paper setup (Sec. III-C): faults are injected into the parameters of the
// input layer and the second (convolutional) layer at rate 1e-5; the second
// layer's ReLU is replaced by GBReLU with the swept bound; all other layers
// keep plain ReLU. The plot shows (a) a large gap between the faulty and
// baseline accuracy, and (b) a sweet spot: small bounds clip real signal,
// large bounds let faults through.
//
// Scaled default: the bench model is width-scaled, so the default fault rate
// is raised to keep the expected number of flips in the two target layers
// comparable to the paper's full-width setup. Use --full for paper scale.
//
// Usage: fig1_global_bound_sweep [--rate R] [--trials N] [--full] [--csv P]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/activation.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "fault/campaign.h"
#include "quant/param_image.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  ev::ExperimentScale scale = cli.get_flag("full")
                                  ? ev::ExperimentScale::full()
                                  : ev::ExperimentScale::scaled();
  const std::int64_t trials = cli.get_int("trials", scale.trials);
  const double rate =
      cli.get_double("rate", cli.get_flag("full") ? 1e-5 : 3e-4);
  ut::set_log_level(ut::LogLevel::warn);

  ev::PreparedModel pm = ev::prepare_model("vgg16", 10, scale, "fitact_cache");
  const double baseline = pm.baseline_accuracy;

  // Profile once so the second activation site has per-neuron maxima (used
  // both to size the sweep and to keep parity with the paper's workflow).
  ev::protect_model(pm, core::Scheme::clip_act, scale);
  ev::protect_model(pm, core::Scheme::relu, scale);
  auto activations = core::collect_activations(*pm.model);
  if (activations.size() < 2) {
    std::fprintf(stderr, "unexpected VGG16 layout\n");
    return 1;
  }
  auto& second_site = activations[1];
  float layer_max = 0.0f;
  for (const float v : second_site->profile_max().span()) {
    layer_max = std::max(layer_max, v);
  }

  // Fault space: parameters of the input conv layer (Sequential index 0)
  // and of the second conv layer (index 2; index 1 is the first activation
  // site). All other parameters stay clean, as in the paper's case study.
  const auto layer_filter = [](const std::string& name) {
    return name.rfind("0.", 0) == 0 || name.rfind("2.", 0) == 0;
  };

  std::printf("Fig. 1 reproduction: VGG16 accuracy vs global bound of GBReLU "
              "on layer 2\n");
  std::printf("fault rate %.1e in layers 1-2, %lld trials/point, baseline "
              "accuracy %.2f%%\n\n",
              rate, static_cast<long long>(trials), baseline * 100.0);

  ut::CsvWriter csv(cli.get("csv", "fig1_global_bound_sweep.csv"),
                    {"bound", "acc_under_fault", "acc_clean_with_bound",
                     "baseline"});
  ut::TextTable table({"global bound", "acc under fault", "acc clean w/bound",
                       "baseline"});

  // The paper sweeps 0..4 because its VGG16 layer-2 maxima sit below 4
  // (cf. its Fig. 2); this reproduction sizes the sweep from the profiled
  // layer maximum instead, extending past it so the right-hand decline
  // (bounds too loose to filter faults) is visible. Override: --max-bound.
  const double max_bound =
      cli.get_double("max-bound", static_cast<double>(layer_max) * 1.5);
  const double step = cli.get_double("step", max_bound / 20.0);
  ev::EvalConfig ec;
  ec.max_samples = scale.eval_samples;
  for (double bound = step; bound <= max_bound + 1e-9; bound += step) {
    second_site->set_scheme(core::Scheme::clip_act);
    second_site->set_layer_bound(static_cast<float>(bound));
    const double clean = ev::evaluate_accuracy(*pm.model, *pm.test, ec);

    quant::ParamImage image(*pm.model, false, layer_filter);
    fault::Injector injector(image);
    fault::CampaignConfig cc;
    cc.bit_error_rate = rate;
    cc.trials = trials;
    cc.seed = 1357;
    const auto result = fault::run_campaign(
        injector,
        [&] { return ev::evaluate_accuracy(*pm.model, *pm.test, ec); }, cc);

    table.row({ut::TextTable::fixed(bound, 2),
               ut::TextTable::percent(result.mean_accuracy),
               ut::TextTable::percent(clean),
               ut::TextTable::percent(baseline)});
    csv.row_values({bound, result.mean_accuracy, clean, baseline});
  }
  table.print();
  std::printf(
      "\nExpected shape (cf. paper Fig. 1): accuracy under fault peaks at an\n"
      "intermediate bound; very small bounds destroy clean signal, very\n"
      "large bounds stop filtering faults. The gap to the baseline line is\n"
      "the motivation for per-neuron bounds.\nCSV: %s\n",
      csv.path().c_str());
  return 0;
}
