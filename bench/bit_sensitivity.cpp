// Bit-position criticality sweep (extension; cf. the paper's Sec. III
// argument that faulty values are *large* because high integer bits flip).
//
// For each bit position of the Q1.15.16 word, flip that bit in a fixed
// number of randomly chosen parameter words and measure accuracy, for the
// unprotected model and the FitAct-protected one. Expected: fraction bits
// (0-15) are harmless; damage grows through the integer bits (16-30) and
// the sign bit; FitAct flattens the high-bit cliff because the resulting
// huge activations are squashed at the next activation site.
//
// Usage: bit_sensitivity [--model tinycnn] [--words N] [--trials T]
#include <cstdio>
#include <string>

#include "eval/campaign_cli.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "fault/injector.h"
#include "quant/param_image.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  ev::CampaignCliDefaults defaults;
  defaults.train_size = 640;
  defaults.train_epochs = 12;
  defaults.trials = 4;
  defaults.allow_full = false;
  const ev::ExperimentScale scale = ev::scale_from_cli(cli, defaults);
  const std::string model_name = cli.get("model", "tinycnn");
  const std::int64_t trials = scale.trials;
  ut::set_log_level(ut::LogLevel::warn);

  ev::PreparedModel pm =
      ev::prepare_model(model_name, 10, scale, "fitact_cache");
  const auto words =
      static_cast<std::uint64_t>(cli.get_int("words", 16));

  ev::EvalConfig ec;
  ec.max_samples = scale.eval_samples;
  const auto sweep = [&](core::Scheme scheme, ut::CsvWriter& csv) {
    ev::protect_model(pm, scheme, scale);
    quant::ParamImage image(*pm.model);
    fault::Injector injector(image);
    std::vector<double> acc(32, 0.0);
    for (int bit = 0; bit < 32; ++bit) {
      ut::Rng rng(9000 + static_cast<std::uint64_t>(bit));
      double sum = 0.0;
      for (std::int64_t t = 0; t < trials; ++t) {
        ut::Rng trial = rng.split();
        injector.inject_exact_at_bit(words, bit, trial);
        sum += ev::evaluate_accuracy(*pm.model, *pm.test, ec);
        injector.restore();
      }
      acc[static_cast<std::size_t>(bit)] = sum / static_cast<double>(trials);
      csv.row({ev::paper_label(scheme), std::to_string(bit),
               ut::CsvWriter::num(acc[static_cast<std::size_t>(bit)])});
    }
    return acc;
  };

  std::printf("Bit-position sensitivity: flip %llu words at one bit, %s, "
              "baseline %.2f%%\n\n",
              static_cast<unsigned long long>(words), model_name.c_str(),
              pm.baseline_accuracy * 100.0);
  ut::CsvWriter csv(cli.get("csv", "bit_sensitivity.csv"),
                    {"scheme", "bit", "accuracy"});
  const auto unprot = sweep(core::Scheme::relu, csv);
  const auto fitact = sweep(core::Scheme::fitrelu, csv);

  ut::TextTable table({"bit", "field", "Unprotected", "FitAct"});
  for (int bit = 0; bit < 32; ++bit) {
    const char* field = bit < 16 ? "fraction" : (bit < 31 ? "integer" : "sign");
    table.row({std::to_string(bit), field,
               ut::TextTable::percent(unprot[static_cast<std::size_t>(bit)]),
               ut::TextTable::percent(fitact[static_cast<std::size_t>(bit)])});
  }
  table.print();
  std::printf("\nExpected: fraction-bit flips are harmless to both; integer\n"
              "bits 26+ collapse the unprotected model while FitAct's\n"
              "neuron-wise bounds absorb them.\nCSV: %s\n",
              csv.path().c_str());
  return 0;
}
