// Reproduces paper Fig. 6: the full resilience grid — *average* accuracy of
// FitAct vs Clip-Act vs Ranger vs unprotected for {ResNet50, VGG16, AlexNet}
// x {CIFAR-10, CIFAR-100} x fault rates {1e-7 ... 3e-5}.
//
// This is the paper's headline experiment. The scaled default shrinks model
// widths / trial counts so the whole grid completes on a small CPU machine;
// the bit error rates are the paper's own (a rate fixes the *fraction* of
// corrupted parameters, which is scale-invariant; see DESIGN.md).
//
// Usage: fig6_resilience_grid [--models vgg16,alexnet] [--classes 10]
//                             [--trials N] [--threads T] [--rate-scale S]
//                             [--full] [--csv P]
// --threads T fans each campaign's trials out over T worker lanes (0 = one
// per hardware thread); results are bit-identical to the serial run.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "eval/campaign_cli.h"
#include "eval/experiment.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

namespace {
std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  const ev::ExperimentScale scale = ev::scale_from_cli(cli);
  ut::set_log_level(ut::LogLevel::warn);

  const auto models =
      split_csv_list(cli.get("models", "resnet50,vgg16,alexnet"));
  std::vector<std::int64_t> class_list = {10, 100};
  if (cli.has("classes")) class_list = {cli.get_int("classes", 10)};

  const std::vector<core::Scheme> schemes = {
      core::Scheme::fitrelu, core::Scheme::clip_act, core::Scheme::ranger,
      core::Scheme::relu};

  ut::CsvWriter csv(cli.get("csv", "fig6_resilience_grid.csv"),
                    {"model", "dataset", "scheme", "fault_rate",
                     "mean_accuracy"});

  std::printf("Fig. 6 reproduction: average accuracy under faults\n\n");
  for (const std::int64_t classes : class_list) {
    for (const auto& model_name : models) {
      ev::PreparedModel pm =
          ev::prepare_model(model_name, classes, scale, "fitact_cache");
      const double rate_factor = cli.get_double("rate-scale", 1.0);
      std::printf("%s / CIFAR-%lld  (baseline %.2f%%)\n", model_name.c_str(),
                  static_cast<long long>(classes),
                  pm.baseline_accuracy * 100.0);

      ut::TextTable table({"scheme", "1e-7", "1e-6", "3e-6", "1e-5", "3e-5"});
      // Replica lanes live across the scheme x rate grid for this model;
      // protect_model marks the session stale and the lanes re-sync.
      ev::CampaignSession session(pm, scale);
      for (const auto scheme : schemes) {
        ev::protect_model(pm, scheme, scale);
        std::vector<std::string> row{ev::paper_label(scheme)};
        for (const double paper_rate : ev::paper_fault_rates()) {
          const auto result = session.run(paper_rate * rate_factor, 999);
          row.push_back(ut::TextTable::percent(result.mean_accuracy));
          csv.row({model_name, "CIFAR-" + std::to_string(classes),
                   ev::paper_label(scheme), ut::CsvWriter::num(paper_rate),
                   ut::CsvWriter::num(result.mean_accuracy)});
        }
        table.row(std::move(row));
      }
      table.print();
      std::printf("\n");
    }
  }
  std::printf(
      "Expected shape (cf. paper Fig. 6): every protection beats\n"
      "Unprotected; FitAct leads at 3e-6 and beyond (paper: 84.81%% vs\n"
      "Clip-Act 52.47%% on ResNet50/CIFAR-10 at 3e-6); Ranger trails because\n"
      "saturated faulty values keep propagating.\nCSV: %s\n",
      csv.path().c_str());
  return 0;
}
