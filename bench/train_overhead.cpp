// Reproduces paper Section VI-C1: the runtime of the FitAct post-training
// stage relative to conventional training. The paper reports post-training
// at ~5.9-6.7% of conventional training time (21 vs 340 min for ResNet50,
// 4 vs 60 for VGG16, 1 vs 17 for AlexNet on CIFAR-10).
//
// The measured ratio tracks (post epochs x lambda-only backward cost) over
// (train epochs x full backward cost); with the paper's 60-epoch training
// schedule the ratio lands in single digits. The scaled default trains for
// fewer epochs, so the printed ratio is higher — the paper row is printed
// alongside for reference.
//
// Usage: train_overhead [--models vgg16,alexnet] [--full]
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/bound_profiler.h"
#include "core/post_training.h"
#include "core/protection.h"
#include "eval/experiment.h"
#include "eval/trainer.h"
#include "models/registry.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

namespace {
std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

double paper_ratio(const std::string& model) {
  if (model == "resnet50") return 21.0 / 340.0;
  if (model == "vgg16") return 4.0 / 60.0;
  if (model == "alexnet") return 1.0 / 17.0;
  return 0.0;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  ev::ExperimentScale scale = cli.get_flag("full")
                                  ? ev::ExperimentScale::full()
                                  : ev::ExperimentScale::scaled();
  if (!cli.get_flag("full")) {
    // This bench measures a wall-time *ratio*, which is insensitive to the
    // dataset size, so the scaled run uses a small split to stay fast
    // (models are trained fresh here — caching would hide the time).
    scale.train_size = cli.get_int("train-size", 512);
  }
  ut::set_log_level(ut::LogLevel::warn);
  const auto models =
      split_csv_list(cli.get("models", "resnet50,vgg16,alexnet"));

  std::printf("Sec. VI-C1 reproduction: post-training vs conventional "
              "training runtime\n\n");
  ut::CsvWriter csv(cli.get("csv", "train_overhead.csv"),
                    {"model", "conventional_s", "post_training_s",
                     "measured_ratio_pct", "paper_ratio_pct"});
  ut::TextTable table({"model", "conventional (s)", "post-training (s)",
                       "measured ratio", "paper ratio"});

  for (const auto& model_name : models) {
    models::ModelConfig cfg;
    cfg.width_mult = scale.width_for(model_name);
    auto model = models::make_model(model_name, cfg);
    const auto train =
        ev::open_dataset(10, true, scale.train_size, /*seed=*/42);
    const auto test = ev::open_dataset(10, false, scale.test_size, 42);

    ev::TrainConfig tc;
    tc.epochs = scale.train_epochs;
    tc.batch_size = scale.train_batch;
    const ev::TrainReport tr = ev::train_classifier(*model, *train, tc);

    ev::EvalConfig ec;
    ec.max_samples = scale.test_size;
    const double baseline = ev::evaluate_accuracy(*model, *test, ec);

    core::ProfileConfig pc;
    pc.max_samples = scale.profile_samples;
    core::profile_bounds(*model, *train, pc);
    core::apply_protection(*model, core::Scheme::fitrelu);
    const core::PostTrainReport pr = core::post_train_bounds(
        *model, *train, *test, baseline, scale.post);

    const double ratio = pr.wall_time_s / tr.wall_time_s;
    table.row({model_name, ut::TextTable::fixed(tr.wall_time_s, 1),
               ut::TextTable::fixed(pr.wall_time_s, 1),
               ut::TextTable::fixed(ratio * 100.0, 1) + "%",
               ut::TextTable::fixed(paper_ratio(model_name) * 100.0, 1) +
                   "%"});
    csv.row({model_name, ut::CsvWriter::num(tr.wall_time_s),
             ut::CsvWriter::num(pr.wall_time_s),
             ut::CsvWriter::num(ratio * 100.0),
             ut::CsvWriter::num(paper_ratio(model_name) * 100.0)});
  }
  table.print();
  std::printf(
      "\nNote: the paper trains for ~60 epochs; the scaled bench trains for\n"
      "%lld, which inflates the measured ratio. Run with --full to restore\n"
      "the paper's schedule.\nCSV: %s\n",
      static_cast<long long>(scale.train_epochs), csv.path().c_str());
  return 0;
}
