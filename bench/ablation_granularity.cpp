// Ablation A (DESIGN.md): bound granularity. The paper argues per-neuron
// bounds beat a per-layer bound (Sec. III-C); this ablation quantifies the
// middle ground (per-channel) as well, holding everything else fixed:
// same trained model, same FitReLU activation, same post-training budget,
// same fault campaigns.
//
// Usage: ablation_granularity [--model vgg16] [--trials N] [--threads T]
//                             [--full]
#include <cstdio>
#include <string>
#include <vector>

#include "core/bound_profiler.h"
#include "core/post_training.h"
#include "core/protection.h"
#include "eval/campaign_cli.h"
#include "eval/experiment.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  const ev::ExperimentScale scale = ev::scale_from_cli(cli);
  const std::string model_name = cli.get("model", "vgg16");
  ut::set_log_level(ut::LogLevel::warn);

  ev::PreparedModel pm =
      ev::prepare_model(model_name, 10, scale, "fitact_cache");
  const double rate_factor = cli.get_double("rate-scale", 1.0);
  const std::vector<double> paper_rates = {1e-6, 3e-6, 1e-5};

  std::printf("Ablation: FitAct bound granularity on %s / CIFAR-10 "
              "(baseline %.2f%%)\n\n",
              model_name.c_str(), pm.baseline_accuracy * 100.0);
  ut::CsvWriter csv(cli.get("csv", "ablation_granularity.csv"),
                    {"granularity", "bound_params", "clean_acc", "fault_rate",
                     "mean_accuracy"});
  ut::TextTable table({"granularity", "bound params", "clean acc",
                       "acc@1e-6", "acc@3e-6", "acc@1e-5"});

  // Cached replica lanes span the whole granularity x rate grid; the
  // pm.touch() below tells the session when the direct re-protection +
  // post-training changed the source model.
  ev::CampaignSession session(pm, scale);
  for (const auto gran :
       {core::Granularity::per_layer, core::Granularity::per_channel,
        core::Granularity::per_neuron}) {
    // Protect with FitReLU at this granularity (profile reused).
    ev::protect_model(pm, core::Scheme::relu, scale);  // ensures profile
    core::ProtectionOptions opts;
    opts.granularity = gran;
    core::apply_protection(*pm.model, core::Scheme::fitrelu, opts);
    const core::PostTrainReport post = core::post_train_bounds(
        *pm.model, *pm.train, *pm.test, pm.baseline_accuracy, scale.post);
    pm.touch();  // model mutated outside protect_model
    const double clean = ev::clean_subset_accuracy(pm, scale);
    const std::int64_t bound_params = core::total_bound_count(*pm.model);

    std::vector<std::string> row{core::to_string(gran),
                                 std::to_string(bound_params),
                                 ut::TextTable::percent(clean)};
    for (const double paper_rate : paper_rates) {
      const auto result = session.run(paper_rate * rate_factor, 777);
      row.push_back(ut::TextTable::percent(result.mean_accuracy));
      csv.row({core::to_string(gran), std::to_string(bound_params),
               ut::CsvWriter::num(clean), ut::CsvWriter::num(paper_rate),
               ut::CsvWriter::num(result.mean_accuracy)});
    }
    table.row(std::move(row));
    (void)post;
  }
  table.print();
  std::printf(
      "\nExpected: finer granularity tightens bounds around each neuron's\n"
      "true operating range, improving fault removal at the cost of more\n"
      "bound parameters (the paper's per-neuron choice).\nCSV: %s\n",
      csv.path().c_str());
  return 0;
}
