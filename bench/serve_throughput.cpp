// Serving benchmark: throughput and latency of the resilient inference
// server, the micro-batching speedup over single-request serving, and
// detection coverage under live bit-flip injection.
//
// Three phases:
//   1. direct   — raw model->forward one sample at a time (no server), the
//                 floor a serving layer must not sink below;
//   2. single   — the server at max_batch 1, synchronous round-trips
//                 (single-request serving);
//   3. batched  — the server at the configured batch size and lane count,
//                 all requests in flight at once (micro-batched serving).
// The headline number is batched/single throughput — what micro-batching
// buys. The batched phase runs three times — the recorded-plan execution
// path with the fusion pass (the default), plans with fusion disabled,
// and plans disabled entirely (eager per-op tensor allocation) — and
// counts global operator new calls per request; the planned/eager
// throughput ratio, the plan-level fused/unfused execute ratio
// (fuse_speedup, measured directly so serving-layer jitter cannot swamp
// it), and the allocation counts land in the CSV as the CI bench-smoke
// artifact. Latency columns
// (p50/p95/p99) all go through ut::percentile's ceil nearest-rank form. A final phase replays the batched
// load while periodically corrupting a lane's live parameters
// (deterministic bit flips at a high integer bit) and reports detection
// coverage: how many injections the clamp-rate detector caught, and how
// many requests were answered with outputs that differ from the clean
// model's.
//
// When the protection scheme supports it (a clamp-bound scheme: clip_act,
// ranger, or fitrelu_naive — the bounds fix the int8 activation scales),
// the batched phase also runs at nn::Precision::int8 and the CSV gains an
// int8_speedup row (int8 vs fp32 micro-batched throughput) and an
// int8_top1_delta row (fp32 minus int8 top-1 on the request pool's labels
// — the served-accuracy cost of the quantization). Both rows are always
// emitted so the CI greps cannot silently lose them; under a non-clampable
// scheme they carry zeros and a "skipped" marker.
//
// Usage: serve_throughput [--model tinycnn] [--classes 10] [--width 1.0]
//          [--requests 256] [--batch 8] [--lanes 0] [--window-us 200]
//          [--train-size 96] [--epochs 2] [--scheme clip_act]
//          [--inject-every 8] [--flips 24] [--bit 28]
//          [--kernels auto] [--precision fp32] [--min-speedup 0]
//          [--csv serve_throughput.csv]
// --min-speedup S exits non-zero when the micro-batching speedup lands
// below S (CI gate; 0 disables). --kernels scalar|avx2|auto pins the
// process-wide kernel backend (tensor/kernels) for every phase — the A/B
// lever for measuring what SIMD dispatch buys the serving path; the bench
// always reports the active backend and a scalar-vs-dispatched sgemm
// speedup in the CSV. --precision int8 serves every server phase
// quantized (the int8 A/B phase then measures ~1.0x against itself);
// the default fp32 keeps the baseline phases full-precision and lets the
// dedicated int8 phase carry the comparison.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <new>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "eval/campaign_cli.h"
#include "eval/experiment.h"
#include "eval/serving.h"
#include "fault/injector.h"
#include "nn/plan.h"
#include "serve/server.h"
#include "tensor/gemm.h"
#include "tensor/kernels/kernels.h"
#include "tensor/tensor_ops.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/percentile.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

// Process-wide allocation counter: the replaced global operator new below
// bumps it on every heap allocation. The batched phases report the delta
// per request for the planned vs eager execution paths — the number the CI
// bench-smoke lane archives to pin the planned path's allocation behaviour.
std::atomic<std::uint64_t> g_alloc_count{0};

void* fitact_counted_malloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

struct PhaseReport {
  double wall_ms = 0.0;
  double req_per_s = 0.0;
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double allocs_per_req = -1.0;  // < 0: not measured for this phase
};

PhaseReport summarize(double wall_ms, std::vector<double> latencies) {
  PhaseReport r;
  r.wall_ms = wall_ms;
  const auto n = static_cast<double>(latencies.size());
  if (latencies.empty()) return r;
  r.req_per_s = n / (wall_ms / 1000.0);
  double sum = 0.0;
  for (const double l : latencies) sum += l;
  r.mean_latency_ms = sum / n;
  std::sort(latencies.begin(), latencies.end());
  // Ceil nearest-rank throughout (ut::percentile): the smallest sample >=
  // the requested fraction of the distribution. The old floor form
  // (p * (n-1) truncated) indexed below the requested rank for most n —
  // e.g. n=10 picked index 8 for p95, a p90 — and p50/p99 had the same
  // bias until they went through the shared helper.
  r.p50_latency_ms = fitact::ut::percentile(latencies, 0.50);
  r.p95_latency_ms = fitact::ut::percentile(latencies, 0.95);
  r.p99_latency_ms = fitact::ut::percentile(latencies, 0.99);
  return r;
}

// Timed scalar-vs-dispatched sgemm A/B on one fixed square problem: the
// kernel-dispatch headline the CI bench-smoke lane archives next to the
// serving numbers. Both passes run the identical buffers; BackendGuard
// restores whatever backend the serving phases used. Best-of-reps wall
// time per backend keeps the single-number ratio stable on busy hosts.
double measure_sgemm_speedup(std::int64_t n, double* scalar_ms_out,
                             double* active_ms_out) {
  fitact::ut::Rng rng(20220318);  // paper-date seed; any fixed value works
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n), 0.0f);
  for (auto& v : a) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : b) v = rng.uniform(-1.0f, 1.0f);
  const auto time_best = [&] {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      fitact::ut::Timer t;
      fitact::sgemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n,
                    0.0f, c.data(), n);
      best = std::min(best, t.elapsed_ms());
    }
    return best;
  };
  const double active_ms = time_best();
  double scalar_ms = 0.0;
  {
    const fitact::kern::BackendGuard guard(fitact::kern::Backend::scalar);
    scalar_ms = time_best();
  }
  if (scalar_ms_out != nullptr) *scalar_ms_out = scalar_ms;
  if (active_ms_out != nullptr) *active_ms_out = active_ms;
  return active_ms > 0.0 ? scalar_ms / active_ms : 0.0;
}

// Fused-epilogue A/B on the served model, measured at the plan level. The
// batched serving phases run through queues and futures whose scheduling
// jitter (several percent at smoke scale) swamps the epilogue win, so —
// like the sgemm A/B above — the archived single-number ratio times
// plan->execute directly: identical input, identical backend, best-of-reps
// wall time per variant.
double measure_fuse_speedup(const std::shared_ptr<fitact::nn::Module>& model,
                            const fitact::Shape& sample_shape,
                            std::int64_t batch, double* unfused_ms_out,
                            double* fused_ms_out) {
  using namespace fitact;
  ut::Rng rng(20220318);
  const Tensor x = Tensor::randn(
      Shape{batch, sample_shape[0], sample_shape[1], sample_shape[2]}, rng);
  const auto prime = [&](nn::InferencePlan& plan) {
    std::memcpy(plan.input_view(batch).data(), x.data(),
                sizeof(float) * static_cast<std::size_t>(x.numel()));
    (void)plan.execute(batch);  // one-time lazy costs (pack buffers)
  };
  const auto time_once = [&](nn::InferencePlan& plan) {
    ut::Timer t;
    for (int it = 0; it < 4; ++it) (void)plan.execute(batch);
    return t.elapsed_ms();
  };
  // Two noise sources need designing out of a ~5% effect: timing jitter
  // (frequency dips, scheduler steals) and arena-placement luck — the two
  // variants' arenas differ in size, so a given allocation can land on a
  // cache-aliasing address for one of them and stay there for the plan's
  // lifetime. Interleaving the reps handles the former; recompiling both
  // plans each round samples fresh arena placements for the latter. The
  // best across rounds is each variant at a good layout on a quiet slice
  // of the host.
  double fused_ms = 1e300;
  double unfused_ms = 1e300;
  for (int round = 0; round < 4; ++round) {
    const auto fused =
        nn::InferencePlan::compile(model, sample_shape, batch, /*fuse=*/true);
    const auto unfused =
        nn::InferencePlan::compile(model, sample_shape, batch, /*fuse=*/false);
    prime(*fused);
    prime(*unfused);
    for (int rep = 0; rep < 4; ++rep) {
      fused_ms = std::min(fused_ms, time_once(*fused));
      unfused_ms = std::min(unfused_ms, time_once(*unfused));
    }
  }
  if (unfused_ms_out != nullptr) *unfused_ms_out = unfused_ms;
  if (fused_ms_out != nullptr) *fused_ms_out = fused_ms;
  return fused_ms > 0.0 ? unfused_ms / fused_ms : 0.0;
}

}  // namespace

// Counting replacements for the usual global allocation functions. Only the
// unaligned forms are replaced; over-aligned allocations fall through to the
// default aligned operator new and go uncounted, which is fine for a
// comparative A/B figure.
void* operator new(std::size_t size) { return fitact_counted_malloc(size); }
void* operator new[](std::size_t size) { return fitact_counted_malloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  const std::string model_name = cli.get("model", "tinycnn");
  const std::int64_t classes = cli.get_int("classes", 10);
  const std::int64_t requests = cli.get_int("requests", 256);
  const std::int64_t batch = cli.get_int("batch", 8);
  // 0 = one lane per hardware thread (the campaign engine's convention):
  // micro-batching's throughput win comes from keeping every core busy
  // with whole batches, so the default saturates the host.
  std::size_t lanes = cli.get_count("lanes", 0);
  if (lanes == 0) lanes = ut::default_thread_count();
  const std::int64_t window_us = cli.get_int("window-us", 200);
  const std::int64_t inject_every = cli.get_int("inject-every", 8);
  const std::uint64_t flips = static_cast<std::uint64_t>(
      std::max<std::int64_t>(cli.get_int("flips", 24), 1));
  const int bit = static_cast<int>(cli.get_int("bit", 28));
  const double min_speedup = cli.get_double("min-speedup", 0.0);
  const std::string scheme_name = cli.get("scheme", "clip_act");
  const std::string kernels = cli.get("kernels", "auto");
  const std::string precision_name = cli.get("precision", "fp32");
  if (precision_name != "fp32" && precision_name != "int8") {
    std::fprintf(stderr, "unknown --precision %s (fp32|int8)\n",
                 precision_name.c_str());
    return 2;
  }
  ut::set_log_level(ut::LogLevel::warn);

  // Pin the kernel backend before any model work so preparation, every
  // serving phase, and the sgemm A/B all run the requested arithmetic.
  // "scalar" goes through both levers on purpose: the immediate
  // force_backend pins the direct-forward phase, and the ServerOptions
  // knob exercises the server-side wiring production configs would use.
  bool force_scalar = false;
  if (kernels == "scalar") {
    (void)kern::force_backend(kern::Backend::scalar);
    force_scalar = true;
  } else if (kernels == "avx2") {
    if (kern::force_backend(kern::Backend::avx2) != kern::Backend::avx2) {
      std::fprintf(stderr,
                   "warning: --kernels avx2 unavailable on this host/build; "
                   "running scalar\n");
    }
  } else if (kernels != "auto") {
    std::fprintf(stderr, "unknown --kernels %s (scalar|avx2|auto)\n",
                 kernels.c_str());
    return 2;
  }

  ev::CampaignCliDefaults defaults;
  defaults.train_size = 96;
  defaults.train_epochs = 2;
  defaults.allow_full = false;
  ev::ExperimentScale scale = ev::scale_from_cli(cli, defaults);
  if (!cli.has("test-size")) {
    scale.test_size = std::max<std::int64_t>(64, scale.train_size / 2);
  }
  if (cli.has("width")) {
    const auto width = static_cast<float>(cli.get_double("width", 1.0));
    scale.width_alexnet = width;
    scale.width_vgg16 = width;
    scale.width_resnet50 = width;
  }

  const core::Scheme scheme = [&] {
    for (const auto s : {core::Scheme::clip_act, core::Scheme::ranger,
                         core::Scheme::fitrelu_naive, core::Scheme::fitrelu,
                         core::Scheme::relu}) {
      if (core::to_string(s) == scheme_name) return s;
    }
    std::fprintf(stderr, "unknown --scheme %s\n", scheme_name.c_str());
    std::exit(2);
    return core::Scheme::relu;  // unreachable
  }();

  ev::PreparedModel pm =
      ev::prepare_model(model_name, classes, scale, "fitact_cache");
  (void)ev::protect_model(pm, scheme, scale);

  // Request pool: cycle the test split. Labels are kept per request
  // (Dataset::batch clears its labels_out each call) so the int8 phase can
  // score top-1 over the exact traffic it served.
  const std::int64_t pool = std::min<std::int64_t>(pm.test->size(), requests);
  std::vector<Tensor> samples;
  samples.reserve(static_cast<std::size_t>(requests));
  std::vector<std::int64_t> labels_all;
  labels_all.reserve(static_cast<std::size_t>(requests));
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < requests; ++i) {
    samples.push_back(pm.test->batch(i % pool, 1, &labels));
    labels_all.push_back(labels.front());
  }

  // Int8 serving needs clamp bounds to fix the activation scales; under
  // other schemes the quantization pass finds nothing to convert and
  // make_server refuses (no silent fp32-under-an-int8-label).
  const bool int8_capable = scheme == core::Scheme::clip_act ||
                            scheme == core::Scheme::ranger ||
                            scheme == core::Scheme::fitrelu_naive;
  if (precision_name == "int8" && !int8_capable) {
    std::fprintf(stderr,
                 "--precision int8 requires a clamp-bound scheme "
                 "(clip_act|ranger|fitrelu_naive), got %s\n",
                 scheme_name.c_str());
    return 2;
  }

  ev::ServeOptions base;
  base.server.lanes = lanes;
  base.server.max_batch = batch;
  base.server.batch_window = std::chrono::microseconds(window_us);
  base.server.force_scalar_kernels = force_scalar;
  if (precision_name == "int8") base.server.precision = nn::Precision::int8;

  std::printf("Resilient serving throughput: %s (%lld params), %lld requests\n"
              "batch %lld, %zu lanes, %lld us window, scheme %s\n\n",
              model_name.c_str(),
              static_cast<long long>(pm.model->parameter_count()),
              static_cast<long long>(requests), static_cast<long long>(batch),
              lanes, static_cast<long long>(window_us), scheme_name.c_str());

  // Phase 1: direct forwards, no serving layer. Also yields the clean
  // reference predictions the injection phase checks against. Run after a
  // throwaway make_server so pm.model holds the deployed (fixed-point
  // round-tripped) parameter values every phase serves.
  { const auto warm = ev::make_server(pm, base); }
  std::vector<std::int64_t> clean_predictions;
  clean_predictions.reserve(samples.size());
  PhaseReport direct;
  {
    const NoGradGuard no_grad;
    pm.model->set_training(false);
    std::vector<double> latencies;
    latencies.reserve(samples.size());
    ut::Timer wall;
    for (const auto& s : samples) {
      ut::Timer t;
      const Variable out = pm.model->forward(Variable(s));
      clean_predictions.push_back(argmax_rows(out.value()).front());
      latencies.push_back(t.elapsed_ms());
    }
    direct = summarize(wall.elapsed_ms(), std::move(latencies));
  }

  // Phase 2: single-request serving — synchronous round-trips at batch 1.
  PhaseReport single;
  {
    ev::ServeOptions options = base;
    options.server.max_batch = 1;
    options.server.batch_window = std::chrono::microseconds(0);
    const auto server = ev::make_server(pm, options);
    std::vector<double> latencies;
    latencies.reserve(samples.size());
    ut::Timer wall;
    for (const auto& s : samples) {
      ut::Timer t;
      (void)server->infer(s);
      latencies.push_back(t.elapsed_ms());
    }
    single = summarize(wall.elapsed_ms(), std::move(latencies));
  }

  // Phase 3: micro-batched serving — everything in flight at once. Run on
  // both execution paths: recorded plans (default) and eager forward
  // (options.server.plan = false). Each run counts heap allocations per
  // request; the count covers the whole serving layer (futures, queue
  // nodes), so the planned path is small-but-nonzero while the eager path
  // adds every per-op tensor allocation on top.
  const auto run_batched = [&](const ev::ServeOptions& options,
                               std::vector<std::int64_t>* preds) {
    const auto server = ev::make_server(pm, options);
    if (preds != nullptr) {
      preds->assign(samples.size(), -1);
    }
    // Warm-up wave: the first batches pay one-time lazy costs (worker
    // spin-up, thread-local pack buffers) that are not steady state.
    {
      const std::size_t n = std::min<std::size_t>(
          samples.size(), static_cast<std::size_t>(batch));
      std::vector<std::future<serve::RequestResult>> warm;
      warm.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        warm.push_back(server->submit(samples[i]));
      }
      for (auto& f : warm) (void)f.get();
    }
    std::vector<std::future<serve::RequestResult>> futures;
    futures.reserve(samples.size());
    std::vector<double> latencies;
    latencies.reserve(samples.size());
    std::vector<ut::Timer> submit_time(samples.size());
    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    ut::Timer wall;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      submit_time[i].reset();
      futures.push_back(server->submit(samples[i]));
    }
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const serve::RequestResult result = futures[i].get();
      if (preds != nullptr) (*preds)[i] = result.predicted;
      latencies.push_back(submit_time[i].elapsed_ms());
    }
    PhaseReport r = summarize(wall.elapsed_ms(), std::move(latencies));
    r.allocs_per_req =
        static_cast<double>(g_alloc_count.load(std::memory_order_relaxed) -
                            allocs_before) /
        static_cast<double>(samples.size());
    return r;
  };
  // At smoke scale a batched phase lasts tens of milliseconds, which is
  // noise-dominated territory for the A/B ratios below; best-of-three per
  // configuration keeps them honest at negligible extra cost (the phases a
  // ratio pairs run minutes apart on a busy host, so each side needs its
  // own quiet slice).
  const auto run_batched_best = [&](const ev::ServeOptions& options,
                                    std::vector<std::int64_t>* preds =
                                        nullptr) {
    // Serving outputs are deterministic for a fixed configuration, so the
    // predictions from any rep are interchangeable; only the wall time
    // picks the winner.
    PhaseReport best = run_batched(options, preds);
    for (int rep = 1; rep < 3; ++rep) {
      PhaseReport r = run_batched(options, preds);
      if (r.req_per_s > best.req_per_s) best = std::move(r);
    }
    return best;
  };
  const PhaseReport batched = run_batched_best(base);
  // The eager and unfused A/B phases only exist as fp32 configurations —
  // quantization converts fused plan ops, so there is no eager or unfused
  // int8 path (ServerOptions::validate rejects the combination). Under
  // --precision int8 they drop back to fp32 and keep measuring what
  // planning/fusion buy the full-precision path.
  ev::ServeOptions eager_options = base;
  eager_options.server.plan = false;
  eager_options.server.precision = nn::Precision::fp32;
  const PhaseReport eager_batched = run_batched_best(eager_options);
  // Fusion A/B: same planned path, fusion pass disabled — isolates what the
  // fused conv/linear+clamp epilogues buy over plain planned execution.
  ev::ServeOptions unfused_options = base;
  unfused_options.server.fuse = false;
  unfused_options.server.precision = nn::Precision::fp32;
  const PhaseReport unfused_batched = run_batched_best(unfused_options);
  // Int8 A/B: the batched phase again with lane plans quantized — same
  // lanes, same batching, the arithmetic is the only variable. Predictions
  // are collected so the throughput win is priced against its top-1 cost.
  PhaseReport int8_batched;
  std::vector<std::int64_t> int8_preds;
  if (int8_capable) {
    ev::ServeOptions int8_options = base;
    int8_options.server.precision = nn::Precision::int8;
    int8_batched = run_batched_best(int8_options, &int8_preds);
  }

  // Phase 4: batched load with live fault injection every `inject_every`
  // waves of `batch` requests, closed-loop — each wave's futures are
  // collected before the next injection, so every injection is sampled by
  // traffic before the following one overwrites it (inject rebuilds from
  // the clean snapshot). Coverage = detections / injections; the
  // wrong-answer count is the real damage metric (an undetected fault that
  // still classifies every request correctly costs nothing — e.g. an
  // excursion driven negative that ReLU zeroes).
  std::uint64_t injections = 0;
  std::uint64_t wrong = 0;
  serve::ServerStats inj_stats;
  PhaseReport injected;
  {
    const auto server = ev::make_server(pm, base);
    ut::Rng inj_rng(4242);
    std::vector<double> latencies(samples.size(), 0.0);
    ut::Timer wall;
    std::size_t i = 0;
    std::int64_t wave = 0;
    while (i < samples.size()) {
      if (inject_every > 0 && wave % inject_every == 0) {
        const std::size_t lane =
            static_cast<std::size_t>(inj_rng.next_below(lanes));
        if (base.server.precision == nn::Precision::int8) {
          // Int8 lanes serve from the plan's quantized weight bytes — the
          // fp32 image is calibration-time storage the forward never
          // reads, so faults go into the deployed int8 bytes instead. Bit
          // 6 is the int8 analogue of the fp32 exponent flip at --bit 28:
          // a +/-64 magnitude change, the loud corruption the clamp-rate
          // detector exists for.
          server->with_lane(lane, [&](serve::Lane& l) {
            if (!l.plan || l.plan->int8_op_count() == 0) return;
            for (std::uint64_t f = 0; f < flips; ++f) {
              const std::size_t op = static_cast<std::size_t>(
                  inj_rng.next_below(l.plan->int8_op_count()));
              const auto span = l.plan->int8_weight_span(op);
              span.first[static_cast<std::size_t>(
                  inj_rng.next_below(span.second))] ^= 0x40;
            }
          });
        } else {
          server->with_lane(lane,
                            [&](nn::Module&, quant::ParamImage& image) {
                              fault::Injector injector(image);
                              (void)injector.inject_exact_at_bit(flips, bit,
                                                                 inj_rng);
                            });
        }
        ++injections;
      }
      const std::size_t end = std::min(
          samples.size(), i + static_cast<std::size_t>(batch));
      std::vector<std::future<serve::RequestResult>> futures;
      futures.reserve(end - i);
      const std::size_t wave_begin = i;
      for (; i < end; ++i) futures.push_back(server->submit(samples[i]));
      for (std::size_t r = 0; r < futures.size(); ++r) {
        const serve::RequestResult result = futures[r].get();
        if (result.predicted != clean_predictions[wave_begin + r]) ++wrong;
      }
      ++wave;
    }
    injected = summarize(wall.elapsed_ms(), std::move(latencies));
    server->drain();
    inj_stats = server->stats();
  }

  // Kernel-dispatch A/B, after the serving phases so its cache traffic
  // cannot perturb them. Under --kernels scalar this reports ~1.0x.
  const std::string backend_name = kern::backend_name(kern::active_backend());
  double sgemm_scalar_ms = 0.0;
  double sgemm_active_ms = 0.0;
  const double sgemm_speedup =
      measure_sgemm_speedup(256, &sgemm_scalar_ms, &sgemm_active_ms);

  const double speedup =
      single.req_per_s > 0.0 ? batched.req_per_s / single.req_per_s : 0.0;
  // Int8 headline pair: throughput ratio against the fp32 batched phase,
  // and the top-1 it costs — both over the identical request pool.
  const double int8_speedup =
      int8_capable && batched.req_per_s > 0.0
          ? int8_batched.req_per_s / batched.req_per_s
          : 0.0;
  const auto top1 = [&](const std::vector<std::int64_t>& preds) {
    if (preds.empty()) return 0.0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == labels_all[i]) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(preds.size());
  };
  const double top1_fp32 = top1(clean_predictions);
  const double top1_int8 = top1(int8_preds);
  const double int8_top1_delta = int8_capable ? top1_fp32 - top1_int8 : 0.0;
  const double coverage =
      injections > 0 ? static_cast<double>(inj_stats.detections) /
                           static_cast<double>(injections)
                     : 0.0;

  ut::TextTable table({"phase", "wall ms", "req/s", "mean lat ms",
                       "p50 lat ms", "p95 lat ms", "p99 lat ms",
                       "allocs/req"});
  const auto row = [&](const std::string& name, const PhaseReport& r,
                       bool lat) {
    table.row({name, ut::TextTable::fixed(r.wall_ms, 1),
               ut::TextTable::fixed(r.req_per_s, 1),
               lat ? ut::TextTable::fixed(r.mean_latency_ms, 2) : "-",
               lat ? ut::TextTable::fixed(r.p50_latency_ms, 2) : "-",
               lat ? ut::TextTable::fixed(r.p95_latency_ms, 2) : "-",
               lat ? ut::TextTable::fixed(r.p99_latency_ms, 2) : "-",
               r.allocs_per_req >= 0.0
                   ? ut::TextTable::fixed(r.allocs_per_req, 1)
                   : "-"});
  };
  row("direct forward", direct, true);
  row("server, single-request", single, true);
  row("server, micro-batched (planned)", batched, true);
  row("server, micro-batched (unfused)", unfused_batched, true);
  row("server, micro-batched (eager)", eager_batched, true);
  if (int8_capable) row("server, micro-batched (int8)", int8_batched, true);
  row("micro-batched + injection", injected, false);
  table.print();

  const double plan_speedup = eager_batched.req_per_s > 0.0
                                  ? batched.req_per_s / eager_batched.req_per_s
                                  : 0.0;
  // Plan-level fused/unfused ratio on the served model (see
  // measure_fuse_speedup for why this is not derived from the phases).
  const Shape request_shape = samples.front().shape();
  double fuse_unfused_ms = 0.0;
  double fuse_fused_ms = 0.0;
  const double fuse_speedup = measure_fuse_speedup(
      pm.model, Shape{request_shape[1], request_shape[2], request_shape[3]},
      batch, &fuse_unfused_ms, &fuse_fused_ms);
  std::printf("\nmicrobatch_speedup: %.2fx (batched vs single-request)\n",
              speedup);
  std::printf("plan_speedup: %.2fx (planned vs eager micro-batched); "
              "allocs/request planned %.1f, eager %.1f\n",
              plan_speedup, batched.allocs_per_req,
              eager_batched.allocs_per_req);
  std::printf("fuse_speedup: %.2fx (plan execute at batch %lld, "
              "unfused %.2f ms vs fused %.2f ms)\n",
              fuse_speedup, static_cast<long long>(batch), fuse_unfused_ms,
              fuse_fused_ms);
  if (int8_capable) {
    std::printf("int8_speedup: %.2fx (int8 vs fp32 micro-batched); "
                "top-1 fp32 %.4f, int8 %.4f, delta %.4f\n",
                int8_speedup, top1_fp32, top1_int8, int8_top1_delta);
  } else {
    std::printf("int8_speedup: skipped (scheme %s has no clamp bounds to "
                "fix the activation scales)\n",
                scheme_name.c_str());
  }
  std::printf("kernel_backend: %s  sgemm_speedup: %.2fx "
              "(256^3 GEMM, scalar %.2f ms vs dispatched %.2f ms)\n",
              backend_name.c_str(), sgemm_speedup, sgemm_scalar_ms,
              sgemm_active_ms);
  std::printf("injections: %llu  detections: %llu  recoveries: %llu  "
              "coverage: %.0f%%\n",
              static_cast<unsigned long long>(injections),
              static_cast<unsigned long long>(inj_stats.detections),
              static_cast<unsigned long long>(inj_stats.recoveries),
              coverage * 100.0);
  std::printf("wrong answers under injection: %llu / %zu requests\n",
              static_cast<unsigned long long>(wrong), samples.size());

  const std::string csv_path = cli.get("csv", "serve_throughput.csv");
  ut::CsvWriter csv(csv_path,
                    {"phase", "wall_ms", "req_per_s", "mean_latency_ms",
                     "p50_latency_ms", "p95_latency_ms", "p99_latency_ms"});
  const auto csv_row = [&](const std::string& name, const PhaseReport& r,
                           bool has_latency) {
    csv.row({name, ut::CsvWriter::num(r.wall_ms),
             ut::CsvWriter::num(r.req_per_s),
             has_latency ? ut::CsvWriter::num(r.mean_latency_ms) : "",
             has_latency ? ut::CsvWriter::num(r.p50_latency_ms) : "",
             has_latency ? ut::CsvWriter::num(r.p95_latency_ms) : "",
             has_latency ? ut::CsvWriter::num(r.p99_latency_ms) : ""});
  };
  csv_row("direct", direct, true);
  csv_row("single", single, true);
  csv_row("batched", batched, true);
  csv_row("batched_unfused", unfused_batched, true);
  csv_row("batched_eager", eager_batched, true);
  if (int8_capable) csv_row("batched_int8", int8_batched, true);
  // Per-request latency is not measured in the closed-loop injection phase.
  csv_row("injected", injected, false);
  csv.row({"speedup", ut::CsvWriter::num(speedup), "", "", "", "", ""});
  csv.row({"plan_speedup", ut::CsvWriter::num(plan_speedup), "", "", "", "",
           ""});
  csv.row({"fuse_speedup", ut::CsvWriter::num(fuse_speedup),
           ut::CsvWriter::num(fuse_unfused_ms),
           ut::CsvWriter::num(fuse_fused_ms), "", "", ""});
  csv.row({"allocs_per_request", ut::CsvWriter::num(batched.allocs_per_req),
           ut::CsvWriter::num(eager_batched.allocs_per_req), "", "", "", ""});
  // Always present so the CI greps fail loudly if the int8 phase ever
  // vanishes; a non-clampable scheme marks them skipped instead of lying
  // with a measured-looking zero.
  csv.row({"int8_speedup", ut::CsvWriter::num(int8_speedup),
           int8_capable ? "" : "skipped", "", "", "", ""});
  csv.row({"int8_top1_delta", ut::CsvWriter::num(int8_top1_delta),
           ut::CsvWriter::num(top1_fp32), ut::CsvWriter::num(top1_int8),
           int8_capable ? "" : "skipped", "", ""});
  csv.row({"kernel_backend", backend_name, "", "", "", "", ""});
  csv.row({"sgemm_speedup", ut::CsvWriter::num(sgemm_speedup),
           ut::CsvWriter::num(sgemm_scalar_ms),
           ut::CsvWriter::num(sgemm_active_ms), "", "", ""});
  csv.row({"detection_coverage", ut::CsvWriter::num(coverage),
           ut::CsvWriter::num(static_cast<double>(injections)),
           ut::CsvWriter::num(static_cast<double>(inj_stats.detections)),
           ut::CsvWriter::num(static_cast<double>(wrong)), "", ""});
  std::printf("CSV: %s\n", csv_path.c_str());

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: micro-batching speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
