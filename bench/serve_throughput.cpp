// Serving benchmark: throughput and latency of the resilient inference
// server, the micro-batching speedup over single-request serving, and
// detection coverage under live bit-flip injection.
//
// Three phases:
//   1. direct   — raw model->forward one sample at a time (no server), the
//                 floor a serving layer must not sink below;
//   2. single   — the server at max_batch 1, synchronous round-trips
//                 (single-request serving);
//   3. batched  — the server at the configured batch size and lane count,
//                 all requests in flight at once (micro-batched serving).
// The headline number is batched/single throughput — what micro-batching
// buys. A fourth phase replays the batched load while periodically
// corrupting a lane's live parameters (deterministic bit flips at a high
// integer bit) and reports detection coverage: how many injections the
// clamp-rate detector caught, and how many requests were answered with
// outputs that differ from the clean model's.
//
// Usage: serve_throughput [--model tinycnn] [--classes 10] [--width 1.0]
//          [--requests 256] [--batch 8] [--lanes 0] [--window-us 200]
//          [--train-size 96] [--epochs 2] [--scheme clip_act]
//          [--inject-every 8] [--flips 24] [--bit 28]
//          [--min-speedup 0] [--csv serve_throughput.csv]
// --min-speedup S exits non-zero when the micro-batching speedup lands
// below S (CI gate; 0 disables).
#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "eval/experiment.h"
#include "eval/serving.h"
#include "fault/injector.h"
#include "serve/server.h"
#include "tensor/tensor_ops.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

struct PhaseReport {
  double wall_ms = 0.0;
  double req_per_s = 0.0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
};

PhaseReport summarize(double wall_ms, std::vector<double> latencies) {
  PhaseReport r;
  r.wall_ms = wall_ms;
  const auto n = static_cast<double>(latencies.size());
  if (latencies.empty()) return r;
  r.req_per_s = n / (wall_ms / 1000.0);
  double sum = 0.0;
  for (const double l : latencies) sum += l;
  r.mean_latency_ms = sum / n;
  std::sort(latencies.begin(), latencies.end());
  r.p95_latency_ms =
      latencies[static_cast<std::size_t>(0.95 * (latencies.size() - 1))];
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  const std::string model_name = cli.get("model", "tinycnn");
  const std::int64_t classes = cli.get_int("classes", 10);
  const std::int64_t requests = cli.get_int("requests", 256);
  const std::int64_t batch = cli.get_int("batch", 8);
  // 0 = one lane per hardware thread (the campaign engine's convention):
  // micro-batching's throughput win comes from keeping every core busy
  // with whole batches, so the default saturates the host.
  std::size_t lanes = cli.get_count("lanes", 0);
  if (lanes == 0) lanes = ut::default_thread_count();
  const std::int64_t window_us = cli.get_int("window-us", 200);
  const std::int64_t inject_every = cli.get_int("inject-every", 8);
  const std::uint64_t flips = static_cast<std::uint64_t>(
      std::max<std::int64_t>(cli.get_int("flips", 24), 1));
  const int bit = static_cast<int>(cli.get_int("bit", 28));
  const double min_speedup = cli.get_double("min-speedup", 0.0);
  const std::string scheme_name = cli.get("scheme", "clip_act");
  ut::set_log_level(ut::LogLevel::warn);

  ev::ExperimentScale scale = ev::ExperimentScale::scaled();
  scale.train_size = cli.get_int("train-size", 96);
  scale.test_size = std::max<std::int64_t>(64, scale.train_size / 2);
  scale.train_epochs = cli.get_int("epochs", 2);
  if (cli.has("width")) {
    const auto width = static_cast<float>(cli.get_double("width", 1.0));
    scale.width_alexnet = width;
    scale.width_vgg16 = width;
    scale.width_resnet50 = width;
  }

  const core::Scheme scheme = [&] {
    for (const auto s : {core::Scheme::clip_act, core::Scheme::ranger,
                         core::Scheme::fitrelu_naive, core::Scheme::fitrelu,
                         core::Scheme::relu}) {
      if (core::to_string(s) == scheme_name) return s;
    }
    std::fprintf(stderr, "unknown --scheme %s\n", scheme_name.c_str());
    std::exit(2);
    return core::Scheme::relu;  // unreachable
  }();

  ev::PreparedModel pm =
      ev::prepare_model(model_name, classes, scale, "fitact_cache");
  (void)ev::protect_model(pm, scheme, scale);

  // Request pool: cycle the test split.
  const std::int64_t pool = std::min<std::int64_t>(pm.test->size(), requests);
  std::vector<Tensor> samples;
  samples.reserve(static_cast<std::size_t>(requests));
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < requests; ++i) {
    samples.push_back(pm.test->batch(i % pool, 1, &labels));
  }

  ev::ServeOptions base;
  base.server.lanes = lanes;
  base.server.max_batch = batch;
  base.server.batch_window = std::chrono::microseconds(window_us);

  std::printf("Resilient serving throughput: %s (%lld params), %lld requests\n"
              "batch %lld, %zu lanes, %lld us window, scheme %s\n\n",
              model_name.c_str(),
              static_cast<long long>(pm.model->parameter_count()),
              static_cast<long long>(requests), static_cast<long long>(batch),
              lanes, static_cast<long long>(window_us), scheme_name.c_str());

  // Phase 1: direct forwards, no serving layer. Also yields the clean
  // reference predictions the injection phase checks against. Run after a
  // throwaway make_server so pm.model holds the deployed (fixed-point
  // round-tripped) parameter values every phase serves.
  { const auto warm = ev::make_server(pm, base); }
  std::vector<std::int64_t> clean_predictions;
  clean_predictions.reserve(samples.size());
  PhaseReport direct;
  {
    const NoGradGuard no_grad;
    pm.model->set_training(false);
    std::vector<double> latencies;
    latencies.reserve(samples.size());
    ut::Timer wall;
    for (const auto& s : samples) {
      ut::Timer t;
      const Variable out = pm.model->forward(Variable(s));
      clean_predictions.push_back(argmax_rows(out.value()).front());
      latencies.push_back(t.elapsed_ms());
    }
    direct = summarize(wall.elapsed_ms(), std::move(latencies));
  }

  // Phase 2: single-request serving — synchronous round-trips at batch 1.
  PhaseReport single;
  {
    ev::ServeOptions options = base;
    options.server.max_batch = 1;
    options.server.batch_window = std::chrono::microseconds(0);
    const auto server = ev::make_server(pm, options);
    std::vector<double> latencies;
    latencies.reserve(samples.size());
    ut::Timer wall;
    for (const auto& s : samples) {
      ut::Timer t;
      (void)server->infer(s);
      latencies.push_back(t.elapsed_ms());
    }
    single = summarize(wall.elapsed_ms(), std::move(latencies));
  }

  // Phase 3: micro-batched serving — everything in flight at once.
  PhaseReport batched;
  {
    const auto server = ev::make_server(pm, base);
    std::vector<std::future<serve::RequestResult>> futures;
    futures.reserve(samples.size());
    ut::Timer wall;
    std::vector<ut::Timer> submit_time(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      submit_time[i].reset();
      futures.push_back(server->submit(samples[i]));
    }
    std::vector<double> latencies;
    latencies.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      (void)futures[i].get();
      latencies.push_back(submit_time[i].elapsed_ms());
    }
    batched = summarize(wall.elapsed_ms(), std::move(latencies));
  }

  // Phase 4: batched load with live fault injection every `inject_every`
  // waves of `batch` requests, closed-loop — each wave's futures are
  // collected before the next injection, so every injection is sampled by
  // traffic before the following one overwrites it (inject rebuilds from
  // the clean snapshot). Coverage = detections / injections; the
  // wrong-answer count is the real damage metric (an undetected fault that
  // still classifies every request correctly costs nothing — e.g. an
  // excursion driven negative that ReLU zeroes).
  std::uint64_t injections = 0;
  std::uint64_t wrong = 0;
  serve::ServerStats inj_stats;
  PhaseReport injected;
  {
    const auto server = ev::make_server(pm, base);
    ut::Rng inj_rng(4242);
    std::vector<double> latencies(samples.size(), 0.0);
    ut::Timer wall;
    std::size_t i = 0;
    std::int64_t wave = 0;
    while (i < samples.size()) {
      if (inject_every > 0 && wave % inject_every == 0) {
        const std::size_t lane =
            static_cast<std::size_t>(inj_rng.next_below(lanes));
        server->with_lane(lane,
                          [&](nn::Module&, quant::ParamImage& image) {
                            fault::Injector injector(image);
                            (void)injector.inject_exact_at_bit(flips, bit,
                                                               inj_rng);
                          });
        ++injections;
      }
      const std::size_t end = std::min(
          samples.size(), i + static_cast<std::size_t>(batch));
      std::vector<std::future<serve::RequestResult>> futures;
      futures.reserve(end - i);
      const std::size_t wave_begin = i;
      for (; i < end; ++i) futures.push_back(server->submit(samples[i]));
      for (std::size_t r = 0; r < futures.size(); ++r) {
        const serve::RequestResult result = futures[r].get();
        if (result.predicted != clean_predictions[wave_begin + r]) ++wrong;
      }
      ++wave;
    }
    injected = summarize(wall.elapsed_ms(), std::move(latencies));
    server->drain();
    inj_stats = server->stats();
  }

  const double speedup =
      single.req_per_s > 0.0 ? batched.req_per_s / single.req_per_s : 0.0;
  const double coverage =
      injections > 0 ? static_cast<double>(inj_stats.detections) /
                           static_cast<double>(injections)
                     : 0.0;

  ut::TextTable table({"phase", "wall ms", "req/s", "mean lat ms",
                       "p95 lat ms"});
  const auto row = [&](const std::string& name, const PhaseReport& r,
                       bool lat) {
    table.row({name, ut::TextTable::fixed(r.wall_ms, 1),
               ut::TextTable::fixed(r.req_per_s, 1),
               lat ? ut::TextTable::fixed(r.mean_latency_ms, 2) : "-",
               lat ? ut::TextTable::fixed(r.p95_latency_ms, 2) : "-"});
  };
  row("direct forward", direct, true);
  row("server, single-request", single, true);
  row("server, micro-batched", batched, true);
  row("micro-batched + injection", injected, false);
  table.print();

  std::printf("\nmicrobatch_speedup: %.2fx (batched vs single-request)\n",
              speedup);
  std::printf("injections: %llu  detections: %llu  recoveries: %llu  "
              "coverage: %.0f%%\n",
              static_cast<unsigned long long>(injections),
              static_cast<unsigned long long>(inj_stats.detections),
              static_cast<unsigned long long>(inj_stats.recoveries),
              coverage * 100.0);
  std::printf("wrong answers under injection: %llu / %zu requests\n",
              static_cast<unsigned long long>(wrong), samples.size());

  const std::string csv_path = cli.get("csv", "serve_throughput.csv");
  ut::CsvWriter csv(csv_path,
                    {"phase", "wall_ms", "req_per_s", "mean_latency_ms",
                     "p95_latency_ms"});
  const auto csv_row = [&](const std::string& name, const PhaseReport& r,
                           bool has_latency) {
    csv.row({name, ut::CsvWriter::num(r.wall_ms),
             ut::CsvWriter::num(r.req_per_s),
             has_latency ? ut::CsvWriter::num(r.mean_latency_ms) : "",
             has_latency ? ut::CsvWriter::num(r.p95_latency_ms) : ""});
  };
  csv_row("direct", direct, true);
  csv_row("single", single, true);
  csv_row("batched", batched, true);
  // Per-request latency is not measured in the closed-loop injection phase.
  csv_row("injected", injected, false);
  csv.row({"speedup", ut::CsvWriter::num(speedup), "", "", ""});
  csv.row({"detection_coverage", ut::CsvWriter::num(coverage),
           ut::CsvWriter::num(static_cast<double>(injections)),
           ut::CsvWriter::num(static_cast<double>(inj_stats.detections)),
           ut::CsvWriter::num(static_cast<double>(wrong))});
  std::printf("CSV: %s\n", csv_path.c_str());

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: micro-batching speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
