// Reproduces paper Table I: runtime and memory overheads of deploying the
// FitAct-protected model (FitReLU with per-neuron bounds) versus the
// original ReLU model, for {ResNet50, VGG16, AlexNet} x {CIFAR-10,
// CIFAR-100} in the inference stage.
//
// Runtime: mean single-image forward latency. Memory: parameter storage in
// the Q1.15.16 image (weights + biases + BN affine [+ lambdas for FitAct]).
// Timing needs no trained weights, so this bench runs in seconds; bounds
// are seeded from a short profiling pass over synthetic data.
//
// Usage: table1_overhead [--reps 30] [--full]
#include <cstdio>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "core/bound_profiler.h"
#include "core/protection.h"
#include "data/synthetic_cifar.h"
#include "eval/experiment.h"
#include "models/registry.h"
#include "quant/param_image.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace fitact;

double time_forward_ms(nn::Module& model, std::int64_t reps) {
  ut::Rng rng(1);
  const Variable x(Tensor::randn(Shape{1, 3, 32, 32}, rng), false);
  const NoGradGuard no_grad;
  model.set_training(false);
  model.forward(x);  // warm-up
  const ut::Timer timer;
  for (std::int64_t i = 0; i < reps; ++i) model.forward(x);
  return timer.elapsed_ms() / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  const ut::Cli cli(argc, argv);
  const std::int64_t reps = cli.get_int("reps", 30);
  const ev::ExperimentScale scale = cli.get_flag("full")
                                        ? ev::ExperimentScale::full()
                                        : ev::ExperimentScale::scaled();
  ut::set_log_level(ut::LogLevel::warn);

  std::printf("Table I reproduction: inference runtime and memory overhead "
              "of FitAct vs ReLU\n\n");
  ut::CsvWriter csv(cli.get("csv", "table1_overhead.csv"),
                    {"dataset", "model", "runtime_relu_ms",
                     "runtime_fitact_ms", "runtime_overhead_pct",
                     "memory_relu_mb", "memory_fitact_mb",
                     "memory_overhead_pct"});

  for (const std::int64_t classes : {10, 100}) {
    std::printf("CIFAR-%lld\n", static_cast<long long>(classes));
    ut::TextTable table({"model", "ReLU ms", "FitAct ms", "runtime O/H",
                         "ReLU Mb", "FitAct Mb", "memory O/H"});
    for (const std::string model_name : {"resnet50", "vgg16", "alexnet"}) {
      models::ModelConfig cfg;
      cfg.num_classes = classes;
      cfg.width_mult = scale.width_for(model_name);
      auto model = models::make_model(model_name, cfg);

      // Baseline: plain ReLU.
      const double relu_ms = time_forward_ms(*model, reps);
      const double relu_mb =
          static_cast<double>(quant::ParamImage(*model).byte_count()) /
          (1024.0 * 1024.0);

      // FitAct: per-neuron FitReLU (bounds seeded via a short profile).
      data::SyntheticCifarConfig dcfg;
      dcfg.num_classes = classes;
      dcfg.size = 32;
      const data::SyntheticCifar ds(dcfg);
      core::ProfileConfig pc;
      pc.max_samples = 32;
      core::profile_bounds(*model, ds, pc);
      core::apply_protection(*model, core::Scheme::fitrelu);
      const double fit_ms = time_forward_ms(*model, reps);
      const double fit_mb =
          static_cast<double>(quant::ParamImage(*model).byte_count()) /
          (1024.0 * 1024.0);

      const double rt_oh = (fit_ms / relu_ms - 1.0) * 100.0;
      const double mem_oh = (fit_mb / relu_mb - 1.0) * 100.0;
      table.row({model_name, ut::TextTable::fixed(relu_ms, 3),
                 ut::TextTable::fixed(fit_ms, 3),
                 ut::TextTable::fixed(rt_oh, 2) + "%",
                 ut::TextTable::fixed(relu_mb, 2),
                 ut::TextTable::fixed(fit_mb, 2),
                 ut::TextTable::fixed(mem_oh, 2) + "%"});
      csv.row({"CIFAR-" + std::to_string(classes), model_name,
               ut::CsvWriter::num(relu_ms), ut::CsvWriter::num(fit_ms),
               ut::CsvWriter::num(rt_oh), ut::CsvWriter::num(relu_mb),
               ut::CsvWriter::num(fit_mb), ut::CsvWriter::num(mem_oh)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper reference (full width): runtime overhead 4.5-11.1%%, memory\n"
      "overhead 0.6-5.4%% — small because convolutions dominate both\n"
      "compute and storage.\nCSV: %s\n",
      csv.path().c_str());
  return 0;
}
