// Reproduces paper Fig. 5: the *distribution* of model accuracy under fault
// injection (box plots in the paper; five-number summaries here) for FitAct,
// Clip-Act, Ranger, and the unprotected model — VGG16 on CIFAR-10 across the
// paper's fault-rate grid {1e-7, 1e-6, 3e-6, 1e-5, 3e-5}.
//
// The bit error rate fixes the fraction of corrupted parameters, which is
// scale-invariant, so the paper's rates are injected unmodified even at
// reduced model width. --rate-scale multiplies them for sensitivity studies
// (e.g. pass the full_scale_rate_factor to emulate equal absolute flip
// counts instead; see DESIGN.md).
//
// Usage: fig5_accuracy_distribution [--trials N] [--threads T] [--rate-scale S]
//                                   [--train-size N] [--test-size N]
//                                   [--epochs N] [--eval-samples N]
//                                   [--full] [--csv P]
// --threads T fans each campaign's trials out over T worker lanes (0 = one
// per hardware thread); results are bit-identical to the serial run. The
// size knobs shrink the run below the scaled defaults — the CI bench-smoke
// job uses them to exercise the whole pipeline in seconds.
#include <cstdio>
#include <string>
#include <vector>

#include "eval/campaign_cli.h"
#include "eval/experiment.h"
#include "eval/stats.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  const ev::ExperimentScale scale = ev::scale_from_cli(cli);
  ut::set_log_level(ut::LogLevel::warn);

  ev::PreparedModel pm = ev::prepare_model("vgg16", 10, scale, "fitact_cache");
  const double rate_factor = cli.get_double("rate-scale", 1.0);
  const std::string lanes =
      scale.campaign_threads == 0 ? "auto"
                                  : std::to_string(scale.campaign_threads);
  std::printf("Fig. 5 reproduction: accuracy distribution, VGG16 / CIFAR-10\n"
              "baseline %.2f%%, %lld trials per cell, rate scale %.1fx, "
              "%s campaign lanes\n\n",
              pm.baseline_accuracy * 100.0,
              static_cast<long long>(scale.trials), rate_factor,
              lanes.c_str());

  ut::CsvWriter csv(cli.get("csv", "fig5_accuracy_distribution.csv"),
                    {"scheme", "fault_rate", "mean", "min", "q1", "median",
                     "q3", "max"});

  const std::vector<core::Scheme> schemes = {
      core::Scheme::fitrelu, core::Scheme::clip_act, core::Scheme::ranger,
      core::Scheme::relu};
  // One session for the whole grid: worker-lane replicas are built once and
  // re-synced when protect_model changes the source, instead of being
  // rebuilt for all 20 (scheme, rate) campaigns.
  ev::CampaignSession session(pm, scale);
  for (const auto scheme : schemes) {
    const ev::ProtectReport rep = ev::protect_model(pm, scheme, scale);
    std::printf("%s (clean accuracy with protection: %.2f%%)\n",
                ev::paper_label(scheme).c_str(), rep.clean_accuracy * 100.0);
    ut::TextTable table(
        {"fault rate", "mean", "min", "q1", "median", "q3", "max"});
    for (const double paper_rate : ev::paper_fault_rates()) {
      const auto result = session.run(paper_rate * rate_factor, 555);
      const ev::Summary s = ev::summarize(result.accuracies);
      table.row({ut::TextTable::sci(paper_rate),
                 ut::TextTable::percent(s.mean), ut::TextTable::percent(s.min),
                 ut::TextTable::percent(s.q1),
                 ut::TextTable::percent(s.median),
                 ut::TextTable::percent(s.q3),
                 ut::TextTable::percent(s.max)});
      csv.row({ev::paper_label(scheme), ut::CsvWriter::num(paper_rate),
               ut::CsvWriter::num(s.mean), ut::CsvWriter::num(s.min),
               ut::CsvWriter::num(s.q1), ut::CsvWriter::num(s.median),
               ut::CsvWriter::num(s.q3), ut::CsvWriter::num(s.max)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (cf. paper Fig. 5): FitAct holds accuracy through\n"
      "1e-5; Clip-Act degrades beyond 1e-6; Ranger collapses earliest; the\n"
      "unprotected model drops to chance at every rate shown.\nCSV: %s\n",
      csv.path().c_str());
  return 0;
}
