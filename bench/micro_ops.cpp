// google-benchmark micro suite for the compute substrate: GEMM, conv2d
// forward, the activation-function family (the per-element cost behind
// Table I's runtime overhead), the fixed-point codec, and fault injection.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "core/activation.h"
#include "core/protection.h"
#include "models/registry.h"
#include "quant/fixed_point.h"
#include "quant/param_image.h"
#include "fault/injector.h"
#include "nn/layers.h"
#include "nn/plan.h"
#include "tensor/gemm.h"
#include "tensor/kernels/kernels.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using namespace fitact;

// The dispatched-vs-scalar pairs below (BM_Sgemm / BM_SgemmScalar, the
// activation family / BM_ActivationClipActScalar, BM_ModelForwardPlanned /
// BM_ModelForwardPlannedScalar) are the kernel-dispatch A/B: the unsuffixed
// form runs whatever backend the process resolved (AVX2 where supported),
// the Scalar form pins the portable backend for the duration of the
// benchmark. On a host without AVX2 the pairs coincide.

void sgemm_bench(benchmark::State& state) {
  const auto n = state.range(0);
  ut::Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c = Tensor::zeros(Shape{n, n});
  for (auto _ : state) {
    sgemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
          c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

void BM_Sgemm(benchmark::State& state) { sgemm_bench(state); }
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_SgemmScalar(benchmark::State& state) {
  const kern::BackendGuard guard(kern::Backend::scalar);
  sgemm_bench(state);
}
BENCHMARK(BM_SgemmScalar)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const auto ch = state.range(0);
  ut::Rng rng(2);
  const Variable x(Tensor::randn(Shape{1, ch, 32, 32}, rng), false);
  const Variable w(Tensor::randn(Shape{ch, ch, 3, 3}, rng), false);
  const NoGradGuard no_grad;
  for (auto _ : state) {
    const Variable y = ag::conv2d(x, w, Variable(), 1, 1);
    benchmark::DoNotOptimize(y.value().data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void activation_bench(benchmark::State& state, core::Scheme scheme) {
  constexpr std::int64_t kFeat = 16 * 16 * 16;
  ut::Rng rng(3);
  core::ActivationConfig cfg;
  cfg.scheme = scheme;
  cfg.granularity = core::Granularity::per_neuron;
  core::BoundedActivation act(cfg);
  const Variable x(
      Tensor::rand_uniform(Shape{4, 16, 16, 16}, rng, -1.0f, 3.0f), false);
  if (scheme != core::Scheme::relu) {
    act.set_profiling(true);
    act.forward(x);
    act.set_profiling(false);
    act.init_bounds_from_profile();
  }
  const NoGradGuard no_grad;
  for (auto _ : state) {
    const Variable y = act.forward(x);
    benchmark::DoNotOptimize(y.value().data());
  }
  state.SetItemsProcessed(state.iterations() * 4 * kFeat);
}

void BM_ActivationRelu(benchmark::State& state) {
  activation_bench(state, core::Scheme::relu);
}
void BM_ActivationClipAct(benchmark::State& state) {
  activation_bench(state, core::Scheme::clip_act);
}
void BM_ActivationRanger(benchmark::State& state) {
  activation_bench(state, core::Scheme::ranger);
}
void BM_ActivationFitReluNaive(benchmark::State& state) {
  activation_bench(state, core::Scheme::fitrelu_naive);
}
void BM_ActivationFitRelu(benchmark::State& state) {
  activation_bench(state, core::Scheme::fitrelu);
}
void BM_ActivationClipActScalar(benchmark::State& state) {
  const kern::BackendGuard guard(kern::Backend::scalar);
  activation_bench(state, core::Scheme::clip_act);
}
BENCHMARK(BM_ActivationRelu);
BENCHMARK(BM_ActivationClipAct);
BENCHMARK(BM_ActivationClipActScalar);
BENCHMARK(BM_ActivationRanger);
BENCHMARK(BM_ActivationFitReluNaive);
BENCHMARK(BM_ActivationFitRelu);

// Whole-model inference A/B: the eager forward (fresh tensors per op, graph
// bookkeeping) vs the recorded plan (pre-planned arena, zero steady-state
// allocations) on the same protected tinycnn — the per-forward cost the
// serving lanes pay on each micro-batch. Arg = batch size.
std::shared_ptr<nn::Module> protected_tinycnn() {
  models::ModelConfig cfg;
  cfg.num_classes = 10;
  cfg.seed = 7;
  auto model = models::make_tinycnn(cfg);
  model->set_training(false);
  const auto sites = core::collect_activations(*model);
  for (const auto& site : sites) site->set_profiling(true);
  ut::Rng rng(8);
  const NoGradGuard no_grad;
  (void)model->forward(Variable(Tensor::randn(Shape{2, 3, 32, 32}, rng),
                                false));
  for (const auto& site : sites) site->set_profiling(false);
  core::apply_protection(*model, core::Scheme::clip_act);
  return model;
}

void BM_ModelForwardEager(benchmark::State& state) {
  const auto batch = state.range(0);
  const auto model = protected_tinycnn();
  ut::Rng rng(9);
  const Variable x(Tensor::randn(Shape{batch, 3, 32, 32}, rng), false);
  const NoGradGuard no_grad;
  for (auto _ : state) {
    const Variable y = model->forward(x);
    benchmark::DoNotOptimize(y.value().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ModelForwardEager)->Arg(1)->Arg(8);

void planned_forward_bench(benchmark::State& state, bool fuse) {
  const auto batch = state.range(0);
  const auto model = protected_tinycnn();
  const auto plan =
      nn::InferencePlan::compile(model, Shape{3, 32, 32}, 8, fuse);
  ut::Rng rng(9);
  const Tensor x = Tensor::randn(Shape{batch, 3, 32, 32}, rng);
  std::memcpy(plan->input_view(batch).data(), x.data(),
              sizeof(float) * static_cast<std::size_t>(x.numel()));
  for (auto _ : state) {
    const Tensor& y = plan->execute(batch);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

// Planned / Fused is the fusion A/B (same plan machinery, fusion pass off
// vs on); Planned / PlannedScalar stays the kernel-dispatch A/B.
void BM_ModelForwardPlanned(benchmark::State& state) {
  planned_forward_bench(state, /*fuse=*/false);
}
BENCHMARK(BM_ModelForwardPlanned)->Arg(1)->Arg(8);

void BM_ModelForwardPlannedScalar(benchmark::State& state) {
  const kern::BackendGuard guard(kern::Backend::scalar);
  planned_forward_bench(state, /*fuse=*/false);
}
BENCHMARK(BM_ModelForwardPlannedScalar)->Arg(1)->Arg(8);

void BM_ModelForwardFused(benchmark::State& state) {
  planned_forward_bench(state, /*fuse=*/true);
}
BENCHMARK(BM_ModelForwardFused)->Arg(1)->Arg(8);

void BM_FixedPointEncode(benchmark::State& state) {
  ut::Rng rng(4);
  std::vector<float> src(65536);
  for (auto& v : src) v = rng.uniform(-100.0f, 100.0f);
  std::vector<std::int32_t> dst(src.size());
  for (auto _ : state) {
    quant::encode_span(src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_FixedPointEncode);

void BM_FixedPointDecode(benchmark::State& state) {
  ut::Rng rng(5);
  std::vector<std::int32_t> src(65536);
  for (auto& v : src) v = static_cast<std::int32_t>(rng.next_u64());
  std::vector<float> dst(src.size());
  for (auto _ : state) {
    quant::decode_span(src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_FixedPointDecode);

void BM_FaultInjection(benchmark::State& state) {
  ut::Rng rng(6);
  nn::Sequential net;
  net.add(std::make_shared<nn::Linear>(512, 512, true, rng));
  quant::ParamImage image(net);
  fault::Injector injector(image);
  ut::Rng fault_rng(7);
  for (auto _ : state) {
    injector.inject(1e-5, fault_rng);
    injector.restore();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(image.word_count()));
}
BENCHMARK(BM_FaultInjection);

}  // namespace
