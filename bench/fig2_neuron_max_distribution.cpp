// Reproduces paper Fig. 2: the distribution (density histogram) of the
// per-neuron maximum output values across VGG16's second layer on the
// training set — the observation that motivates neuron-wise bounds: maxima
// vary widely, so no single layer bound fits all neurons.
//
// Usage: fig2_neuron_max_distribution [--bins 40] [--full] [--csv P]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/activation.h"
#include "core/bound_profiler.h"
#include "eval/experiment.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  ev::ExperimentScale scale = cli.get_flag("full")
                                  ? ev::ExperimentScale::full()
                                  : ev::ExperimentScale::scaled();
  const std::int64_t bins = cli.get_int("bins", 40);
  ut::set_log_level(ut::LogLevel::warn);

  ev::PreparedModel pm = ev::prepare_model("vgg16", 10, scale, "fitact_cache");
  core::ProfileConfig pc;
  pc.max_samples = scale.profile_samples;
  core::profile_bounds(*pm.model, *pm.train, pc);

  const auto activations = core::collect_activations(*pm.model);
  const auto& site = activations.at(1);  // second conv layer's activation
  const Tensor& maxima = site->profile_max();

  float hi = 0.0f;
  for (const float v : maxima.span()) hi = std::max(hi, v);
  if (hi <= 0.0f) hi = 1.0f;
  const float width = hi / static_cast<float>(bins);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(bins), 0);
  for (const float v : maxima.span()) {
    auto b = static_cast<std::int64_t>(v / width);
    b = std::clamp<std::int64_t>(b, 0, bins - 1);
    ++counts[static_cast<std::size_t>(b)];
  }
  const auto total = static_cast<double>(maxima.numel());

  std::printf("Fig. 2 reproduction: per-neuron maximum output values, VGG16 "
              "layer 2 (%lld neurons)\n\n",
              static_cast<long long>(maxima.numel()));
  ut::CsvWriter csv(cli.get("csv", "fig2_neuron_max_distribution.csv"),
                    {"bin_low", "bin_high", "density"});
  ut::TextTable table({"max value bin", "density", "histogram"});
  std::int64_t peak = 1;
  for (const auto c : counts) peak = std::max(peak, c);
  for (std::int64_t b = 0; b < bins; ++b) {
    const double lo = b * width;
    const double high = (b + 1) * width;
    const double density =
        static_cast<double>(counts[static_cast<std::size_t>(b)]) /
        (total * width);
    csv.row_values({lo, high, density});
    const auto bar_len = static_cast<std::size_t>(
        48.0 * static_cast<double>(counts[static_cast<std::size_t>(b)]) /
        static_cast<double>(peak));
    table.row({ut::TextTable::fixed(lo, 2) + "-" +
                   ut::TextTable::fixed(high, 2),
               ut::TextTable::fixed(density, 4), std::string(bar_len, '#')});
  }
  table.print();

  // Spread statistics: the paper's point is that maxima differ wildly.
  float mn = maxima[0];
  float mx = maxima[0];
  double mean = 0.0;
  for (const float v : maxima.span()) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    mean += v;
  }
  mean /= total;
  std::printf("\nper-neuron maxima: min %.3f, mean %.3f, max %.3f "
              "(max/min ratio %.1fx)\n",
              static_cast<double>(mn), mean, static_cast<double>(mx),
              mn > 0 ? static_cast<double>(mx / mn) : 0.0);
  std::printf("A single layer bound must sit at %.3f, over-admitting faulty\n"
              "values for the many neurons whose normal maximum is far "
              "lower.\nCSV: %s\n",
              static_cast<double>(mx), csv.path().c_str());
  return 0;
}
