// Ablation C: fault-model robustness. The paper evaluates uniform transient
// bit flips in parameter memory; this ablation re-runs the scheme
// comparison under the related fault classes its Sec. II cites:
//   - stuck-at-1 / stuck-at-0 (permanent cell defects),
//   - word bursts (multi-bit upsets),
//   - transient *activation* faults (soft errors in computed values —
//     Ranger's original fault class, injected at every activation site).
//
// The claim under test: FitAct's advantage is a property of tight
// neuron-wise bounds, not of the specific fault model.
//
// Usage: ablation_fault_models [--model tinycnn] [--rate 3e-5] [--trials N]
//                              [--threads T]
// --threads T fans each parameter-fault campaign out over T worker lanes
// (0 = one per hardware thread); results are bit-identical to the serial
// run. The activation-fault sweep stays serial (it mutates the shared
// model's activation sites in place).
#include <cstdio>
#include <string>
#include <vector>

#include "core/activation.h"
#include "eval/campaign_cli.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "fault/campaign.h"
#include "fault/transient.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fitact;
  const ut::Cli cli(argc, argv);
  ev::CampaignCliDefaults defaults;
  defaults.train_size = 640;
  defaults.train_epochs = 12;
  defaults.trials = 10;
  defaults.allow_full = false;
  const ev::ExperimentScale scale = ev::scale_from_cli(cli, defaults);
  const std::string model_name = cli.get("model", "tinycnn");
  // Stress rate: high enough that the unprotected model collapses, so the
  // protections separate clearly at modest trial counts.
  const double rate = cli.get_double("rate", 1e-4);
  ut::set_log_level(ut::LogLevel::warn);

  ev::PreparedModel pm =
      ev::prepare_model(model_name, 10, scale, "fitact_cache");
  std::printf("Fault-model ablation on %s (baseline %.2f%%, rate %.0e, "
              "%lld trials)\n\n",
              model_name.c_str(), pm.baseline_accuracy * 100.0, rate,
              static_cast<long long>(scale.trials));

  const std::vector<core::Scheme> schemes = {
      core::Scheme::fitrelu, core::Scheme::clip_act, core::Scheme::ranger,
      core::Scheme::relu};
  struct ParamFaultCase {
    const char* label;
    fault::FaultModel model;
  };
  std::vector<ParamFaultCase> cases;
  {
    fault::FaultModel m;
    m.type = fault::FaultType::bit_flip;
    cases.push_back({"bit flips (paper)", m});
    m.type = fault::FaultType::stuck_at_one;
    cases.push_back({"stuck-at-1", m});
    m.type = fault::FaultType::stuck_at_zero;
    cases.push_back({"stuck-at-0", m});
    m.type = fault::FaultType::word_burst;
    m.burst_length = 4;
    cases.push_back({"4-bit bursts", m});
    m = fault::FaultModel{};
    m.bit_lo = 24;
    m.bit_hi = 31;
    cases.push_back({"high-bit flips only", m});
  }

  ut::CsvWriter csv(cli.get("csv", "ablation_fault_models.csv"),
                    {"fault_model", "scheme", "mean_accuracy"});
  ut::TextTable table({"fault model", "FitAct", "Clip-Act", "Ranger",
                       "Unprotected"});
  ev::EvalConfig ec;
  ec.max_samples = scale.eval_samples;

  // One session across all 20 (fault model, scheme) parameter-fault
  // campaigns; protect_model re-syncs the cached lanes between cells.
  ev::CampaignSession session(pm, scale);
  for (const auto& fc : cases) {
    std::vector<std::string> row{fc.label};
    for (const auto scheme : schemes) {
      ev::protect_model(pm, scheme, scale);
      fault::CampaignConfig cc;
      cc.bit_error_rate = rate;
      cc.trials = scale.trials;
      cc.seed = 31337;
      cc.threads = scale.campaign_threads;
      cc.fault_model = fc.model;
      const auto result = session.run(cc);
      row.push_back(ut::TextTable::percent(result.mean_accuracy));
      csv.row({fc.label, ev::paper_label(scheme),
               ut::CsvWriter::num(result.mean_accuracy)});
    }
    table.row(std::move(row));
  }

  // Transient activation faults: no parameter corruption; instead every
  // activation site corrupts its pre-activation input.
  {
    std::vector<std::string> row{"activation faults"};
    const double act_rate = cli.get_double("act-rate", 1e-6);
    for (const auto scheme : schemes) {
      ev::protect_model(pm, scheme, scale);
      double sum = 0.0;
      for (std::int64_t t = 0; t < scale.trials; ++t) {
        const auto sites = core::collect_activations(*pm.model);
        for (std::size_t s = 0; s < sites.size(); ++s) {
          sites[s]->set_input_corruptor(fault::make_bitflip_corruptor(
              act_rate, 555 + t * 100 + static_cast<std::uint64_t>(s)));
        }
        sum += ev::evaluate_accuracy(*pm.model, *pm.test, ec);
        for (const auto& site : sites) site->clear_input_corruptor();
      }
      const double mean = sum / static_cast<double>(scale.trials);
      row.push_back(ut::TextTable::percent(mean));
      csv.row({"activation faults", ev::paper_label(scheme),
               ut::CsvWriter::num(mean)});
    }
    table.row(std::move(row));
  }

  table.print();
  std::printf(
      "\nExpected: the scheme ordering (FitAct >= Clip-Act >= Ranger >>\n"
      "Unprotected) is stable across fault classes; stuck-at-0 is the\n"
      "mildest (it can only shrink magnitudes), high-bit-only flips the\n"
      "harshest for the unprotected model.\nCSV: %s\n",
      csv.path().c_str());
  return 0;
}
