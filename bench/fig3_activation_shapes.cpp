// Reproduces paper Fig. 3: the shapes of the four activation functions —
// original ReLU, GBReLU (Clip-Act), FitReLU-Naive, and trainable FitReLU.
// Prints sample points and writes fig3_activation_shapes.csv with dense
// curves for plotting.
//
// Usage: fig3_activation_shapes [--lambda 4.0] [--k 8] [--csv path]
#include <cstdio>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace fitact;

float eval_scheme(const char* name, float x, float lambda, float k) {
  Variable vx(Tensor::full(Shape{1, 1}, x), false);
  const std::string scheme = name;
  if (scheme == "relu") {
    return ag::relu(vx).value()[0];
  }
  const Tensor bound = Tensor::scalar(lambda);
  if (scheme == "gbrelu") {
    return ag::clipped_relu(vx, bound, ag::ClipMode::zero_above).value()[0];
  }
  if (scheme == "fitrelu_naive") {
    return ag::clipped_relu(vx, bound, ag::ClipMode::zero_above).value()[0];
  }
  Variable vl(Tensor::scalar(lambda), false);
  return ag::fitrelu(vx, vl, k).value()[0];
}

}  // namespace

int main(int argc, char** argv) {
  const ut::Cli cli(argc, argv);
  const float lambda = static_cast<float>(cli.get_double("lambda", 4.0));
  const float k = static_cast<float>(cli.get_double("k", 8.0));
  const std::string csv_path =
      cli.get("csv", "fig3_activation_shapes.csv");

  std::printf(
      "Fig. 3 reproduction: activation function shapes (lambda=%.2f, "
      "k=%.1f)\n\n",
      static_cast<double>(lambda), static_cast<double>(k));

  ut::CsvWriter csv(csv_path, {"x", "relu", "gbrelu", "fitrelu_naive",
                               "fitrelu"});
  for (int i = 0; i <= 600; ++i) {
    const float x = -5.0f + 15.0f * static_cast<float>(i) / 600.0f;
    csv.row_values({x, eval_scheme("relu", x, lambda, k),
                    eval_scheme("gbrelu", x, lambda, k),
                    eval_scheme("fitrelu_naive", x, lambda, k),
                    eval_scheme("fitrelu", x, lambda, k)});
  }

  ut::TextTable table({"x", "ReLU", "GBReLU", "FitReLU-Naive", "FitReLU"});
  for (const float x : {-5.0f, -1.0f, 0.0f, 1.0f, 2.0f, lambda - 0.5f, lambda,
                        lambda + 0.5f, lambda + 2.0f, 10.0f}) {
    table.row({ut::TextTable::fixed(x, 2),
               ut::TextTable::fixed(eval_scheme("relu", x, lambda, k), 3),
               ut::TextTable::fixed(eval_scheme("gbrelu", x, lambda, k), 3),
               ut::TextTable::fixed(eval_scheme("fitrelu_naive", x, lambda, k),
                                    3),
               ut::TextTable::fixed(eval_scheme("fitrelu", x, lambda, k), 3)});
  }
  table.print();
  std::printf("\nKey properties shown (cf. paper Fig. 3):\n");
  std::printf("  - ReLU is unbounded above.\n");
  std::printf("  - GBReLU / FitReLU-Naive squash values above lambda to 0.\n");
  std::printf(
      "  - FitReLU smoothly interpolates (value lambda/2 at x = lambda),\n"
      "    making the bound trainable by gradient descent.\n");
  std::printf("Curves written to %s\n", csv.path().c_str());
  return 0;
}
