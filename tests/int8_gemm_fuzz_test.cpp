// Int8 kernel fuzz sweep (the quantized-path analogue of gemm_fuzz_test).
//
// The int8 contract is stronger than fp32 GEMM's error bound: every entry
// point — GEMM, quantize, the dequantize epilogues — must be bit-identical
// across the scalar and AVX2 backends (kernels.h, int8 section). So where
// gemm_fuzz_test compares to a forward-error bound, this suite compares
// with EXPECT_EQ / memcmp: int32 accumulators against an int64 naive
// reference (which also proves no int32 overflow), quantized bytes and
// epilogue float bit patterns scalar-vs-AVX2. The dequantization *accuracy*
// test bounds the int8 path against a double-precision fp reference by the
// per-channel scales, mirroring the quantization error analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "quant/int8.h"
#include "tensor/kernels/kernels.h"
#include "util/rng.h"

namespace fitact {
namespace {

std::vector<kern::Backend> backends_under_test() {
  return {kern::Backend::scalar,
          kern::avx2_supported() ? kern::Backend::avx2 : kern::Backend::scalar};
}

struct GemmCase {
  std::int64_t m = 1, n = 1, k = 1;
  std::int64_t pad_a = 0, pad_b = 0, pad_c = 0;  ///< leading-dim slack
};

std::string describe(const GemmCase& c) {
  return "m=" + std::to_string(c.m) + " n=" + std::to_string(c.n) +
         " k=" + std::to_string(c.k) + " pads=" + std::to_string(c.pad_a) +
         "/" + std::to_string(c.pad_b) + "/" + std::to_string(c.pad_c);
}

/// Runs one shape under every backend against an int64 naive reference.
/// Values span the full int8 range including -128 (the value quantization
/// never emits but a fault bit flip can).
void run_gemm_case(const GemmCase& c, ut::Rng& rng, const std::string& ctx) {
  const std::int64_t lda = c.k + c.pad_a;
  const std::int64_t ldb = c.k + c.pad_b;
  const std::int64_t ldc = c.n + c.pad_c;
  std::vector<std::int8_t> a(static_cast<std::size_t>(c.m * lda));
  std::vector<std::int8_t> b(static_cast<std::size_t>(c.n * ldb));
  for (auto& v : a) v = static_cast<std::int8_t>(rng.next_int(-128, 127));
  for (auto& v : b) v = static_cast<std::int8_t>(rng.next_int(-128, 127));

  std::vector<std::int64_t> ref(static_cast<std::size_t>(c.m * c.n), 0);
  for (std::int64_t i = 0; i < c.m; ++i) {
    for (std::int64_t j = 0; j < c.n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < c.k; ++p) {
        acc += static_cast<std::int64_t>(a[static_cast<std::size_t>(
                   i * lda + p)]) *
               static_cast<std::int64_t>(b[static_cast<std::size_t>(
                   j * ldb + p)]);
      }
      ref[static_cast<std::size_t>(i * c.n + j)] = acc;
    }
  }

  constexpr std::int32_t kSentinel = 0x5AFE1234;
  const auto check = [&](const std::int32_t* out, const std::string& who) {
    for (std::int64_t i = 0; i < c.m; ++i) {
      for (std::int64_t j = 0; j < c.n; ++j) {
        // int64 equality against the int32 result also proves the
        // accumulation never needed more than 32 bits for these shapes.
        EXPECT_EQ(static_cast<std::int64_t>(
                      out[static_cast<std::size_t>(i * ldc + j)]),
                  ref[static_cast<std::size_t>(i * c.n + j)])
            << ctx << " " << who << " element (" << i << ", " << j << ")";
      }
      for (std::int64_t j = c.n; j < ldc; ++j) {
        EXPECT_EQ(out[static_cast<std::size_t>(i * ldc + j)], kSentinel)
            << ctx << " " << who << " wrote into ldc slack at (" << i << ", "
            << j << ")";
      }
    }
  };
  for (const kern::Backend backend : backends_under_test()) {
    const kern::BackendGuard guard(backend);
    std::vector<std::int32_t> out(static_cast<std::size_t>(c.m * ldc),
                                  kSentinel);
    kern::gemm_i8_dot(c.m, c.n, c.k, a.data(), lda, b.data(), ldb, out.data(),
                      ldc);
    check(out.data(),
          std::string("backend ") + kern::backend_name(backend));
  }
  // The dispatcher binds one microkernel per backend (on a VNNI host the
  // avx2 tier upgrades its GEMM), so also run every variant this host can
  // execute directly — the plain avx2 kernel must stay bit-exact even where
  // dispatch bypasses it.
  const kern::GemmI8Variant* variants = nullptr;
  const std::size_t nv = kern::gemm_i8_variants(&variants);
  for (std::size_t v = 0; v < nv; ++v) {
    std::vector<std::int32_t> out(static_cast<std::size_t>(c.m * ldc),
                                  kSentinel);
    variants[v].fn(c.m, c.n, c.k, a.data(), lda, b.data(), ldb, out.data(),
                   ldc);
    check(out.data(), std::string("variant ") + variants[v].name);
  }
}

/// The u8xs8 companion sweep: one operand constrained to [0,127] (the
/// contract FitAct's clamp guarantees for quantized activations), the other
/// spanning the full int8 range including -128. Both a_unsigned orientations
/// run under the dispatched entry point per backend and under every variant
/// this host executes, against the same int64 naive reference — so every
/// u8xs8 kernel is pinned bit-identical to the signed scalar GEMM on the
/// same bytes.
void run_gemm_u8_case(const GemmCase& c, ut::Rng& rng, const std::string& ctx) {
  const std::int64_t lda = c.k + c.pad_a;
  const std::int64_t ldb = c.k + c.pad_b;
  const std::int64_t ldc = c.n + c.pad_c;
  for (const bool a_unsigned : {true, false}) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(c.m * lda));
    std::vector<std::int8_t> b(static_cast<std::size_t>(c.n * ldb));
    for (auto& v : a)
      v = static_cast<std::int8_t>(a_unsigned ? rng.next_int(0, 127)
                                              : rng.next_int(-128, 127));
    for (auto& v : b)
      v = static_cast<std::int8_t>(a_unsigned ? rng.next_int(-128, 127)
                                              : rng.next_int(0, 127));

    std::vector<std::int64_t> ref(static_cast<std::size_t>(c.m * c.n), 0);
    for (std::int64_t i = 0; i < c.m; ++i) {
      for (std::int64_t j = 0; j < c.n; ++j) {
        std::int64_t acc = 0;
        for (std::int64_t p = 0; p < c.k; ++p) {
          acc += static_cast<std::int64_t>(
                     a[static_cast<std::size_t>(i * lda + p)]) *
                 static_cast<std::int64_t>(
                     b[static_cast<std::size_t>(j * ldb + p)]);
        }
        ref[static_cast<std::size_t>(i * c.n + j)] = acc;
      }
    }

    constexpr std::int32_t kSentinel = 0x5AFE1234;
    const std::string orient = a_unsigned ? " a_unsigned" : " b_unsigned";
    const auto check = [&](const std::int32_t* out, const std::string& who) {
      for (std::int64_t i = 0; i < c.m; ++i) {
        for (std::int64_t j = 0; j < c.n; ++j) {
          EXPECT_EQ(static_cast<std::int64_t>(
                        out[static_cast<std::size_t>(i * ldc + j)]),
                    ref[static_cast<std::size_t>(i * c.n + j)])
              << ctx << orient << " " << who << " element (" << i << ", " << j
              << ")";
        }
        for (std::int64_t j = c.n; j < ldc; ++j) {
          EXPECT_EQ(out[static_cast<std::size_t>(i * ldc + j)], kSentinel)
              << ctx << orient << " " << who << " wrote into ldc slack at ("
              << i << ", " << j << ")";
        }
      }
    };
    for (const kern::Backend backend : backends_under_test()) {
      const kern::BackendGuard guard(backend);
      std::vector<std::int32_t> out(static_cast<std::size_t>(c.m * ldc),
                                    kSentinel);
      kern::gemm_i8u8_dot(c.m, c.n, c.k, a.data(), lda, b.data(), ldb,
                          out.data(), ldc, a_unsigned);
      check(out.data(), std::string("backend ") + kern::backend_name(backend));
    }
    const kern::GemmI8U8Variant* variants = nullptr;
    const std::size_t nv = kern::gemm_i8u8_variants(&variants);
    for (std::size_t v = 0; v < nv; ++v) {
      std::vector<std::int32_t> out(static_cast<std::size_t>(c.m * ldc),
                                    kSentinel);
      variants[v].fn(c.m, c.n, c.k, a.data(), lda, b.data(), ldb, out.data(),
                     ldc, a_unsigned);
      check(out.data(), std::string("variant ") + variants[v].name);
    }
  }
}

TEST(Int8GemmFuzz, PinnedBlockBoundaryShapes) {
  ut::Rng rng(20250801);
  // k pins straddle the 32-wide vector block; n pins straddle the AVX2
  // kernel's 4-column tile; m = 1 covers the linear single-row case.
  const std::vector<GemmCase> cases = {
      {1, 1, 1, 0, 0, 0},    {1, 1, 32, 0, 0, 0},   {1, 4, 31, 0, 0, 0},
      {1, 5, 33, 0, 0, 0},   {3, 3, 31, 1, 2, 3},   {4, 4, 32, 0, 0, 0},
      {5, 5, 33, 2, 1, 1},   {2, 16, 64, 0, 0, 0},  {7, 3, 65, 0, 3, 2},
      {8, 12, 96, 0, 0, 0},  {16, 17, 128, 1, 1, 1}, {9, 1, 160, 0, 0, 0},
      {1, 31, 320, 0, 0, 4},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    run_gemm_case(cases[i], rng,
                  "pinned case " + std::to_string(i) + " [" +
                      describe(cases[i]) + "]");
    run_gemm_u8_case(cases[i], rng,
                     "pinned u8 case " + std::to_string(i) + " [" +
                         describe(cases[i]) + "]");
  }
}

TEST(Int8GemmFuzz, RandomizedSweep) {
  ut::Rng rng(20250802);
  constexpr int kCases = 120;
  for (int t = 0; t < kCases; ++t) {
    GemmCase c;
    const auto dim = [&]() -> std::int64_t {
      switch (rng.next_below(3)) {
        case 0:
          return rng.next_int(1, 6);
        case 1:
          return rng.next_int(1, 40);
        default:
          return rng.next_int(24, 72);
      }
    };
    c.m = dim();
    c.n = dim();
    // Skew k toward the 32-block boundary region.
    c.k = rng.next_below(2) == 0 ? rng.next_int(1, 80)
                                 : 32 * rng.next_int(1, 4) + rng.next_int(-1, 1);
    c.pad_a = rng.next_int(0, 4);
    c.pad_b = rng.next_int(0, 4);
    c.pad_c = rng.next_int(0, 4);
    run_gemm_case(c, rng,
                  "random case " + std::to_string(t) + " [" + describe(c) +
                      "]");
    run_gemm_u8_case(c, rng,
                     "random u8 case " + std::to_string(t) + " [" +
                         describe(c) + "]");
  }
}

TEST(Int8GemmFuzz, QuantizeBitIdenticalAcrossBackends) {
  ut::Rng rng(20250803);
  for (const std::int64_t n : {1LL, 7LL, 31LL, 32LL, 33LL, 64LL, 257LL}) {
    std::vector<float> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = rng.normal() * 64.0f;
    if (n >= 7) {
      // Values only faults produce must still quantize identically.
      x[1] = std::nanf("");
      x[2] = HUGE_VALF;
      x[3] = -HUGE_VALF;
      x[4] = -0.0f;
      x[5] = 2.5f;   // round-to-nearest-even tie at the scale below
      x[6] = -2.5f;
    }
    const float inv_scale = 1.0f;
    std::vector<std::vector<std::int8_t>> results;
    for (const kern::Backend backend : backends_under_test()) {
      const kern::BackendGuard guard(backend);
      std::vector<std::int8_t> q(static_cast<std::size_t>(n), 99);
      kern::quantize_i8(x.data(), inv_scale, q.data(), n);
      results.push_back(std::move(q));
    }
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0], results[1]) << "n=" << n;
    // Reference semantics on the scalar result.
    for (std::int64_t i = 0; i < n; ++i) {
      const float r = x[static_cast<std::size_t>(i)] * inv_scale;
      const std::int8_t got = results[0][static_cast<std::size_t>(i)];
      if (std::isnan(r)) {
        EXPECT_EQ(got, 0) << "i=" << i;
      } else {
        const float clamped = std::fmin(127.0f, std::fmax(-127.0f, r));
        EXPECT_EQ(got, static_cast<std::int8_t>(std::lrintf(clamped)))
            << "i=" << i << " x=" << x[static_cast<std::size_t>(i)];
      }
      EXPECT_GE(got, -127) << "quantize must never emit -128";
    }
  }
}

/// All four fused epilogue variants plus the plain dequantize, scalar vs
/// AVX2: the written float bit patterns and the clamp-event counts must
/// match exactly (memcmp over the raw buffers).
TEST(Int8GemmFuzz, DequantEpiloguesBitIdenticalAcrossBackends) {
  ut::Rng rng(20250804);
  for (const std::int64_t n : {1LL, 5LL, 8LL, 9LL, 24LL, 100LL}) {
    for (const bool saturate : {false, true}) {
      for (const bool count : {false, true}) {
        std::vector<std::int32_t> acc0(static_cast<std::size_t>(n));
        std::vector<float> scale_row(static_cast<std::size_t>(n));
        std::vector<float> bias_row(static_cast<std::size_t>(n));
        std::vector<float> bound_row(static_cast<std::size_t>(n));
        for (auto& v : acc0) v = static_cast<std::int32_t>(
            rng.next_int(-4000000, 4000000));
        for (auto& v : scale_row)
          v = static_cast<float>(rng.next_double() * 2e-5);
        for (auto& v : bias_row) v = rng.normal() * 0.5f;
        for (auto& v : bound_row)
          v = static_cast<float>(rng.next_double() * 4.0);
        const float scale_c = 1.5e-5f;
        const float bias_c = 0.25f;
        const float bound_c = 2.0f;

        // variant id -> runs the kernel on `acc`, returns events.
        const auto run = [&](int variant, std::vector<std::int32_t>& acc)
            -> std::uint64_t {
          switch (variant) {
            case 0:
              kern::dequant_i32(acc.data(), scale_c, bias_c, n);
              return 0;
            case 1:
              return kern::fused_dequant_clip_cc(acc.data(), scale_c, bias_c,
                                                 bound_c, saturate, n, count);
            case 2:
              return kern::fused_dequant_clip_cr(acc.data(), scale_c, bias_c,
                                                 bound_row.data(), saturate, n,
                                                 count);
            case 3:
              return kern::fused_dequant_clip_rc(acc.data(), scale_row.data(),
                                                 bias_row.data(), bound_c,
                                                 saturate, n, count);
            case 4:  // null bias row == all-zero bias
              return kern::fused_dequant_clip_rc(acc.data(), scale_row.data(),
                                                 nullptr, bound_c, saturate, n,
                                                 count);
            default:
              return kern::fused_dequant_clip_rr(acc.data(), scale_row.data(),
                                                 bias_row.data(),
                                                 bound_row.data(), saturate, n,
                                                 count);
          }
        };
        for (int variant = 0; variant <= 5; ++variant) {
          std::vector<std::vector<std::int32_t>> outs;
          std::vector<std::uint64_t> events;
          for (const kern::Backend backend : backends_under_test()) {
            const kern::BackendGuard guard(backend);
            std::vector<std::int32_t> acc = acc0;
            events.push_back(run(variant, acc));
            outs.push_back(std::move(acc));
          }
          EXPECT_EQ(events[0], events[1])
              << "variant " << variant << " n=" << n << " sat=" << saturate
              << " count=" << count;
          EXPECT_EQ(std::memcmp(outs[0].data(), outs[1].data(),
                                static_cast<std::size_t>(n) * 4),
                    0)
              << "variant " << variant << " n=" << n << " sat=" << saturate
              << " count=" << count;
          if (count && variant > 0) {
            // The tally must equal the scalar recount of xi > bound.
            std::uint64_t want = 0;
            for (std::int64_t i = 0; i < n; ++i) {
              const std::size_t s = static_cast<std::size_t>(i);
              const float sc = variant <= 2 ? scale_c : scale_row[s];
              const float bi = variant <= 2 ? bias_c
                               : variant == 4 ? 0.0f
                                              : bias_row[s];
              const float bo =
                  (variant == 2 || variant == 5) ? bound_row[s] : bound_c;
              want += static_cast<float>(acc0[s]) * sc + bi > bo;
            }
            EXPECT_EQ(events[0], want) << "variant " << variant << " n=" << n;
          }
        }
      }
    }
  }
}

/// End-to-end dequantization accuracy: quantize weights per output channel
/// and activations with a bound-derived scale, run the int8 GEMM + combined
/// dequantize, and bound the error against a double-precision reference.
/// Per product, |w*x - sw*sx*qw*qx| <= |w|*sx/2 + |x|*sw/2 + sw*sx/4
/// (round-to-nearest on both quantizations), summed over k.
TEST(Int8GemmFuzz, DequantErrorBoundedByChannelScales) {
  ut::Rng rng(20250805);
  constexpr std::int64_t kRows = 17;
  constexpr std::int64_t kCols = 100;  // pads to 128
  const float range = 4.0f;            // activation bound
  std::vector<float> w(static_cast<std::size_t>(kRows * kCols));
  std::vector<float> x(static_cast<std::size_t>(kCols));
  for (auto& v : w) v = rng.normal() * 0.5f;
  for (auto& v : x)
    v = static_cast<float>(rng.next_double() * 2.0 - 1.0) * range;

  quant::Int8Weights qw = quant::quantize_weights_i8(w.data(), kRows, kCols);
  ASSERT_EQ(qw.cols_padded, 128);
  qw.set_act_scale(range / 127.0f);

  std::vector<std::int8_t> qx(static_cast<std::size_t>(qw.cols_padded), 0);
  kern::quantize_i8(x.data(), qw.inv_act_scale, qx.data(), kCols);

  std::vector<std::int32_t> acc(static_cast<std::size_t>(kRows), 0);
  kern::gemm_i8_dot(kRows, 1, qw.cols_padded, qw.q.data(), qw.cols_padded,
                    qx.data(), qw.cols_padded, acc.data(), 1);

  const float sx = qw.act_scale;
  for (std::int64_t r = 0; r < kRows; ++r) {
    const float sw = qw.scales[static_cast<std::size_t>(r)];
    double ref = 0.0;
    double bound = 1e-6;
    for (std::int64_t cidx = 0; cidx < kCols; ++cidx) {
      const double wv = w[static_cast<std::size_t>(r * kCols + cidx)];
      const double xv = x[static_cast<std::size_t>(cidx)];
      ref += wv * xv;
      bound += std::abs(wv) * sx / 2.0 + std::abs(xv) * sw / 2.0 +
               static_cast<double>(sw) * sx / 4.0;
    }
    const float got = static_cast<float>(acc[static_cast<std::size_t>(r)]) *
                      qw.combined[static_cast<std::size_t>(r)];
    EXPECT_LE(std::abs(static_cast<double>(got) - ref), bound + 1e-4 *
                                                            std::abs(ref))
        << "row " << r;
  }

  // Round-trip invariants of the weight quantizer itself.
  for (std::int64_t r = 0; r < kRows; ++r) {
    const float sw = qw.scales[static_cast<std::size_t>(r)];
    for (std::int64_t cidx = 0; cidx < kCols; ++cidx) {
      const std::int8_t qv =
          qw.q[static_cast<std::size_t>(r * qw.cols_padded + cidx)];
      EXPECT_GE(qv, -127);
      EXPECT_LE(std::fabs(sw * static_cast<float>(qv) -
                          w[static_cast<std::size_t>(r * kCols + cidx)]),
                sw * 0.5f + 1e-7f)
          << "(" << r << ", " << cidx << ")";
    }
    for (std::int64_t cidx = kCols; cidx < qw.cols_padded; ++cidx) {
      EXPECT_EQ(qw.q[static_cast<std::size_t>(r * qw.cols_padded + cidx)], 0)
          << "padding must stay zero";
    }
  }
}

/// Scrub contract: corrupting live bytes then restore() gives back the
/// pristine image.
TEST(Int8GemmFuzz, RestoreRecoversCleanImage) {
  ut::Rng rng(20250806);
  std::vector<float> w(static_cast<std::size_t>(6 * 40));
  for (auto& v : w) v = rng.normal();
  quant::Int8Weights qw = quant::quantize_weights_i8(w.data(), 6, 40);
  const std::vector<std::int8_t> clean = qw.q;
  for (int i = 0; i < 10; ++i) {
    qw.q[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(qw.q.size())))] ^= 0x40;
  }
  qw.q[0] = -128;  // the fault-only value
  EXPECT_NE(qw.q, clean);
  qw.restore();
  EXPECT_EQ(qw.q, clean);
}

}  // namespace
}  // namespace fitact
