// Property tests for the protection machinery as a whole — invariants the
// paper's method depends on, checked at model level:
//
//   P1. Clip-Act/Ranger protection with margin 1.0 is a no-op on the data
//       it was profiled on (every activation is <= its recorded max), so
//       clean predictions are bit-identical.
//   P2. Bounded outputs never exceed the bound under adversarially large
//       inputs, for every scheme and granularity.
//   P3. A single injected bit flip changes exactly one parameter, by
//       exactly +/- 2^(bit-16) (up to encode saturation).
//   P4. Protection + injection + restore leaves the model bit-identical to
//       its quantised clean state (no state leaks across campaigns).
//   P5. Per-neuron bounds are pointwise <= per-channel <= per-layer bounds
//       derived from the same profile.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/variable.h"
#include "core/bound_profiler.h"
#include "core/protection.h"
#include "data/synthetic_cifar.h"
#include "fault/injector.h"
#include "models/registry.h"
#include "nn/layers.h"
#include "quant/fixed_point.h"
#include "quant/param_image.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace fitact {
namespace {

struct ProtectedModel {
  std::shared_ptr<nn::Module> model;
  data::SyntheticCifar data;

  static ProtectedModel make() {
    models::ModelConfig mc;
    mc.width_mult = 0.25f;
    mc.num_classes = 10;
    data::SyntheticCifarConfig dc;
    dc.size = 64;
    ProtectedModel pm{models::make_model("tinycnn", mc),
                      data::SyntheticCifar(dc)};
    core::ProfileConfig pc;
    pc.max_samples = 64;
    core::profile_bounds(*pm.model, pm.data, pc);
    return pm;
  }

  Tensor logits(std::int64_t begin, std::int64_t count) {
    const NoGradGuard no_grad;
    model->set_training(false);
    Tensor batch = data.batch(begin, count, nullptr);
    return model->forward(Variable(std::move(batch))).value().clone();
  }
};

TEST(ProtectionProperty, P1_ClipActIsNoopOnProfiledData) {
  ProtectedModel pm = ProtectedModel::make();
  core::apply_protection(*pm.model, core::Scheme::relu);
  const Tensor before = pm.logits(0, 32);
  core::apply_protection(*pm.model, core::Scheme::clip_act);
  const Tensor after = pm.logits(0, 32);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    ASSERT_EQ(before[i], after[i]) << "clip_act altered profiled data at "
                                   << i;
  }
}

TEST(ProtectionProperty, P1_RangerIsNoopOnProfiledData) {
  ProtectedModel pm = ProtectedModel::make();
  core::apply_protection(*pm.model, core::Scheme::relu);
  const Tensor before = pm.logits(0, 32);
  core::apply_protection(*pm.model, core::Scheme::ranger);
  const Tensor after = pm.logits(0, 32);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    ASSERT_EQ(before[i], after[i]);
  }
}

TEST(ProtectionProperty, P1_FitReluNaiveIsNoopOnProfiledData) {
  // Per-neuron bounds equal each neuron's profiled max, and Eq. 5 passes
  // x <= lambda unchanged, so profiled activations survive exactly.
  ProtectedModel pm = ProtectedModel::make();
  core::apply_protection(*pm.model, core::Scheme::relu);
  const Tensor before = pm.logits(0, 32);
  core::apply_protection(*pm.model, core::Scheme::fitrelu_naive);
  const Tensor after = pm.logits(0, 32);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    ASSERT_EQ(before[i], after[i]);
  }
}

TEST(ProtectionProperty, P1_FitReluKeepsLogitsClose) {
  // The smooth gate perturbs values near the bound, so logits move, but
  // only by a bounded relative amount. (On this *untrained* model argmax
  // ties are common, so the invariant is on logit distance, not flips.)
  ProtectedModel pm = ProtectedModel::make();
  core::apply_protection(*pm.model, core::Scheme::relu);
  const Tensor before = pm.logits(0, 64);
  core::apply_protection(*pm.model, core::Scheme::fitrelu);
  const Tensor after = pm.logits(0, 64);
  double diff2 = 0.0;
  double norm2 = 0.0;
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    diff2 += static_cast<double>(after[i] - before[i]) *
             (after[i] - before[i]);
    norm2 += static_cast<double>(before[i]) * before[i];
  }
  EXPECT_LT(std::sqrt(diff2), 0.5 * std::sqrt(norm2))
      << "smooth FitReLU moved logits too far";
}

struct SchemeGranCase {
  core::Scheme scheme;
  core::Granularity gran;
};

class BoundedEverywhere : public ::testing::TestWithParam<SchemeGranCase> {};

TEST_P(BoundedEverywhere, P2_WildInputsStayBounded) {
  const auto [scheme, gran] = GetParam();
  core::ActivationConfig cfg;
  cfg.scheme = scheme;
  cfg.granularity = gran;
  cfg.k = 8.0f;
  core::BoundedActivation act(cfg);
  ut::Rng rng(31);
  act.set_profiling(true);
  act.forward(Variable(
      Tensor::rand_uniform(Shape{8, 4, 3, 3}, rng, 0.0f, 3.0f), false));
  act.set_profiling(false);
  act.init_bounds_from_profile();

  float bound_max = 0.0f;
  for (const float b : act.bounds().value().span()) {
    bound_max = std::max(bound_max, b);
  }
  const Variable y = act.forward(Variable(
      Tensor::rand_uniform(Shape{8, 4, 3, 3}, rng, -32768.0f, 32768.0f),
      false));
  for (const float v : y.value().span()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, bound_max + 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, BoundedEverywhere,
    ::testing::Values(
        SchemeGranCase{core::Scheme::clip_act, core::Granularity::per_layer},
        SchemeGranCase{core::Scheme::clip_act, core::Granularity::per_channel},
        SchemeGranCase{core::Scheme::clip_act, core::Granularity::per_neuron},
        SchemeGranCase{core::Scheme::ranger, core::Granularity::per_layer},
        SchemeGranCase{core::Scheme::ranger, core::Granularity::per_channel},
        SchemeGranCase{core::Scheme::ranger, core::Granularity::per_neuron},
        SchemeGranCase{core::Scheme::fitrelu_naive,
                       core::Granularity::per_neuron},
        SchemeGranCase{core::Scheme::fitrelu, core::Granularity::per_layer},
        SchemeGranCase{core::Scheme::fitrelu, core::Granularity::per_channel},
        SchemeGranCase{core::Scheme::fitrelu,
                       core::Granularity::per_neuron}));

TEST(ProtectionProperty, P3_SingleBitFlipChangesOneParamByPowerOfTwo) {
  ut::Rng rng(7);
  nn::Linear lin(16, 8, true, rng);
  quant::ParamImage img(lin);
  img.restore();  // quantised clean state
  std::vector<float> clean;
  for (auto& p : lin.named_parameters()) {
    for (const float v : p.var.value().span()) clean.push_back(v);
  }
  // Flip a specific known bit: word 5, bit 20 (integer bit 4 -> delta 16.0).
  auto words = img.clean_words();
  words[5] = quant::flip_bit(words[5], 20);
  img.write_back(words);
  std::size_t changed = 0;
  std::size_t changed_at = 0;
  std::size_t i = 0;
  for (auto& p : lin.named_parameters()) {
    for (const float v : p.var.value().span()) {
      if (v != clean[i]) {
        ++changed;
        changed_at = i;
      }
      ++i;
    }
  }
  ASSERT_EQ(changed, 1u);
  EXPECT_EQ(changed_at, 5u);
  float delta = 0.0f;
  {
    std::size_t j = 0;
    for (auto& p : lin.named_parameters()) {
      for (const float v : p.var.value().span()) {
        if (j == changed_at) delta = v - clean[j];
        ++j;
      }
    }
  }
  EXPECT_NEAR(std::abs(delta), 16.0f, 1e-4f);  // 2^(20-16)
  img.restore();
}

TEST(ProtectionProperty, P4_CampaignLeavesNoResidue) {
  ProtectedModel pm = ProtectedModel::make();
  core::apply_protection(*pm.model, core::Scheme::fitrelu);
  quant::ParamImage img(*pm.model);
  img.restore();
  const Tensor logits_before = pm.logits(0, 16);

  fault::Injector inj(img);
  ut::Rng rng(17);
  for (int t = 0; t < 5; ++t) {
    inj.inject(1e-3, rng);
    inj.restore();
  }
  const Tensor logits_after = pm.logits(0, 16);
  for (std::int64_t i = 0; i < logits_before.numel(); ++i) {
    ASSERT_EQ(logits_before[i], logits_after[i]);
  }
}

TEST(ProtectionProperty, P5_GranularityBoundsNest) {
  core::ActivationConfig cfg;
  core::BoundedActivation act(cfg);
  ut::Rng rng(23);
  act.set_profiling(true);
  act.forward(Variable(
      Tensor::rand_uniform(Shape{4, 3, 4, 4}, rng, 0.0f, 5.0f), false));
  act.set_profiling(false);

  act.set_granularity(core::Granularity::per_neuron);
  act.init_bounds_from_profile();
  const Tensor neuron = act.bounds().value().clone();
  act.set_granularity(core::Granularity::per_channel);
  act.init_bounds_from_profile();
  const Tensor channel = act.bounds().value().clone();
  act.set_granularity(core::Granularity::per_layer);
  act.init_bounds_from_profile();
  const float layer = act.bounds().value()[0];

  const std::int64_t hw = 16;
  for (std::int64_t f = 0; f < neuron.numel(); ++f) {
    const float nc = channel[f / hw];
    EXPECT_LE(neuron[f], nc + 1e-6f);
    EXPECT_LE(nc, layer + 1e-6f);
  }
}

TEST(ProtectionProperty, LambdaFaultCannotUnboundOtherNeurons) {
  // A fault on one neuron's lambda affects that neuron only: outputs of
  // all other neurons remain bounded by their own lambdas.
  core::ActivationConfig cfg;
  cfg.scheme = core::Scheme::fitrelu_naive;
  cfg.granularity = core::Granularity::per_neuron;
  core::BoundedActivation act(cfg);
  ut::Rng rng(29);
  act.set_profiling(true);
  act.forward(Variable(
      Tensor::rand_uniform(Shape{4, 8}, rng, 0.0f, 2.0f), false));
  act.set_profiling(false);
  act.init_bounds_from_profile();

  // Corrupt neuron 3's bound to a huge value (a high-bit flip).
  act.bounds().value()[3] = 20000.0f;
  const Variable y = act.forward(Variable(
      Tensor::full(Shape{1, 8}, 100.0f), false));
  for (std::int64_t f = 0; f < 8; ++f) {
    if (f == 3) {
      EXPECT_FLOAT_EQ(y.value()[f], 100.0f);  // unprotected, as expected
    } else {
      EXPECT_FLOAT_EQ(y.value()[f], 0.0f);  // still protected
    }
  }
}

}  // namespace
}  // namespace fitact
