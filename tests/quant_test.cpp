// Unit and property tests for the Q1.15.16 fixed-point codec and the packed
// parameter image.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "quant/fixed_point.h"
#include "quant/param_image.h"
#include "util/rng.h"

namespace fitact::quant {
namespace {

TEST(FixedPoint, ExactValuesRoundTrip) {
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, -0.25f, 123.0f, -4096.5f}) {
    EXPECT_EQ(quantize(v), v);
  }
}

TEST(FixedPoint, ResolutionIsTwoToMinus16) {
  EXPECT_EQ(decode(1), kEpsilon);
  EXPECT_EQ(decode(encode(kEpsilon)), kEpsilon);
  // Half a step rounds to nearest.
  EXPECT_EQ(encode(kEpsilon * 0.49f), 0);
}

TEST(FixedPoint, SaturatesAtRangeEnds) {
  EXPECT_EQ(encode(1e9f), 2147483647);
  EXPECT_EQ(encode(-1e9f), -2147483648);
  EXPECT_NEAR(decode(encode(40000.0f)), kMaxRepresentable, 1e-3f);
}

TEST(FixedPoint, NanEncodesToZero) {
  EXPECT_EQ(encode(std::nanf("")), 0);
}

TEST(FixedPoint, RoundTripErrorBounded) {
  // Property: |quantize(x) - x| <= eps/2 over the representable range.
  ut::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const float x = rng.uniform(-1000.0f, 1000.0f);
    EXPECT_LE(std::abs(quantize(x) - x), kEpsilon * 0.5f + 1e-7f);
  }
}

TEST(FixedPoint, SignBitFlipNegates) {
  const std::int32_t q = encode(1.0f);
  const std::int32_t flipped = flip_bit(q, 31);
  // Two's complement: flipping the sign bit of 1.0 (0x00010000) yields
  // INT32_MIN + 0x10000 -> -32767.0.
  EXPECT_FLOAT_EQ(decode(flipped), 1.0f + kMinRepresentable);
}

TEST(FixedPoint, HighIntegerBitFlipIsLargeExcursion) {
  // This is the fault mode bounded activations protect against: a flip in
  // bit 30 changes the stored value by 2^14.
  const std::int32_t q = encode(0.01f);
  const float faulty = decode(flip_bit(q, 30));
  EXPECT_GT(std::abs(faulty), 16000.0f);
}

TEST(FixedPoint, LowFractionBitFlipIsTiny) {
  const std::int32_t q = encode(0.5f);
  const float faulty = decode(flip_bit(q, 0));
  EXPECT_NEAR(faulty, 0.5f, kEpsilon * 1.01f);
}

TEST(FixedPoint, DoubleFlipRestores) {
  ut::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::int32_t q = encode(rng.uniform(-100.0f, 100.0f));
    const int bit = static_cast<int>(rng.next_below(32));
    EXPECT_EQ(flip_bit(flip_bit(q, bit), bit), q);
  }
}

TEST(FixedPoint, SpanCodecsMatchScalar) {
  ut::Rng rng(3);
  std::vector<float> src(257);
  for (auto& v : src) v = rng.uniform(-50.0f, 50.0f);
  std::vector<std::int32_t> enc(src.size());
  std::vector<float> dec(src.size());
  encode_span(src, enc);
  decode_span(enc, dec);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(enc[i], encode(src[i]));
    EXPECT_EQ(dec[i], quantize(src[i]));
  }
}

TEST(ParamImage, CountsWordsAndBits) {
  ut::Rng rng(4);
  nn::Linear lin(8, 4, true, rng);
  ParamImage img(lin);
  EXPECT_EQ(img.word_count(), 8u * 4u + 4u);
  EXPECT_EQ(img.bit_count(), (8u * 4u + 4u) * 32u);
  EXPECT_EQ(img.byte_count(), (8u * 4u + 4u) * 4u);
}

TEST(ParamImage, RestoreAppliesQuantisationRoundTrip) {
  ut::Rng rng(5);
  nn::Linear lin(4, 2, true, rng);
  auto params = lin.named_parameters();
  const float original = params[0].var.value()[0];
  ParamImage img(lin);
  params[0].var.value()[0] = 777.0f;  // corrupt the live model
  img.restore();
  EXPECT_EQ(params[0].var.value()[0], quantize(original));
}

TEST(ParamImage, WriteBackChangesModel) {
  ut::Rng rng(6);
  nn::Linear lin(4, 2, true, rng);
  ParamImage img(lin);
  auto words = img.clean_words();
  words[0] = encode(42.0f);
  img.write_back(words);
  EXPECT_FLOAT_EQ(lin.named_parameters()[0].var.value()[0], 42.0f);
  img.restore();
  EXPECT_NE(lin.named_parameters()[0].var.value()[0], 42.0f);
}

TEST(ParamImage, WriteBackRejectsWrongSize) {
  ut::Rng rng(7);
  nn::Linear lin(4, 2, true, rng);
  ParamImage img(lin);
  std::vector<std::int32_t> wrong(3);
  EXPECT_THROW(img.write_back(wrong), std::invalid_argument);
}

TEST(ParamImage, FilterRestrictsFaultSpace) {
  ut::Rng rng(8);
  nn::Sequential net;
  net.add(std::make_shared<nn::Linear>(4, 4, true, rng));
  net.add(std::make_shared<nn::Linear>(4, 2, true, rng));
  ParamImage all(net);
  ParamImage first_only(net, false, [](const std::string& name) {
    return name.rfind("0.", 0) == 0;
  });
  EXPECT_EQ(all.word_count(), 4u * 4u + 4u + 4u * 2u + 2u);
  EXPECT_EQ(first_only.word_count(), 4u * 4u + 4u);
}

TEST(ParamImage, IncludeBuffersAddsRunningStats) {
  ut::Rng rng(9);
  nn::Sequential net;
  net.add(std::make_shared<nn::BatchNorm2d>(4));
  ParamImage no_buf(net, false);
  ParamImage with_buf(net, true);
  EXPECT_EQ(no_buf.word_count(), 8u);    // gamma + beta
  EXPECT_EQ(with_buf.word_count(), 16u); // + running mean/var
}

TEST(ParamImage, RefreshPicksUpNewValues) {
  ut::Rng rng(10);
  nn::Linear lin(2, 2, true, rng);
  ParamImage img(lin);
  lin.named_parameters()[0].var.value()[0] = 9.0f;
  img.refresh();
  img.restore();
  EXPECT_FLOAT_EQ(lin.named_parameters()[0].var.value()[0], 9.0f);
}

}  // namespace
}  // namespace fitact::quant
