// Validates the blocked, threaded SGEMM against the naive reference over a
// parameterised sweep of shapes, transposes, and alpha/beta values.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace fitact {
namespace {

struct GemmCase {
  std::int64_t m, n, k;
  bool trans_a, trans_b;
  float alpha, beta;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesReference) {
  const GemmCase c = GetParam();
  ut::Rng rng(static_cast<std::uint64_t>(c.m * 7919 + c.n * 104729 + c.k));
  const std::int64_t a_rows = c.trans_a ? c.k : c.m;
  const std::int64_t a_cols = c.trans_a ? c.m : c.k;
  const std::int64_t b_rows = c.trans_b ? c.n : c.k;
  const std::int64_t b_cols = c.trans_b ? c.k : c.n;
  const Tensor a = Tensor::randn(Shape{a_rows, a_cols}, rng);
  const Tensor b = Tensor::randn(Shape{b_rows, b_cols}, rng);
  Tensor c_fast = Tensor::randn(Shape{c.m, c.n}, rng);
  Tensor c_ref = c_fast.clone();

  sgemm(c.trans_a, c.trans_b, c.m, c.n, c.k, c.alpha, a.data(), a_cols,
        b.data(), b_cols, c.beta, c_fast.data(), c.n);
  sgemm_reference(c.trans_a, c.trans_b, c.m, c.n, c.k, c.alpha, a.data(),
                  a_cols, b.data(), b_cols, c.beta, c_ref.data(), c.n);

  for (std::int64_t i = 0; i < c_fast.numel(); ++i) {
    EXPECT_NEAR(c_fast[i], c_ref[i],
                1e-3f + 1e-4f * std::abs(c_ref[i]))
        << "at flat index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Values(
        GemmCase{1, 1, 1, false, false, 1.0f, 0.0f},
        GemmCase{5, 7, 3, false, false, 1.0f, 0.0f},
        GemmCase{16, 16, 16, false, false, 1.0f, 0.0f},
        GemmCase{64, 64, 64, false, false, 1.0f, 0.0f},
        GemmCase{65, 127, 63, false, false, 1.0f, 0.0f},
        GemmCase{128, 300, 257, false, false, 1.0f, 0.0f},
        GemmCase{33, 20, 40, true, false, 1.0f, 0.0f},
        GemmCase{40, 33, 20, false, true, 1.0f, 0.0f},
        GemmCase{24, 24, 24, true, true, 1.0f, 0.0f},
        GemmCase{17, 19, 23, false, false, 2.5f, 0.0f},
        GemmCase{17, 19, 23, false, false, 1.0f, 1.0f},
        GemmCase{17, 19, 23, false, false, -1.0f, 0.5f},
        GemmCase{100, 1, 50, false, false, 1.0f, 0.0f},
        GemmCase{1, 100, 50, false, false, 1.0f, 0.0f}));

TEST(Gemm, BetaZeroOverwritesGarbage) {
  // beta = 0 must ignore (not propagate) pre-existing NaN in C.
  const Tensor a = Tensor::ones(Shape{2, 2});
  const Tensor b = Tensor::ones(Shape{2, 2});
  Tensor c = Tensor::full(Shape{2, 2}, std::numeric_limits<float>::quiet_NaN());
  sgemm(false, false, 2, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 0.0f, c.data(),
        2);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], 2.0f);
}

TEST(Gemm, AlphaZeroShortCircuits) {
  const Tensor a = Tensor::ones(Shape{3, 3});
  const Tensor b = Tensor::ones(Shape{3, 3});
  Tensor c = Tensor::full(Shape{3, 3}, 5.0f);
  sgemm(false, false, 3, 3, 3, 0.0f, a.data(), 3, b.data(), 3, 1.0f, c.data(),
        3);
  for (std::int64_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(c[i], 5.0f);
}

TEST(Gemm, AccumulatesWithBetaOne) {
  const Tensor a = Tensor::ones(Shape{2, 3});
  const Tensor b = Tensor::ones(Shape{3, 2});
  Tensor c = Tensor::full(Shape{2, 2}, 10.0f);
  sgemm(false, false, 2, 2, 3, 1.0f, a.data(), 3, b.data(), 2, 1.0f, c.data(),
        2);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], 13.0f);
}

}  // namespace
}  // namespace fitact
