// Tests for the campaign session layer (cached worker-lane replicas across
// a rate grid) and the init-skipping model construction path replicas use.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/activation.h"
#include "core/protection.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "fault/campaign.h"
#include "models/registry.h"
#include "nn/serialize.h"
#include "quant/param_image.h"
#include "tensor/tensor.h"

namespace fitact::ev {
namespace {

ExperimentScale tiny_scale() {
  ExperimentScale scale = ExperimentScale::scaled();
  scale.train_size = 96;
  scale.test_size = 48;
  scale.train_epochs = 2;
  scale.eval_samples = 24;
  scale.trials = 6;
  scale.post.epochs = 1;
  scale.post.max_batches_per_epoch = 3;
  return scale;
}

void expect_equal_results(const fault::CampaignResult& a,
                          const fault::CampaignResult& b,
                          const std::string& context) {
  EXPECT_EQ(a.accuracies, b.accuracies) << context;
  EXPECT_EQ(a.flip_counts, b.flip_counts) << context;
  EXPECT_DOUBLE_EQ(a.mean_accuracy, b.mean_accuracy) << context;
  EXPECT_DOUBLE_EQ(a.min_accuracy, b.min_accuracy) << context;
  EXPECT_DOUBLE_EQ(a.max_accuracy, b.max_accuracy) << context;
}

// The satellite contract: cached replicas across a >= 3-point rate grid are
// byte-identical to fresh-replica runs at threads = 1/2/8, including after
// an intervening protect_model re-protection (stale-bounds regression).
TEST(CampaignSession, GridMatchesFreshRunsAcrossThreadCounts) {
  const std::vector<double> rate_grid = {1e-6, 1e-5, 1e-4};

  for (const std::size_t threads : {1u, 2u, 8u}) {
    // Two identically prepared models: one swept through a session with
    // cached replicas, one through fresh-replica one-shot campaigns.
    ExperimentScale scale = tiny_scale();
    scale.campaign_threads = threads;
    PreparedModel cached = prepare_model("tinycnn", 10, scale, "", 29);
    PreparedModel fresh = prepare_model("tinycnn", 10, scale, "", 29);

    (void)protect_model(cached, core::Scheme::clip_act, scale);
    (void)protect_model(fresh, core::Scheme::clip_act, scale);

    CampaignSession session(cached, scale);
    for (const double rate : rate_grid) {
      expect_equal_results(
          session.run(rate, 51), campaign_at_rate(fresh, rate, scale, 51),
          "rate " + std::to_string(rate) + " threads " +
              std::to_string(threads));
    }
    EXPECT_EQ(session.lane_count(),
              std::min<std::size_t>(threads, scale.trials));

    // Re-protect with a different scheme (per-neuron bounds, post-training
    // mutates them): the session's cached lanes must pick up the new
    // bounds, not inject into stale clip-act replicas.
    (void)protect_model(cached, core::Scheme::fitrelu, scale);
    (void)protect_model(fresh, core::Scheme::fitrelu, scale);
    for (const double rate : rate_grid) {
      expect_equal_results(
          session.run(rate, 52), campaign_at_rate(fresh, rate, scale, 52),
          "post-reprotect rate " + std::to_string(rate) + " threads " +
              std::to_string(threads));
    }
  }
}

TEST(CampaignSession, TouchForcesResyncAfterDirectMutation) {
  ExperimentScale scale = tiny_scale();
  scale.campaign_threads = 2;
  PreparedModel cached = prepare_model("tinycnn", 10, scale, "", 37);
  PreparedModel fresh = prepare_model("tinycnn", 10, scale, "", 37);
  (void)protect_model(cached, core::Scheme::clip_act, scale);
  (void)protect_model(fresh, core::Scheme::clip_act, scale);

  CampaignSession session(cached, scale);
  expect_equal_results(session.run(1e-5, 61),
                       campaign_at_rate(fresh, 1e-5, scale, 61), "warm-up");

  // Mutate both models identically outside protect_model (what the
  // granularity/k ablations do); pm.touch() must trigger the re-sync.
  core::ProtectionOptions opts;
  opts.granularity = core::Granularity::per_layer;
  core::apply_protection(*cached.model, core::Scheme::ranger, opts);
  cached.touch();
  core::apply_protection(*fresh.model, core::Scheme::ranger, opts);
  fresh.touch();

  expect_equal_results(session.run(1e-5, 62),
                       campaign_at_rate(fresh, 1e-5, scale, 62),
                       "post-touch");
}

TEST(CampaignSession, FaultLevelSessionMatchesOneShotEngine) {
  // Pure fault-layer check, no eval stack: a session over synthetic workers
  // must reproduce run_campaign for every run of a multi-rate sweep.
  struct Lane {
    std::shared_ptr<nn::Module> net;
    std::unique_ptr<quant::ParamImage> image;
    std::unique_ptr<fault::Injector> injector;
  };
  const auto make_worker = [](std::size_t) {
    models::ModelConfig mc;
    mc.width_mult = 0.25f;
    mc.seed = 3;
    auto ctx = std::make_shared<Lane>();
    ctx->net = models::make_tinycnn(mc);
    ctx->image = std::make_unique<quant::ParamImage>(*ctx->net);
    ctx->injector = std::make_unique<fault::Injector>(*ctx->image);
    fault::CampaignWorker w;
    w.keepalive = ctx;
    w.injector = ctx->injector.get();
    w.evaluate = [ctx] {
      double sum = 0.0;
      for (auto& p : ctx->net->named_parameters()) {
        for (const float v : p.var.value().span()) sum += v;
      }
      return sum;
    };
    w.sync = [ctx](bool) { ctx->image->refresh(); };
    return w;
  };

  fault::CampaignConfig cfg;
  cfg.trials = 8;
  cfg.seed = 404;
  cfg.threads = 4;
  fault::CampaignSession session(make_worker);
  for (const double rate : {1e-4, 5e-4, 1e-3}) {
    cfg.bit_error_rate = rate;
    expect_equal_results(session.run(cfg), fault::run_campaign(make_worker, cfg),
                         "rate " + std::to_string(rate));
  }
  EXPECT_EQ(session.lane_count(), 4u);

  // A wider later run grows the lane set.
  cfg.threads = 8;
  cfg.bit_error_rate = 2e-3;
  expect_equal_results(session.run(cfg), fault::run_campaign(make_worker, cfg),
                       "lane growth");
  EXPECT_EQ(session.lane_count(), 8u);
}

// --- init-skipping construction path ------------------------------------

TEST(SkipInit, PendingUntilCopyStateThenIdentical) {
  models::ModelConfig cfg;
  cfg.width_mult = 0.25f;
  cfg.seed = 7;
  const auto src = models::make_model("tinycnn", cfg);
  EXPECT_FALSE(src->subtree_pending_init());

  models::ModelConfig skip = cfg;
  skip.skip_init = true;
  const auto replica = models::make_model("tinycnn", skip);
  EXPECT_TRUE(replica->subtree_pending_init());

  nn::copy_state(*src, *replica);
  EXPECT_FALSE(replica->subtree_pending_init());

  // Value-identical to the source after the copy.
  const auto sp = src->named_parameters();
  const auto rp = replica->named_parameters();
  ASSERT_EQ(sp.size(), rp.size());
  for (std::size_t i = 0; i < sp.size(); ++i) {
    EXPECT_EQ(sp[i].name, rp[i].name);
    for (std::int64_t j = 0; j < sp[i].var.numel(); ++j) {
      EXPECT_EQ(sp[i].var.value()[j], rp[i].var.value()[j]);
    }
  }
}

TEST(SkipInit, EveryRegisteredModelSupportsIt) {
  for (const auto& name : models::model_names()) {
    models::ModelConfig cfg;
    cfg.width_mult = 0.125f;
    cfg.skip_init = true;
    const auto m = models::make_model(name, cfg);
    EXPECT_TRUE(m->subtree_pending_init()) << name;
    // Same architecture as the initialised build.
    models::ModelConfig full = cfg;
    full.skip_init = false;
    EXPECT_EQ(m->parameter_count(),
              models::make_model(name, full)->parameter_count())
        << name;
  }
}

TEST(SkipInit, ReplicateModelStillEvaluatesIdentically) {
  // replicate_model now uses the skip-init path; the replica must still be
  // value-identical (covers the "callers that do need init are unaffected"
  // check from the other side: the only skip-init user copies state in).
  ExperimentScale scale = tiny_scale();
  PreparedModel pm = prepare_model("tinycnn", 10, scale, "", 41);
  (void)protect_model(pm, core::Scheme::fitrelu, scale);
  const auto replica = replicate_model(pm);
  EXPECT_FALSE(replica->subtree_pending_init());
  EvalConfig ec;
  ec.max_samples = scale.eval_samples;
  EXPECT_DOUBLE_EQ(evaluate_accuracy(*pm.model, *pm.test, ec),
                   evaluate_accuracy(*replica, *pm.test, ec));
}

#ifndef NDEBUG
using SkipInitDeathTest = ::testing::Test;

TEST(SkipInitDeathTest, EvaluatingBeforeCopyStateAsserts) {
  // Debug builds must refuse to forward a pending-init model: its weights
  // are uninitialised memory.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  models::ModelConfig cfg;
  cfg.width_mult = 0.25f;
  cfg.skip_init = true;
  EXPECT_DEATH(
      {
        const auto m = models::make_model("tinycnn", cfg);
        m->set_training(false);
        Variable x(Tensor::zeros(Shape{1, 3, 32, 32}), false);
        (void)m->forward(x);
      },
      "deferred");
}
#endif  // NDEBUG

}  // namespace
}  // namespace fitact::ev
