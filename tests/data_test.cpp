// Unit tests for src/data: synthetic dataset determinism and learnability
// prerequisites, batching, and the loader.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/data_loader.h"
#include "data/synthetic_cifar.h"

namespace fitact::data {
namespace {

SyntheticCifarConfig small_config() {
  SyntheticCifarConfig cfg;
  cfg.num_classes = 10;
  cfg.size = 100;
  cfg.seed = 5;
  return cfg;
}

TEST(SyntheticCifar, DeterministicPerIndex) {
  const SyntheticCifar a(small_config());
  const SyntheticCifar b(small_config());
  std::vector<float> img_a(kImageNumel);
  std::vector<float> img_b(kImageNumel);
  a.image_into(17, img_a.data());
  b.image_into(17, img_b.data());
  EXPECT_EQ(img_a, img_b);
}

TEST(SyntheticCifar, DifferentIndicesDiffer) {
  const SyntheticCifar ds(small_config());
  std::vector<float> x(kImageNumel);
  std::vector<float> y(kImageNumel);
  ds.image_into(0, x.data());
  ds.image_into(10, y.data());  // same class (10 classes, round-robin)
  EXPECT_NE(x, y);
}

TEST(SyntheticCifar, SplitsDiffer) {
  auto splits = make_synthetic_splits(10, 50, 50, 7);
  std::vector<float> tr(kImageNumel);
  std::vector<float> te(kImageNumel);
  splits.train.image_into(0, tr.data());
  splits.test.image_into(0, te.data());
  EXPECT_NE(tr, te);
}

TEST(SyntheticCifar, LabelsAreBalancedRoundRobin) {
  const SyntheticCifar ds(small_config());
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    ++counts[static_cast<std::size_t>(ds.label(i))];
  }
  for (const int c : counts) EXPECT_EQ(c, 10);
}

TEST(SyntheticCifar, ClassMeansAreSeparated) {
  // The class-conditional structure must be present: per-class mean images
  // should differ far more between classes than within-class noise.
  SyntheticCifarConfig cfg = small_config();
  cfg.size = 400;
  const SyntheticCifar ds(cfg);
  std::vector<std::vector<double>> mean(2, std::vector<double>(kImageNumel, 0.0));
  std::vector<int> counts(2, 0);
  std::vector<float> img(kImageNumel);
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    const auto c = ds.label(i);
    if (c > 1) continue;
    ds.image_into(i, img.data());
    for (std::int64_t p = 0; p < kImageNumel; ++p) {
      mean[static_cast<std::size_t>(c)][static_cast<std::size_t>(p)] += img[p];
    }
    ++counts[static_cast<std::size_t>(c)];
  }
  double dist = 0.0;
  for (std::int64_t p = 0; p < kImageNumel; ++p) {
    const double d = mean[0][static_cast<std::size_t>(p)] / counts[0] -
                     mean[1][static_cast<std::size_t>(p)] / counts[1];
    dist += d * d;
  }
  EXPECT_GT(std::sqrt(dist / kImageNumel), 0.1);
}

TEST(SyntheticCifar, HundredClassVariant) {
  SyntheticCifarConfig cfg;
  cfg.num_classes = 100;
  cfg.size = 200;
  const SyntheticCifar ds(cfg);
  EXPECT_EQ(ds.num_classes(), 100);
  std::set<std::int64_t> seen;
  for (std::int64_t i = 0; i < ds.size(); ++i) seen.insert(ds.label(i));
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Dataset, BatchShapesAndLabels) {
  const SyntheticCifar ds(small_config());
  std::vector<std::int64_t> labels;
  const Tensor b = ds.batch(5, 8, &labels);
  EXPECT_EQ(b.shape(), Shape({8, 3, 32, 32}));
  ASSERT_EQ(labels.size(), 8u);
  EXPECT_EQ(labels[0], ds.label(5));
}

TEST(Dataset, BatchOutOfRangeThrows) {
  const SyntheticCifar ds(small_config());
  EXPECT_THROW(ds.batch(95, 10, nullptr), std::out_of_range);
}

TEST(Dataset, GatherArbitraryIndices) {
  const SyntheticCifar ds(small_config());
  std::vector<std::int64_t> labels;
  const Tensor g = ds.gather({3, 99, 0}, &labels);
  EXPECT_EQ(g.shape(), Shape({3, 3, 32, 32}));
  EXPECT_EQ(labels[1], ds.label(99));
}

TEST(DataLoader, CoversEverySampleOncePerEpoch) {
  const SyntheticCifar ds(small_config());
  DataLoader loader(ds, 16, /*shuffle=*/true, 1);
  Batch batch;
  std::int64_t seen = 0;
  while (loader.next(batch)) {
    seen += static_cast<std::int64_t>(batch.labels.size());
  }
  EXPECT_EQ(seen, ds.size());
  EXPECT_EQ(loader.batches_per_epoch(), (100 + 15) / 16);
}

TEST(DataLoader, ShuffleChangesOrderBetweenEpochs) {
  const SyntheticCifar ds(small_config());
  DataLoader loader(ds, 100, /*shuffle=*/true, 2);
  Batch e1;
  loader.next(e1);
  loader.start_epoch();
  Batch e2;
  loader.next(e2);
  EXPECT_NE(e1.labels, e2.labels);
}

TEST(DataLoader, NoShuffleIsSequential) {
  const SyntheticCifar ds(small_config());
  DataLoader loader(ds, 10, /*shuffle=*/false, 3);
  Batch batch;
  loader.next(batch);
  for (std::size_t i = 0; i < batch.labels.size(); ++i) {
    EXPECT_EQ(batch.labels[i], ds.label(static_cast<std::int64_t>(i)));
  }
}

}  // namespace
}  // namespace fitact::data
