// Model-zoo tests: construction, output shapes, activation-site counts,
// parameter counts at paper scale, and a single train step on each.
#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/activation.h"
#include "models/registry.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace fitact::models {
namespace {

Variable tiny_batch(std::uint64_t seed = 1) {
  ut::Rng rng(seed);
  return Variable(Tensor::randn(Shape{2, 3, 32, 32}, rng), false);
}

class ModelZoo : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelZoo, ForwardShapeIsBatchByClasses) {
  ModelConfig cfg;
  cfg.num_classes = 10;
  cfg.width_mult = 0.125f;
  auto model = make_model(GetParam(), cfg);
  const Variable y = model->forward(tiny_batch());
  EXPECT_EQ(y.shape(), Shape({2, 10}));
}

TEST_P(ModelZoo, HundredClassHead) {
  ModelConfig cfg;
  cfg.num_classes = 100;
  cfg.width_mult = 0.125f;
  auto model = make_model(GetParam(), cfg);
  const Variable y = model->forward(tiny_batch());
  EXPECT_EQ(y.shape(), Shape({2, 100}));
}

TEST_P(ModelZoo, OneTrainStepReducesLossOnFixedBatch) {
  ModelConfig cfg;
  cfg.num_classes = 10;
  cfg.width_mult = 0.125f;
  auto model = make_model(GetParam(), cfg);
  model->set_training(true);
  nn::Sgd sgd(model->parameters(), 0.01f, 0.9f, 0.0f);
  const Variable x = tiny_batch(3);
  const std::vector<std::int64_t> labels{1, 7};
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 10; ++step) {
    model->zero_grad();
    Variable loss =
        ag::softmax_cross_entropy(model->forward(x), labels);
    if (step == 0) first = loss.value().item();
    last = loss.value().item();
    loss.backward();
    sgd.step();
  }
  EXPECT_LT(last, first);
}

TEST_P(ModelZoo, DeterministicConstruction) {
  ModelConfig cfg;
  cfg.width_mult = 0.125f;
  cfg.seed = 77;
  auto a = make_model(GetParam(), cfg);
  auto b = make_model(GetParam(), cfg);
  const auto pa = a->named_parameters();
  const auto pb = b->named_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].name, pb[i].name);
    for (std::int64_t j = 0; j < pa[i].var.numel(); ++j) {
      EXPECT_EQ(pa[i].var.value()[j], pb[i].var.value()[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, ModelZoo,
                         ::testing::Values("tinycnn", "alexnet", "vgg16",
                                           "resnet50"));

TEST(ModelZooCounts, ActivationSiteCounts) {
  ModelConfig cfg;
  cfg.width_mult = 0.125f;
  // AlexNet: 5 conv + 2 FC activation sites.
  EXPECT_EQ(core::collect_activations(*make_model("alexnet", cfg)).size(), 7u);
  // VGG16: 13 conv + 1 FC sites.
  EXPECT_EQ(core::collect_activations(*make_model("vgg16", cfg)).size(), 14u);
  // ResNet50: stem + 16 blocks x 3 sites.
  EXPECT_EQ(core::collect_activations(*make_model("resnet50", cfg)).size(),
            1u + 16u * 3u);
}

TEST(ModelZooCounts, PaperScaleParameterCounts) {
  // Sanity-check the full-width architectures against well-known numbers
  // (CIFAR variants; tolerances are generous because classifier heads
  // differ between published variants).
  ModelConfig cfg;
  cfg.width_mult = 1.0f;
  cfg.num_classes = 10;
  const auto vgg = make_model("vgg16", cfg);
  EXPECT_NEAR(static_cast<double>(vgg->parameter_count()), 15.0e6, 1.0e6);
  const auto resnet = make_model("resnet50", cfg);
  EXPECT_NEAR(static_cast<double>(resnet->parameter_count()), 23.5e6, 1.5e6);
}

TEST(ModelZooCounts, WidthMultiplierShrinksParameters) {
  ModelConfig full;
  full.width_mult = 1.0f;
  ModelConfig half;
  half.width_mult = 0.5f;
  const auto a = make_model("vgg16", full);
  const auto b = make_model("vgg16", half);
  EXPECT_LT(b->parameter_count(), a->parameter_count() / 2);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_model("lenet", ModelConfig{}), std::invalid_argument);
}

TEST(Registry, NamesListed) {
  const auto names = model_names();
  EXPECT_EQ(names.size(), 4u);
}

TEST(ResNet, ResidualPathKeepsGradientsFlowing) {
  // Gradient must reach the stem conv through 16 blocks of depth.
  ModelConfig cfg;
  cfg.width_mult = 0.125f;
  auto model = make_model("resnet50", cfg);
  model->set_training(true);
  Variable loss = ag::softmax_cross_entropy(model->forward(tiny_batch(5)),
                                            {0, 1});
  loss.backward();
  const auto params = model->named_parameters();
  // First parameter is the stem conv weight.
  double grad_norm = 0.0;
  for (const float g : params[0].var.grad().span()) {
    grad_norm += static_cast<double>(g) * g;
  }
  EXPECT_GT(grad_norm, 0.0);
}

}  // namespace
}  // namespace fitact::models
