// Tests for the dropout op/layer and its AlexNet integration.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "models/registry.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace fitact {
namespace {

TEST(Dropout, EvalModeIsIdentity) {
  ut::Rng rng(1);
  Variable x(Tensor::randn(Shape{100}, rng), false);
  Variable y = ag::dropout(x, 0.5f, /*training=*/false, rng);
  EXPECT_TRUE(y.is_same(x));  // no-op returns the same node
}

TEST(Dropout, ZeroProbabilityIsIdentity) {
  ut::Rng rng(2);
  Variable x(Tensor::randn(Shape{10}, rng), false);
  Variable y = ag::dropout(x, 0.0f, /*training=*/true, rng);
  EXPECT_TRUE(y.is_same(x));
}

TEST(Dropout, RejectsInvalidProbability) {
  ut::Rng rng(3);
  Variable x(Tensor::randn(Shape{4}, rng), false);
  EXPECT_THROW(ag::dropout(x, 1.0f, true, rng), std::invalid_argument);
  EXPECT_THROW(ag::dropout(x, -0.1f, true, rng), std::invalid_argument);
}

TEST(Dropout, DropsRoughlyPFractionAndRescales) {
  ut::Rng rng(4);
  constexpr float p = 0.3f;
  Variable x(Tensor::ones(Shape{20000}), false);
  const Variable y = ag::dropout(x, p, true, rng);
  std::int64_t zeros = 0;
  double sum = 0.0;
  for (const float v : y.value().span()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / (1.0f - p), 1e-5f);  // survivor scaling
      sum += v;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 20000.0, p, 0.02);
  // Inverted dropout keeps the expectation: mean stays ~1.
  EXPECT_NEAR(sum / 20000.0, 1.0, 0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  ut::Rng rng(5);
  Variable x(Tensor::ones(Shape{1000}), true);
  Variable y = ag::dropout(x, 0.5f, true, rng);
  Variable loss = ag::sum_of_squares(y);
  loss.backward();
  // grad = 2*y*mask = 2*mask^2 where mask in {0, 2}: grad in {0, 8}.
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (y.value()[i] == 0.0f) {
      EXPECT_EQ(x.grad()[i], 0.0f);
    } else {
      EXPECT_NEAR(x.grad()[i], 8.0f, 1e-4f);
    }
  }
}

TEST(DropoutLayer, RespectsTrainingMode) {
  nn::Dropout layer(0.9f, 7);
  Variable x(Tensor::ones(Shape{1, 64}), false);
  layer.set_training(true);
  const Variable y_train = layer.forward(x);
  std::int64_t zeros = 0;
  for (const float v : y_train.value().span()) {
    if (v == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 32);  // p = 0.9 on 64 elements
  layer.set_training(false);
  const Variable y_eval = layer.forward(x);
  for (const float v : y_eval.value().span()) EXPECT_EQ(v, 1.0f);
}

TEST(DropoutLayer, AlexNetVariantBuildsAndRuns) {
  models::ModelConfig cfg;
  cfg.width_mult = 0.125f;
  cfg.alexnet_dropout = true;
  auto model = models::make_model("alexnet", cfg);
  ut::Rng rng(8);
  const Variable x(Tensor::randn(Shape{2, 3, 32, 32}, rng), false);
  model->set_training(true);
  const Variable y_train = model->forward(x);
  EXPECT_EQ(y_train.shape(), Shape({2, 10}));
  model->set_training(false);
  const Variable a = model->forward(x);
  const Variable b = model->forward(x);
  // Eval mode must be deterministic.
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.value()[i], b.value()[i]);
  }
}

TEST(DropoutLayer, DefaultAlexNetHasNoDropout) {
  models::ModelConfig cfg;
  cfg.width_mult = 0.125f;
  auto with = models::make_model("alexnet", [] {
    models::ModelConfig c;
    c.width_mult = 0.125f;
    c.alexnet_dropout = true;
    return c;
  }());
  auto without = models::make_model("alexnet", cfg);
  // Parameter names are Sequential indices; dropout shifts the classifier
  // layer names (checkpoint formats are therefore not interchangeable).
  EXPECT_NE(with->named_parameters().back().name,
            without->named_parameters().back().name);
  EXPECT_EQ(with->parameter_count(), without->parameter_count());
}

}  // namespace
}  // namespace fitact
