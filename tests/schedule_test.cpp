// Tests for LR schedules, gradient clipping, and label-smoothed
// cross-entropy (including its gradient).
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "data/synthetic_cifar.h"
#include "eval/trainer.h"
#include "models/registry.h"
#include "nn/grad_util.h"
#include "nn/schedule.h"
#include "util/rng.h"

namespace fitact {
namespace {

TEST(Schedule, StepDecayHalvesOnSchedule) {
  const nn::StepDecay s(0.1f, 10, 0.5f);
  EXPECT_FLOAT_EQ(s.lr_at(0), 0.1f);
  EXPECT_FLOAT_EQ(s.lr_at(9), 0.1f);
  EXPECT_FLOAT_EQ(s.lr_at(10), 0.05f);
  EXPECT_FLOAT_EQ(s.lr_at(25), 0.025f);
}

TEST(Schedule, CosineAnnealingEndpoints) {
  const nn::CosineAnnealing s(0.2f, 100, 0.01f);
  EXPECT_FLOAT_EQ(s.lr_at(0), 0.2f);
  EXPECT_NEAR(s.lr_at(50), (0.2f + 0.01f) / 2.0f, 1e-6f);
  EXPECT_FLOAT_EQ(s.lr_at(100), 0.01f);
  EXPECT_FLOAT_EQ(s.lr_at(200), 0.01f);  // clamped past the horizon
}

TEST(Schedule, CosineIsMonotoneDecreasing) {
  const nn::CosineAnnealing s(0.1f, 40);
  for (int e = 1; e < 40; ++e) {
    EXPECT_LE(s.lr_at(e), s.lr_at(e - 1) + 1e-9f);
  }
}

TEST(Schedule, WarmupRampsLinearly) {
  const nn::StepDecay inner(0.1f, 1000, 0.5f);
  const nn::WarmupWrapper s(inner, 5);
  EXPECT_NEAR(s.lr_at(0), 0.1f / 5.0f, 1e-6f);
  EXPECT_NEAR(s.lr_at(4), 0.1f, 1e-6f);
  EXPECT_FLOAT_EQ(s.lr_at(10), inner.lr_at(10));
}

TEST(GradUtil, NormOfKnownGradients) {
  Variable a(Tensor::from_values({3.0f}), true);
  Variable b(Tensor::from_values({4.0f}), true);
  a.ensure_grad();
  b.ensure_grad();
  a.grad()[0] = 3.0f;
  b.grad()[0] = 4.0f;
  std::vector<Variable> params{a, b};
  EXPECT_DOUBLE_EQ(nn::grad_norm(params), 5.0);
}

TEST(GradUtil, ClipScalesDownToMaxNorm) {
  Variable a(Tensor::from_values({0.0f}), true);
  a.ensure_grad();
  a.grad()[0] = 10.0f;
  std::vector<Variable> params{a};
  const double pre = nn::clip_grad_norm(params, 2.0);
  EXPECT_DOUBLE_EQ(pre, 10.0);
  EXPECT_NEAR(a.grad()[0], 2.0f, 1e-5f);
}

TEST(GradUtil, NoClipBelowThreshold) {
  Variable a(Tensor::from_values({0.0f}), true);
  a.ensure_grad();
  a.grad()[0] = 1.0f;
  std::vector<Variable> params{a};
  nn::clip_grad_norm(params, 5.0);
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
}

TEST(GradUtil, SkipsParamsWithoutGrad) {
  Variable a(Tensor::from_values({1.0f}), true);  // no grad allocated
  std::vector<Variable> params{a};
  EXPECT_DOUBLE_EQ(nn::grad_norm(params), 0.0);
  EXPECT_NO_THROW(nn::clip_grad_norm(params, 1.0));
}

TEST(LabelSmoothing, ZeroSmoothingMatchesPlainCe) {
  ut::Rng rng(1);
  const Tensor logits = Tensor::randn(Shape{3, 5}, rng);
  Variable a(logits.clone(), false);
  Variable b(logits.clone(), false);
  const float plain =
      ag::softmax_cross_entropy(a, {1, 0, 4}).value().item();
  const float smoothed =
      ag::softmax_cross_entropy(b, {1, 0, 4}, nullptr, 0.0f).value().item();
  EXPECT_FLOAT_EQ(plain, smoothed);
}

TEST(LabelSmoothing, UniformLogitsLossIsLogK) {
  // With uniform probabilities the loss is log K regardless of smoothing.
  Variable logits(Tensor::zeros(Shape{2, 4}), false);
  const float loss =
      ag::softmax_cross_entropy(logits, {0, 1}, nullptr, 0.3f).value().item();
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5f);
}

TEST(LabelSmoothing, GradientMatchesNumeric) {
  ut::Rng rng(2);
  const Tensor x0 = Tensor::randn(Shape{2, 4}, rng);
  const std::vector<std::int64_t> labels{2, 0};
  constexpr float s = 0.2f;
  Variable x(x0.clone(), true);
  Variable loss = ag::softmax_cross_entropy(x, labels, nullptr, s);
  loss.backward();
  constexpr float eps = 1e-3f;
  for (std::int64_t i = 0; i < x0.numel(); ++i) {
    Tensor xp = x0.clone();
    xp[i] += eps;
    Tensor xm = x0.clone();
    xm[i] -= eps;
    Variable vp(xp, false);
    Variable vm(xm, false);
    const float fp =
        ag::softmax_cross_entropy(vp, labels, nullptr, s).value().item();
    const float fm =
        ag::softmax_cross_entropy(vm, labels, nullptr, s).value().item();
    EXPECT_NEAR(x.grad()[i], (fp - fm) / (2.0f * eps), 2e-2f);
  }
}

TEST(LabelSmoothing, RejectsOutOfRange) {
  Variable logits(Tensor::zeros(Shape{1, 3}), false);
  EXPECT_THROW(ag::softmax_cross_entropy(logits, {0}, nullptr, 1.0f),
               std::invalid_argument);
  EXPECT_THROW(ag::softmax_cross_entropy(logits, {0}, nullptr, -0.1f),
               std::invalid_argument);
}

TEST(TrainerExtras, ScheduleAndClippingTrainTheModel) {
  models::ModelConfig mc;
  mc.width_mult = 0.5f;
  mc.num_classes = 4;
  auto model = models::make_model("tinycnn", mc);
  data::SyntheticCifarConfig dc;
  dc.num_classes = 4;
  dc.size = 128;
  const data::SyntheticCifar train(dc);
  const nn::CosineAnnealing schedule(0.05f, 4);
  ev::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 32;
  tc.schedule = &schedule;
  tc.clip_norm = 5.0;
  tc.label_smoothing = 0.05f;
  const ev::TrainReport report = ev::train_classifier(*model, train, tc);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
}

}  // namespace
}  // namespace fitact
