// Stress tests for ut::ThreadPool: exception capture under
// parallel_for_slotted when many chunks throw at once (repeatedly, so a
// leaked slot or a stuck worker surfaces), and nested in-worker parallel_for
// staying inline — never fanning back into the pool and oversubscribing it.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace fitact::ut {
namespace {

TEST(ThreadPoolStress, SlottedCapturesManyThrowingChunks) {
  // A 16-worker pool chunks a large range into up to 17 concurrently
  // running chunks; every one of them throws, on every iteration. The
  // contract: each chunk is still driven to completion (full coverage),
  // exactly one exception is rethrown on the calling thread, slot ids stay
  // within bounds, and the pool survives to serve the next iteration.
  ThreadPool pool(16);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::atomic<int>> hits(513);
    std::atomic<std::size_t> max_slot{0};
    bool caught = false;
    try {
      pool.parallel_for_slotted(
          0, hits.size(), [&](std::size_t slot, std::size_t b, std::size_t e) {
            std::size_t seen = max_slot.load();
            while (slot > seen && !max_slot.compare_exchange_weak(seen, slot)) {
            }
            for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
            throw std::runtime_error("chunk failure");
          });
    } catch (const std::runtime_error&) {
      caught = true;
    }
    EXPECT_TRUE(caught) << "iteration " << iter;
    EXPECT_LT(max_slot.load(), pool.size() + 1) << "iteration " << iter;
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1)
          << "iteration " << iter << " index " << i
          << ": a throwing sibling kept this chunk from running";
    }
  }
  // The pool must still be fully functional after 50 all-throwing rounds.
  std::atomic<int> total{0};
  pool.parallel_for(0, 1000, [&](std::size_t b, std::size_t e) {
    total.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolStress, SlottedMixedThrowersStillCoverEverything) {
  // Only some chunks throw (first exception wins); coverage and reusability
  // must hold regardless of which chunk failed.
  ThreadPool pool(8);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<std::atomic<int>> hits(256);
    std::atomic<int> throwers{0};
    try {
      pool.parallel_for_slotted(
          0, hits.size(),
          [&](std::size_t /*slot*/, std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
            if (b % 2 == static_cast<std::size_t>(iter % 2)) {
              throwers.fetch_add(1);
              throw std::logic_error("selective failure");
            }
          });
    } catch (const std::logic_error&) {
    }
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "iteration " << iter << " index " << i;
    }
  }
}

TEST(ThreadPoolStress, NestedParallelForRunsInlineWithoutOversubscription) {
  // Every nested parallel_for issued from inside a chunk must execute on
  // the thread that issued it (inline), so the set of threads doing nested
  // work can never exceed the pool's execution contexts (workers + caller).
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> nested_threads;
  std::atomic<int> nested_total{0};
  std::atomic<int> mismatches{0};
  pool.parallel_for(0, 64, [&](std::size_t b, std::size_t e) {
    const std::thread::id outer = std::this_thread::get_id();
    for (std::size_t i = b; i < e; ++i) {
      pool.parallel_for(0, 16, [&](std::size_t nb, std::size_t ne) {
        if (std::this_thread::get_id() != outer) mismatches.fetch_add(1);
        nested_total.fetch_add(static_cast<int>(ne - nb));
        {
          const std::lock_guard<std::mutex> lock(mutex);
          nested_threads.insert(std::this_thread::get_id());
        }
      });
    }
  });
  EXPECT_EQ(mismatches.load(), 0)
      << "a nested parallel_for escaped its issuing thread";
  EXPECT_EQ(nested_total.load(), 64 * 16);
  EXPECT_LE(nested_threads.size(), pool.size() + 1);
}

TEST(ThreadPoolStress, ThrowFromNestedInlineCallPropagatesThroughSlotted) {
  // An exception raised inside a nested (inline) parallel_for unwinds into
  // the outer chunk, which parallel_for_slotted captures and rethrows on
  // the calling thread — never into a pool worker's loop.
  ThreadPool pool(4);
  std::atomic<int> chunks_run{0};
  bool caught = false;
  try {
    pool.parallel_for_slotted(
        0, 64, [&](std::size_t /*slot*/, std::size_t b, std::size_t e) {
          chunks_run.fetch_add(1);
          pool.parallel_for(b, e, [&](std::size_t nb, std::size_t /*ne*/) {
            if (nb % 2 == 0) throw std::runtime_error("nested failure");
          });
        });
  } catch (const std::runtime_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(chunks_run.load(), static_cast<int>(
                                   std::min<std::size_t>(64, pool.size() + 1)));
  // Still alive.
  std::atomic<int> total{0};
  pool.parallel_for_each(0, 100, 7,
                         [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);
}

}  // namespace
}  // namespace fitact::ut
