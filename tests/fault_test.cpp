// Tests for the fault-injection substrate: statistical properties of the
// flip sampler, injection/restore mechanics, and campaign behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "fault/campaign.h"
#include "fault/injector.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "quant/fixed_point.h"
#include "util/rng.h"

namespace fitact::fault {
namespace {

std::shared_ptr<nn::Sequential> small_net(std::uint64_t seed = 1) {
  ut::Rng rng(seed);
  auto net = std::make_shared<nn::Sequential>();
  net->add(std::make_shared<nn::Linear>(64, 32, true, rng));
  net->add(std::make_shared<nn::Linear>(32, 8, true, rng));
  return net;
}

TEST(Injector, RestoreReturnsToQuantisedClean) {
  auto net = small_net();
  quant::ParamImage img(*net);
  // Clean reference after the quantisation round-trip.
  img.restore();
  std::vector<float> clean;
  for (auto& p : net->named_parameters()) {
    for (const float v : p.var.value().span()) clean.push_back(v);
  }
  Injector inj(img);
  ut::Rng rng(5);
  inj.inject_exact(50, rng);
  inj.restore();
  std::size_t i = 0;
  for (auto& p : net->named_parameters()) {
    for (const float v : p.var.value().span()) {
      EXPECT_EQ(v, clean[i++]);
    }
  }
}

TEST(Injector, ExactFlipCountChangesAtMostThatManyWords) {
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  std::vector<float> clean;
  for (auto& p : net->named_parameters()) {
    for (const float v : p.var.value().span()) clean.push_back(v);
  }
  Injector inj(img);
  ut::Rng rng(6);
  inj.inject_exact(10, rng);
  std::size_t changed = 0;
  std::size_t i = 0;
  for (auto& p : net->named_parameters()) {
    for (const float v : p.var.value().span()) {
      if (v != clean[i++]) ++changed;
    }
  }
  EXPECT_GT(changed, 0u);
  EXPECT_LE(changed, 10u);
}

TEST(Injector, ZeroRateInjectsNothing) {
  auto net = small_net();
  quant::ParamImage img(*net);
  Injector inj(img);
  ut::Rng rng(7);
  const InjectionRecord rec = inj.inject(0.0, rng);
  EXPECT_EQ(rec.fault_events, 0u);
}

TEST(Injector, FlipCountConcentratesAroundExpectation) {
  // Property: mean flips over many trials ~ bits * rate.
  auto net = small_net();
  quant::ParamImage img(*net);
  Injector inj(img);
  const double rate = 1e-3;
  const double expected =
      static_cast<double>(inj.bit_count()) * rate;  // ~107 for this net
  ut::Rng rng(8);
  double total = 0.0;
  constexpr int trials = 300;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(inj.inject(rate, rng).fault_events);
    inj.restore();
  }
  const double mean = total / trials;
  EXPECT_NEAR(mean, expected, expected * 0.1);
}

TEST(Injector, HighRateCorruptsManyParameters) {
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  std::vector<float> clean;
  for (auto& p : net->named_parameters()) {
    for (const float v : p.var.value().span()) clean.push_back(v);
  }
  Injector inj(img);
  ut::Rng rng(9);
  inj.inject(0.01, rng);  // 1% of bits
  std::size_t changed = 0;
  std::size_t i = 0;
  for (auto& p : net->named_parameters()) {
    for (const float v : p.var.value().span()) {
      if (v != clean[i++]) ++changed;
    }
  }
  // With 32 bits/word and 1% BER, ~27% of words are hit.
  EXPECT_GT(changed, clean.size() / 10);
}

TEST(Injector, DeterministicGivenSeed) {
  auto net_a = small_net();
  auto net_b = small_net();
  quant::ParamImage img_a(*net_a);
  quant::ParamImage img_b(*net_b);
  Injector inj_a(img_a);
  Injector inj_b(img_b);
  ut::Rng rng_a(11);
  ut::Rng rng_b(11);
  inj_a.inject(1e-3, rng_a);
  inj_b.inject(1e-3, rng_b);
  const auto pa = net_a->named_parameters();
  const auto pb = net_b->named_parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i].var.numel(); ++j) {
      EXPECT_EQ(pa[i].var.value()[j], pb[i].var.value()[j]);
    }
  }
}

TEST(Campaign, RunsTrialsAndRestores) {
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  const float clean0 = net->named_parameters()[0].var.value()[0];
  Injector inj(img);
  int evals = 0;
  CampaignConfig cfg;
  cfg.bit_error_rate = 1e-3;
  cfg.trials = 7;
  const CampaignResult res = run_campaign(
      inj,
      [&] {
        ++evals;
        return 0.5;
      },
      cfg);
  EXPECT_EQ(evals, 7);
  EXPECT_EQ(res.accuracies.size(), 7u);
  EXPECT_DOUBLE_EQ(res.mean_accuracy, 0.5);
  EXPECT_EQ(net->named_parameters()[0].var.value()[0], clean0);
}

TEST(Campaign, StatisticsComputed) {
  auto net = small_net();
  quant::ParamImage img(*net);
  Injector inj(img);
  double v = 0.0;
  CampaignConfig cfg;
  cfg.trials = 5;
  const CampaignResult res = run_campaign(
      inj,
      [&] {
        v += 0.1;
        return v;
      },
      cfg);
  EXPECT_NEAR(res.min_accuracy, 0.1, 1e-12);
  EXPECT_NEAR(res.max_accuracy, 0.5, 1e-12);
  EXPECT_NEAR(res.mean_accuracy, 0.3, 1e-12);
}

TEST(Campaign, AggregationMatchesHandComputedFixture) {
  CampaignResult r;
  r.accuracies = {0.75, 0.10, 0.40, 0.95, 0.30};
  aggregate(r);
  EXPECT_DOUBLE_EQ(r.mean_accuracy, (0.75 + 0.10 + 0.40 + 0.95 + 0.30) / 5.0);
  EXPECT_DOUBLE_EQ(r.min_accuracy, 0.10);
  EXPECT_DOUBLE_EQ(r.max_accuracy, 0.95);

  CampaignResult empty;
  aggregate(empty);
  EXPECT_DOUBLE_EQ(empty.mean_accuracy, 0.0);
  EXPECT_DOUBLE_EQ(empty.min_accuracy, 0.0);
  EXPECT_DOUBLE_EQ(empty.max_accuracy, 0.0);
}

namespace {

// One lane = one independent replica of the same network: identical seed,
// own image/injector, and an evaluate that reads the lane's own (faulty)
// parameters, so any cross-lane interference or trial-stream reordering
// would show up as a result difference.
CampaignWorker make_replica_worker(std::size_t /*lane*/) {
  struct Lane {
    std::shared_ptr<nn::Sequential> net = small_net(3);
    quant::ParamImage image{*net};
    std::unique_ptr<Injector> injector;
  };
  auto ctx = std::make_shared<Lane>();
  ctx->injector = std::make_unique<Injector>(ctx->image);
  CampaignWorker w;
  w.keepalive = ctx;
  w.injector = ctx->injector.get();
  w.evaluate = [ctx] {
    double sum = 0.0;
    for (auto& p : ctx->net->named_parameters()) {
      for (const float v : p.var.value().span()) sum += v;
    }
    return sum;
  };
  return w;
}

}  // namespace

TEST(Campaign, BitIdenticalAcrossThreadCounts) {
  CampaignConfig cfg;
  cfg.bit_error_rate = 5e-4;
  cfg.trials = 12;
  cfg.seed = 2024;
  cfg.threads = 1;
  const CampaignResult serial = run_campaign(make_replica_worker, cfg);
  ASSERT_EQ(serial.accuracies.size(), 12u);

  for (const std::size_t threads : {2u, 8u}) {
    cfg.threads = threads;
    const CampaignResult parallel = run_campaign(make_replica_worker, cfg);
    EXPECT_EQ(serial.accuracies, parallel.accuracies)
        << "threads = " << threads;
    EXPECT_EQ(serial.flip_counts, parallel.flip_counts)
        << "threads = " << threads;
    EXPECT_DOUBLE_EQ(serial.mean_accuracy, parallel.mean_accuracy);
    EXPECT_DOUBLE_EQ(serial.min_accuracy, parallel.min_accuracy);
    EXPECT_DOUBLE_EQ(serial.max_accuracy, parallel.max_accuracy);
  }
}

TEST(Campaign, ParallelMatchesLegacySerialOverload) {
  // The factory engine at threads > 1 must reproduce what the original
  // single-injector entry point computes for the same seed.
  auto net = small_net(3);
  quant::ParamImage img(*net);
  Injector inj(img);
  CampaignConfig cfg;
  cfg.bit_error_rate = 5e-4;
  cfg.trials = 9;
  cfg.seed = 77;
  const auto probe = [&] {
    double sum = 0.0;
    for (auto& p : net->named_parameters()) {
      for (const float v : p.var.value().span()) sum += v;
    }
    return sum;
  };
  const CampaignResult legacy = run_campaign(inj, probe, cfg);
  cfg.threads = 4;
  const CampaignResult parallel = run_campaign(make_replica_worker, cfg);
  EXPECT_EQ(legacy.accuracies, parallel.accuracies);
  EXPECT_EQ(legacy.flip_counts, parallel.flip_counts);
}

TEST(Campaign, SerialThrowRestoresCleanImage) {
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  std::vector<float> clean;
  for (auto& p : net->named_parameters()) {
    for (const float v : p.var.value().span()) clean.push_back(v);
  }
  Injector inj(img);
  CampaignConfig cfg;
  cfg.bit_error_rate = 1e-2;  // high rate: every trial flips something
  cfg.trials = 5;
  int evals = 0;
  EXPECT_THROW(run_campaign(
                   inj,
                   [&]() -> double {
                     if (++evals == 3) throw std::runtime_error("eval failed");
                     return 0.5;
                   },
                   cfg),
               std::runtime_error);
  // The model must be back on the clean image despite the mid-trial throw.
  std::size_t i = 0;
  for (auto& p : net->named_parameters()) {
    for (const float v : p.var.value().span()) {
      EXPECT_EQ(v, clean[i++]);
    }
  }
}

TEST(Campaign, ParallelThrowPropagatesToCaller) {
  CampaignConfig cfg;
  cfg.bit_error_rate = 1e-2;
  cfg.trials = 8;
  cfg.threads = 4;
  const auto throwing_factory = [](std::size_t lane) {
    CampaignWorker w = make_replica_worker(lane);
    w.evaluate = []() -> double {
      throw std::runtime_error("lane eval failed");
    };
    return w;
  };
  // The exception must surface on the calling thread, not std::terminate a
  // pool worker.
  EXPECT_THROW(run_campaign(throwing_factory, cfg), std::runtime_error);
}

TEST(Campaign, MoreLanesThanTrials) {
  CampaignConfig cfg;
  cfg.bit_error_rate = 5e-4;
  cfg.trials = 3;
  cfg.seed = 5;
  cfg.threads = 16;  // engine must clamp lanes to the trial count
  const CampaignResult r = run_campaign(make_replica_worker, cfg);
  EXPECT_EQ(r.accuracies.size(), 3u);
  cfg.threads = 1;
  const CampaignResult serial = run_campaign(make_replica_worker, cfg);
  EXPECT_EQ(serial.accuracies, r.accuracies);
}

TEST(Campaign, SessionWithoutSyncHookRebuildsOnInvalidate) {
  // Lanes clone a shared source at build time and carry no sync hook: an
  // invalidated session must rebuild them through the factory. A stale lane
  // would keep evaluating the pre-mutation parameter values, so reuse
  // instead of rebuild shows up as a result difference.
  const auto source = small_net(3);
  const auto make_source_clone_worker = [&source](std::size_t) {
    struct Lane {
      std::shared_ptr<nn::Sequential> net;
      std::unique_ptr<quant::ParamImage> image;
      std::unique_ptr<Injector> injector;
    };
    auto ctx = std::make_shared<Lane>();
    ctx->net = small_net(3);
    nn::copy_state(*source, *ctx->net);
    ctx->image = std::make_unique<quant::ParamImage>(*ctx->net);
    ctx->injector = std::make_unique<Injector>(*ctx->image);
    CampaignWorker w;
    w.keepalive = ctx;
    w.injector = ctx->injector.get();
    w.evaluate = [ctx] {
      double sum = 0.0;
      for (auto& p : ctx->net->named_parameters()) {
        for (const float v : p.var.value().span()) sum += v;
      }
      return sum;
    };
    return w;
  };

  CampaignConfig cfg;
  cfg.bit_error_rate = 5e-4;
  cfg.trials = 12;
  cfg.seed = 2024;
  cfg.threads = 4;
  CampaignSession session(make_source_clone_worker);
  const CampaignResult first = session.run(cfg);
  EXPECT_EQ(run_campaign(make_source_clone_worker, cfg).accuracies,
            first.accuracies);

  source->named_parameters()[0].var.value()[0] += 1.0f;
  session.invalidate();
  const CampaignResult rebuilt = session.run(cfg);
  const CampaignResult fresh = run_campaign(make_source_clone_worker, cfg);
  EXPECT_EQ(fresh.accuracies, rebuilt.accuracies);
  EXPECT_EQ(fresh.flip_counts, rebuilt.flip_counts);
  // The mutation must be visible in the results, or the rebuild check
  // above would pass vacuously on stale lanes.
  EXPECT_NE(first.accuracies, rebuilt.accuracies);
}

TEST(Campaign, ReproducibleWithSameSeed) {
  auto net = small_net();
  quant::ParamImage img(*net);
  Injector inj(img);
  CampaignConfig cfg;
  cfg.bit_error_rate = 5e-4;
  cfg.trials = 4;
  cfg.seed = 99;
  const auto probe = [&] {
    // Accuracy proxy: first parameter value (reflects injected faults).
    return static_cast<double>(net->named_parameters()[0].var.value()[0]);
  };
  const CampaignResult a = run_campaign(inj, probe, cfg);
  const CampaignResult b = run_campaign(inj, probe, cfg);
  EXPECT_EQ(a.accuracies, b.accuracies);
  EXPECT_EQ(a.flip_counts, b.flip_counts);
}

}  // namespace
}  // namespace fitact::fault
