// End-to-end integration: the full FitAct workflow (train -> profile ->
// protect -> post-train -> fault campaign) on a small model, asserting the
// paper's headline qualitative claims:
//   1. bounded protection beats the unprotected model under faults,
//   2. at high fault rates FitAct (per-neuron bounds) is at least as good as
//      layer-bound Clip-Act, and both beat Ranger's saturating restriction.
#include <gtest/gtest.h>

#include "core/bound_profiler.h"
#include "core/post_training.h"
#include "core/protection.h"
#include "data/synthetic_cifar.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "quant/param_image.h"
#include "util/log.h"

namespace fitact {
namespace {

struct Workbench {
  ev::ExperimentScale scale;
  ev::PreparedModel pm;

  static Workbench make() {
    ut::set_log_level(ut::LogLevel::warn);
    ev::ExperimentScale scale = ev::ExperimentScale::scaled();
    scale.train_size = 640;
    scale.test_size = 256;
    scale.train_epochs = 12;
    scale.profile_samples = 256;
    scale.eval_samples = 96;
    scale.trials = 6;
    scale.post.epochs = 2;
    scale.post.max_batches_per_epoch = 8;
    ev::PreparedModel pm = ev::prepare_model("tinycnn", 10, scale, "", 42);
    return Workbench{scale, std::move(pm)};
  }
};

Workbench& bench() {
  static Workbench w = Workbench::make();
  return w;
}

double mean_campaign_accuracy(Workbench& w, core::Scheme scheme, double rate,
                              std::uint64_t seed) {
  ev::protect_model(w.pm, scheme, w.scale);
  return ev::campaign_at_rate(w.pm, rate, w.scale, seed).mean_accuracy;
}

TEST(Integration, ModelLearnsTheTask) {
  EXPECT_GT(bench().pm.baseline_accuracy, 0.8);
}

TEST(Integration, CleanAccuracySurvivesProtection) {
  Workbench& w = bench();
  const double base = w.pm.baseline_accuracy;
  for (const auto scheme :
       {core::Scheme::clip_act, core::Scheme::ranger, core::Scheme::fitrelu}) {
    const ev::ProtectReport r = ev::protect_model(w.pm, scheme, w.scale);
    EXPECT_GT(r.clean_accuracy, base - 0.12)
        << "clean accuracy collapsed under " << core::to_string(scheme);
  }
}

TEST(Integration, ProtectionBeatsUnprotectedAtHighRate) {
  Workbench& w = bench();
  const double rate = 2e-4;  // scaled model => scaled-up rate (see DESIGN.md)
  const double unprotected =
      mean_campaign_accuracy(w, core::Scheme::relu, rate, 42);
  const double fitact =
      mean_campaign_accuracy(w, core::Scheme::fitrelu, rate, 42);
  EXPECT_GT(fitact, unprotected + 0.1);
}

TEST(Integration, FitActAtLeastMatchesClipActAtHighRate) {
  Workbench& w = bench();
  const double rate = 2e-4;
  const double clip =
      mean_campaign_accuracy(w, core::Scheme::clip_act, rate, 77);
  const double fit =
      mean_campaign_accuracy(w, core::Scheme::fitrelu, rate, 77);
  EXPECT_GE(fit, clip - 0.05);
}

TEST(Integration, ClipActBeatsRangerAtHighRate) {
  Workbench& w = bench();
  const double rate = 2e-4;
  const double ranger =
      mean_campaign_accuracy(w, core::Scheme::ranger, rate, 99);
  const double clip =
      mean_campaign_accuracy(w, core::Scheme::clip_act, rate, 99);
  EXPECT_GE(clip, ranger - 0.05);
}

TEST(Integration, AccuracyDegradesMonotonicallyInRateForUnprotected) {
  Workbench& w = bench();
  ev::protect_model(w.pm, core::Scheme::relu, w.scale);
  const double lo =
      ev::campaign_at_rate(w.pm, 1e-6, w.scale, 7).mean_accuracy;
  const double hi =
      ev::campaign_at_rate(w.pm, 1e-3, w.scale, 7).mean_accuracy;
  EXPECT_GE(lo, hi - 0.02);
}

TEST(Integration, FaultSpaceIncludesBounds) {
  Workbench& w = bench();
  ev::protect_model(w.pm, core::Scheme::fitrelu, w.scale);
  quant::ParamImage with_bounds(*w.pm.model);
  ev::protect_model(w.pm, core::Scheme::relu, w.scale);
  quant::ParamImage without_bounds(
      *w.pm.model, false,
      [](const std::string& name) {
        return name.find("lambda") == std::string::npos;
      });
  // The FitAct fault space is strictly larger: it contains the lambdas.
  EXPECT_GT(with_bounds.word_count(), without_bounds.word_count());
}

TEST(Integration, CampaignIsDeterministicEndToEnd) {
  Workbench& w = bench();
  ev::protect_model(w.pm, core::Scheme::clip_act, w.scale);
  const auto a = ev::campaign_at_rate(w.pm, 1e-4, w.scale, 1111);
  const auto b = ev::campaign_at_rate(w.pm, 1e-4, w.scale, 1111);
  EXPECT_EQ(a.accuracies, b.accuracies);
}

}  // namespace
}  // namespace fitact
