// Numerical gradient checks: every differentiable op is validated against a
// central-difference approximation on randomised inputs. This is the
// strongest correctness guarantee for the training substrate that both the
// conventional and the FitAct post-training stages rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "util/rng.h"

namespace fitact {
namespace {

/// Checks d scalar_fn / d input at `x` against central differences.
/// scalar_fn must rebuild the graph from the passed variable on every call.
void expect_gradcheck(const std::function<Variable(Variable&)>& scalar_fn,
                      Tensor x0, float eps = 1e-3f, float tol = 2e-2f) {
  Variable x(x0.clone(), true);
  Variable y = scalar_fn(x);
  ASSERT_EQ(y.numel(), 1) << "gradcheck requires scalar output";
  y.backward();
  const Tensor analytic = x.grad().clone();

  for (std::int64_t i = 0; i < x0.numel(); ++i) {
    Tensor xp = x0.clone();
    xp[i] += eps;
    Variable vp(xp, false);
    const float fp = scalar_fn(vp).value().item();
    Tensor xm = x0.clone();
    xm[i] -= eps;
    Variable vm(xm, false);
    const float fm = scalar_fn(vm).value().item();
    const float numeric = (fp - fm) / (2.0f * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tol * (1.0f + std::abs(numeric)))
        << "element " << i;
  }
}

TEST(GradCheck, Mul) {
  ut::Rng rng(1);
  const Tensor other = Tensor::randn(Shape{6}, rng);
  expect_gradcheck(
      [&](Variable& v) {
        Variable o(other, false);
        return ag::sum_of_squares(ag::mul(v, o));
      },
      Tensor::randn(Shape{6}, rng));
}

TEST(GradCheck, Scale) {
  ut::Rng rng(2);
  expect_gradcheck(
      [&](Variable& v) { return ag::sum_of_squares(ag::scale(v, -1.7f)); },
      Tensor::randn(Shape{5}, rng));
}

TEST(GradCheck, MatmulLeft) {
  ut::Rng rng(3);
  const Tensor b = Tensor::randn(Shape{4, 3}, rng);
  expect_gradcheck(
      [&](Variable& v) {
        Variable vb(b, false);
        return ag::sum_of_squares(ag::matmul(v, vb));
      },
      Tensor::randn(Shape{2, 4}, rng));
}

TEST(GradCheck, MatmulRight) {
  ut::Rng rng(4);
  const Tensor a = Tensor::randn(Shape{3, 4}, rng);
  expect_gradcheck(
      [&](Variable& v) {
        Variable va(a, false);
        return ag::sum_of_squares(ag::matmul(va, v));
      },
      Tensor::randn(Shape{4, 2}, rng));
}

TEST(GradCheck, LinearWeight) {
  ut::Rng rng(5);
  const Tensor x = Tensor::randn(Shape{3, 4}, rng);
  const Tensor bias = Tensor::randn(Shape{2}, rng);
  expect_gradcheck(
      [&](Variable& w) {
        Variable vx(x, false);
        Variable vb(bias, false);
        return ag::sum_of_squares(ag::linear(vx, w, vb));
      },
      Tensor::randn(Shape{2, 4}, rng));
}

TEST(GradCheck, LinearInput) {
  ut::Rng rng(6);
  const Tensor w = Tensor::randn(Shape{2, 4}, rng);
  expect_gradcheck(
      [&](Variable& x) {
        Variable vw(w, false);
        return ag::sum_of_squares(ag::linear(x, vw, Variable()));
      },
      Tensor::randn(Shape{3, 4}, rng));
}

TEST(GradCheck, LinearBias) {
  ut::Rng rng(7);
  const Tensor x = Tensor::randn(Shape{3, 4}, rng);
  const Tensor w = Tensor::randn(Shape{2, 4}, rng);
  expect_gradcheck(
      [&](Variable& b) {
        Variable vx(x, false);
        Variable vw(w, false);
        return ag::sum_of_squares(ag::linear(vx, vw, b));
      },
      Tensor::randn(Shape{2}, rng));
}

TEST(GradCheck, Conv2dWeight) {
  ut::Rng rng(8);
  const Tensor x = Tensor::randn(Shape{2, 2, 5, 5}, rng);
  expect_gradcheck(
      [&](Variable& w) {
        Variable vx(x, false);
        return ag::sum_of_squares(ag::conv2d(vx, w, Variable(), 1, 1));
      },
      Tensor::randn(Shape{3, 2, 3, 3}, rng));
}

TEST(GradCheck, Conv2dInput) {
  ut::Rng rng(9);
  const Tensor w = Tensor::randn(Shape{3, 2, 3, 3}, rng);
  expect_gradcheck(
      [&](Variable& x) {
        Variable vw(w, false);
        return ag::sum_of_squares(ag::conv2d(x, vw, Variable(), 1, 1));
      },
      Tensor::randn(Shape{1, 2, 4, 4}, rng));
}

TEST(GradCheck, Conv2dStridedInput) {
  ut::Rng rng(10);
  const Tensor w = Tensor::randn(Shape{2, 1, 3, 3}, rng);
  expect_gradcheck(
      [&](Variable& x) {
        Variable vw(w, false);
        return ag::sum_of_squares(ag::conv2d(x, vw, Variable(), 2, 1));
      },
      Tensor::randn(Shape{1, 1, 6, 6}, rng));
}

TEST(GradCheck, Conv2dBias) {
  ut::Rng rng(11);
  const Tensor x = Tensor::randn(Shape{2, 1, 4, 4}, rng);
  const Tensor w = Tensor::randn(Shape{2, 1, 3, 3}, rng);
  expect_gradcheck(
      [&](Variable& b) {
        Variable vx(x, false);
        Variable vw(w, false);
        return ag::sum_of_squares(ag::conv2d(vx, vw, b, 1, 0));
      },
      Tensor::randn(Shape{2}, rng));
}

TEST(GradCheck, ReluAwayFromKink) {
  ut::Rng rng(12);
  // Keep values away from 0 where relu is non-differentiable.
  Tensor x = Tensor::randn(Shape{8}, rng);
  for (auto& v : x.span()) {
    if (std::abs(v) < 0.2f) v += (v >= 0 ? 0.4f : -0.4f);
  }
  expect_gradcheck(
      [&](Variable& v) { return ag::sum_of_squares(ag::relu(v)); }, x);
}

TEST(GradCheck, FitReluWrtInput) {
  ut::Rng rng(13);
  Tensor x = Tensor::rand_uniform(Shape{2, 6}, rng, 0.3f, 3.0f);
  const Tensor lambda = Tensor::rand_uniform(Shape{6}, rng, 0.5f, 2.5f);
  expect_gradcheck(
      [&](Variable& v) {
        Variable l(lambda, false);
        return ag::sum_of_squares(ag::fitrelu(v, l, 3.0f));
      },
      x);
}

TEST(GradCheck, FitReluWrtLambdaPerNeuron) {
  ut::Rng rng(14);
  const Tensor x = Tensor::rand_uniform(Shape{3, 5}, rng, 0.2f, 3.0f);
  expect_gradcheck(
      [&](Variable& l) {
        Variable vx(x, false);
        return ag::sum_of_squares(ag::fitrelu(vx, l, 3.0f));
      },
      Tensor::rand_uniform(Shape{5}, rng, 0.5f, 2.5f));
}

TEST(GradCheck, FitReluWrtLambdaPerChannel4d) {
  ut::Rng rng(15);
  const Tensor x = Tensor::rand_uniform(Shape{2, 3, 2, 2}, rng, 0.2f, 3.0f);
  expect_gradcheck(
      [&](Variable& l) {
        Variable vx(x, false);
        return ag::sum_of_squares(ag::fitrelu(vx, l, 3.0f));
      },
      Tensor::rand_uniform(Shape{3}, rng, 0.5f, 2.5f));
}

TEST(GradCheck, FitReluWrtLambdaPerLayer) {
  ut::Rng rng(16);
  const Tensor x = Tensor::rand_uniform(Shape{2, 4}, rng, 0.2f, 3.0f);
  expect_gradcheck(
      [&](Variable& l) {
        Variable vx(x, false);
        return ag::sum_of_squares(ag::fitrelu(vx, l, 3.0f));
      },
      Tensor::rand_uniform(Shape{1}, rng, 0.5f, 2.5f));
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  ut::Rng rng(17);
  expect_gradcheck(
      [&](Variable& v) { return ag::softmax_cross_entropy(v, {1, 0, 2}); },
      Tensor::randn(Shape{3, 4}, rng));
}

TEST(GradCheck, BatchNormTrainingInput) {
  ut::Rng rng(18);
  const Tensor gamma = Tensor::rand_uniform(Shape{2}, rng, 0.5f, 1.5f);
  const Tensor beta = Tensor::randn(Shape{2}, rng);
  expect_gradcheck(
      [&](Variable& x) {
        Variable vg(gamma, false);
        Variable vb(beta, false);
        Tensor rm = Tensor::zeros(Shape{2});
        Tensor rv = Tensor::ones(Shape{2});
        return ag::sum_of_squares(
            ag::batch_norm2d(x, vg, vb, rm, rv, true, 0.1f, 1e-5f));
      },
      Tensor::randn(Shape{3, 2, 2, 2}, rng), 1e-2f, 4e-2f);
}

TEST(GradCheck, BatchNormGamma) {
  ut::Rng rng(19);
  const Tensor x = Tensor::randn(Shape{3, 2, 2, 2}, rng);
  const Tensor beta = Tensor::randn(Shape{2}, rng);
  expect_gradcheck(
      [&](Variable& g) {
        Variable vx(x, false);
        Variable vb(beta, false);
        Tensor rm = Tensor::zeros(Shape{2});
        Tensor rv = Tensor::ones(Shape{2});
        return ag::sum_of_squares(
            ag::batch_norm2d(vx, g, vb, rm, rv, true, 0.1f, 1e-5f));
      },
      Tensor::rand_uniform(Shape{2}, rng, 0.5f, 1.5f));
}

TEST(GradCheck, BatchNormEvalInput) {
  ut::Rng rng(20);
  const Tensor gamma = Tensor::rand_uniform(Shape{2}, rng, 0.5f, 1.5f);
  const Tensor beta = Tensor::randn(Shape{2}, rng);
  Tensor rm = Tensor::randn(Shape{2}, rng);
  Tensor rv = Tensor::rand_uniform(Shape{2}, rng, 0.5f, 2.0f);
  expect_gradcheck(
      [&](Variable& x) {
        Variable vg(gamma, false);
        Variable vb(beta, false);
        Tensor rm_copy = rm.clone();
        Tensor rv_copy = rv.clone();
        return ag::sum_of_squares(
            ag::batch_norm2d(x, vg, vb, rm_copy, rv_copy, false, 0.1f, 1e-5f));
      },
      Tensor::randn(Shape{3, 2, 2, 2}, rng));
}

TEST(GradCheck, GlobalAvgPool) {
  ut::Rng rng(21);
  expect_gradcheck(
      [&](Variable& x) {
        return ag::sum_of_squares(ag::global_avg_pool(x));
      },
      Tensor::randn(Shape{2, 3, 3, 3}, rng));
}

TEST(GradCheck, MaxPoolAwayFromTies) {
  ut::Rng rng(22);
  // Random continuous values: ties have measure ~0.
  expect_gradcheck(
      [&](Variable& x) {
        return ag::sum_of_squares(ag::max_pool2d(x, 2, 2));
      },
      Tensor::randn(Shape{1, 2, 4, 4}, rng));
}

TEST(GradCheck, CompositeNetworkSlice) {
  // conv -> relu -> pool -> flatten -> CE: a miniature of the real models.
  ut::Rng rng(23);
  const Tensor x = Tensor::randn(Shape{2, 1, 4, 4}, rng);
  expect_gradcheck(
      [&](Variable& w) {
        Variable vx(x, false);
        Variable h = ag::conv2d(vx, w, Variable(), 1, 1);
        h = ag::relu(h);
        h = ag::max_pool2d(h, 2, 2);
        h = ag::flatten(h);
        return ag::softmax_cross_entropy(h, {1, 0});
      },
      Tensor::randn(Shape{2, 1, 3, 3}, rng), 1e-2f, 4e-2f);
}

}  // namespace
}  // namespace fitact
