// Tests for the resilient inference serving subsystem (src/serve + the
// ev::make_server adapter): micro-batched outputs must be bit-identical to
// direct single-sample forwards for every lane count / batch size / arrival
// order, and the clamp-rate fault detector must catch injected parameter
// faults and serve recovered (clean) outputs — deterministically at lane
// counts 1/2/8.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <numeric>
#include <vector>

#include "autograd/variable.h"
#include "eval/experiment.h"
#include "eval/serving.h"
#include "fault/injector.h"
#include "serve/server.h"
#include "util/rng.h"

namespace fitact::ev {
namespace {

ExperimentScale tiny_scale() {
  ExperimentScale scale = ExperimentScale::scaled();
  scale.train_size = 96;
  scale.test_size = 48;
  scale.train_epochs = 2;
  scale.eval_samples = 24;
  scale.trials = 4;
  return scale;
}

PreparedModel prepared(std::uint64_t seed) {
  const ExperimentScale scale = tiny_scale();
  PreparedModel pm = prepare_model("tinycnn", 10, scale, "", seed);
  (void)protect_model(pm, core::Scheme::clip_act, scale);
  return pm;
}

std::vector<Tensor> test_samples(const PreparedModel& pm, std::int64_t count) {
  std::vector<Tensor> samples;
  samples.reserve(static_cast<std::size_t>(count));
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < count; ++i) {
    samples.push_back(pm.test->batch(i, 1, &labels));  // [1,3,32,32]
  }
  return samples;
}

/// Direct single-sample forwards through pm.model — the reference the
/// server must match bit-for-bit. Run it only after make_server has
/// quantisation-round-tripped pm.model.
std::vector<Tensor> reference_logits(const PreparedModel& pm,
                                     const std::vector<Tensor>& samples) {
  const NoGradGuard no_grad;
  pm.model->set_training(false);
  std::vector<Tensor> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    out.push_back(pm.model->forward(Variable(s)).value().clone());
  }
  return out;
}

void expect_bit_identical(const Tensor& got, const Tensor& want,
                          const std::string& context) {
  ASSERT_EQ(got.numel(), want.numel()) << context;
  for (std::int64_t j = 0; j < got.numel(); ++j) {
    EXPECT_EQ(got[j], want[j]) << context << " logit " << j;
  }
}

// Acceptance contract (a): server outputs are bit-identical to direct
// single-sample model->forward for every request, regardless of batch
// assembly, lane count, or arrival order.
TEST(Serve, BitIdenticalAcrossLanesBatchingAndArrivalOrder) {
  PreparedModel pm = prepared(29);
  const std::vector<Tensor> samples = test_samples(pm, 24);
  // One throwaway server applies the (idempotent) fixed-point round-trip to
  // pm.model, so the reference below sees the deployed parameter values.
  { const auto warm = make_server(pm); }
  const std::vector<Tensor> ref = reference_logits(pm, samples);

  for (const std::size_t lanes : {1u, 2u, 8u}) {
    for (const std::int64_t batch : {std::int64_t{1}, std::int64_t{3},
                                     std::int64_t{8}}) {
      ServeOptions options;
      options.server.lanes = lanes;
      options.server.max_batch = batch;
      const auto server = make_server(pm, options);
      const std::string context = "lanes " + std::to_string(lanes) +
                                  " batch " + std::to_string(batch);

      // Shuffled arrival order, different per configuration.
      std::vector<std::size_t> order(samples.size());
      std::iota(order.begin(), order.end(), 0u);
      ut::Rng rng(lanes * 100 + static_cast<std::uint64_t>(batch));
      rng.shuffle(order);

      std::vector<std::future<serve::RequestResult>> futures(samples.size());
      for (const std::size_t i : order) {
        futures[i] = server->submit(samples[i]);
      }
      for (std::size_t i = 0; i < samples.size(); ++i) {
        const serve::RequestResult r = futures[i].get();
        expect_bit_identical(r.logits, ref[i],
                             context + " request " + std::to_string(i));
        EXPECT_FALSE(r.recovered) << context;
        EXPECT_LT(r.lane, lanes) << context;
        EXPECT_GE(r.batch_size, 1) << context;
        EXPECT_LE(r.batch_size, batch) << context;
      }
      const serve::ServerStats stats = server->stats();
      EXPECT_EQ(stats.requests, samples.size()) << context;
      // Clean traffic must never trip the calibrated detector, for any
      // batch assembly (the threshold bounds every batch's rate by
      // construction — see ServeOptions::calibration_margin).
      EXPECT_EQ(stats.detections, 0u) << context;
      EXPECT_EQ(stats.recoveries, 0u) << context;
      EXPECT_GE(stats.batches,
                (samples.size() + static_cast<std::size_t>(batch) - 1) /
                    static_cast<std::size_t>(batch))
          << context;
    }
  }
}

// Acceptance contract (b): with faults injected into a lane's live
// parameters, the clamp-rate detector fires and post-recovery outputs match
// the clean model — deterministically at lane counts 1/2/8.
TEST(Serve, DetectsInjectedFaultsAndServesRecoveredOutputs) {
  for (const std::size_t lanes : {1u, 2u, 8u}) {
    PreparedModel pm = prepared(31);
    ServeOptions options;
    options.server.lanes = lanes;
    options.server.max_batch = 4;
    const auto server = make_server(pm, options);
    const std::vector<Tensor> samples = test_samples(pm, 24);
    const std::vector<Tensor> ref = reference_logits(pm, samples);
    const std::string context = "lanes " + std::to_string(lanes);

    // Corrupt every lane's live parameters (not its clean image): 32
    // deterministic bit-28 flips turn weights into ±2^12-scale excursions,
    // which the bounded activations clamp — the observable symptom.
    for (std::size_t l = 0; l < lanes; ++l) {
      server->with_lane(l, [l](nn::Module&, quant::ParamImage& image) {
        fault::Injector injector(image);
        ut::Rng rng(900 + l);
        (void)injector.inject_exact_at_bit(32, 28, rng);
      });
    }

    std::vector<std::future<serve::RequestResult>> futures;
    futures.reserve(samples.size());
    for (const auto& s : samples) futures.push_back(server->submit(s));
    std::size_t recovered_results = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const serve::RequestResult r = futures[i].get();
      // Whether this request's batch hit the faulty parameters or ran after
      // the lane was scrubbed, the answer must equal the clean model's.
      expect_bit_identical(r.logits, ref[i],
                           context + " request " + std::to_string(i));
      recovered_results += r.recovered ? 1u : 0u;
    }
    const serve::ServerStats stats = server->stats();
    EXPECT_GE(stats.detections, 1u) << context;
    EXPECT_GE(stats.recoveries, 1u) << context;
    EXPECT_EQ(stats.post_recovery_alarms, 0u) << context;
    EXPECT_GE(recovered_results, 1u) << context;

    if (lanes == 1) {
      // The single lane is clean after its first recovery: a second wave of
      // traffic must add no detections.
      const std::uint64_t detections_before = stats.detections;
      for (const auto& s : samples) (void)server->infer(s);
      EXPECT_EQ(server->stats().detections, detections_before);
    }
  }
}

// Without detection, the same injected faults must visibly corrupt outputs
// — guards the recovery test against passing vacuously (i.e. proves the
// injected faults matter and the detector is doing real work).
TEST(Serve, WithoutDetectionFaultsCorruptOutputs) {
  PreparedModel pm = prepared(31);
  ServeOptions options;
  options.server.lanes = 1;
  options.server.max_batch = 4;
  options.server.detection = false;
  const auto server = make_server(pm, options);
  const std::vector<Tensor> samples = test_samples(pm, 24);
  const std::vector<Tensor> ref = reference_logits(pm, samples);

  server->with_lane(0, [](nn::Module&, quant::ParamImage& image) {
    fault::Injector injector(image);
    ut::Rng rng(900);
    (void)injector.inject_exact_at_bit(32, 28, rng);
  });

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const serve::RequestResult r = server->infer(samples[i]);
    for (std::int64_t j = 0; j < r.logits.numel(); ++j) {
      if (r.logits[j] != ref[i][j]) {
        ++mismatches;
        break;
      }
    }
  }
  EXPECT_GT(mismatches, 0u);
  EXPECT_EQ(server->stats().detections, 0u);
}

TEST(Serve, BatchingWindowServesPartialBatches) {
  PreparedModel pm = prepared(29);
  ServeOptions options;
  options.server.lanes = 2;
  options.server.max_batch = 8;
  options.server.batch_window = std::chrono::microseconds(2000);
  const auto server = make_server(pm, options);
  const std::vector<Tensor> samples = test_samples(pm, 5);
  const std::vector<Tensor> ref = reference_logits(pm, samples);

  // Fewer requests than max_batch: the window must expire and the partial
  // batch must still be served (and still bit-identically).
  std::vector<std::future<serve::RequestResult>> futures;
  for (const auto& s : samples) futures.push_back(server->submit(s));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    expect_bit_identical(futures[i].get().logits, ref[i],
                         "window request " + std::to_string(i));
  }
  server->drain();
  EXPECT_EQ(server->stats().requests, samples.size());
}

TEST(Serve, RejectsMalformedRequestsAndConfigs) {
  PreparedModel pm = prepared(29);
  const auto server = make_server(pm);

  EXPECT_THROW((void)server->submit(Tensor()), std::invalid_argument);
  EXPECT_THROW((void)server->submit(Tensor::zeros(Shape{10})),
               std::invalid_argument);
  // First request fixes the sample shape; a different one is refused.
  (void)server->infer(Tensor::zeros(Shape{3, 32, 32}));
  EXPECT_THROW((void)server->submit(Tensor::zeros(Shape{3, 16, 16})),
               std::invalid_argument);
  EXPECT_THROW(server->with_lane(99, [](nn::Module&, quant::ParamImage&) {}),
               std::out_of_range);

  serve::ServerOptions bad;
  bad.lanes = 0;
  EXPECT_THROW(serve::InferenceServer(
                   [](std::size_t) { return serve::Lane{}; }, bad),
               std::invalid_argument);
  serve::ServerOptions bad_batch;
  bad_batch.max_batch = 0;
  EXPECT_THROW(serve::InferenceServer(
                   [](std::size_t) { return serve::Lane{}; }, bad_batch),
               std::invalid_argument);
  EXPECT_THROW(serve::InferenceServer(serve::LaneFactory{},
                                      serve::ServerOptions{}),
               std::invalid_argument);
  // A factory handing back an empty lane is rejected too.
  EXPECT_THROW(serve::InferenceServer(
                   [](std::size_t) { return serve::Lane{}; },
                   serve::ServerOptions{}),
               std::invalid_argument);
}

TEST(Serve, CalibrationMeasuresCleanPeakRate) {
  PreparedModel pm = prepared(29);
  // Round-trip once so the measurement sees deployed parameter values.
  { const auto warm = make_server(pm); }
  const double peak = peak_clean_clamp_rate(pm, 24);
  EXPECT_GE(peak, 0.0);
  EXPECT_LT(peak, 0.5);  // clean traffic must not clamp half its activations
  // Deterministic: same model, same samples, same rate.
  EXPECT_EQ(peak, peak_clean_clamp_rate(pm, 24));
}

// A sample budget above the test split is a clamp to the split size, never
// a silent substitution; a non-positive budget is a configuration error
// that must be rejected, not defaulted around.
TEST(Serve, CalibrationSampleBudgetIsValidatedAndClamped) {
  PreparedModel pm = prepared(29);
  { const auto warm = make_server(pm); }
  EXPECT_THROW((void)peak_clean_clamp_rate(pm, 0), std::invalid_argument);
  EXPECT_THROW((void)peak_clean_clamp_rate(pm, -5), std::invalid_argument);
  // 10'000 requested, 48 available: identical to measuring the full split.
  EXPECT_EQ(peak_clean_clamp_rate(pm, 10'000),
            peak_clean_clamp_rate(pm, pm.test->size()));

  ServeOptions bad;
  bad.calibration_samples = 0;
  EXPECT_THROW(make_server(pm, bad), std::invalid_argument);
  bad.calibration_samples = -1;
  EXPECT_THROW(make_server(pm, bad), std::invalid_argument);
}

// An unprotected model has no bounds, so its clamp rate is identically
// zero and a detector calibrated on it could never fire. make_server must
// disable detection (visibly, in options()) instead of serving behind an
// armed-looking flag.
TEST(Serve, DetectionDisabledWhenNoSiteHasBounds) {
  const ExperimentScale scale = tiny_scale();
  PreparedModel pm = prepare_model("tinycnn", 10, scale, "", 37);
  // No protect_model: every site is still plain ReLU with no bounds.
  ServeOptions options;
  options.server.detection = true;
  const auto server = make_server(pm, options);
  EXPECT_FALSE(server->options().detection);
  // The server still serves; the flag is the only thing that changed.
  (void)server->infer(Tensor::zeros(Shape{3, 32, 32}));

  // With bounds installed, the same configuration keeps detection on.
  PreparedModel protected_pm = prepared(37);
  const auto armed = make_server(protected_pm, options);
  EXPECT_TRUE(armed->options().detection);
}

}  // namespace
}  // namespace fitact::ev
