// Tests for recorded inference plans (src/nn/plan.h): planned execution
// must be bit-identical to the eager forward path for every zoo model and
// batch size, steady-state execute must not touch the heap, planned serving
// lanes must agree bit-for-bit with eager lanes at every lane count, and
// recording must fail loudly (naming the module) for train-only modules and
// modules without a record() override.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "core/activation.h"
#include "core/protection.h"
#include "eval/experiment.h"
#include "eval/serving.h"
#include "models/registry.h"
#include "nn/layers.h"
#include "nn/plan.h"
#include "serve/server.h"
#include "tensor/kernels/kernels.h"
#include "util/rng.h"

// Allocation counting is meaningless under sanitizers (their runtimes own
// the allocator and allocate internally), so the counter and its test are
// compiled out there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FITACT_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FITACT_COUNT_ALLOCS 0
#else
#define FITACT_COUNT_ALLOCS 1
#endif
#else
#define FITACT_COUNT_ALLOCS 1
#endif

#if FITACT_COUNT_ALLOCS
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_malloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

// Counting replacements for the global allocation functions; only the
// unaligned forms are replaced (over-aligned allocations fall through to
// the default aligned operator new, uncounted — none occur on the plan
// execute path).
void* operator new(std::size_t size) { return counted_malloc(size); }
void* operator new[](std::size_t size) { return counted_malloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // FITACT_COUNT_ALLOCS

namespace fitact {
namespace {

/// Zoo model at test width, in eval mode, with bounds seeded from a short
/// random-input profiling pass when the scheme needs them.
std::shared_ptr<nn::Module> zoo_model(const std::string& name,
                                      core::Scheme scheme,
                                      std::uint64_t seed) {
  models::ModelConfig cfg;
  cfg.num_classes = 10;
  cfg.width_mult = 0.125f;
  cfg.seed = seed;
  auto model = name == "tinycnn" ? models::make_tinycnn(cfg)
                                 : models::make_model(name, cfg);
  model->set_training(false);
  if (scheme != core::Scheme::relu) {
    const auto sites = core::collect_activations(*model);
    for (const auto& site : sites) site->set_profiling(true);
    ut::Rng rng(seed + 1);
    const NoGradGuard no_grad;
    for (int i = 0; i < 2; ++i) {
      (void)model->forward(
          Variable(Tensor::randn(Shape{2, 3, 32, 32}, rng), false));
    }
    for (const auto& site : sites) site->set_profiling(false);
    core::apply_protection(*model, scheme);
  }
  return model;
}

void expect_bit_identical(const Tensor& got, const Tensor& want,
                          const std::string& context) {
  ASSERT_EQ(got.numel(), want.numel()) << context;
  for (std::int64_t j = 0; j < got.numel(); ++j) {
    ASSERT_EQ(got[j], want[j]) << context << " element " << j;
  }
}

// Acceptance contract: for every zoo model, planned execution reproduces
// the eager forward bit-for-bit at batch sizes 1 / 3 / 8 (covering exact
// bucket hits and batches rounded up into a larger bucket), including on
// repeated executes of the same plan (steady state).
class PlanZoo : public ::testing::TestWithParam<const char*> {};

TEST_P(PlanZoo, PlanMatchesEagerBitForBitAcrossBatchSizes) {
  const auto model = zoo_model(GetParam(), core::Scheme::fitrelu, 7);
  const auto plan = nn::InferencePlan::compile(model, Shape{3, 32, 32}, 8);
  EXPECT_GT(plan->op_count(), 0u);
  ut::Rng rng(99);
  const NoGradGuard no_grad;
  // The contract must hold on every kernel backend. Both engines call the
  // same dispatched kernels, so it holds by construction — this matrix
  // pins that construction under forced scalar and under the
  // best-available backend (identical when the host lacks AVX2). The
  // eager reference is recomputed inside the guard: plan-vs-eager
  // identity is within a backend, GEMM results differ across backends.
  for (const kern::Backend backend :
       {kern::Backend::scalar,
        kern::avx2_supported() ? kern::Backend::avx2 : kern::Backend::scalar}) {
    const kern::BackendGuard guard(backend);
    for (const std::int64_t b : {1, 3, 8}) {
      const Tensor x = Tensor::randn(Shape{b, 3, 32, 32}, rng);
      const Tensor want = model->forward(Variable(x, false)).value();
      Tensor& staging = plan->input_view(b);
      std::memcpy(staging.data(), x.data(),
                  sizeof(float) * static_cast<std::size_t>(x.numel()));
      for (int pass = 0; pass < 2; ++pass) {
        const Tensor& got = plan->execute(b);
        expect_bit_identical(got, want,
                             std::string(GetParam()) + " backend " +
                                 kern::backend_name(backend) + " batch " +
                                 std::to_string(b) + " pass " +
                                 std::to_string(pass));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, PlanZoo,
                         ::testing::Values("tinycnn", "alexnet", "vgg16",
                                           "resnet50"));

// Fusion acceptance matrix: the conv/linear + bias + bound-clamp fusion
// pass must be a pure performance transform. For every zoo model, the
// fused plan reproduces both the eager forward and the unfused plan
// bit-for-bit at batch 1 / 3 / 8 on both kernel backends, and wherever a
// pair actually fuses the dead intermediate must shrink the arena.
class PlanFusion : public ::testing::TestWithParam<const char*> {};

TEST_P(PlanFusion, FusedPlanMatchesEagerAndUnfusedBitForBit) {
  const auto model = zoo_model(GetParam(), core::Scheme::clip_act, 43);
  const auto fused = nn::InferencePlan::compile(model, Shape{3, 32, 32}, 8,
                                                /*fuse=*/true);
  const auto unfused = nn::InferencePlan::compile(model, Shape{3, 32, 32}, 8,
                                                  /*fuse=*/false);
  EXPECT_EQ(unfused->fused_op_count(), 0u);
  // Each fused pair removes exactly one op from the sequence, and each
  // BN-folded triple removes one more on top of its pair's.
  EXPECT_EQ(fused->op_count() + fused->fused_op_count() +
                fused->bn_folded_op_count(),
            unfused->op_count());
  // Killing intermediates can only ever release liveness pressure.
  EXPECT_LE(fused->arena_bytes(), unfused->arena_bytes());
  const std::string name = GetParam();
  // Every zoo model now fuses: direct conv->act / linear->act pairs, and
  // resnet50's conv->bn->act triples via the BatchNorm fold.
  EXPECT_GT(fused->fused_op_count(), 0u);
  if (name == "resnet50") {
    EXPECT_GT(fused->bn_folded_op_count(), 0u);
  } else {
    EXPECT_EQ(fused->bn_folded_op_count(), 0u);
  }
  if (name == "tinycnn" || name == "alexnet") {
    // Here an activation output participates in the peak-liveness set, so
    // the dead intermediate must shrink the arena strictly. (vgg16's peak
    // is conv-input + im2col scratch + conv-output at each back-to-back
    // conv pair with or without fusion, so its footprint merely ties.)
    EXPECT_LT(fused->arena_bytes(), unfused->arena_bytes());
  }

  ut::Rng rng(101);
  const NoGradGuard no_grad;
  for (const kern::Backend backend :
       {kern::Backend::scalar,
        kern::avx2_supported() ? kern::Backend::avx2 : kern::Backend::scalar}) {
    const kern::BackendGuard guard(backend);
    for (const std::int64_t b : {1, 3, 8}) {
      const Tensor x = Tensor::randn(Shape{b, 3, 32, 32}, rng);
      const Tensor want = model->forward(Variable(x, false)).value();
      const std::string context = std::string(GetParam()) + " backend " +
                                  kern::backend_name(backend) + " batch " +
                                  std::to_string(b);
      std::memcpy(fused->input_view(b).data(), x.data(),
                  sizeof(float) * static_cast<std::size_t>(x.numel()));
      std::memcpy(unfused->input_view(b).data(), x.data(),
                  sizeof(float) * static_cast<std::size_t>(x.numel()));
      const Tensor& got = fused->execute(b);
      expect_bit_identical(got, want, context + " fused vs eager");
      expect_bit_identical(unfused->execute(b), got,
                           context + " unfused vs fused");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, PlanFusion,
                         ::testing::Values("tinycnn", "alexnet", "vgg16",
                                           "resnet50"));

// Fused clamp-event counting must tally exactly what the standalone
// activation op would have: same per-site events, same inspected totals.
// Inputs are drawn wider than the profiling pass so some pre-activations
// genuinely exceed their bounds and the event comparison is non-trivial.
TEST(PlanFusion, FusedClampCountsEqualUnfused) {
  const auto model = zoo_model("tinycnn", core::Scheme::clip_act, 47);
  const auto sites = core::collect_activations(*model);
  for (const auto& site : sites) site->set_clamp_counting(true);
  const auto fused = nn::InferencePlan::compile(model, Shape{3, 32, 32}, 4,
                                                /*fuse=*/true);
  const auto unfused = nn::InferencePlan::compile(model, Shape{3, 32, 32}, 4,
                                                  /*fuse=*/false);
  ASSERT_GT(fused->fused_op_count(), 0u);
  ut::Rng rng(53);
  const Tensor x = Tensor::rand_uniform(Shape{3, 3, 32, 32}, rng, -4.0f, 4.0f);
  const auto run = [&](nn::InferencePlan& plan) {
    core::reset_clamp_counters(sites);
    std::memcpy(plan.input_view(3).data(), x.data(),
                sizeof(float) * static_cast<std::size_t>(x.numel()));
    (void)plan.execute(3);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> counts;
    counts.reserve(sites.size());
    for (const auto& site : sites) {
      counts.emplace_back(site->clamp_events(), site->clamp_total());
    }
    return counts;
  };
  const auto fused_counts = run(*fused);
  const auto unfused_counts = run(*unfused);
  ASSERT_EQ(fused_counts.size(), unfused_counts.size());
  std::uint64_t events = 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < fused_counts.size(); ++i) {
    EXPECT_EQ(fused_counts[i].first, unfused_counts[i].first)
        << "site " << i << " events";
    EXPECT_EQ(fused_counts[i].second, unfused_counts[i].second)
        << "site " << i << " total";
    events += fused_counts[i].first;
    total += fused_counts[i].second;
  }
  EXPECT_GT(events, 0u) << "inputs wide enough to clamp somewhere";
  EXPECT_GT(total, 0u);
  for (const auto& site : sites) site->set_clamp_counting(false);
  core::reset_clamp_counters(sites);
}

// ---- Int8 quantized plans --------------------------------------------------

/// Max-abs over a tensor (the input calibration the serving layer runs).
float max_abs(const Tensor& t) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    m = std::max(m, std::abs(t[i]));
  }
  return m;
}

// Int8 acceptance matrix: for every zoo model under a bounded clamp scheme,
// the quantization pass must convert at least one fused op, the int8 plan's
// outputs must stay close to the fp32 plan's (block-quantized weights and
// bound-derived activation scales keep per-layer error ~1%), and — the
// stronger contract — the int8 forward must be bit-identical across kernel
// backends (exact int32 GEMM + branch-identical quantize + FMA-free
// epilogues).
class PlanInt8 : public ::testing::TestWithParam<const char*> {};

TEST_P(PlanInt8, ConvertsOpsStaysCloseToFp32AndMatchesAcrossBackends) {
  const auto model = zoo_model(GetParam(), core::Scheme::clip_act, 43);
  ut::Rng rng(71);
  const NoGradGuard no_grad;
  std::vector<Tensor> inputs;
  float range = 0.0f;
  for (const std::int64_t b : {1, 3, 8}) {
    inputs.push_back(Tensor::randn(Shape{b, 3, 32, 32}, rng));
    range = std::max(range, max_abs(inputs.back()));
  }
  const auto fp32 = nn::InferencePlan::compile(model, Shape{3, 32, 32}, 8);
  const auto int8 = nn::InferencePlan::compile(model, Shape{3, 32, 32}, 8,
                                               /*fuse=*/true,
                                               nn::Precision::int8, range);
  EXPECT_EQ(int8->precision(), nn::Precision::int8);
  EXPECT_GT(int8->int8_op_count(), 0u);
  EXPECT_LE(int8->int8_op_count(), int8->fused_op_count());

  const auto run = [](nn::InferencePlan& plan, const Tensor& x) {
    const std::int64_t b = x.shape()[0];
    std::memcpy(plan.input_view(b).data(), x.data(),
                sizeof(float) * static_cast<std::size_t>(x.numel()));
    return plan.execute(b).clone();
  };
  // Closeness on both backends. Whole-model cross-backend bit-identity
  // does not hold here: the final classifier linear has no trailing
  // activation, so it stays fp32, and fp32 GEMM is only error-bounded
  // across backends. (FullyQuantizedForwardBitIdenticalAcrossBackends
  // below pins bit-identity on a model where every GEMM quantizes;
  // int8_gemm_fuzz_test pins it per kernel.)
  for (const Tensor& x : inputs) {
    const Tensor want = run(*fp32, x);
    for (const kern::Backend backend :
         {kern::Backend::scalar, kern::avx2_supported()
                                     ? kern::Backend::avx2
                                     : kern::Backend::scalar}) {
      const kern::BackendGuard guard(backend);
      const Tensor got = run(*int8, x);
      // Quantized logits track the fp32 logits in relative L2. The bound
      // is depth-tolerant (vgg16 stacks 13 quantized convs of random
      // weights, the worst accumulation case); the served-accuracy gate is
      // the bench's int8_top1_delta row, not this.
      double num = 0.0;
      double den = 0.0;
      for (std::int64_t j = 0; j < want.numel(); ++j) {
        const double d = static_cast<double>(got[j]) - want[j];
        num += d * d;
        den += static_cast<double>(want[j]) * want[j];
      }
      EXPECT_LT(std::sqrt(num), 0.25 * std::sqrt(den) + 1e-3)
          << GetParam() << " batch " << x.shape()[0] << " backend "
          << kern::backend_name(backend);
    }
  }
}

// On a model whose every GEMM feeds a bounded activation, the quantization
// pass converts every fused op, and the whole int8 forward is bit-identical
// across kernel backends: exact int32 GEMM accumulation, branch-identical
// quantize, FMA-free dequantize epilogues, and elementwise (backend-
// independent) pooling in between.
TEST(PlanInt8, FullyQuantizedForwardBitIdenticalAcrossBackends) {
  if (!kern::avx2_supported()) {
    GTEST_SKIP() << "single-backend host: nothing to compare";
  }
  ut::Rng rng(59);
  auto seq = std::make_shared<nn::Sequential>();
  seq->add(std::make_shared<nn::Conv2d>(3, 8, 3, 1, 1, true, rng));
  seq->add(std::make_shared<core::BoundedActivation>(core::ActivationConfig{}));
  seq->add(std::make_shared<nn::MaxPool2d>(2));  // 32 -> 16
  seq->add(std::make_shared<nn::Conv2d>(8, 16, 3, 1, 1, true, rng));
  seq->add(std::make_shared<core::BoundedActivation>(core::ActivationConfig{}));
  seq->add(std::make_shared<nn::MaxPool2d>(4));  // 16 -> 4
  seq->add(std::make_shared<nn::Flatten>());
  seq->add(std::make_shared<nn::Linear>(16 * 4 * 4, 32, true, rng));
  seq->add(std::make_shared<core::BoundedActivation>(core::ActivationConfig{}));
  seq->add(std::make_shared<nn::Linear>(32, 10, true, rng));
  seq->add(std::make_shared<core::BoundedActivation>(core::ActivationConfig{}));
  seq->set_training(false);
  const auto sites = core::collect_activations(*seq);
  for (const auto& site : sites) site->set_profiling(true);
  const NoGradGuard no_grad;
  (void)seq->forward(Variable(Tensor::randn(Shape{2, 3, 32, 32}, rng), false));
  for (const auto& site : sites) site->set_profiling(false);
  core::apply_protection(*seq, core::Scheme::clip_act);

  const Tensor x = Tensor::randn(Shape{3, 3, 32, 32}, rng);
  const auto plan = nn::InferencePlan::compile(seq, Shape{3, 32, 32}, 4,
                                               /*fuse=*/true,
                                               nn::Precision::int8,
                                               max_abs(x));
  ASSERT_EQ(plan->int8_op_count(), 4u);
  ASSERT_EQ(plan->int8_op_count(), plan->fused_op_count());
  Tensor got_scalar;
  {
    const kern::BackendGuard guard(kern::Backend::scalar);
    std::memcpy(plan->input_view(3).data(), x.data(),
                sizeof(float) * static_cast<std::size_t>(x.numel()));
    got_scalar = plan->execute(3).clone();
  }
  const kern::BackendGuard guard(kern::Backend::avx2);
  std::memcpy(plan->input_view(3).data(), x.data(),
              sizeof(float) * static_cast<std::size_t>(x.numel()));
  expect_bit_identical(plan->execute(3), got_scalar,
                       "fully quantized scalar vs avx2");
}

INSTANTIATE_TEST_SUITE_P(Zoo, PlanInt8,
                         ::testing::Values("tinycnn", "alexnet", "vgg16",
                                           "resnet50"));

// Compile-time contract: int8 without bounded clamp sites (plain ReLU) has
// nothing to quantize and must fail loudly instead of serving fp32 under an
// int8 label; int8 without fusion is a configuration error.
TEST(PlanInt8, RejectsUnboundedModelsAndUnfusedPlans) {
  const auto relu_model = zoo_model("tinycnn", core::Scheme::relu, 5);
  EXPECT_THROW((void)nn::InferencePlan::compile(relu_model, Shape{3, 32, 32},
                                                2, /*fuse=*/true,
                                                nn::Precision::int8, 4.0f),
               nn::PlanError);
  const auto bounded = zoo_model("tinycnn", core::Scheme::clip_act, 5);
  EXPECT_THROW((void)nn::InferencePlan::compile(bounded, Shape{3, 32, 32}, 2,
                                                /*fuse=*/false,
                                                nn::Precision::int8, 4.0f),
               std::invalid_argument);
  // Unknown input range: the first layer can't quantize, but deeper layers
  // (fed by bounded activations) still can.
  const auto deep = nn::InferencePlan::compile(bounded, Shape{3, 32, 32}, 2,
                                               /*fuse=*/true,
                                               nn::Precision::int8, -1.0f);
  EXPECT_GT(deep->int8_op_count(), 0u);
}

// Fault lifecycle on the int8 weight space: corrupting the live quantized
// bytes must inflate the clamp-event statistic (the serve-time detector's
// signal), and restore_int8_weights() must bring outputs back bit-identical
// to the clean run.
TEST(PlanInt8, WeightCorruptionRaisesClampEventsAndRestoreRecovers) {
  const auto model = zoo_model("tinycnn", core::Scheme::clip_act, 47);
  const auto sites = core::collect_activations(*model);
  for (const auto& site : sites) site->set_clamp_counting(true);
  ut::Rng rng(83);
  const NoGradGuard no_grad;
  const Tensor x = Tensor::randn(Shape{4, 3, 32, 32}, rng);
  const auto plan = nn::InferencePlan::compile(model, Shape{3, 32, 32}, 4,
                                               /*fuse=*/true,
                                               nn::Precision::int8,
                                               max_abs(x));
  ASSERT_GT(plan->int8_op_count(), 0u);
  const auto run = [&] {
    core::reset_clamp_counters(sites);
    std::memcpy(plan->input_view(4).data(), x.data(),
                sizeof(float) * static_cast<std::size_t>(x.numel()));
    const Tensor out = plan->execute(4).clone();
    std::uint64_t events = 0;
    for (const auto& site : sites) events += site->clamp_events();
    return std::make_pair(out, events);
  };
  const auto [clean, clean_events] = run();

  const auto [bytes, count] = plan->int8_weight_span(0);
  ASSERT_GT(count, 0u);
  // Saturate the first layer's quantized weights at -128 — the value
  // quantization never emits, only faults produce.
  for (std::size_t i = 0; i < count; ++i) bytes[i] = -128;
  const auto [corrupt, corrupt_events] = run();
  EXPECT_GT(corrupt_events, clean_events);

  plan->restore_int8_weights();
  const auto [recovered, recovered_events] = run();
  expect_bit_identical(recovered, clean, "post-restore int8 outputs");
  EXPECT_EQ(recovered_events, clean_events);
  EXPECT_THROW((void)plan->int8_weight_span(plan->int8_op_count()),
               std::out_of_range);
  for (const auto& site : sites) site->set_clamp_counting(false);
  core::reset_clamp_counters(sites);
}

// Unbounded ReLU models plan too (no bounds required at record time).
TEST(Plan, ReluSchemeMatchesEager) {
  const auto model = zoo_model("tinycnn", core::Scheme::relu, 13);
  const auto plan = nn::InferencePlan::compile(model, Shape{3, 32, 32}, 4);
  ut::Rng rng(17);
  const NoGradGuard no_grad;
  const Tensor x = Tensor::randn(Shape{4, 3, 32, 32}, rng);
  const Tensor want = model->forward(Variable(x, false)).value();
  std::memcpy(plan->input_view(4).data(), x.data(),
              sizeof(float) * static_cast<std::size_t>(x.numel()));
  expect_bit_identical(plan->execute(4), want, "relu tinycnn");
}

// Re-protection after compile stays visible: the plan reads each site's
// scheme and bound storage at execute time, so switching schemes on the
// live model switches the planned outputs with it.
TEST(Plan, SeesSchemeChangesAppliedAfterCompile) {
  const auto model = zoo_model("tinycnn", core::Scheme::clip_act, 23);
  const auto plan = nn::InferencePlan::compile(model, Shape{3, 32, 32}, 2);
  ut::Rng rng(29);
  const NoGradGuard no_grad;
  const Tensor x = Tensor::randn(Shape{2, 3, 32, 32}, rng);
  core::apply_protection(*model, core::Scheme::fitrelu);
  const Tensor want = model->forward(Variable(x, false)).value();
  std::memcpy(plan->input_view(2).data(), x.data(),
              sizeof(float) * static_cast<std::size_t>(x.numel()));
  expect_bit_identical(plan->execute(2), want, "post-compile fitrelu");
}

// Serving matrix: planned lanes and eager lanes produce bit-identical
// responses for the same requests at every lane count x batch size.
TEST(PlanServe, PlannedLanesMatchEagerLanesBitForBit) {
  ev::ExperimentScale scale = ev::ExperimentScale::scaled();
  scale.train_size = 96;
  scale.test_size = 48;
  scale.train_epochs = 2;
  scale.eval_samples = 24;
  ev::PreparedModel pm = ev::prepare_model("tinycnn", 10, scale, "", 31);
  (void)ev::protect_model(pm, core::Scheme::clip_act, scale);

  std::vector<Tensor> samples;
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < 24; ++i) {
    samples.push_back(pm.test->batch(i, 1, &labels));
  }

  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
    for (const std::int64_t batch : {1, 3, 8}) {
      const auto run = [&](bool planned) {
        ev::ServeOptions options;
        options.server.lanes = lanes;
        options.server.max_batch = batch;
        options.server.batch_window = std::chrono::microseconds(0);
        options.server.plan = planned;
        const auto server = ev::make_server(pm, options);
        std::vector<Tensor> out;
        out.reserve(samples.size());
        for (const auto& s : samples) {
          out.push_back(server->infer(s).logits.clone());
        }
        return out;
      };
      const std::vector<Tensor> planned = run(true);
      const std::vector<Tensor> eager = run(false);
      for (std::size_t i = 0; i < samples.size(); ++i) {
        expect_bit_identical(planned[i], eager[i],
                             "lanes " + std::to_string(lanes) + " batch " +
                                 std::to_string(batch) + " request " +
                                 std::to_string(i));
      }
    }
  }
}

#if FITACT_COUNT_ALLOCS
// Acceptance contract: steady-state execute performs zero heap
// allocations. Two warm-up executes pay the one-time lazy costs (the GEMM
// pack buffer is thread_local), then eight measured executes must leave
// the global allocation counter untouched.
TEST(PlanAllocations, SteadyStateExecuteDoesNotTouchTheHeap) {
  const auto model = zoo_model("tinycnn", core::Scheme::clip_act, 11);
  const auto plan = nn::InferencePlan::compile(model, Shape{3, 32, 32}, 4);
  ut::Rng rng(5);
  const Tensor x = Tensor::randn(Shape{4, 3, 32, 32}, rng);
  std::memcpy(plan->input_view(4).data(), x.data(),
              sizeof(float) * static_cast<std::size_t>(x.numel()));
  (void)plan->execute(4);
  (void)plan->execute(4);
  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 8; ++i) (void)plan->execute(4);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state execute allocated " << (after - before) << " times";
}
#endif  // FITACT_COUNT_ALLOCS

// A module with no record() override must fail at compile time (not at
// execute, not silently) with a message naming the module type.
class Unrecordable final : public nn::Module {
 public:
  Variable forward(const Variable& x) override { return x; }
};

TEST(PlanRecord, ModuleWithoutRecordOverrideFailsNamingTheType) {
  auto seq = std::make_shared<nn::Sequential>();
  seq->add(std::make_shared<nn::Flatten>());
  seq->add(std::make_shared<Unrecordable>());
  try {
    (void)nn::InferencePlan::compile(seq, Shape{3, 4, 4}, 1);
    FAIL() << "expected PlanError";
  } catch (const nn::PlanError& e) {
    EXPECT_NE(std::string(e.what()).find("Unrecordable"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("record"), std::string::npos)
        << e.what();
  }
}

// Active Dropout is a training-only transform; recording it must fail with
// instructions, while eval-mode Dropout records as an explicit no-op.
TEST(PlanRecord, ActiveDropoutFailsAndEvalDropoutIsANoop) {
  ut::Rng rng(3);
  auto seq = std::make_shared<nn::Sequential>();
  seq->add(std::make_shared<nn::Flatten>());
  seq->add(std::make_shared<nn::Linear>(12, 4, true, rng));
  seq->add(std::make_shared<nn::Dropout>(0.5f));

  seq->set_training(true);
  try {
    (void)nn::InferencePlan::compile(seq, Shape{3, 2, 2}, 1);
    FAIL() << "expected PlanError";
  } catch (const nn::PlanError& e) {
    EXPECT_NE(std::string(e.what()).find("Dropout"), std::string::npos)
        << e.what();
  }

  seq->set_training(false);
  const auto plan = nn::InferencePlan::compile(seq, Shape{3, 2, 2}, 2);
  const NoGradGuard no_grad;
  const Tensor x = Tensor::randn(Shape{2, 3, 2, 2}, rng);
  const Tensor want = seq->forward(Variable(x, false)).value();
  std::memcpy(plan->input_view(2).data(), x.data(),
              sizeof(float) * static_cast<std::size_t>(x.numel()));
  expect_bit_identical(plan->execute(2), want, "eval dropout noop");
}

// BatchNorm2d uses batch statistics in training mode, which a plan cannot
// reproduce; recording must require eval mode.
TEST(PlanRecord, TrainingModeBatchNormFails) {
  ut::Rng rng(4);
  auto seq = std::make_shared<nn::Sequential>();
  seq->add(std::make_shared<nn::BatchNorm2d>(3));
  seq->set_training(true);
  EXPECT_THROW((void)nn::InferencePlan::compile(seq, Shape{3, 4, 4}, 1),
               nn::PlanError);
}

// ServerOptions::validate is the single error path for the collapsed
// make_server configuration surface.
TEST(ServerOptions, ValidateRejectsBadConfigurations) {
  serve::ServerOptions good;
  EXPECT_NO_THROW(good.validate());

  serve::ServerOptions o = good;
  o.lanes = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = good;
  o.max_batch = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = good;
  o.batch_window = std::chrono::microseconds(-1);
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = good;
  o.detection = true;
  o.clamp_rate_threshold = -0.5;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  o = good;
  o.max_recoveries_per_batch = -1;
  EXPECT_THROW(o.validate(), std::invalid_argument);

  // int8 is a pass over fused plan ops: both switches must stay on.
  o = good;
  o.precision = nn::Precision::int8;
  EXPECT_NO_THROW(o.validate());
  o.plan = false;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.plan = true;
  o.fuse = false;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

// Int8 serving end to end: int8 lanes answer requests, corrupting a lane's
// live quantized weight bytes trips the clamp-rate detector, and the scrub
// (clean fp32 image + clean int8 image) restores bit-identical answers.
TEST(PlanServe, Int8LanesDetectAndRecoverFromQuantizedWeightCorruption) {
  ev::ExperimentScale scale = ev::ExperimentScale::scaled();
  scale.train_size = 96;
  scale.test_size = 48;
  scale.train_epochs = 2;
  scale.eval_samples = 24;
  ev::PreparedModel pm = ev::prepare_model("tinycnn", 10, scale, "", 31);
  (void)ev::protect_model(pm, core::Scheme::clip_act, scale);
  std::vector<Tensor> samples;
  for (std::int64_t i = 0; i < 8; ++i) {
    samples.push_back(pm.test->batch(i, 1, nullptr));
  }

  ev::ServeOptions options;
  options.server.lanes = 1;
  options.server.max_batch = 4;
  options.server.batch_window = std::chrono::microseconds(0);
  options.server.precision = nn::Precision::int8;
  const auto server = ev::make_server(pm, options);
  std::vector<Tensor> clean;
  for (const auto& s : samples) {
    clean.push_back(server->infer(s).logits.clone());
  }
  const std::uint64_t detections_before = server->stats().detections;

  server->with_lane(0, [](serve::Lane& lane) {
    ASSERT_TRUE(lane.plan != nullptr);
    ASSERT_GT(lane.plan->int8_op_count(), 0u);
    const std::size_t last = lane.plan->int8_op_count() - 1;
    const auto span = lane.plan->int8_weight_span(last);
    // Saturate the deepest quantized layer at +127. Its input is a clamped
    // activation map — nonnegative by construction — so coherent same-sign
    // weights blow every output past its bound on any nonzero sample: the
    // loud stuck-at fault the clamp-rate detector exists for, independent
    // of which test images happen to be served. (Sign-mixed or first-layer
    // corruptions can cancel inside the dot products and hide below
    // threshold — bounded activations confining them is the paper's point,
    // not a detection failure.)
    for (std::size_t i = 0; i < span.second; ++i) span.first[i] = 127;
  });

  std::vector<serve::RequestResult> results;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    results.push_back(server->infer(samples[i]));
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    expect_bit_identical(results[i].logits, clean[i],
                         "int8 post-corruption request " + std::to_string(i));
  }
  const serve::ServerStats stats = server->stats();
  EXPECT_GT(stats.detections, detections_before);
  EXPECT_GT(stats.recoveries, 0u);
}

// The force_scalar_kernels knob must take effect during construction —
// before any lane forward — and is process-wide by design (the guard
// restores the ambient backend for the rest of the suite).
TEST(ServerOptions, ForceScalarKernelsPinsTheProcessBackend) {
  const kern::BackendGuard restore(kern::active_backend());
  const auto model = zoo_model("tinycnn", core::Scheme::relu, 41);
  serve::ServerOptions o;
  o.lanes = 1;
  o.detection = false;
  o.force_scalar_kernels = true;
  const serve::InferenceServer server(
      [&](std::size_t) {
        serve::Lane lane;
        lane.model = model;
        lane.image = std::make_shared<quant::ParamImage>(*model);
        return lane;
      },
      o);
  EXPECT_EQ(kern::active_backend(), kern::Backend::scalar);
}

}  // namespace
}  // namespace fitact
