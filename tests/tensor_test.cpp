// Unit tests for src/tensor: Shape, Tensor storage semantics, elementwise
// ops, reductions, and the im2col/col2im pair.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace fitact {
namespace {

TEST(Shape, NumelAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, EqualityAndString) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_EQ(Shape({1, 2}).str(), "[1, 2]");
}

TEST(Shape, NegativeDimThrows) {
  EXPECT_THROW(Shape({-1, 2}), std::invalid_argument);
  EXPECT_THROW((void)Shape({2}).dim(5), std::out_of_range);
}

TEST(Shape, EmptyShapeNumelIsOne) {
  const Shape s;
  EXPECT_EQ(s.numel(), 1);
  EXPECT_TRUE(s.empty());
}

TEST(Tensor, ZerosOnesFull) {
  const Tensor z = Tensor::zeros(Shape{2, 2});
  const Tensor o = Tensor::ones(Shape{2, 2});
  const Tensor f = Tensor::full(Shape{2, 2}, 3.5f);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(z[i], 0.0f);
    EXPECT_EQ(o[i], 1.0f);
    EXPECT_EQ(f[i], 3.5f);
  }
}

TEST(Tensor, CopySharesStorageCloneDoesNot) {
  Tensor a = Tensor::zeros(Shape{4});
  Tensor shared = a;      // shares
  Tensor deep = a.clone();  // independent
  a[0] = 9.0f;
  EXPECT_EQ(shared[0], 9.0f);
  EXPECT_EQ(deep[0], 0.0f);
}

TEST(Tensor, ReshapeSharesStorageAndChecksNumel) {
  Tensor a = Tensor::zeros(Shape{2, 6});
  Tensor b = a.reshape(Shape{3, 4});
  b[0] = 5.0f;
  EXPECT_EQ(a[0], 5.0f);
  EXPECT_THROW(a.reshape(Shape{5}), std::invalid_argument);
}

TEST(Tensor, AtBoundsChecking) {
  Tensor a = Tensor::zeros(Shape{2, 3});
  a.at({1, 2}) = 7.0f;
  EXPECT_EQ(a[5], 7.0f);
  EXPECT_THROW((void)a.at({2, 0}), std::out_of_range);
  EXPECT_THROW((void)a.at({0}), std::invalid_argument);
}

TEST(Tensor, ItemRequiresSingleElement) {
  EXPECT_EQ(Tensor::scalar(2.5f).item(), 2.5f);
  EXPECT_THROW((void)Tensor::zeros(Shape{2}).item(), std::logic_error);
}

TEST(Tensor, RandnStatistics) {
  ut::Rng rng(5);
  const Tensor t = Tensor::randn(Shape{10000}, rng, 2.0f);
  double sum = 0.0;
  double sum2 = 0.0;
  for (const float v : t.span()) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  const double mean = sum / 10000.0;
  const double var = sum2 / 10000.0 - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(TensorOps, ElementwiseAddSubMulScale) {
  const Tensor a = Tensor::from_values({1.0f, 2.0f, 3.0f});
  const Tensor b = Tensor::from_values({4.0f, 5.0f, 6.0f});
  const Tensor s = add(a, b);
  const Tensor d = sub(a, b);
  const Tensor m = mul(a, b);
  const Tensor sc = scale(a, 2.0f);
  EXPECT_EQ(s[1], 7.0f);
  EXPECT_EQ(d[1], -3.0f);
  EXPECT_EQ(m[2], 18.0f);
  EXPECT_EQ(sc[2], 6.0f);
}

TEST(TensorOps, MismatchThrows) {
  const Tensor a = Tensor::zeros(Shape{3});
  const Tensor b = Tensor::zeros(Shape{4});
  EXPECT_THROW(add(a, b), std::invalid_argument);
}

TEST(TensorOps, InplaceOps) {
  Tensor a = Tensor::from_values({1.0f, -2.0f});
  const Tensor b = Tensor::from_values({10.0f, 10.0f});
  add_inplace(a, b);
  EXPECT_EQ(a[0], 11.0f);
  axpy_inplace(a, 0.5f, b);
  EXPECT_EQ(a[0], 16.0f);
  scale_inplace(a, 2.0f);
  EXPECT_EQ(a[0], 32.0f);
  Tensor c = Tensor::from_values({-1.0f, 3.0f});
  clamp_min_inplace(c, 0.0f);
  EXPECT_EQ(c[0], 0.0f);
  EXPECT_EQ(c[1], 3.0f);
}

TEST(TensorOps, Reductions) {
  const Tensor a = Tensor::from_values({1.0f, -2.0f, 4.0f});
  EXPECT_FLOAT_EQ(sum(a), 3.0f);
  EXPECT_FLOAT_EQ(mean(a), 1.0f);
  EXPECT_FLOAT_EQ(max_value(a), 4.0f);
  EXPECT_FLOAT_EQ(min_value(a), -2.0f);
}

TEST(TensorOps, ArgmaxRows) {
  Tensor a = Tensor::zeros(Shape{2, 3});
  a.at({0, 1}) = 5.0f;
  a.at({1, 2}) = 2.0f;
  const auto idx = argmax_rows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 2);
}

TEST(TensorOps, MatmulSmallKnownValues) {
  Tensor a = Tensor::zeros(Shape{2, 3});
  Tensor b = Tensor::zeros(Shape{3, 2});
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  for (std::int64_t i = 0; i < 6; ++i) a[i] = static_cast<float>(i + 1);
  for (std::int64_t i = 0; i < 6; ++i) b[i] = static_cast<float>(i + 7);
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(TensorOps, Im2colIdentityKernel) {
  // 1x1 kernel, stride 1, no padding: col equals the image.
  Conv2dGeometry g;
  g.in_channels = 2;
  g.in_h = 3;
  g.in_w = 3;
  g.kernel_h = 1;
  g.kernel_w = 1;
  Tensor img = Tensor::zeros(Shape{2, 3, 3});
  for (std::int64_t i = 0; i < img.numel(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(g, img.data(), col.data());
  for (std::size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(col[i], static_cast<float>(i));
  }
}

TEST(TensorOps, Im2colPaddingProducesZeroBorder) {
  Conv2dGeometry g;
  g.in_channels = 1;
  g.in_h = 2;
  g.in_w = 2;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.padding = 1;
  const Tensor img = Tensor::ones(Shape{1, 2, 2});
  std::vector<float> col(static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(g, img.data(), col.data());
  // kernel position (0,0) looking at output (0,0) reads input (-1,-1) -> 0.
  EXPECT_EQ(col[0], 0.0f);
  // centre kernel position (1,1) at output (0,0) reads input (0,0) -> 1.
  const std::int64_t centre_row = 4;  // kh=1, kw=1
  EXPECT_EQ(col[static_cast<std::size_t>(centre_row * g.col_cols())], 1.0f);
}

TEST(TensorOps, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint property).
  Conv2dGeometry g;
  g.in_channels = 3;
  g.in_h = 6;
  g.in_w = 5;
  g.kernel_h = 3;
  g.kernel_w = 2;
  g.stride = 2;
  g.padding = 1;
  ut::Rng rng(99);
  const Tensor x = Tensor::randn(Shape{3, 6, 5}, rng);
  const std::int64_t cols = g.col_rows() * g.col_cols();
  Tensor y = Tensor::randn(Shape{cols}, rng);
  std::vector<float> colx(static_cast<std::size_t>(cols));
  im2col(g, x.data(), colx.data());
  double lhs = 0.0;
  for (std::int64_t i = 0; i < cols; ++i) {
    lhs += static_cast<double>(colx[static_cast<std::size_t>(i)]) * y[i];
  }
  Tensor xadj = Tensor::zeros(x.shape());
  col2im(g, y.data(), xadj.data());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * xadj[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-4);
}

TEST(TensorOps, ConvGeometryOutputSizes) {
  Conv2dGeometry g;
  g.in_channels = 1;
  g.in_h = 32;
  g.in_w = 32;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 1;
  g.padding = 1;
  EXPECT_EQ(g.out_h(), 32);
  EXPECT_EQ(g.out_w(), 32);
  g.stride = 2;
  EXPECT_EQ(g.out_h(), 16);
}

}  // namespace
}  // namespace fitact
