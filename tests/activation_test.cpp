// Tests for the paper's core contribution (src/core): the activation zoo,
// profiling, bound initialisation at all three granularities, and the
// FitReLU <-> FitReLU-Naive convergence property.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "core/activation.h"
#include "core/bound_profiler.h"
#include "core/protection.h"
#include "data/synthetic_cifar.h"
#include "models/registry.h"
#include "util/rng.h"

namespace fitact::core {
namespace {

Variable input_2d(std::initializer_list<float> vals, std::int64_t features) {
  Tensor t = Tensor::zeros(
      Shape{static_cast<std::int64_t>(vals.size()) / features, features});
  std::int64_t i = 0;
  for (const float v : vals) t[i++] = v;
  return Variable(std::move(t), false);
}

TEST(BoundedActivation, ReluSchemeMatchesPlainRelu) {
  BoundedActivation act(ActivationConfig{});
  const Variable y = act.forward(input_2d({-1.0f, 2.0f}, 2));
  EXPECT_FLOAT_EQ(y.value()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.value()[1], 2.0f);
}

TEST(BoundedActivation, BoundedSchemesRequireBounds) {
  ActivationConfig cfg;
  cfg.scheme = Scheme::clip_act;
  BoundedActivation act(cfg);
  EXPECT_THROW(act.forward(input_2d({1.0f}, 1)), std::logic_error);
}

TEST(BoundedActivation, ProfilingRecordsPerNeuronMax) {
  BoundedActivation act(ActivationConfig{});
  act.set_profiling(true);
  act.forward(input_2d({1.0f, 5.0f, 3.0f, 2.0f}, 2));  // batch of 2
  act.forward(input_2d({4.0f, 1.0f}, 2));
  act.set_profiling(false);
  ASSERT_TRUE(act.has_profile());
  EXPECT_FLOAT_EQ(act.profile_max()[0], 4.0f);  // max(1, 3, 4)
  EXPECT_FLOAT_EQ(act.profile_max()[1], 5.0f);  // max(5, 2, 1)
}

TEST(BoundedActivation, InitBoundsPerNeuron) {
  ActivationConfig cfg;
  cfg.granularity = Granularity::per_neuron;
  BoundedActivation act(cfg);
  act.set_profiling(true);
  act.forward(input_2d({1.0f, 5.0f}, 2));
  act.set_profiling(false);
  act.init_bounds_from_profile();
  ASSERT_EQ(act.bound_count(), 2);
  EXPECT_FLOAT_EQ(act.bounds().value()[0], 1.0f);
  EXPECT_FLOAT_EQ(act.bounds().value()[1], 5.0f);
}

TEST(BoundedActivation, InitBoundsPerLayerTakesGlobalMax) {
  ActivationConfig cfg;
  cfg.granularity = Granularity::per_layer;
  BoundedActivation act(cfg);
  act.set_profiling(true);
  act.forward(input_2d({1.0f, 5.0f, 2.0f, 3.0f}, 4));
  act.set_profiling(false);
  act.init_bounds_from_profile();
  ASSERT_EQ(act.bound_count(), 1);
  EXPECT_FLOAT_EQ(act.bounds().value()[0], 5.0f);
}

TEST(BoundedActivation, InitBoundsPerChannelOn4d) {
  ActivationConfig cfg;
  cfg.granularity = Granularity::per_channel;
  BoundedActivation act(cfg);
  Tensor x = Tensor::zeros(Shape{1, 2, 1, 2});
  x[0] = 1.0f;
  x[1] = 7.0f;  // channel 0
  x[2] = 3.0f;
  x[3] = 2.0f;  // channel 1
  act.set_profiling(true);
  act.forward(Variable(std::move(x), false));
  act.set_profiling(false);
  act.init_bounds_from_profile();
  ASSERT_EQ(act.bound_count(), 2);
  EXPECT_FLOAT_EQ(act.bounds().value()[0], 7.0f);
  EXPECT_FLOAT_EQ(act.bounds().value()[1], 3.0f);
}

TEST(BoundedActivation, MarginScalesBounds) {
  BoundedActivation act(ActivationConfig{});
  act.set_profiling(true);
  act.forward(input_2d({2.0f}, 1));
  act.set_profiling(false);
  act.init_bounds_from_profile(1.5f);
  EXPECT_FLOAT_EQ(act.bounds().value()[0], 3.0f);
}

TEST(BoundedActivation, InitWithoutProfileThrows) {
  BoundedActivation act(ActivationConfig{});
  act.forward(input_2d({1.0f}, 1));
  EXPECT_THROW(act.init_bounds_from_profile(), std::logic_error);
}

TEST(BoundedActivation, ShapeChangeBetweenForwardsThrows) {
  BoundedActivation act(ActivationConfig{});
  act.forward(input_2d({1.0f, 2.0f}, 2));
  EXPECT_THROW(act.forward(input_2d({1.0f, 2.0f, 3.0f}, 3)),
               std::logic_error);
}

TEST(BoundedActivation, ClipActZeroesAboveBound) {
  ActivationConfig cfg;
  cfg.scheme = Scheme::clip_act;
  BoundedActivation act(cfg);
  act.set_layer_bound(2.0f);
  const Variable y = act.forward(input_2d({1.0f, 3.0f}, 2));
  EXPECT_FLOAT_EQ(y.value()[0], 1.0f);
  EXPECT_FLOAT_EQ(y.value()[1], 0.0f);
}

TEST(BoundedActivation, RangerSaturatesAboveBound) {
  ActivationConfig cfg;
  cfg.scheme = Scheme::ranger;
  BoundedActivation act(cfg);
  act.set_layer_bound(2.0f);
  const Variable y = act.forward(input_2d({1.0f, 3.0f}, 2));
  EXPECT_FLOAT_EQ(y.value()[0], 1.0f);
  EXPECT_FLOAT_EQ(y.value()[1], 2.0f);
}

TEST(BoundedActivation, LambdaRegisteredAsParameter) {
  BoundedActivation act(ActivationConfig{});
  act.set_profiling(true);
  act.forward(input_2d({1.0f, 2.0f}, 2));
  act.set_profiling(false);
  act.init_bounds_from_profile();
  const auto params = act.named_parameters();
  ASSERT_EQ(params.size(), 1u);
  EXPECT_EQ(params[0].name, "lambda");
  EXPECT_EQ(params[0].var.numel(), 2);
}

TEST(BoundedActivation, ReRegistrationAtNewGranularityReplaces) {
  BoundedActivation act(ActivationConfig{});
  act.set_profiling(true);
  act.forward(input_2d({1.0f, 2.0f, 3.0f, 4.0f}, 4));
  act.set_profiling(false);
  act.set_granularity(Granularity::per_neuron);
  act.init_bounds_from_profile();
  EXPECT_EQ(act.named_parameters()[0].var.numel(), 4);
  act.set_granularity(Granularity::per_layer);
  act.init_bounds_from_profile();
  const auto params = act.named_parameters();
  ASSERT_EQ(params.size(), 1u);  // replaced, not duplicated
  EXPECT_EQ(params[0].var.numel(), 1);
}

// Property: FitReLU converges pointwise to FitReLU-Naive as k grows.
class FitReluConvergence : public ::testing::TestWithParam<float> {};

TEST_P(FitReluConvergence, ApproachesNaiveAsKGrows) {
  const float k = GetParam();
  const float lambda = 2.0f;
  ut::Rng rng(42);
  double max_err = 0.0;
  for (int i = 0; i < 400; ++i) {
    const float x = rng.uniform(-4.0f, 8.0f);
    // Skip the transition band around lambda, where the smooth version is
    // intentionally intermediate.
    if (std::abs(x - lambda) < 8.0f / k) continue;
    Variable vx(Tensor::full(Shape{1, 1}, x), false);
    Variable vl(Tensor::scalar(lambda), false);
    const float smooth = ag::fitrelu(vx, vl, k).value()[0];
    const float naive =
        (x > 0.0f && x <= lambda) ? x : 0.0f;  // paper Eq. 5
    max_err = std::max(max_err, static_cast<double>(std::abs(smooth - naive)));
  }
  // Error outside the band shrinks with k.
  EXPECT_LT(max_err, 8.0 / static_cast<double>(k));
}

INSTANTIATE_TEST_SUITE_P(Steepness, FitReluConvergence,
                         ::testing::Values(2.0f, 5.0f, 10.0f, 25.0f, 50.0f));

// Property: every bounded activation output is <= its bound (plus smooth-tail
// epsilon for FitReLU).
class BoundInvariant : public ::testing::TestWithParam<Scheme> {};

TEST_P(BoundInvariant, OutputNeverExceedsBound) {
  ActivationConfig cfg;
  cfg.scheme = GetParam();
  cfg.granularity = Granularity::per_neuron;
  cfg.k = 8.0f;
  BoundedActivation act(cfg);
  ut::Rng rng(7);
  Tensor profile_input = Tensor::rand_uniform(Shape{4, 10}, rng, 0.0f, 2.0f);
  act.set_profiling(true);
  act.forward(Variable(profile_input, false));
  act.set_profiling(false);
  act.init_bounds_from_profile();

  // Hit it with wild (faulty) inputs.
  Tensor wild = Tensor::rand_uniform(Shape{8, 10}, rng, -100.0f, 30000.0f);
  const Variable y = act.forward(Variable(wild, false));
  const auto& bounds = act.bounds().value();
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    const float b = bounds[i % 10];
    EXPECT_LE(y.value()[i], b + 0.51f * b + 1e-4f);
    EXPECT_GE(y.value()[i], 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, BoundInvariant,
                         ::testing::Values(Scheme::clip_act, Scheme::ranger,
                                           Scheme::fitrelu_naive,
                                           Scheme::fitrelu));

TEST(CollectActivations, FindsAllSitesInModelTree) {
  models::ModelConfig cfg;
  cfg.width_mult = 0.25f;
  auto model = models::make_model("tinycnn", cfg);
  const auto acts = collect_activations(*model);
  EXPECT_EQ(acts.size(), 3u);  // two conv sites + one FC site
}

TEST(Profiler, ProfilesWholeModel) {
  models::ModelConfig cfg;
  cfg.width_mult = 0.25f;
  auto model = models::make_model("tinycnn", cfg);
  data::SyntheticCifarConfig dcfg;
  dcfg.size = 32;
  const data::SyntheticCifar ds(dcfg);
  ProfileConfig pc;
  pc.max_samples = 32;
  pc.batch_size = 8;
  EXPECT_EQ(profile_bounds(*model, ds, pc), 32);
  for (const auto& act : collect_activations(*model)) {
    EXPECT_TRUE(act->has_profile());
    EXPECT_FALSE(act->profiling());
  }
}

TEST(Protection, AppliesSchemeAndBoundsEverywhere) {
  models::ModelConfig cfg;
  cfg.width_mult = 0.25f;
  auto model = models::make_model("tinycnn", cfg);
  data::SyntheticCifarConfig dcfg;
  dcfg.size = 16;
  const data::SyntheticCifar ds(dcfg);
  profile_bounds(*model, ds, {16, 8});

  apply_protection(*model, Scheme::clip_act);
  for (const auto& act : collect_activations(*model)) {
    EXPECT_EQ(act->scheme(), Scheme::clip_act);
    EXPECT_EQ(act->bound_count(), 1);  // per-layer default for Clip-Act
  }
  apply_protection(*model, Scheme::fitrelu);
  for (const auto& act : collect_activations(*model)) {
    EXPECT_EQ(act->scheme(), Scheme::fitrelu);
    EXPECT_EQ(act->bound_count(), act->feature_count());  // per-neuron
  }
}

TEST(Protection, DefaultGranularitiesMatchPaper) {
  EXPECT_EQ(default_options(Scheme::clip_act).granularity,
            Granularity::per_layer);
  EXPECT_EQ(default_options(Scheme::ranger).granularity,
            Granularity::per_layer);
  EXPECT_EQ(default_options(Scheme::fitrelu).granularity,
            Granularity::per_neuron);
}

TEST(SchemeNames, RoundTrip) {
  EXPECT_EQ(to_string(Scheme::fitrelu), "fitrelu");
  EXPECT_EQ(to_string(Scheme::clip_act), "clip_act");
  EXPECT_EQ(to_string(Granularity::per_neuron), "per_neuron");
}

}  // namespace
}  // namespace fitact::core
