// Tests for the real-CIFAR binary loader, using synthetic fixture files in
// the canonical on-disk layout (no network access needed).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "data/cifar_binary.h"

namespace fitact::data {
namespace {

namespace fs = std::filesystem;

class CifarBinaryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() / "fitact_cifar_fixture";
    fs::remove_all(root_);
    fs::create_directories(root_ / "cifar-10-batches-bin");
    fs::create_directories(root_ / "cifar-100-binary");
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Write `count` CIFAR-10 records; label = index % 10, pixel value =
  /// (record index) for every pixel of channel 0, 2*index for channel 1,
  /// 3*index for channel 2 (mod 256).
  void write_c10(const std::string& name, int count) {
    std::ofstream os(root_ / "cifar-10-batches-bin" / name,
                     std::ios::binary);
    for (int r = 0; r < count; ++r) {
      const unsigned char label = static_cast<unsigned char>(r % 10);
      os.put(static_cast<char>(label));
      for (int c = 0; c < 3; ++c) {
        for (int p = 0; p < 1024; ++p) {
          os.put(static_cast<char>((r * (c + 1)) % 256));
        }
      }
    }
  }

  void write_c100(const std::string& name, int count) {
    std::ofstream os(root_ / "cifar-100-binary" / name, std::ios::binary);
    for (int r = 0; r < count; ++r) {
      os.put(static_cast<char>(r % 20));   // coarse label
      os.put(static_cast<char>(r % 100));  // fine label
      for (int p = 0; p < 3072; ++p) os.put(static_cast<char>(r % 256));
    }
  }

  fs::path root_;
};

TEST_F(CifarBinaryTest, AvailabilityDetection) {
  EXPECT_FALSE(CifarBinary::available(root_.string(), 10));
  write_c10("data_batch_1.bin", 1);
  EXPECT_TRUE(CifarBinary::available(root_.string(), 10));
  EXPECT_FALSE(CifarBinary::available(root_.string(), 100));
  write_c100("train.bin", 1);
  EXPECT_TRUE(CifarBinary::available(root_.string(), 100));
}

TEST_F(CifarBinaryTest, LoadsCifar10TrainSplit) {
  for (int i = 1; i <= 5; ++i) {
    write_c10("data_batch_" + std::to_string(i) + ".bin", 4);
  }
  const CifarBinary ds = CifarBinary::open(root_.string(), 10, true);
  EXPECT_EQ(ds.size(), 20);
  EXPECT_EQ(ds.num_classes(), 10);
  EXPECT_EQ(ds.label(0), 0);
  EXPECT_EQ(ds.label(3), 3);
  EXPECT_EQ(ds.label(4), 0);  // second file starts over
}

TEST_F(CifarBinaryTest, LoadsCifar10TestSplit) {
  write_c10("test_batch.bin", 7);
  const CifarBinary ds = CifarBinary::open(root_.string(), 10, false);
  EXPECT_EQ(ds.size(), 7);
}

TEST_F(CifarBinaryTest, PixelStandardisationIsApplied) {
  write_c10("test_batch.bin", 2);
  const CifarBinary ds = CifarBinary::open(root_.string(), 10, false);
  std::vector<float> img(kImageNumel);
  ds.image_into(0, img.data());
  // Record 0 has all-zero pixels; channel 0 standardises to (0 - m)/s.
  EXPECT_NEAR(img[0], (0.0f - 0.4914f) / 0.2470f, 1e-4f);
  ds.image_into(1, img.data());
  // Record 1, channel 1 pixels are 2/255.
  EXPECT_NEAR(img[1024], (2.0f / 255.0f - 0.4822f) / 0.2435f, 1e-4f);
}

TEST_F(CifarBinaryTest, LoadsCifar100FineLabels) {
  write_c100("train.bin", 150);
  const CifarBinary ds = CifarBinary::open(root_.string(), 100, true);
  EXPECT_EQ(ds.size(), 150);
  EXPECT_EQ(ds.num_classes(), 100);
  EXPECT_EQ(ds.label(42), 42);
  EXPECT_EQ(ds.label(142), 42);  // fine label wraps at 100
}

TEST_F(CifarBinaryTest, RejectsTruncatedFile) {
  {
    std::ofstream os(root_ / "cifar-10-batches-bin" / "test_batch.bin",
                     std::ios::binary);
    os << "short";
  }
  EXPECT_THROW(CifarBinary::open(root_.string(), 10, false),
               std::runtime_error);
}

TEST_F(CifarBinaryTest, MissingFileThrows) {
  EXPECT_THROW(CifarBinary::open(root_.string(), 10, false),
               std::runtime_error);
}

TEST_F(CifarBinaryTest, BatchInterfaceWorks) {
  write_c10("test_batch.bin", 10);
  const CifarBinary ds = CifarBinary::open(root_.string(), 10, false);
  std::vector<std::int64_t> labels;
  const Tensor batch = ds.batch(2, 4, &labels);
  EXPECT_EQ(batch.shape(), Shape({4, 3, 32, 32}));
  EXPECT_EQ(labels[0], 2);
}

}  // namespace
}  // namespace fitact::data
