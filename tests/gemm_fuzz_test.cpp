// Randomized SGEMM fuzz sweep: the blocked/parallel kernel against the
// naive triple-loop reference across ~200 random shapes, transpose flags,
// alpha/beta values, and padded leading dimensions, with exact per-element
// tolerance accounting (a forward-error bound computed from each output
// element's own |a||b| mass, not a one-size-fits-all epsilon).
//
// Thread counts: the global pool's width is fixed at first use, so CMake
// registers this binary three times with FITACT_GEMM_FUZZ_THREADS=1/2/8;
// the static initializer below pins the pool before gtest runs. Unset, the
// test runs at the default pool width.
#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/kernels/kernels.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fitact {
namespace {

const bool g_threads_pinned = [] {
  if (const char* env = std::getenv("FITACT_GEMM_FUZZ_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) (void)ut::set_global_threads(static_cast<std::size_t>(n));
  }
  return true;
}();

struct FuzzCase {
  std::int64_t m = 1, n = 1, k = 1;
  bool trans_a = false, trans_b = false;
  float alpha = 1.0f, beta = 0.0f;
  std::int64_t pad_a = 0, pad_b = 0, pad_c = 0;  ///< extra leading-dim slack
};

/// Forward-error bound for element (i, j): both kernels accumulate k
/// products (the fast path in float, the reference in double but rounded
/// back to float), so the difference is bounded by a small multiple of
/// k * eps * sum_p |op(A)_ip * op(B)_pj| plus the beta term's rounding.
/// The (k + 8) factor and FLT_EPSILON (= 2 * unit roundoff) give ~4x
/// headroom over the textbook gamma_k bound — tight enough that a real
/// indexing or accumulation bug (errors at the scale of the values
/// themselves) still fails by orders of magnitude.
double element_bound(double abs_mass, float alpha, float beta, float c0,
                     std::int64_t k) {
  const double mass = std::abs(static_cast<double>(alpha)) * abs_mass +
                      std::abs(static_cast<double>(beta) * c0);
  return static_cast<double>(FLT_EPSILON) * (static_cast<double>(k) + 8.0) *
             mass +
         1e-30;
}

void run_case(const FuzzCase& c, ut::Rng& rng, const std::string& context) {
  const std::int64_t a_rows = c.trans_a ? c.k : c.m;
  const std::int64_t a_cols = c.trans_a ? c.m : c.k;
  const std::int64_t b_rows = c.trans_b ? c.n : c.k;
  const std::int64_t b_cols = c.trans_b ? c.k : c.n;
  const std::int64_t lda = a_cols + c.pad_a;
  const std::int64_t ldb = b_cols + c.pad_b;
  const std::int64_t ldc = c.n + c.pad_c;

  const auto fill = [&](std::int64_t rows, std::int64_t ld) {
    std::vector<float> v(static_cast<std::size_t>(rows * ld));
    for (auto& x : v) x = rng.normal();
    return v;
  };
  const std::vector<float> a = fill(a_rows, lda);
  const std::vector<float> b = fill(b_rows, ldb);
  std::vector<float> c_fast = fill(c.m, ldc);
  std::vector<float> c_ref = c_fast;
  const std::vector<float> c_orig = c_fast;

  sgemm(c.trans_a, c.trans_b, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(),
        ldb, c.beta, c_fast.data(), ldc);
  sgemm_reference(c.trans_a, c.trans_b, c.m, c.n, c.k, c.alpha, a.data(), lda,
                  b.data(), ldb, c.beta, c_ref.data(), ldc);

  const auto at = [](const std::vector<float>& v, std::int64_t ld,
                     std::int64_t r, std::int64_t col, bool trans) {
    return trans ? v[static_cast<std::size_t>(col * ld + r)]
                 : v[static_cast<std::size_t>(r * ld + col)];
  };
  for (std::int64_t i = 0; i < c.m; ++i) {
    for (std::int64_t j = 0; j < c.n; ++j) {
      double abs_mass = 0.0;
      for (std::int64_t p = 0; p < c.k; ++p) {
        abs_mass += std::abs(static_cast<double>(at(a, lda, i, p, c.trans_a)) *
                             static_cast<double>(at(b, ldb, p, j, c.trans_b)));
      }
      // The beta=0 contract ignores prior C content entirely, so its term
      // contributes nothing to the bound (and garbage/NaN must not leak).
      const float c0 = c.beta == 0.0f
                           ? 0.0f
                           : c_orig[static_cast<std::size_t>(i * ldc + j)];
      const double got =
          static_cast<double>(c_fast[static_cast<std::size_t>(i * ldc + j)]);
      const double want =
          static_cast<double>(c_ref[static_cast<std::size_t>(i * ldc + j)]);
      EXPECT_LE(std::abs(got - want),
                element_bound(abs_mass, c.alpha, c.beta, c0, c.k))
          << context << " element (" << i << ", " << j << "): got " << got
          << " want " << want;
    }
  }
  // Rows beyond n (leading-dim slack) must never be written.
  if (c.pad_c > 0) {
    for (std::int64_t i = 0; i < c.m; ++i) {
      for (std::int64_t j = c.n; j < ldc; ++j) {
        EXPECT_EQ(c_fast[static_cast<std::size_t>(i * ldc + j)],
                  c_ref[static_cast<std::size_t>(i * ldc + j)])
            << context << " wrote into ldc slack at (" << i << ", " << j
            << ")";
      }
    }
  }
}

std::string describe(const FuzzCase& c) {
  return "m=" + std::to_string(c.m) + " n=" + std::to_string(c.n) +
         " k=" + std::to_string(c.k) + " tA=" + std::to_string(c.trans_a) +
         " tB=" + std::to_string(c.trans_b) +
         " alpha=" + std::to_string(c.alpha) +
         " beta=" + std::to_string(c.beta) +
         " pads=" + std::to_string(c.pad_a) + "/" + std::to_string(c.pad_b) +
         "/" + std::to_string(c.pad_c);
}

TEST(GemmFuzz, PinnedEdgeCases) {
  ASSERT_TRUE(g_threads_pinned);
  ut::Rng rng(20240901);
  const std::vector<FuzzCase> cases = {
      {1, 1, 1, false, false, 1.0f, 0.0f, 0, 0, 0},
      {1, 1, 1, true, true, -2.0f, 1.0f, 1, 1, 1},
      {1, 96, 33, false, false, 1.0f, 0.0f, 0, 0, 0},
      {96, 1, 33, false, false, 1.0f, 1.0f, 0, 0, 0},
      {33, 96, 1, false, false, 0.5f, -1.0f, 0, 0, 0},
      // k = 0: pure beta scaling, nothing accumulated.
      {7, 9, 0, false, false, 1.0f, 0.5f, 0, 0, 0},
      {7, 9, 0, false, false, 1.0f, 0.0f, 0, 0, 0},
      // alpha = 0 short-circuit must still apply beta.
      {17, 13, 21, false, false, 0.0f, 0.5f, 0, 0, 0},
      {17, 13, 21, false, false, 0.0f, 0.0f, 0, 0, 0},
      // Block-boundary shapes (kBlockM = 64, kBlockN = 256, kBlockK = 256).
      {63, 255, 255, false, false, 1.0f, 0.0f, 0, 0, 0},
      {64, 256, 256, false, false, 1.0f, 0.0f, 0, 0, 0},
      {65, 257, 257, false, false, 1.0f, 1.0f, 0, 0, 0},
      // Transpose combinations with padded leading dims.
      {24, 40, 56, true, false, 1.5f, 0.0f, 3, 2, 5},
      {40, 24, 56, false, true, -1.0f, 0.5f, 2, 3, 1},
      {24, 24, 24, true, true, 2.0f, -0.5f, 1, 4, 2},
  };
  for (std::size_t i = 0; i < cases.size(); ++i) {
    run_case(cases[i], rng, "edge case " + std::to_string(i) + " [" +
                                describe(cases[i]) + "]");
  }
}

// The same edge-case matrix under an explicitly forced scalar backend, then
// explicitly forced best-available: whatever FITACT_KERNELS or the host
// selected for the other tests, both backends get exercised against the
// reference on every CI runner. element_bound covers the AVX2 kernel's FMA
// accumulation-order difference; a dispatch-layer bug (wrong panel math,
// wrong edge handling) fails by orders of magnitude.
TEST(GemmFuzz, EdgeCasesAgreeUnderBothKernelBackends) {
  ASSERT_TRUE(g_threads_pinned);
  const std::vector<FuzzCase> cases = {
      {1, 1, 1, false, false, 1.0f, 0.0f, 0, 0, 0},
      {5, 17, 3, false, false, 1.0f, 0.5f, 2, 1, 3},
      // Tile boundaries of the AVX2 panel kernel (4-row x 16-col tiles).
      {3, 15, 9, false, false, 1.0f, 0.0f, 0, 0, 0},
      {4, 16, 9, false, false, 1.0f, 0.0f, 0, 0, 0},
      {5, 17, 9, false, false, -1.5f, 1.0f, 0, 0, 0},
      {8, 33, 40, false, false, 1.0f, 0.0f, 1, 2, 1},
      // Block boundaries of the outer loops.
      {64, 256, 256, false, false, 1.0f, 0.0f, 0, 0, 0},
      {65, 257, 257, false, false, 0.5f, -1.0f, 0, 0, 0},
  };
  for (const kern::Backend backend :
       {kern::Backend::scalar,
        kern::avx2_supported() ? kern::Backend::avx2 : kern::Backend::scalar}) {
    const kern::BackendGuard guard(backend);
    ASSERT_EQ(kern::active_backend(), backend);
    ut::Rng rng(20240902);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      run_case(cases[i], rng,
               std::string("backend ") + kern::backend_name(backend) +
                   " case " + std::to_string(i) + " [" + describe(cases[i]) +
                   "]");
    }
  }
}

// Regression: the panel kernel used to skip accumulation for zero A
// elements ("if (aval == 0.0f) continue"), which is wrong in IEEE
// arithmetic — 0 * NaN and 0 * Inf are NaN, and hardware faults produce
// exactly these values in B. A zero in the *packed A panel* must not stop
// a NaN/Inf in B from poisoning the output row. Checked under both
// backends: non-finite results cannot be compared to the reference by
// error bound, so the test compares IEEE classification element-wise.
TEST(GemmFuzz, NonFiniteOperandsPropagateThroughPanelKernel) {
  ASSERT_TRUE(g_threads_pinned);
  constexpr std::int64_t m = 9, n = 21, k = 17;
  ut::Rng rng(20240903);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  // Zero out two full A columns; the old skip made these positions inert.
  for (std::int64_t i = 0; i < m; ++i) {
    a[static_cast<std::size_t>(i * k + 3)] = 0.0f;
    a[static_cast<std::size_t>(i * k + 11)] = 0.0f;
  }
  // Non-finite B values reachable *only* through the zeroed A columns.
  b[static_cast<std::size_t>(3 * n + 5)] = std::nanf("");
  b[static_cast<std::size_t>(11 * n + 13)] = HUGE_VALF;  // +Inf
  for (const kern::Backend backend :
       {kern::Backend::scalar,
        kern::avx2_supported() ? kern::Backend::avx2 : kern::Backend::scalar}) {
    const kern::BackendGuard guard(backend);
    std::vector<float> c_fast(static_cast<std::size_t>(m * n), 0.5f);
    std::vector<float> c_ref = c_fast;
    sgemm(false, false, m, n, k, 2.0f, a.data(), k, b.data(), n, 0.0f,
          c_fast.data(), n);
    sgemm_reference(false, false, m, n, k, 2.0f, a.data(), k, b.data(), n,
                    0.0f, c_ref.data(), n);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const float got = c_fast[static_cast<std::size_t>(i * n + j)];
        const float want = c_ref[static_cast<std::size_t>(i * n + j)];
        EXPECT_EQ(std::isnan(got), std::isnan(want))
            << "backend " << kern::backend_name(backend) << " element (" << i
            << ", " << j << "): got " << got << " want " << want;
        if (std::isfinite(want)) {
          EXPECT_TRUE(std::isfinite(got))
              << "backend " << kern::backend_name(backend) << " element ("
              << i << ", " << j << "): got " << got << " want " << want;
        }
      }
    }
    // Columns 5 (through the NaN) and 13 (through the Inf) must be
    // poisoned: 0 * NaN = NaN and 0 * Inf = NaN reach every output row.
    for (std::int64_t i = 0; i < m; ++i) {
      EXPECT_TRUE(std::isnan(c_fast[static_cast<std::size_t>(i * n + 5)]))
          << "backend " << kern::backend_name(backend) << " row " << i;
      EXPECT_TRUE(std::isnan(c_fast[static_cast<std::size_t>(i * n + 13)]))
          << "backend " << kern::backend_name(backend) << " row " << i;
    }
  }
}

TEST(GemmFuzz, RandomizedSweep) {
  ASSERT_TRUE(g_threads_pinned);
  ut::Rng rng(987654321);
  const float alphas[] = {0.0f, 1.0f, -1.0f, 0.5f, 2.5f};
  const float betas[] = {0.0f, 1.0f, -1.0f, 0.5f};
  constexpr int kCases = 200;
  for (int t = 0; t < kCases; ++t) {
    FuzzCase c;
    // Skew small: degenerate and tiny shapes exercise the edge handling,
    // occasional larger ones cross the cache-block boundaries.
    const auto dim = [&]() -> std::int64_t {
      switch (rng.next_below(4)) {
        case 0:
          return rng.next_int(1, 4);
        case 1:
          return rng.next_int(1, 32);
        case 2:
          return rng.next_int(33, 96);
        default:
          return rng.next_int(60, 70);  // straddles kBlockM
      }
    };
    c.m = dim();
    c.n = dim();
    c.k = dim();
    c.trans_a = rng.next_below(2) == 1;
    c.trans_b = rng.next_below(2) == 1;
    c.alpha = rng.next_below(3) == 0
                  ? alphas[rng.next_below(5)]
                  : static_cast<float>(rng.next_double() * 4.0 - 2.0);
    c.beta = rng.next_below(3) == 0
                 ? betas[rng.next_below(4)]
                 : static_cast<float>(rng.next_double() * 2.0 - 1.0);
    c.pad_a = rng.next_int(0, 4);
    c.pad_b = rng.next_int(0, 4);
    c.pad_c = rng.next_int(0, 4);
    run_case(c, rng, "random case " + std::to_string(t) + " [" + describe(c) +
                         "]");
  }
}

}  // namespace
}  // namespace fitact
