// Unit tests for the autograd engine: graph mechanics, accumulation,
// NoGradGuard, and forward values / analytic gradients of each op on small
// known cases. Exhaustive numeric gradient checks live in gradcheck_test.cpp.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "util/rng.h"

namespace fitact {
namespace {

TEST(Variable, LeafBasics) {
  Variable v(Tensor::from_values({1.0f, 2.0f}), true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.numel(), 2);
  EXPECT_FALSE(v.has_grad());
  v.ensure_grad();
  EXPECT_TRUE(v.has_grad());
  EXPECT_EQ(v.grad()[0], 0.0f);
}

TEST(Variable, BackwardThroughAdd) {
  Variable a(Tensor::from_values({1.0f, 2.0f}), true);
  Variable b(Tensor::from_values({3.0f, 4.0f}), true);
  Variable c = ag::add(a, b);
  EXPECT_FLOAT_EQ(c.value()[0], 4.0f);
  c.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(b.grad()[1], 1.0f);
}

TEST(Variable, GradAccumulatesAcrossUses) {
  // y = x + x  => dy/dx = 2.
  Variable x(Tensor::from_values({5.0f}), true);
  Variable y = ag::add(x, x);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(Variable, DiamondGraphAccumulates) {
  // z = (x*x) + (x*x): dz/dx = 4x.
  Variable x(Tensor::from_values({3.0f}), true);
  Variable a = ag::mul(x, x);
  Variable b = ag::mul(x, x);
  Variable z = ag::add(a, b);
  z.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
}

TEST(Variable, BackwardTwiceAccumulates) {
  Variable x(Tensor::from_values({2.0f}), true);
  Variable y = ag::scale(x, 3.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
  Variable y2 = ag::scale(x, 3.0f);
  y2.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0f);  // accumulated, matching torch semantics
}

TEST(Variable, NoGradParentSkipsAccumulation) {
  Variable a(Tensor::from_values({1.0f}), true);
  Variable b(Tensor::from_values({2.0f}), false);
  Variable c = ag::mul(a, b);
  c.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
  EXPECT_FALSE(b.has_grad());
}

TEST(NoGradGuard, DisablesGraphConstruction) {
  Variable a(Tensor::from_values({1.0f}), true);
  {
    const NoGradGuard guard;
    Variable b = ag::scale(a, 2.0f);
    EXPECT_FALSE(b.requires_grad());
    EXPECT_TRUE(grad_enabled() == false);
  }
  EXPECT_TRUE(grad_enabled());
}

TEST(NoGradGuard, Nests) {
  const NoGradGuard g1;
  {
    const NoGradGuard g2;
    EXPECT_FALSE(grad_enabled());
  }
  EXPECT_FALSE(grad_enabled());
}

TEST(Ops, SubGradientSigns) {
  Variable a(Tensor::from_values({5.0f}), true);
  Variable b(Tensor::from_values({3.0f}), true);
  Variable c = ag::sub(a, b);
  EXPECT_FLOAT_EQ(c.value()[0], 2.0f);
  c.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], -1.0f);
}

TEST(Ops, ReluForwardAndMask) {
  Variable x(Tensor::from_values({-1.0f, 0.0f, 2.0f}), true);
  Variable y = ag::relu(x);
  EXPECT_FLOAT_EQ(y.value()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.value()[2], 2.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 0.0f);  // relu'(0) = 0 by convention
  EXPECT_FLOAT_EQ(x.grad()[2], 1.0f);
}

TEST(Ops, ClippedReluZeroAboveSemantics) {
  // Clip-Act / GBReLU (paper Eq. 4): x > bound -> 0.
  Variable x(Tensor::zeros(Shape{1, 4}), true);
  x.value()[0] = -1.0f;
  x.value()[1] = 0.5f;
  x.value()[2] = 1.0f;
  x.value()[3] = 3.0f;
  const Tensor bound = Tensor::scalar(1.0f);
  Variable y = ag::clipped_relu(x, bound, ag::ClipMode::zero_above);
  EXPECT_FLOAT_EQ(y.value()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.value()[1], 0.5f);
  EXPECT_FLOAT_EQ(y.value()[2], 1.0f);
  EXPECT_FLOAT_EQ(y.value()[3], 0.0f);  // squashed to zero, not clamped
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[1], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[3], 0.0f);
}

TEST(Ops, ClippedReluSaturateSemantics) {
  // Ranger: x > bound -> bound (value still propagates).
  Variable x(Tensor::zeros(Shape{1, 2}), true);
  x.value()[0] = 0.5f;
  x.value()[1] = 9.0f;
  const Tensor bound = Tensor::scalar(2.0f);
  Variable y = ag::clipped_relu(x, bound, ag::ClipMode::saturate);
  EXPECT_FLOAT_EQ(y.value()[0], 0.5f);
  EXPECT_FLOAT_EQ(y.value()[1], 2.0f);
}

TEST(Ops, ClippedReluPerChannelBound) {
  // x: [1, 2, 1, 2]; channel bounds {1, 10}.
  Variable x(Tensor::zeros(Shape{1, 2, 1, 2}), true);
  x.value()[0] = 5.0f;  // c0
  x.value()[1] = 0.5f;  // c0
  x.value()[2] = 5.0f;  // c1
  x.value()[3] = 0.5f;  // c1
  const Tensor bound = Tensor::from_values({1.0f, 10.0f});
  Variable y = ag::clipped_relu(x, bound, ag::ClipMode::zero_above);
  EXPECT_FLOAT_EQ(y.value()[0], 0.0f);  // over c0 bound
  EXPECT_FLOAT_EQ(y.value()[1], 0.5f);
  EXPECT_FLOAT_EQ(y.value()[2], 5.0f);  // under c1 bound
  EXPECT_FLOAT_EQ(y.value()[3], 0.5f);
}

TEST(Ops, ClippedReluPerNeuronBound) {
  // FitReLU-Naive (paper Eq. 5): per-neuron bound.
  Variable x(Tensor::zeros(Shape{2, 3}), true);  // batch of 2
  for (std::int64_t i = 0; i < 6; ++i) x.value()[i] = 2.0f;
  const Tensor bound = Tensor::from_values({1.0f, 3.0f, 2.0f});
  Variable y = ag::clipped_relu(x, bound, ag::ClipMode::zero_above);
  // Both batch rows use the same per-neuron bounds.
  for (std::int64_t b = 0; b < 2; ++b) {
    EXPECT_FLOAT_EQ(y.value()[b * 3 + 0], 0.0f);  // 2 > 1
    EXPECT_FLOAT_EQ(y.value()[b * 3 + 1], 2.0f);  // 2 <= 3
    EXPECT_FLOAT_EQ(y.value()[b * 3 + 2], 2.0f);  // 2 <= 2 (boundary passes)
  }
}

TEST(Ops, ClippedReluRejectsBadBoundExtent) {
  Variable x(Tensor::zeros(Shape{1, 4}), true);
  const Tensor bound = Tensor::zeros(Shape{3});
  EXPECT_THROW(ag::clipped_relu(x, bound, ag::ClipMode::zero_above),
               std::invalid_argument);
}

TEST(Ops, FitReluBehavesLikeIdentityWellBelowBound) {
  Variable x(Tensor::from_values({1.0f}).reshape(Shape{1, 1}), true);
  Variable lambda(Tensor::from_values({10.0f}), false);
  Variable y = ag::fitrelu(x, lambda, 8.0f);
  EXPECT_NEAR(y.value()[0], 1.0f, 1e-5f);
}

TEST(Ops, FitReluSquashesWellAboveBound) {
  Variable x(Tensor::from_values({10.0f}).reshape(Shape{1, 1}), true);
  Variable lambda(Tensor::from_values({1.0f}), false);
  Variable y = ag::fitrelu(x, lambda, 8.0f);
  EXPECT_NEAR(y.value()[0], 0.0f, 1e-4f);
}

TEST(Ops, FitReluHalfValueAtBound) {
  // At x == lambda the sigmoid gate is exactly 1/2.
  Variable x(Tensor::from_values({2.0f}).reshape(Shape{1, 1}), true);
  Variable lambda(Tensor::from_values({2.0f}), false);
  Variable y = ag::fitrelu(x, lambda, 4.0f);
  EXPECT_NEAR(y.value()[0], 1.0f, 1e-5f);
}

TEST(Ops, FitReluZeroForNegativeInput) {
  Variable x(Tensor::from_values({-3.0f}).reshape(Shape{1, 1}), true);
  Variable lambda(Tensor::from_values({2.0f}), true);
  Variable y = ag::fitrelu(x, lambda, 8.0f);
  EXPECT_FLOAT_EQ(y.value()[0], 0.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(lambda.grad()[0], 0.0f);
}

TEST(Ops, FitReluLambdaGradientIsPositiveNearCutoff) {
  // Raising the bound lets more signal through: d y / d lambda > 0 near x.
  Variable x(Tensor::from_values({2.0f}).reshape(Shape{1, 1}), true);
  Variable lambda(Tensor::from_values({2.0f}), true);
  Variable y = ag::fitrelu(x, lambda, 4.0f);
  y.backward();
  EXPECT_GT(lambda.grad()[0], 0.0f);
}

TEST(Ops, FitReluLambdaGradAccumulatesOverBatch) {
  Variable x(Tensor::full(Shape{4, 1}, 2.0f), true);
  Variable lambda(Tensor::from_values({2.0f}), true);
  Variable y = ag::fitrelu(x, lambda, 4.0f);
  y.backward();
  // Four identical samples -> 4x the single-sample gradient.
  Variable x1(Tensor::full(Shape{1, 1}, 2.0f), true);
  Variable l1(Tensor::from_values({2.0f}), true);
  Variable y1 = ag::fitrelu(x1, l1, 4.0f);
  y1.backward();
  EXPECT_NEAR(lambda.grad()[0], 4.0f * l1.grad()[0], 1e-5f);
}

TEST(Ops, SoftmaxCrossEntropyUniformLogits) {
  Variable logits(Tensor::zeros(Shape{2, 4}), true);
  Tensor probs;
  Variable loss = ag::softmax_cross_entropy(logits, {0, 3}, &probs);
  EXPECT_NEAR(loss.value().item(), std::log(4.0f), 1e-5f);
  EXPECT_NEAR(probs[0], 0.25f, 1e-6f);
  loss.backward();
  // d loss / d logit = (p - y)/B.
  EXPECT_NEAR(logits.grad()[0], (0.25f - 1.0f) / 2.0f, 1e-5f);
  EXPECT_NEAR(logits.grad()[1], 0.25f / 2.0f, 1e-5f);
}

TEST(Ops, SoftmaxCrossEntropyRejectsBadLabels) {
  Variable logits(Tensor::zeros(Shape{1, 3}), true);
  EXPECT_THROW(ag::softmax_cross_entropy(logits, {5}), std::out_of_range);
  EXPECT_THROW(ag::softmax_cross_entropy(logits, {0, 1}),
               std::invalid_argument);
}

TEST(Ops, SumOfSquares) {
  Variable x(Tensor::from_values({1.0f, -2.0f, 3.0f}), true);
  Variable y = ag::sum_of_squares(x);
  EXPECT_FLOAT_EQ(y.value().item(), 14.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], -4.0f);
}

TEST(Ops, MeanAll) {
  Variable x(Tensor::from_values({2.0f, 4.0f}), true);
  Variable y = ag::mean_all(x);
  EXPECT_FLOAT_EQ(y.value().item(), 3.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.5f);
}

TEST(Ops, FlattenPreservesDataAndGrad) {
  Variable x(Tensor::zeros(Shape{2, 2, 2, 2}), true);
  for (std::int64_t i = 0; i < 16; ++i) x.value()[i] = static_cast<float>(i);
  Variable y = ag::flatten(x);
  EXPECT_EQ(y.shape(), Shape({2, 8}));
  EXPECT_FLOAT_EQ(y.value()[5], 5.0f);
  Variable s = ag::sum_of_squares(y);
  s.backward();
  EXPECT_FLOAT_EQ(x.grad()[3], 6.0f);
}

TEST(Ops, MaxPoolForwardAndRouting) {
  Variable x(Tensor::zeros(Shape{1, 1, 2, 2}), true);
  x.value()[0] = 1.0f;
  x.value()[1] = 5.0f;
  x.value()[2] = 3.0f;
  x.value()[3] = 2.0f;
  Variable y = ag::max_pool2d(x, 2, 2);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y.value()[0], 5.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 1.0f);  // routed to the argmax only
}

TEST(Ops, GlobalAvgPool) {
  Variable x(Tensor::zeros(Shape{1, 2, 2, 2}), true);
  for (std::int64_t i = 0; i < 4; ++i) x.value()[i] = 2.0f;       // c0
  for (std::int64_t i = 4; i < 8; ++i) x.value()[i] = 6.0f;       // c1
  Variable y = ag::global_avg_pool(x);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y.value()[0], 2.0f);
  EXPECT_FLOAT_EQ(y.value()[1], 6.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.25f);
}

TEST(Ops, LinearForwardKnownValues) {
  Variable x(Tensor::from_values({1.0f, 2.0f}).reshape(Shape{1, 2}), false);
  Variable w(Tensor::from_values({3.0f, 4.0f, 5.0f, 6.0f}).reshape(Shape{2, 2}),
             true);
  Variable b(Tensor::from_values({0.5f, -0.5f}), true);
  Variable y = ag::linear(x, w, b);
  // y0 = 1*3 + 2*4 + 0.5 = 11.5 ; y1 = 1*5 + 2*6 - 0.5 = 16.5
  EXPECT_FLOAT_EQ(y.value()[0], 11.5f);
  EXPECT_FLOAT_EQ(y.value()[1], 16.5f);
  y.backward();
  // dW = g^T x with g = ones: each row = x.
  EXPECT_FLOAT_EQ(w.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(w.grad()[1], 2.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 1.0f);
}

TEST(Ops, Conv2dMatchesManualSingleKernel) {
  // 1 input channel, 1 output channel, 2x2 kernel of ones over 3x3 input:
  // each output = sum of the 2x2 window.
  Variable x(Tensor::zeros(Shape{1, 1, 3, 3}), false);
  for (std::int64_t i = 0; i < 9; ++i) x.value()[i] = static_cast<float>(i);
  Variable w(Tensor::ones(Shape{1, 1, 2, 2}), true);
  Variable y = ag::conv2d(x, w, Variable(), 1, 0);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.value()[0], 0.0f + 1 + 3 + 4);
  EXPECT_FLOAT_EQ(y.value()[1], 1.0f + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(y.value()[2], 3.0f + 4 + 6 + 7);
  EXPECT_FLOAT_EQ(y.value()[3], 4.0f + 5 + 7 + 8);
}

TEST(Ops, Conv2dBiasBroadcasts) {
  Variable x(Tensor::ones(Shape{1, 1, 2, 2}), false);
  Variable w(Tensor::ones(Shape{2, 1, 1, 1}), false);
  Variable b(Tensor::from_values({10.0f, 20.0f}), false);
  Variable y = ag::conv2d(x, w, b, 1, 0);
  EXPECT_FLOAT_EQ(y.value()[0], 11.0f);
  EXPECT_FLOAT_EQ(y.value()[4], 21.0f);
}

TEST(Ops, BatchNormTrainingNormalises) {
  ut::Rng rng(3);
  Variable x(Tensor::randn(Shape{8, 2, 4, 4}, rng, 3.0f), false);
  Variable gamma(Tensor::ones(Shape{2}), true);
  Variable beta(Tensor::zeros(Shape{2}), true);
  Tensor rm = Tensor::zeros(Shape{2});
  Tensor rv = Tensor::ones(Shape{2});
  Variable y =
      ag::batch_norm2d(x, gamma, beta, rm, rv, true, 0.1f, 1e-5f);
  // Output channel statistics ~ N(0, 1).
  for (std::int64_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    double sum2 = 0.0;
    std::int64_t n = 0;
    for (std::int64_t b = 0; b < 8; ++b) {
      for (std::int64_t i = 0; i < 16; ++i) {
        const float v = y.value()[b * 32 + c * 16 + i];
        sum += v;
        sum2 += static_cast<double>(v) * v;
        ++n;
      }
    }
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sum2 / n, 1.0, 1e-3);
  }
  // Running stats moved from their init toward batch stats.
  EXPECT_NE(rm[0], 0.0f);
}

TEST(Ops, BatchNormEvalUsesRunningStats) {
  Variable x(Tensor::full(Shape{1, 1, 1, 2}, 4.0f), false);
  Variable gamma(Tensor::ones(Shape{1}), false);
  Variable beta(Tensor::zeros(Shape{1}), false);
  Tensor rm = Tensor::full(Shape{1}, 2.0f);
  Tensor rv = Tensor::full(Shape{1}, 4.0f);
  Variable y = ag::batch_norm2d(x, gamma, beta, rm, rv, false, 0.1f, 0.0f);
  EXPECT_NEAR(y.value()[0], (4.0f - 2.0f) / 2.0f, 1e-5f);
  // Eval mode must not touch running stats.
  EXPECT_FLOAT_EQ(rm[0], 2.0f);
  EXPECT_FLOAT_EQ(rv[0], 4.0f);
}

TEST(Ops, MatmulGradientShapes) {
  ut::Rng rng(4);
  Variable a(Tensor::randn(Shape{3, 4}, rng), true);
  Variable b(Tensor::randn(Shape{4, 5}, rng), true);
  Variable c = ag::matmul(a, b);
  EXPECT_EQ(c.shape(), Shape({3, 5}));
  c.backward();
  EXPECT_EQ(a.grad().shape(), Shape({3, 4}));
  EXPECT_EQ(b.grad().shape(), Shape({4, 5}));
}

}  // namespace
}  // namespace fitact
