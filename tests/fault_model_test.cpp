// Tests for the extended fault models (stuck-at, bursts, bit-range
// targeting, bit-position injection) and the transient activation-fault
// corruptor.
#include <gtest/gtest.h>

#include <cmath>

#include "core/activation.h"
#include "fault/injector.h"
#include "fault/transient.h"
#include "nn/layers.h"
#include "quant/fixed_point.h"
#include "quant/param_image.h"
#include "util/rng.h"

namespace fitact::fault {
namespace {

std::shared_ptr<nn::Sequential> small_net(std::uint64_t seed = 3) {
  ut::Rng rng(seed);
  auto net = std::make_shared<nn::Sequential>();
  net->add(std::make_shared<nn::Linear>(32, 32, true, rng));
  return net;
}

std::vector<float> snapshot(nn::Module& m) {
  std::vector<float> out;
  for (auto& p : m.named_parameters()) {
    for (const float v : p.var.value().span()) out.push_back(v);
  }
  return out;
}

TEST(FaultModelNames, ToString) {
  EXPECT_EQ(to_string(FaultType::bit_flip), "bit_flip");
  EXPECT_EQ(to_string(FaultType::stuck_at_one), "stuck_at_one");
  EXPECT_EQ(to_string(FaultType::stuck_at_zero), "stuck_at_zero");
  EXPECT_EQ(to_string(FaultType::word_burst), "word_burst");
}

TEST(FaultModel, RangeWidth) {
  FaultModel m;
  EXPECT_EQ(m.range_width(), 32);
  m.bit_lo = 24;
  m.bit_hi = 31;
  EXPECT_EQ(m.range_width(), 8);
}

TEST(FaultModel, InvalidRangeThrows) {
  auto net = small_net();
  quant::ParamImage img(*net);
  Injector inj(img);
  ut::Rng rng(1);
  FaultModel m;
  m.bit_lo = 20;
  m.bit_hi = 5;
  EXPECT_THROW(inj.inject(m, rng), std::invalid_argument);
  m.bit_lo = 0;
  m.bit_hi = 40;
  EXPECT_THROW(inj.inject(m, rng), std::invalid_argument);
}

TEST(FaultModel, StuckAtZeroOnlyShrinksMagnitudeBits) {
  // Stuck-at-0 can only clear bits: every faulty word, reinterpreted as an
  // unsigned pattern, loses bits relative to the clean word.
  auto net = small_net();
  quant::ParamImage img(*net);
  const auto clean = img.clean_words();
  Injector inj(img);
  ut::Rng rng(2);
  FaultModel m;
  m.type = FaultType::stuck_at_zero;
  m.bit_error_rate = 0.02;
  // Restrict to bit positions whose resulting values stay exactly
  // float-representable, so the re-encoded bit patterns compare exactly.
  m.bit_hi = 14;
  inj.inject(m, rng);
  // Re-encode what the model now holds and compare bit patterns.
  quant::ParamImage after(*net);
  const auto& faulty = after.clean_words();
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const auto c = static_cast<std::uint32_t>(clean[i]);
    const auto f = static_cast<std::uint32_t>(faulty[i]);
    EXPECT_EQ(f & ~c, 0u) << "stuck-at-0 set a bit at word " << i;
  }
  inj.restore();
}

TEST(FaultModel, StuckAtOneOnlySetsBits) {
  auto net = small_net();
  quant::ParamImage img(*net);
  const auto clean = img.clean_words();
  Injector inj(img);
  ut::Rng rng(3);
  FaultModel m;
  m.type = FaultType::stuck_at_one;
  m.bit_error_rate = 0.02;
  m.bit_hi = 14;  // keep encode saturation out of the comparison
  inj.inject(m, rng);
  quant::ParamImage after(*net);
  const auto& faulty = after.clean_words();
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const auto c = static_cast<std::uint32_t>(clean[i]);
    const auto f = static_cast<std::uint32_t>(faulty[i]);
    EXPECT_EQ(c & ~f, 0u) << "stuck-at-1 cleared a bit at word " << i;
  }
}

TEST(FaultModel, StuckAtOnIdenticalBitIsNoop) {
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  Injector inj(img);
  // Force a deterministic check on one word: set bit 3, then stick it at 1.
  auto words = img.clean_words();
  words[0] = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(words[0]) | (1u << 3));
  img.write_back(words);
  img.refresh();
  const float before = net->named_parameters()[0].var.value()[0];
  ut::Rng rng(4);
  FaultModel m;
  m.type = FaultType::stuck_at_one;
  m.bit_lo = 3;
  m.bit_hi = 3;
  m.bit_error_rate = 1.0;  // hit every eligible anchor
  inj.inject(m, rng);
  EXPECT_EQ(net->named_parameters()[0].var.value()[0], before);
}

TEST(FaultModel, BurstFlipsAdjacentBits) {
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  const auto clean = img.clean_words();
  Injector inj(img);
  ut::Rng rng(5);
  FaultModel m;
  m.type = FaultType::word_burst;
  m.burst_length = 4;
  m.bit_lo = 8;
  m.bit_hi = 8;  // anchor fixed at bit 8: burst covers bits 8..11
  m.bit_error_rate = 3e-2;
  inj.inject(m, rng);
  quant::ParamImage after(*net);
  const auto& faulty = after.clean_words();
  int changed_words = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const auto diff = static_cast<std::uint32_t>(clean[i]) ^
                      static_cast<std::uint32_t>(faulty[i]);
    if (diff == 0) continue;
    ++changed_words;
    EXPECT_EQ(diff, 0xF00u) << "burst at word " << i
                            << " touched bits outside 8..11";
  }
  EXPECT_GT(changed_words, 0);
}

TEST(FaultModel, BurstClampsAtWordBoundary) {
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  const auto clean = img.clean_words();
  Injector inj(img);
  ut::Rng rng(6);
  FaultModel m;
  m.type = FaultType::word_burst;
  m.burst_length = 8;
  m.bit_lo = 30;
  m.bit_hi = 30;  // burst 30..37 must clamp to 30..31
  m.bit_error_rate = 5e-2;
  inj.inject(m, rng);
  quant::ParamImage after(*net);
  const auto& faulty = after.clean_words();
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const auto diff = static_cast<std::uint32_t>(clean[i]) ^
                      static_cast<std::uint32_t>(faulty[i]);
    if (diff == 0) continue;
    // Bits 30 and 31 flipped; the float round-trip of the (huge) faulty
    // value perturbs low bits (|value| ~ 2^31 -> float ulp 256), but the
    // mid-range bits 12..29 must be untouched.
    EXPECT_EQ(diff & 0xC0000000u, 0xC0000000u);
    EXPECT_EQ(diff & 0x3FFFF000u, 0u);
  }
}

TEST(FaultModel, BurstClampsAtBit31WordBoundary) {
  // Anchor at the sign bit itself: a burst of any length must collapse to
  // the single bit 31 — never wrap into the next word or shift past 31
  // (1u << 32 is UB the clamp must make unreachable).
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  const auto clean = img.clean_words();
  Injector inj(img);
  ut::Rng rng(61);
  FaultModel m;
  m.type = FaultType::word_burst;
  m.burst_length = 8;
  m.bit_lo = 31;
  m.bit_hi = 31;
  m.bit_error_rate = 5e-2;
  inj.inject(m, rng);
  quant::ParamImage after(*net);
  const auto& faulty = after.clean_words();
  int changed_words = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const auto diff = static_cast<std::uint32_t>(clean[i]) ^
                      static_cast<std::uint32_t>(faulty[i]);
    if (diff == 0) continue;
    ++changed_words;
    // Sign bit flipped; the float round-trip of the (huge) value may
    // perturb low bits, but bits 12..30 must be untouched: the burst never
    // spilled below its clamped single-bit extent.
    EXPECT_NE(diff & 0x80000000u, 0u) << "word " << i;
    EXPECT_EQ(diff & 0x7FFFF000u, 0u) << "word " << i;
  }
  EXPECT_GT(changed_words, 0);
}

TEST(FaultModel, StuckAtZeroOnClearedBitIsNoop) {
  // Mirror of StuckAtOnIdenticalBitIsNoop for the other polarity: clear a
  // bit, then stick it at 0 with certainty — the word must not move.
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  Injector inj(img);
  auto words = img.clean_words();
  words[0] = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(words[0]) & ~(1u << 5));
  img.write_back(words);
  img.refresh();
  const float before = net->named_parameters()[0].var.value()[0];
  ut::Rng rng(62);
  FaultModel m;
  m.type = FaultType::stuck_at_zero;
  m.bit_lo = 5;
  m.bit_hi = 5;
  m.bit_error_rate = 1.0;  // hit every eligible anchor
  inj.inject(m, rng);
  EXPECT_EQ(net->named_parameters()[0].var.value()[0], before);
}

TEST(FaultModel, StuckAtFaultsAreIdempotent) {
  // A permanent defect applied twice is the same defect: injecting the
  // same stuck-at model again (over the refreshed image) changes nothing.
  for (const FaultType type :
       {FaultType::stuck_at_one, FaultType::stuck_at_zero}) {
    auto net = small_net();
    quant::ParamImage img(*net);
    img.restore();
    Injector inj(img);
    ut::Rng rng(63);
    FaultModel m;
    m.type = type;
    m.bit_error_rate = 1.0;  // deterministic: every anchor in range fires
    m.bit_hi = 14;           // stay exactly float-representable
    inj.inject(m, rng);
    quant::ParamImage once(*net);
    const auto first = once.clean_words();
    // Second application over the *current* state (refresh so the image's
    // clean snapshot is the already-stuck pattern).
    img.refresh();
    inj.inject(m, rng);
    quant::ParamImage twice(*net);
    const auto& second = twice.clean_words();
    EXPECT_EQ(first, second) << to_string(type);
  }
}

TEST(FaultModel, SingleLowBitRangeConfinesInjection) {
  // bit_lo == bit_hi == 0: only the fraction LSB may move, and for the
  // small weights of the net that round-trips exactly, so the diff mask is
  // exactly bit 0 on every faulty word.
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  const auto clean = img.clean_words();
  Injector inj(img);
  ut::Rng rng(64);
  FaultModel m;
  m.bit_lo = 0;
  m.bit_hi = 0;
  m.bit_error_rate = 0.1;
  inj.inject(m, rng);
  quant::ParamImage after(*net);
  const auto& faulty = after.clean_words();
  int changed_words = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const auto diff = static_cast<std::uint32_t>(clean[i]) ^
                      static_cast<std::uint32_t>(faulty[i]);
    if (diff == 0) continue;
    ++changed_words;
    EXPECT_EQ(diff, 1u) << "fault escaped bit 0 at word " << i;
  }
  EXPECT_GT(changed_words, 0);
}

TEST(FaultModel, BitRangeTargetingStaysInRange) {
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  const auto clean = img.clean_words();
  Injector inj(img);
  ut::Rng rng(7);
  FaultModel m;
  m.bit_lo = 10;
  m.bit_hi = 13;  // values stay small, so patterns round-trip exactly
  m.bit_error_rate = 0.05;
  inj.inject(m, rng);
  quant::ParamImage after(*net);
  const auto& faulty = after.clean_words();
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const auto diff = static_cast<std::uint32_t>(clean[i]) ^
                      static_cast<std::uint32_t>(faulty[i]);
    EXPECT_EQ(diff & ~0x00003C00u, 0u)
        << "fault outside bits 10..13 at word " << i;
  }
}

TEST(FaultModel, HighBitFaultsAreMoreDamagingThanLowBit) {
  // Property behind the whole paper: magnitude of parameter excursions
  // grows with the flipped bit position.
  auto net = small_net();
  quant::ParamImage img(*net);
  img.restore();
  const auto clean = snapshot(*net);
  Injector inj(img);
  const auto excursion = [&](int bit) {
    ut::Rng rng(100 + static_cast<std::uint64_t>(bit));
    inj.inject_exact_at_bit(20, bit, rng);
    double total = 0.0;
    const auto now = snapshot(*net);
    for (std::size_t i = 0; i < now.size(); ++i) {
      total += std::abs(static_cast<double>(now[i]) - clean[i]);
    }
    inj.restore();
    return total;
  };
  EXPECT_LT(excursion(2), excursion(18));
  EXPECT_LT(excursion(18), excursion(28));
}

TEST(FaultModel, InjectExactAtBitRejectsBadBit) {
  auto net = small_net();
  quant::ParamImage img(*net);
  Injector inj(img);
  ut::Rng rng(8);
  EXPECT_THROW(inj.inject_exact_at_bit(1, 32, rng), std::invalid_argument);
  EXPECT_THROW(inj.inject_exact_at_bit(1, -1, rng), std::invalid_argument);
}

TEST(Transient, CorruptorIsDeterministicPerSeed) {
  ut::Rng rng(9);
  Tensor a = Tensor::randn(Shape{256}, rng);
  Tensor b = a.clone();
  auto ca = make_bitflip_corruptor(1e-3, 42);
  auto cb = make_bitflip_corruptor(1e-3, 42);
  ca(a);
  cb(b);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Transient, ZeroRateIsQuantisationOnly) {
  ut::Rng rng(10);
  Tensor a = Tensor::randn(Shape{64}, rng);
  const Tensor orig = a.clone();
  auto c = make_bitflip_corruptor(0.0, 1);
  c(a);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], orig[i]);
}

TEST(Transient, HighRateChangesValues) {
  ut::Rng rng(11);
  Tensor a = Tensor::rand_uniform(Shape{512}, rng, -1.0f, 1.0f);
  const Tensor orig = a.clone();
  auto c = make_bitflip_corruptor(1e-2, 2);
  c(a);
  int changed = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (a[i] != orig[i]) ++changed;
  }
  EXPECT_GT(changed, 50);  // ~32% of words expected
}

TEST(Transient, ActivationHookCorruptsOnlyDuringAttachment) {
  core::ActivationConfig cfg;
  core::BoundedActivation act(cfg);
  Tensor x = Tensor::full(Shape{1, 8}, 0.5f);
  const Variable clean = act.forward(Variable(x, false));
  act.set_input_corruptor([](Tensor& t) { t.fill(2.0f); });
  const Variable corrupted = act.forward(Variable(x, false));
  act.clear_input_corruptor();
  const Variable clean_again = act.forward(Variable(x, false));
  EXPECT_FLOAT_EQ(clean.value()[0], 0.5f);
  EXPECT_FLOAT_EQ(corrupted.value()[0], 2.0f);
  EXPECT_FLOAT_EQ(clean_again.value()[0], 0.5f);
}

TEST(Transient, HookDoesNotMutateCallerTensor) {
  core::ActivationConfig cfg;
  core::BoundedActivation act(cfg);
  Tensor x = Tensor::full(Shape{1, 4}, 1.0f);
  act.set_input_corruptor([](Tensor& t) { t.fill(9.0f); });
  act.forward(Variable(x, false));
  EXPECT_FLOAT_EQ(x[0], 1.0f);  // the hook works on a clone
}

TEST(Transient, RangerSquashesCorruptedActivations) {
  // End-to-end micro version of Ranger's claim: with a saturating bound,
  // a corrupted huge activation propagates as the bound, not as 16k.
  core::ActivationConfig cfg;
  cfg.scheme = core::Scheme::ranger;
  core::BoundedActivation act(cfg);
  act.set_layer_bound(1.5f);
  act.set_input_corruptor([](Tensor& t) { t[0] = 16384.0f; });
  const Variable y =
      act.forward(Variable(Tensor::full(Shape{1, 4}, 1.0f), false));
  EXPECT_FLOAT_EQ(y.value()[0], 1.5f);
  EXPECT_FLOAT_EQ(y.value()[1], 1.0f);
}

}  // namespace
}  // namespace fitact::fault
