// Tests for src/eval: metrics, summary statistics, the stage-1 trainer, and
// the experiment driver (cache round-trip, scheme labels, rate grid).
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "core/activation.h"
#include "data/synthetic_cifar.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/stats.h"
#include "eval/trainer.h"
#include "models/registry.h"

namespace fitact::ev {
namespace {

TEST(Stats, FiveNumberSummaryKnownValues) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(Stats, InterpolatedQuartiles) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(Stats, UnsortedInputHandled) {
  const Summary s = summarize({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({2.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, StddevMatchesHandComputation) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample stddev
}

TEST(Metrics, PerfectAndChanceAccuracy) {
  // A model that always predicts class 0.
  struct ConstantModel final : nn::Module {
    Variable forward(const Variable& x) override {
      const std::int64_t batch = x.shape()[0];
      Tensor logits = Tensor::zeros(Shape{batch, 4});
      for (std::int64_t b = 0; b < batch; ++b) logits[b * 4] = 1.0f;
      return Variable(std::move(logits), false);
    }
  };
  data::SyntheticCifarConfig cfg;
  cfg.num_classes = 4;
  cfg.size = 64;
  const data::SyntheticCifar ds(cfg);
  ConstantModel m;
  // Round-robin labels: exactly 1/4 of samples are class 0.
  EXPECT_NEAR(evaluate_accuracy(m, ds), 0.25, 1e-9);
}

TEST(Metrics, MaxSamplesCapsEvaluation) {
  struct CountingModel final : nn::Module {
    std::int64_t seen = 0;
    Variable forward(const Variable& x) override {
      seen += x.shape()[0];
      return Variable(Tensor::zeros(Shape{x.shape()[0], 4}), false);
    }
  };
  data::SyntheticCifarConfig cfg;
  cfg.num_classes = 4;
  cfg.size = 64;
  const data::SyntheticCifar ds(cfg);
  CountingModel m;
  EvalConfig ec;
  ec.max_samples = 20;
  ec.batch_size = 8;
  (void)evaluate_accuracy(m, ds, ec);
  EXPECT_EQ(m.seen, 20);
}

TEST(Trainer, LossDecreasesOnLearnableTask) {
  models::ModelConfig mc;
  mc.width_mult = 0.5f;
  mc.num_classes = 4;
  auto model = models::make_model("tinycnn", mc);
  data::SyntheticCifarConfig dc;
  dc.num_classes = 4;
  dc.size = 128;
  const data::SyntheticCifar train(dc);
  TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 32;
  const TrainReport report = train_classifier(*model, train, tc);
  ASSERT_EQ(report.epoch_loss.size(), 4u);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
  EXPECT_GT(report.epoch_accuracy.back(), report.epoch_accuracy.front());
}

TEST(Experiment, PaperRateGrid) {
  const auto rates = paper_fault_rates();
  ASSERT_EQ(rates.size(), 5u);
  EXPECT_DOUBLE_EQ(rates.front(), 1e-7);
  EXPECT_DOUBLE_EQ(rates.back(), 3e-5);
}

TEST(Experiment, PaperLabels) {
  EXPECT_EQ(paper_label(core::Scheme::fitrelu), "FitAct");
  EXPECT_EQ(paper_label(core::Scheme::clip_act), "Clip-Act");
  EXPECT_EQ(paper_label(core::Scheme::ranger), "Ranger");
  EXPECT_EQ(paper_label(core::Scheme::relu), "Unprotected");
}

TEST(Experiment, ScalePresets) {
  const ExperimentScale s = ExperimentScale::scaled();
  const ExperimentScale f = ExperimentScale::full();
  EXPECT_LT(s.width_for("vgg16"), f.width_for("vgg16"));
  EXPECT_LT(s.train_size, f.train_size);
  EXPECT_EQ(f.width_for("resnet50"), 1.0f);
}

TEST(Experiment, PrepareModelTrainsThenCaches) {
  const std::string cache =
      (std::filesystem::temp_directory_path() / "fitact_cache_test").string();
  std::filesystem::remove_all(cache);
  ExperimentScale scale = ExperimentScale::scaled();
  scale.train_size = 96;
  scale.test_size = 48;
  scale.train_epochs = 2;
  PreparedModel pm = prepare_model("tinycnn", 10, scale, cache, 11);
  EXPECT_FALSE(pm.from_cache);
  EXPECT_GT(pm.train_time_s, 0.0);

  PreparedModel pm2 = prepare_model("tinycnn", 10, scale, cache, 11);
  EXPECT_TRUE(pm2.from_cache);
  EXPECT_NEAR(pm.baseline_accuracy, pm2.baseline_accuracy, 1e-9);
  std::filesystem::remove_all(cache);
}

TEST(Experiment, ProtectAndCampaignSmoke) {
  ExperimentScale scale = ExperimentScale::scaled();
  scale.train_size = 96;
  scale.test_size = 48;
  scale.train_epochs = 2;
  scale.eval_samples = 24;
  scale.trials = 2;
  scale.post.epochs = 1;
  scale.post.max_batches_per_epoch = 3;
  PreparedModel pm = prepare_model("tinycnn", 10, scale, "", 13);

  const ProtectReport clip = protect_model(pm, core::Scheme::clip_act, scale);
  EXPECT_GE(clip.clean_accuracy, 0.0);
  const auto result = campaign_at_rate(pm, 1e-6, scale, 21);
  EXPECT_EQ(result.accuracies.size(), 2u);

  const ProtectReport fit = protect_model(pm, core::Scheme::fitrelu, scale);
  EXPECT_TRUE(fit.post_trained);
}

TEST(Experiment, ReplicaEvaluatesIdentically) {
  ExperimentScale scale = ExperimentScale::scaled();
  scale.train_size = 96;
  scale.test_size = 48;
  scale.train_epochs = 2;
  scale.eval_samples = 24;
  scale.post.epochs = 1;
  scale.post.max_batches_per_epoch = 3;
  PreparedModel pm = prepare_model("tinycnn", 10, scale, "", 17);
  (void)protect_model(pm, core::Scheme::fitrelu, scale);

  const auto replica = replicate_model(pm);
  EvalConfig ec;
  ec.max_samples = scale.eval_samples;
  const double orig = evaluate_accuracy(*pm.model, *pm.test, ec);
  const double copy = evaluate_accuracy(*replica, *pm.test, ec);
  EXPECT_DOUBLE_EQ(orig, copy);
}

TEST(Experiment, ReplicationRefusesInstalledCorruptor) {
  ExperimentScale scale = ExperimentScale::scaled();
  scale.train_size = 96;
  scale.test_size = 48;
  scale.train_epochs = 1;
  PreparedModel pm = prepare_model("tinycnn", 10, scale, "", 23);
  (void)protect_model(pm, core::Scheme::clip_act, scale);
  const auto sites = core::collect_activations(*pm.model);
  ASSERT_FALSE(sites.empty());
  sites[0]->set_input_corruptor([](Tensor&) {});
  // A replica cannot carry the (possibly stateful) corruptor closure; the
  // engine must refuse instead of silently evaluating replicas fault-free.
  EXPECT_THROW((void)replicate_model(pm), std::invalid_argument);
  sites[0]->clear_input_corruptor();
  EXPECT_NO_THROW((void)replicate_model(pm));
}

TEST(Experiment, ParallelCampaignMatchesSerial) {
  ExperimentScale scale = ExperimentScale::scaled();
  scale.train_size = 96;
  scale.test_size = 48;
  scale.train_epochs = 2;
  scale.eval_samples = 24;
  scale.trials = 6;
  PreparedModel pm = prepare_model("tinycnn", 10, scale, "", 19);
  (void)protect_model(pm, core::Scheme::clip_act, scale);

  scale.campaign_threads = 1;
  const auto serial = campaign_at_rate(pm, 1e-5, scale, 33);
  for (const std::size_t threads : {2u, 8u}) {
    scale.campaign_threads = threads;
    const auto parallel = campaign_at_rate(pm, 1e-5, scale, 33);
    EXPECT_EQ(serial.accuracies, parallel.accuracies)
        << "threads = " << threads;
    EXPECT_EQ(serial.flip_counts, parallel.flip_counts)
        << "threads = " << threads;
  }
}

}  // namespace
}  // namespace fitact::ev
