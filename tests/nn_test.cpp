// Unit tests for src/nn: module tree mechanics, layers, optimisers, and the
// checkpoint serializer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "autograd/ops.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace fitact::nn {
namespace {

TEST(Module, NamedParametersUseDottedPaths) {
  ut::Rng rng(1);
  Sequential net;
  net.add(std::make_shared<Conv2d>(3, 4, 3, 1, 1, true, rng));
  net.add(std::make_shared<Linear>(8, 2, true, rng));
  const auto params = net.named_parameters();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].name, "0.weight");
  EXPECT_EQ(params[1].name, "0.bias");
  EXPECT_EQ(params[2].name, "1.weight");
  EXPECT_EQ(params[3].name, "1.bias");
}

TEST(Module, ParameterCountMatches) {
  ut::Rng rng(2);
  Sequential net;
  net.add(std::make_shared<Linear>(10, 5, true, rng));
  EXPECT_EQ(net.parameter_count(), 10 * 5 + 5);
}

TEST(Module, SetTrainingPropagates) {
  ut::Rng rng(3);
  Sequential outer;
  auto inner = std::make_shared<Sequential>();
  inner->add(std::make_shared<BatchNorm2d>(2));
  outer.add(inner);
  outer.set_training(false);
  EXPECT_FALSE(inner->is_training());
  EXPECT_FALSE(inner->at(0)->is_training());
}

TEST(Module, ZeroGradClearsAllGrads) {
  ut::Rng rng(4);
  Linear lin(4, 2, true, rng);
  Variable x(Tensor::randn(Shape{1, 4}, rng), false);
  Variable y = ag::sum_of_squares(lin.forward(x));
  y.backward();
  bool any_nonzero = false;
  for (auto& p : lin.named_parameters()) {
    for (const float g : p.var.grad().span()) {
      if (g != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  lin.zero_grad();
  for (auto& p : lin.named_parameters()) {
    for (const float g : p.var.grad().span()) EXPECT_EQ(g, 0.0f);
  }
}

TEST(Module, BuffersAreCollected) {
  BatchNorm2d bn(3);
  const auto buffers = bn.named_buffers();
  ASSERT_EQ(buffers.size(), 2u);
  EXPECT_EQ(buffers[0].name, "running_mean");
  EXPECT_EQ(buffers[1].name, "running_var");
}

TEST(Layers, Conv2dOutputShape) {
  ut::Rng rng(5);
  Conv2d conv(3, 8, 3, 2, 1, true, rng);
  Variable x(Tensor::randn(Shape{2, 3, 32, 32}, rng), false);
  const Variable y = conv.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 8, 16, 16}));
}

TEST(Layers, SequentialComposes) {
  ut::Rng rng(6);
  Sequential net;
  net.add(std::make_shared<Conv2d>(3, 4, 3, 1, 1, true, rng));
  net.add(std::make_shared<MaxPool2d>(2));
  net.add(std::make_shared<Flatten>());
  net.add(std::make_shared<Linear>(4 * 16 * 16, 10, true, rng));
  Variable x(Tensor::randn(Shape{2, 3, 32, 32}, rng), false);
  const Variable y = net.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 10}));
}

TEST(Layers, IdentityPassesThrough) {
  Identity id;
  Variable x(Tensor::from_values({1.0f, 2.0f}), false);
  EXPECT_TRUE(id.forward(x).is_same(x));
}

TEST(Layers, BatchNormTrainVsEvalDiffer) {
  ut::Rng rng(7);
  BatchNorm2d bn(2);
  Variable x(Tensor::randn(Shape{4, 2, 3, 3}, rng, 5.0f), false);
  bn.set_training(true);
  const Variable y_train = bn.forward(x);
  bn.set_training(false);
  const Variable y_eval = bn.forward(x);
  // Eval uses (partially updated) running stats -> different output.
  bool differs = false;
  for (std::int64_t i = 0; i < y_train.numel(); ++i) {
    if (std::abs(y_train.value()[i] - y_eval.value()[i]) > 1e-4f) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Optimizer, SgdStepsDownhillOnQuadratic) {
  // minimise f(w) = |w|^2; SGD must decrease it monotonically.
  Variable w(Tensor::from_values({3.0f, -2.0f}), true);
  Sgd sgd({w}, 0.1f, 0.0f, 0.0f);
  float prev = 13.0f;
  for (int i = 0; i < 20; ++i) {
    sgd.zero_grad();
    Variable loss = ag::sum_of_squares(w);
    loss.backward();
    sgd.step();
    const float now = ag::sum_of_squares(w).value().item();
    EXPECT_LT(now, prev);
    prev = now;
  }
  EXPECT_LT(prev, 0.1f);
}

TEST(Optimizer, SgdMomentumAcceleratesOverPlainSgd) {
  Variable w1(Tensor::from_values({4.0f}), true);
  Variable w2(Tensor::from_values({4.0f}), true);
  Sgd plain({w1}, 0.02f, 0.0f, 0.0f);
  Sgd heavy({w2}, 0.02f, 0.9f, 0.0f);
  for (int i = 0; i < 15; ++i) {
    plain.zero_grad();
    Variable l1 = ag::sum_of_squares(w1);
    l1.backward();
    plain.step();
    heavy.zero_grad();
    Variable l2 = ag::sum_of_squares(w2);
    l2.backward();
    heavy.step();
  }
  EXPECT_LT(std::abs(w2.value()[0]), std::abs(w1.value()[0]));
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Variable w(Tensor::from_values({1.0f}), true);
  Sgd sgd({w}, 0.1f, 0.0f, 0.5f);
  // No data gradient at all: decay alone must shrink the weight.
  w.ensure_grad();
  sgd.step();
  EXPECT_LT(w.value()[0], 1.0f);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  Variable w(Tensor::from_values({5.0f, -5.0f, 2.0f}), true);
  Adam adam({w}, 0.2f);
  for (int i = 0; i < 100; ++i) {
    adam.zero_grad();
    Variable loss = ag::sum_of_squares(w);
    loss.backward();
    adam.step();
  }
  for (const float v : w.value().span()) EXPECT_NEAR(v, 0.0f, 0.05f);
}

TEST(Optimizer, AdamSkipsParamsWithoutGrad) {
  Variable w(Tensor::from_values({1.0f}), true);
  Adam adam({w}, 0.5f);
  adam.step();  // no grad allocated yet: must be a no-op
  EXPECT_FLOAT_EQ(w.value()[0], 1.0f);
}

TEST(Serialize, RoundTripsParamsAndBuffers) {
  ut::Rng rng(8);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fitact_ckpt_test.bin")
          .string();
  Sequential a;
  a.add(std::make_shared<Conv2d>(3, 4, 3, 1, 1, true, rng));
  a.add(std::make_shared<BatchNorm2d>(4));
  // Perturb a buffer to verify buffers round-trip too.
  a.named_buffers()[0].tensor.fill(0.25f);
  save_state(a, path);

  ut::Rng rng2(999);
  Sequential b;
  b.add(std::make_shared<Conv2d>(3, 4, 3, 1, 1, true, rng2));
  b.add(std::make_shared<BatchNorm2d>(4));
  ASSERT_TRUE(load_state(b, path));
  const auto pa = a.named_parameters();
  const auto pb = b.named_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i].var.numel(); ++j) {
      EXPECT_EQ(pa[i].var.value()[j], pb[i].var.value()[j]);
    }
  }
  EXPECT_EQ(b.named_buffers()[0].tensor[0], 0.25f);
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFileReturnsFalse) {
  ut::Rng rng(9);
  Linear lin(2, 2, true, rng);
  EXPECT_FALSE(load_state(lin, "/nonexistent/path/x.bin"));
}

TEST(Serialize, ShapeMismatchThrows) {
  ut::Rng rng(10);
  const std::string path =
      (std::filesystem::temp_directory_path() / "fitact_ckpt_mismatch.bin")
          .string();
  Linear small(2, 2, true, rng);
  save_state(small, path);
  Linear big(4, 4, true, rng);
  EXPECT_THROW(load_state(big, path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fitact::nn
