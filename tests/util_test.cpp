// Unit tests for src/util: RNG determinism and distribution sanity, thread
// pool correctness, CSV escaping, CLI parsing, table formatting, percentile
// rank selection.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/cli.h"
#include "util/csv.h"
#include "util/percentile.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace fitact::ut {
namespace {

// Ceil nearest-rank: element ceil(p * n), 1-based. The degenerate sizes and
// the exact-rank boundaries below are precisely where the old floor-index
// form (p * (n - 1) truncated) picked a lower rank.
TEST(Percentile, SingleSampleIsEveryPercentile) {
  const std::vector<double> one{42.0};
  EXPECT_EQ(percentile(one, 0.01), 42.0);
  EXPECT_EQ(percentile(one, 0.50), 42.0);
  EXPECT_EQ(percentile(one, 0.99), 42.0);
  EXPECT_EQ(percentile(one, 1.00), 42.0);
}

TEST(Percentile, TwoSamplesSplitAtTheMedian) {
  const std::vector<double> two{1.0, 9.0};
  // ceil(0.5 * 2) = 1 -> first element; anything above 0.5 -> second.
  EXPECT_EQ(percentile(two, 0.50), 1.0);
  EXPECT_EQ(percentile(two, 0.51), 9.0);
  EXPECT_EQ(percentile(two, 0.95), 9.0);
  EXPECT_EQ(percentile(two, 0.99), 9.0);
  EXPECT_EQ(percentile(two, 1.00), 9.0);
}

TEST(Percentile, ExactRankBoundaries) {
  std::vector<double> v(20);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i + 1);  // 1..20, already sorted
  }
  // p * n lands exactly on an integer rank: ceil is the identity, and the
  // floor form's (n - 1) scaling would have picked one element lower.
  EXPECT_EQ(percentile(v, 0.05), 1.0);   // rank 1
  EXPECT_EQ(percentile(v, 0.50), 10.0);  // rank 10
  EXPECT_EQ(percentile(v, 0.95), 19.0);  // rank 19
  EXPECT_EQ(percentile(v, 1.00), 20.0);  // rank 20 == max
  // Just past a boundary rounds up to the next rank.
  EXPECT_EQ(percentile(v, 0.951), 20.0);
}

TEST(Percentile, RejectsEmptyAndOutOfRangeP) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW((void)percentile(v, 0.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, -0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile(v, 1.5), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowIsUniformish) {
  Rng r(11);
  constexpr std::uint64_t n = 10;
  std::array<int, n> counts{};
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[r.next_below(n)];
  for (const int c : counts) {
    EXPECT_NEAR(c, draws / static_cast<int>(n), draws / 50);
  }
}

TEST(Rng, NextIntRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng r(17);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BinomialSmallMeanMatchesExpectation) {
  Rng r(19);
  constexpr std::uint64_t n = 1000000;
  constexpr double p = 1e-5;  // mean 10
  double sum = 0.0;
  constexpr int draws = 2000;
  for (int i = 0; i < draws; ++i) {
    sum += static_cast<double>(r.binomial(n, p));
  }
  EXPECT_NEAR(sum / draws, 10.0, 0.6);
}

TEST(Rng, BinomialLargeMeanMatchesExpectation) {
  Rng r(23);
  constexpr std::uint64_t n = 1u << 20;
  constexpr double p = 0.25;  // mean 262144
  double sum = 0.0;
  constexpr int draws = 200;
  for (int i = 0; i < draws; ++i) {
    sum += static_cast<double>(r.binomial(n, p));
  }
  const double mean = static_cast<double>(n) * p;
  EXPECT_NEAR(sum / draws, mean, mean * 0.005);
}

TEST(Rng, BinomialEdgeCases) {
  Rng r(29);
  EXPECT_EQ(r.binomial(0, 0.5), 0u);
  EXPECT_EQ(r.binomial(100, 0.0), 0u);
  EXPECT_EQ(r.binomial(100, 1.0), 100u);
}

TEST(Rng, SampleDistinctProducesDistinctInRange) {
  Rng r(31);
  const auto s = r.sample_distinct(1000, 200);
  EXPECT_EQ(s.size(), 200u);
  std::set<std::uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 200u);
  for (const auto v : s) EXPECT_LT(v, 1000u);
}

TEST(Rng, SampleDistinctFullRange) {
  Rng r(37);
  const auto s = r.sample_distinct(16, 16);
  std::set<std::uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 16u);
}

TEST(Rng, SampleDistinctKGreaterThanNClamps) {
  Rng r(41);
  const auto s = r.sample_distinct(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(43);
  std::vector<std::size_t> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  r.shuffle(v);
  std::set<std::size_t> uniq(v.begin(), v.end());
  EXPECT_EQ(uniq.size(), 100u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(47);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEachCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(777);
  pool.parallel_for_each(0, 777, 10,
                         [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      // Nested call from a worker must not deadlock.
      pool.parallel_for(0, 10, [&](std::size_t nb, std::size_t ne) {
        total.fetch_add(static_cast<int>(ne - nb));
      });
    }
  });
  EXPECT_EQ(total.load(), 40);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("q\"q"), "\"q\"\"q\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fitact_csv_test.csv").string();
  {
    CsvWriter w(path, {"a", "b"});
    w.row({"1", "x,y"});
    w.row_values({2.5, 3.0});
  }
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "a,b");
  std::getline(is, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::getline(is, line);
  EXPECT_EQ(line, "2.5,3");
  std::filesystem::remove(path);
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fitact_csv_test2.csv")
          .string();
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({"only one"}), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(Cli, ParsesForms) {
  // Note: a bare "--flag" binds a following non-option token as its value,
  // so boolean flags must come last or use the "--flag=true" form.
  const char* argv[] = {"prog",      "pos1", "--alpha", "3",
                        "--beta=x",  "--gamma", "2.5",  "--flag"};
  Cli cli(8, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get("beta", ""), "x");
  EXPECT_TRUE(cli.get_flag("flag"));
  EXPECT_FALSE(cli.get_flag("missing"));
  EXPECT_DOUBLE_EQ(cli.get_double("gamma", 0.0), 2.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, FlagEqualsFormDisambiguates) {
  const char* argv[] = {"prog", "--flag=true", "positional"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_TRUE(cli.get_flag("flag"));
  ASSERT_EQ(cli.positional().size(), 1u);
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_EQ(cli.get("s", "dflt"), "dflt");
}

TEST(Cli, GetCountFallsBackOnInvalidValues) {
  const char* argv[] = {"prog", "--threads", "-1", "--lanes", "4",
                        "--bad",  "x2"};
  Cli cli(7, const_cast<char**>(argv));
  // Negative or non-numeric counts must fall back to the default (fail
  // safe), not wrap through size_t or select the 0 = "auto / maximum"
  // setting.
  EXPECT_EQ(cli.get_count("threads", 1), 1u);
  EXPECT_EQ(cli.get_count("bad", 1), 1u);
  EXPECT_EQ(cli.get_count("lanes", 1), 4u);
  EXPECT_EQ(cli.get_count("missing", 2), 2u);
  EXPECT_EQ(cli.get_count("missing", -3), 0u);
}

TEST(Cli, GetIntAndGetDoubleFallBackOnNonNumericValues) {
  const char* argv[] = {"prog",        "--classes", "foo",  "--requests",
                        "12x",         "--width",   "1.5x", "--rate",
                        "fast",        "--batch",   "8",    "--scale",
                        "0.25"};
  Cli cli(13, const_cast<char**>(argv));
  // strtoll/strtod with an unchecked end pointer turned "--classes foo"
  // into 0 and "--requests 12x" into 12; both must keep the fallback (0 is
  // a meaningful setting for several options, and a truncated prefix is a
  // typo, not intent).
  EXPECT_EQ(cli.get_int("classes", 10), 10);
  EXPECT_EQ(cli.get_int("requests", 256), 256);
  EXPECT_DOUBLE_EQ(cli.get_double("width", 1.0), 1.0);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.5), 0.5);
  // Fully numeric values still parse.
  EXPECT_EQ(cli.get_int("batch", 1), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.25);
}

TEST(Table, FormatsAlignedColumns) {
  TextTable t({"name", "value"});
  t.row({"alpha", "1.5"});
  t.row({"b", "22.25"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("22.25"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(TextTable::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::percent(0.8481, 2), "84.81%");
  EXPECT_EQ(TextTable::sci(3e-06), "3e-06");
}

}  // namespace
}  // namespace fitact::ut
