// Tests for the FitAct post-training stage (paper Section V): weights stay
// frozen, bounds shrink under the regulariser, the accuracy constraint
// triggers rollback, and the optimisation improves fault resilience on a
// small end-to-end case.
#include <gtest/gtest.h>

#include "core/bound_profiler.h"
#include "core/post_training.h"
#include "core/protection.h"
#include "data/synthetic_cifar.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "models/registry.h"

namespace fitact::core {
namespace {

struct Fixture {
  std::shared_ptr<nn::Module> model;
  data::SyntheticCifar train;
  data::SyntheticCifar test;
  double baseline = 0.0;

  static Fixture make() {
    models::ModelConfig mc;
    mc.width_mult = 0.5f;
    mc.num_classes = 4;
    data::SyntheticCifarConfig train_cfg;
    train_cfg.num_classes = 4;
    train_cfg.size = 256;
    train_cfg.split_salt = 1;
    data::SyntheticCifarConfig test_cfg = train_cfg;
    test_cfg.size = 128;
    test_cfg.split_salt = 2;
    Fixture f{models::make_model("tinycnn", mc),
              data::SyntheticCifar(train_cfg),
              data::SyntheticCifar(test_cfg), 0.0};
    ev::TrainConfig tc;
    tc.epochs = 6;
    tc.batch_size = 32;
    ev::train_classifier(*f.model, f.train, tc);
    f.baseline = ev::evaluate_accuracy(*f.model, f.test);
    ProfileConfig pc;
    pc.max_samples = 256;
    profile_bounds(*f.model, f.train, pc);
    return f;
  }
};

// Training the fixture once and reusing it keeps this suite fast.
Fixture& fixture() {
  static Fixture f = Fixture::make();
  return f;
}

PostTrainConfig quick_config() {
  PostTrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 32;
  cfg.max_batches_per_epoch = 8;
  cfg.lr = 0.05f;
  cfg.zeta = 1.0f;
  cfg.delta = 0.10f;
  cfg.val_samples = 128;
  return cfg;
}

TEST(PostTraining, RequiresFitReluSites) {
  Fixture& f = fixture();
  apply_protection(*f.model, Scheme::relu);
  EXPECT_THROW(
      post_train_bounds(*f.model, f.train, f.test, f.baseline, quick_config()),
      std::logic_error);
}

TEST(PostTraining, BaselineAccuracyIsLearned) {
  // The fixture itself must be a learnable task, otherwise the remaining
  // assertions are vacuous.
  EXPECT_GT(fixture().baseline, 0.7);
}

TEST(PostTraining, WeightsFrozenBoundsMove) {
  Fixture& f = fixture();
  apply_protection(*f.model, Scheme::fitrelu);
  // Snapshot weights and bounds.
  std::vector<Tensor> weights_before;
  std::vector<Tensor> bounds_before;
  for (const auto& p : f.model->named_parameters()) {
    if (p.name.find("lambda") != std::string::npos) {
      bounds_before.push_back(p.var.value().clone());
    } else {
      weights_before.push_back(p.var.value().clone());
    }
  }
  const PostTrainReport report =
      post_train_bounds(*f.model, f.train, f.test, f.baseline, quick_config());
  EXPECT_EQ(report.epochs.size(), 3u);

  std::size_t wi = 0;
  std::size_t bi = 0;
  bool bounds_changed = false;
  for (const auto& p : f.model->named_parameters()) {
    if (p.name.find("lambda") != std::string::npos) {
      const Tensor& before = bounds_before[bi++];
      for (std::int64_t j = 0; j < p.var.numel(); ++j) {
        if (p.var.value()[j] != before[j]) bounds_changed = true;
      }
    } else {
      const Tensor& before = weights_before[wi++];
      for (std::int64_t j = 0; j < p.var.numel(); ++j) {
        ASSERT_EQ(p.var.value()[j], before[j])
            << "weight " << p.name << " changed during post-training";
      }
    }
  }
  EXPECT_TRUE(bounds_changed);
}

TEST(PostTraining, RegulariserShrinksBoundEnergy) {
  Fixture& f = fixture();
  apply_protection(*f.model, Scheme::fitrelu);
  const PostTrainReport report =
      post_train_bounds(*f.model, f.train, f.test, f.baseline, quick_config());
  EXPECT_LT(report.final_bound_energy, report.initial_bound_energy);
}

TEST(PostTraining, KeepsAccuracyWithinDelta) {
  Fixture& f = fixture();
  apply_protection(*f.model, Scheme::fitrelu);
  PostTrainConfig cfg = quick_config();
  cfg.delta = 0.08f;
  const PostTrainReport report =
      post_train_bounds(*f.model, f.train, f.test, f.baseline, cfg);
  if (report.any_feasible) {
    EXPECT_LT(f.baseline - report.final_accuracy, cfg.delta + 0.05);
  } else {
    // Rollback to initial bounds restores near-initial accuracy.
    EXPECT_NEAR(report.final_accuracy, report.initial_accuracy, 0.05);
  }
}

TEST(PostTraining, InfeasibleDeltaRollsBackToInitialBounds) {
  Fixture& f = fixture();
  apply_protection(*f.model, Scheme::fitrelu);
  std::vector<Tensor> bounds_before;
  for (const auto& act : collect_activations(*f.model)) {
    bounds_before.push_back(act->bounds().value().clone());
  }
  PostTrainConfig cfg = quick_config();
  cfg.delta = -1.0f;  // impossible constraint: nothing is ever feasible
  const PostTrainReport report =
      post_train_bounds(*f.model, f.train, f.test, f.baseline, cfg);
  EXPECT_FALSE(report.any_feasible);
  std::size_t i = 0;
  for (const auto& act : collect_activations(*f.model)) {
    const Tensor& before = bounds_before[i++];
    for (std::int64_t j = 0; j < act->bounds().numel(); ++j) {
      EXPECT_EQ(act->bounds().value()[j], before[j]);
    }
  }
}

TEST(PostTraining, BoundsStayNonNegative) {
  Fixture& f = fixture();
  apply_protection(*f.model, Scheme::fitrelu);
  PostTrainConfig cfg = quick_config();
  cfg.zeta = 50.0f;  // aggressive shrinking
  post_train_bounds(*f.model, f.train, f.test, f.baseline, cfg);
  for (const auto& act : collect_activations(*f.model)) {
    for (const float b : act->bounds().value().span()) {
      EXPECT_GE(b, 0.0f);
    }
  }
}

TEST(PostTraining, LambdaNotTrainableAfterwards) {
  Fixture& f = fixture();
  apply_protection(*f.model, Scheme::fitrelu);
  post_train_bounds(*f.model, f.train, f.test, f.baseline, quick_config());
  for (const auto& act : collect_activations(*f.model)) {
    EXPECT_FALSE(act->bounds().requires_grad());
  }
}

TEST(PostTraining, ReportsWallTimeAndEpochTrace) {
  Fixture& f = fixture();
  apply_protection(*f.model, Scheme::fitrelu);
  const PostTrainReport report =
      post_train_bounds(*f.model, f.train, f.test, f.baseline, quick_config());
  EXPECT_GT(report.wall_time_s, 0.0);
  for (const auto& ep : report.epochs) {
    EXPECT_GT(ep.loss, 0.0);
    EXPECT_GE(ep.val_accuracy, 0.0);
  }
}

}  // namespace
}  // namespace fitact::core
