// Multi-client hammer for the resilient serving subsystem, written for the
// TSan CI lane (labels: serve + stress): N client threads submit
// concurrently while a chaos thread injects parameter faults into live
// lanes through with_lane, exercising every submit / detect / scrub /
// drain / shutdown interleaving the server supports. Functional assertions
// are kept to what concurrency cannot perturb (every promise fulfilled,
// shapes valid, stats consistent, deterministic recovery in a quiesced
// tail phase); the interleavings themselves are the test — under
// -fsanitize=thread any locking mistake in the server or thread pool is
// the failure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "autograd/variable.h"
#include "eval/experiment.h"
#include "eval/serving.h"
#include "fault/injector.h"
#include "serve/server.h"
#include "util/rng.h"

namespace fitact::ev {
namespace {

ExperimentScale tiny_scale() {
  ExperimentScale scale = ExperimentScale::scaled();
  scale.train_size = 96;
  scale.test_size = 48;
  scale.train_epochs = 2;
  scale.eval_samples = 24;
  scale.trials = 4;
  return scale;
}

PreparedModel prepared(std::uint64_t seed) {
  const ExperimentScale scale = tiny_scale();
  PreparedModel pm = prepare_model("tinycnn", 10, scale, "", seed);
  (void)protect_model(pm, core::Scheme::clip_act, scale);
  return pm;
}

std::vector<Tensor> test_samples(const PreparedModel& pm, std::int64_t count) {
  std::vector<Tensor> samples;
  samples.reserve(static_cast<std::size_t>(count));
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < count; ++i) {
    samples.push_back(pm.test->batch(i, 1, &labels));  // [1,3,32,32]
  }
  return samples;
}

std::vector<Tensor> reference_logits(const PreparedModel& pm,
                                     const std::vector<Tensor>& samples) {
  const NoGradGuard no_grad;
  pm.model->set_training(false);
  std::vector<Tensor> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    out.push_back(pm.model->forward(Variable(s)).value().clone());
  }
  return out;
}

void expect_bit_identical(const Tensor& got, const Tensor& want,
                          const std::string& context) {
  ASSERT_EQ(got.numel(), want.numel()) << context;
  for (std::int64_t j = 0; j < got.numel(); ++j) {
    EXPECT_EQ(got[j], want[j]) << context << " logit " << j;
  }
}

// Clients submitting concurrently with periodic live-parameter fault
// injection and recovery. The hammer phase asserts only
// interleaving-independent properties; the quiesced tail phase (chaos
// stopped, every lane freshly corrupted once) re-asserts the serve_test
// recovery contract — detection fires and every answer matches the clean
// model bit-for-bit — to prove the hammering never wedged a lane or
// corrupted a clean image.
TEST(ServeHammer, ConcurrentSubmitWithInjectionAndRecovery) {
  PreparedModel pm = prepared(37);
  ServeOptions options;
  options.server.lanes = 3;
  options.server.max_batch = 4;
  // A non-zero window exercises the deadline-wait path of lane_loop under
  // contention, not just the greedy path the serve suite covers.
  options.server.batch_window = std::chrono::microseconds(200);
  const auto server = make_server(pm, options);
  const std::vector<Tensor> samples = test_samples(pm, 12);
  const std::vector<Tensor> ref = reference_logits(pm, samples);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRequestsPerClient = 24;

  std::atomic<bool> chaos_stop{false};
  std::thread chaos([&] {
    ut::Rng rng(4242);
    std::size_t lane = 0;
    while (!chaos_stop.load(std::memory_order_relaxed)) {
      server->with_lane(lane % options.server.lanes,
                        [&](nn::Module&, quant::ParamImage& image) {
                          fault::Injector injector(image);
                          (void)injector.inject_exact_at_bit(8, 28, rng);
                        });
      ++lane;
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<serve::RequestResult>>> futures(
      kClients);
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      futures[c].reserve(kRequestsPerClient);
      for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
        futures[c].push_back(
            server->submit(samples[(c + i) % samples.size()]));
        if (i % 8 == 7) server->drain();  // drain under concurrent submits
      }
    });
  }
  for (auto& t : clients) t.join();
  chaos_stop.store(true, std::memory_order_relaxed);
  chaos.join();
  server->drain();

  const std::int64_t classes = ref.front().numel();
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < futures[c].size(); ++i) {
      const serve::RequestResult r = futures[c][i].get();
      const std::string context =
          "client " + std::to_string(c) + " request " + std::to_string(i);
      EXPECT_EQ(r.logits.numel(), classes) << context;
      EXPECT_GE(r.predicted, 0) << context;
      EXPECT_LT(r.predicted, classes) << context;
      EXPECT_LT(r.lane, options.server.lanes) << context;
      EXPECT_GE(r.batch_size, 1) << context;
      EXPECT_LE(r.batch_size, options.server.max_batch) << context;
    }
  }
  const serve::ServerStats mid = server->stats();
  EXPECT_EQ(mid.requests, kClients * kRequestsPerClient);
  EXPECT_GE(mid.forwards, mid.batches);
  EXPECT_GE(mid.forwards, mid.batches + mid.recoveries);

  // Quiesced tail: scrub every lane back to its clean image, corrupt each
  // one deterministically, and require the detector to recover every
  // answer to the clean model's bits — the serve_test contract, now after
  // thousands of contended interleavings.
  for (std::size_t l = 0; l < options.server.lanes; ++l) {
    server->with_lane(l, [](nn::Module&, quant::ParamImage& image) {
      image.restore();
    });
    server->with_lane(l, [l](nn::Module&, quant::ParamImage& image) {
      fault::Injector injector(image);
      ut::Rng rng(900 + l);
      // 96 flips (vs serve_test's 32): lane-to-batch pairing depends on
      // timing here, so the corruption must trip the detector for *every*
      // (fault set, batch) combination, not just one curated pairing.
      (void)injector.inject_exact_at_bit(96, 28, rng);
    });
  }
  std::vector<std::future<serve::RequestResult>> tail;
  tail.reserve(samples.size());
  for (const auto& s : samples) tail.push_back(server->submit(s));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    expect_bit_identical(tail[i].get().logits, ref[i],
                         "tail request " + std::to_string(i));
  }
  const serve::ServerStats end = server->stats();
  EXPECT_GE(end.detections, mid.detections + 1);
  EXPECT_GE(end.recoveries, mid.recoveries + 1);
}

// Shutdown ordering: the destructor must drain every request queued before
// it ran — even requests still sitting in a partially filled batching
// window — and fulfill every promise with the clean model's answer.
TEST(ServeHammer, DestructorDrainsConcurrentlySubmittedRequests) {
  PreparedModel pm = prepared(41);
  const std::vector<Tensor> samples = test_samples(pm, 8);
  { const auto warm = make_server(pm); }  // round-trip pm for the reference
  const std::vector<Tensor> ref = reference_logits(pm, samples);

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRequestsPerClient = 12;
  std::vector<std::vector<std::future<serve::RequestResult>>> futures(
      kClients);
  {
    ServeOptions options;
    options.server.lanes = 2;
    options.server.max_batch = 8;
    // A long window makes it likely the destructor runs while batches are
    // still being assembled, which is exactly the ordering under test.
    options.server.batch_window = std::chrono::milliseconds(5);
    const auto server = make_server(pm, options);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        futures[c].reserve(kRequestsPerClient);
        for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
          futures[c].push_back(
              server->submit(samples[(c * 3 + i) % samples.size()]));
        }
      });
    }
    for (auto& t : clients) t.join();
    // Destroy with requests still queued/window-pending: ~InferenceServer
    // must drain, not drop.
  }
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < futures[c].size(); ++i) {
      const serve::RequestResult r = futures[c][i].get();
      expect_bit_identical(
          r.logits, ref[(c * 3 + i) % ref.size()],
          "client " + std::to_string(c) + " request " + std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace fitact::ev
